//! Acceptance fences of the pipeline subsystem: campaign determinism
//! (parallel bit-identical to serial at 1/2/8 workers, on **both** frame
//! executors), the frozen `ad_pipeline` stage timeline, the frozen
//! *overlapped* `sensor_fusion` timeline (branch partitions + critical-path
//! FTTI), and the fail-operational demonstration — a detected stage fault
//! recovered by in-FTTI re-execution that would have been a fail-stop
//! without the recovery budget.

use higpu_core::policy::PolicyKind;
use higpu_core::redundancy::RedundancyMode;
use higpu_faults::campaign::{CampaignConfig, FaultSpec};
use higpu_pipeline::campaign::PipelineCampaignSpec;
use higpu_pipeline::{
    ad_pipeline, full_pipeline_registry, plan, run_pipeline, run_pipeline_campaign,
    run_pipeline_campaign_serial, sensor_fusion, ExecMode, FrameOptions, StageStatus,
};
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use higpu_workloads::Scale;

fn campaign_cfg(trials: u32) -> CampaignConfig {
    CampaignConfig {
        trials,
        seed: 0x0DD5EED,
        ..CampaignConfig::default()
    }
}

fn gpu_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::paper_6sm();
    cfg.global_mem_bytes = 2 * 1024 * 1024;
    cfg
}

/// Pipeline campaigns must be a pure function of their configuration:
/// the parallel engine's report is bit-identical to the serial reference
/// at every worker count, for both registered pipelines, on both frame
/// executors.
#[test]
fn pipeline_campaigns_are_bit_identical_to_serial_across_worker_counts() {
    let reg = full_pipeline_registry();
    for (pipeline, fault, trials, exec) in [
        (
            "ad_pipeline",
            FaultSpec::Transient { duration: 400 },
            4,
            ExecMode::Overlapped,
        ),
        (
            "sensor_fusion",
            FaultSpec::Permanent,
            3,
            ExecMode::Overlapped,
        ),
        (
            "sensor_fusion",
            FaultSpec::Transient { duration: 400 },
            3,
            ExecMode::Serial,
        ),
    ] {
        let spec = PipelineCampaignSpec::new(pipeline, PolicyKind::Srrs, fault).with_exec(exec);
        let mut cfg = campaign_cfg(trials);
        let serial = run_pipeline_campaign_serial(&cfg, &reg, &spec)
            .unwrap_or_else(|e| panic!("{pipeline}: serial: {e}"));
        assert_eq!(serial.exec, exec.label());
        assert_eq!(
            serial.trials,
            serial.not_activated
                + serial.masked
                + serial.corrected
                + serial.recovered
                + serial.detected
                + serial.undetected,
            "every trial classified: {serial:?}"
        );
        for workers in [1usize, 2, 8] {
            cfg.workers = workers;
            let parallel = run_pipeline_campaign(&cfg, &reg, &spec)
                .unwrap_or_else(|e| panic!("{pipeline}@{workers}: {e}"));
            assert_eq!(
                parallel,
                serial,
                "{pipeline} ({}): report must not depend on workers={workers}",
                exec.label()
            );
        }
        assert_eq!(
            serial.undetected, 0,
            "{pipeline}: SRRS + stage-wise verification leave nothing silent: {serial:?}"
        );
    }
}

/// The acceptance demonstration: under SRRS/DCLS, a transient fault
/// striking a stage is *detected* (the replicas tie), the stage is
/// re-executed within the remaining end-to-end slack, and the frame
/// completes with a verified-correct output — `Recovered`,
/// fail-operational. Running the **identical draws** without a recovery
/// budget turns exactly those trials into fail-stop `Detected`. This is
/// the observable the single-kernel frontier could not express.
#[test]
fn recovered_trials_would_have_been_detected_without_recovery() {
    let reg = full_pipeline_registry();
    let cfg = campaign_cfg(6);
    let fault = FaultSpec::Transient { duration: 400 };
    let spec = PipelineCampaignSpec::new("ad_pipeline", PolicyKind::Srrs, fault);

    let with = run_pipeline_campaign(&cfg, &reg, &spec).expect("with recovery");
    assert!(
        with.recovered > 0,
        "a transient must strike and be repaired by re-execution: {with:?}"
    );
    assert_eq!(with.detected, 0, "nothing fail-stops in-slack: {with:?}");
    assert_eq!(with.undetected, 0);
    assert_eq!(with.deadline_miss, 0, "recovery fits the FTTI: {with:?}");
    assert_eq!(with.recovery_rate(), Some(1.0));

    let without = run_pipeline_campaign(&cfg, &reg, &spec.clone().without_recovery())
        .expect("without recovery");
    assert_eq!(
        without.detected, with.recovered,
        "the same draws fail-stop without the re-execution budget: {without:?}"
    );
    assert_eq!(without.recovered, 0);
    assert_eq!(without.retries_attempted, 0);
    // Everything else about the two campaigns agrees.
    assert_eq!(without.not_activated, with.not_activated);
    assert_eq!(without.undetected, 0);
}

/// Re-execution cannot repair a *persistent* fault: under a permanent
/// single-SM stuck-at, every DCLS retry disagrees again and the frame
/// honestly fail-stops (retry exhausted), while the TMR configuration of
/// the same cell outvotes the minority replica in place and keeps every
/// frame operational without spending any retry.
#[test]
fn permanent_faults_exhaust_retries_under_dcls_but_vote_away_under_tmr() {
    let reg = full_pipeline_registry();
    let cfg = campaign_cfg(3);
    let spec = PipelineCampaignSpec::new("ad_pipeline", PolicyKind::Srrs, FaultSpec::Permanent);

    let dcls = run_pipeline_campaign(&cfg, &reg, &spec).expect("dcls");
    assert_eq!(
        dcls.detected, 3,
        "persistent faults defeat retries: {dcls:?}"
    );
    assert_eq!(dcls.recovered, 0);
    assert_eq!(dcls.retries_attempted, 3, "each frame spent its one retry");
    assert_eq!(dcls.retries_failed, 3);
    assert_eq!(dcls.undetected, 0, "fail-stop, never silent");

    let tmr = run_pipeline_campaign(&cfg, &reg, &spec.clone().with_replicas(3)).expect("tmr");
    assert_eq!(tmr.replicas, 3);
    assert!(
        tmr.corrected > 0,
        "a 2-of-3 majority repairs in place: {tmr:?}"
    );
    assert_eq!(tmr.undetected, 0);
    assert!(
        tmr.retries_attempted < dcls.retries_attempted,
        "forward recovery spends fewer re-executions: {tmr:?}"
    );
}

/// The frozen `ad_pipeline` timeline: per-stage start/finish cycles of a
/// fault-free campaign-scale frame under SRRS@2 on the **serial** (oracle)
/// executor. These numbers are the subsystem's determinism contract — any
/// scheduler, executor or stage change that moves them must be deliberate
/// (update the constants with the measured values and say why in the
/// commit).
#[test]
fn ad_pipeline_golden_timeline_is_frozen() {
    const GOLDEN: [(usize, &str, u64, u64); 3] = [
        (0, "perception", 0, 62_252),
        (1, "detect", 62_252, 186_198),
        (2, "plan", 186_198, 260_560),
    ];
    const GOLDEN_BUDGETS: [u64; 3] = [508_016, 1_001_568, 604_896];
    const GOLDEN_E2E: u64 = 2_114_480;

    let p = ad_pipeline(Scale::Campaign);
    let mode = RedundancyMode::srrs_default(6);
    let frame_plan = plan(&gpu_cfg(), &p, &mode).expect("calibration");
    assert_eq!(frame_plan.ftti.stage_budgets, GOLDEN_BUDGETS);
    assert_eq!(frame_plan.ftti.end_to_end(), GOLDEN_E2E);
    assert_eq!(
        frame_plan.ftti.serial_sum(),
        GOLDEN_E2E,
        "a chain's critical path IS the per-stage sum"
    );

    let mut gpu = Gpu::new(gpu_cfg());
    let run =
        run_pipeline(&mut gpu, &p, &mode, &frame_plan, FrameOptions::serial()).expect("frame");
    assert!(run.completed());
    assert_eq!(run.timings.len(), GOLDEN.len());
    for (t, &(stage, name, start, end)) in run.timings.iter().zip(&GOLDEN) {
        assert_eq!(
            (t.stage, t.name, t.start, t.end),
            (stage, name, start, end),
            "stage timeline moved: {t:?}"
        );
        assert_eq!(t.status, StageStatus::Clean);
        assert_eq!(t.attempts, 1);
    }
    assert_eq!(run.end_cycle, GOLDEN[2].3);
    // The voted frame output matches the golden dataflow's sink reference.
    let refs = p.reference_outputs();
    assert_eq!(run.outputs[p.sink()], refs[p.sink()]);
}

/// The frozen **overlapped** `sensor_fusion` timeline: the camera and
/// radar branches start together on disjoint half-device partitions, the
/// fuse join waits for both, and the end-to-end makespan lands strictly
/// below the serial executor's on the same calibrated plan — with the
/// critical-path FTTI strictly below the PR 4 per-stage sum. Any change
/// that moves these cycles must be deliberate.
#[test]
fn overlapped_sensor_fusion_golden_timeline_is_frozen() {
    // (stage, name, start, end, partition start..end)
    const GOLDEN: [(usize, &str, u64, u64, usize, usize); 4] = [
        (0, "camera", 0, 42_788, 0, 3),
        (1, "radar", 0, 29_189, 3, 6),
        (2, "fuse", 42_788, 57_876, 0, 6),
        (3, "track", 57_876, 73_000, 0, 6),
    ];
    const GOLDEN_E2E_MAKESPAN: u64 = 73_000;
    const GOLDEN_SERIAL_MAKESPAN: u64 = 75_564;
    const GOLDEN_CRITICAL_PATH_FTTI: u64 = 523_008;
    const GOLDEN_SERIAL_SUM_FTTI: u64 = 644_512;

    let p = sensor_fusion(Scale::Campaign);
    let mode = RedundancyMode::srrs_default(6);
    let frame_plan = plan(&gpu_cfg(), &p, &mode).expect("calibration");
    assert_eq!(frame_plan.ftti.end_to_end(), GOLDEN_CRITICAL_PATH_FTTI);
    assert_eq!(frame_plan.ftti.serial_sum(), GOLDEN_SERIAL_SUM_FTTI);
    assert!(
        frame_plan.ftti.end_to_end() < frame_plan.ftti.serial_sum(),
        "the critical-path FTTI is strictly below the per-stage sum"
    );

    let mut gpu = Gpu::new(gpu_cfg());
    let over = run_pipeline(&mut gpu, &p, &mode, &frame_plan, FrameOptions::overlapped())
        .expect("overlapped frame");
    assert!(over.completed());
    for &(stage, name, start, end, p_start, p_end) in &GOLDEN {
        let t = over.timing_of(stage).expect("stage ran");
        assert_eq!(
            (t.stage, t.name, t.start, t.end, t.partition.range()),
            (stage, name, start, end, p_start..p_end),
            "overlapped timeline moved: {t:?}"
        );
        assert_eq!(t.status, StageStatus::Clean);
    }
    assert_eq!(over.end_cycle, GOLDEN_E2E_MAKESPAN);
    assert!(!over.deadline_miss);

    let mut gpu = Gpu::new(gpu_cfg());
    let serial = run_pipeline(&mut gpu, &p, &mode, &frame_plan, FrameOptions::serial())
        .expect("serial frame");
    assert_eq!(serial.end_cycle, GOLDEN_SERIAL_MAKESPAN);
    assert!(
        over.end_cycle < serial.end_cycle,
        "overlap must strictly beat the serial frame"
    );
    assert_eq!(
        over.outputs, serial.outputs,
        "executors agree bit-for-bit on fault-free voted outputs"
    );
}
