//! Cross-core validator: the event-queue core must be **bit-identical** to
//! the stepping oracle ([`higpu_sim::config::CoreKind`]).
//!
//! Every registered workload runs once per core with per-instruction issue
//! logging enabled; the two issue logs are then diffed record for record.
//! On divergence the failure message pinpoints the first differing issue
//! slot as (cycle, SM, warp) — the exact coordinates needed to replay the
//! stepping oracle up to the bug. Execution traces (block/kernel timings,
//! makespan) and aggregate statistics must match too: agreement on the
//! issue trace with disagreement in, say, cache counters would mean the
//! cores diverge somewhere the issue log cannot see.

use higpu_bench::matrix::full_registry;
use higpu_sim::config::{CoreKind, GpuConfig};
use higpu_sim::gpu::Gpu;
use higpu_sim::sm::IssueRecord;
use higpu_sim::stats::SimStats;
use higpu_sim::trace::ExecutionTrace;
use higpu_workloads::session::SoloSession;
use higpu_workloads::{Scale, WorkloadRegistry};

/// One core's complete observable behaviour for a workload run.
struct CoreRun {
    issues: Vec<IssueRecord>,
    trace: ExecutionTrace,
    stats: SimStats,
}

fn run_on_core(reg: &WorkloadRegistry, name: &str, core: CoreKind) -> CoreRun {
    let cfg = GpuConfig {
        core,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    gpu.set_issue_log(true);
    let workload = reg
        .build(name, Scale::Campaign)
        .unwrap_or_else(|| panic!("workload '{name}' not in registry"));
    {
        let mut session = SoloSession::new(&mut gpu);
        workload
            .run(&mut session)
            .unwrap_or_else(|e| panic!("workload '{name}' failed on {core:?}: {e:?}"));
    }
    CoreRun {
        issues: gpu.drain_issue_log(),
        trace: gpu.trace().clone(),
        stats: gpu.stats(),
    }
}

/// Diffs two issue logs and panics with the first-divergence coordinates.
fn assert_logs_identical(name: &str, oracle: &[IssueRecord], event: &[IssueRecord]) {
    let n = oracle.len().min(event.len());
    for i in 0..n {
        if oracle[i] != event[i] {
            panic!(
                "{name}: cores diverge at issue slot {i}: first divergence at \
                 cycle {} sm {} warp {} — stepping issued {:?}, event issued {:?}",
                oracle[i].cycle, oracle[i].sm, oracle[i].warp, oracle[i], event[i]
            );
        }
    }
    assert_eq!(
        oracle.len(),
        event.len(),
        "{name}: logs agree for {n} records, then one core issued more \
         (stepping {} vs event {}; first extra record: {:?})",
        oracle.len(),
        event.len(),
        if oracle.len() > event.len() {
            &oracle[n]
        } else {
            &event[n]
        }
    );
}

#[test]
fn every_registry_workload_is_bit_identical_across_cores() {
    let reg = full_registry();
    let names: Vec<String> = reg.names().iter().map(|n| n.to_string()).collect();
    assert!(
        names.len() >= 17,
        "registry shrank to {} workloads — the cross-core sweep lost coverage",
        names.len()
    );
    for name in &names {
        let oracle = run_on_core(&reg, name, CoreKind::Stepping);
        let event = run_on_core(&reg, name, CoreKind::Event);
        assert!(
            !oracle.issues.is_empty(),
            "{name}: stepping oracle issued nothing — the diff would be vacuous"
        );
        assert_logs_identical(name, &oracle.issues, &event.issues);
        assert_eq!(
            oracle.trace, event.trace,
            "{name}: identical issue logs but diverging execution traces"
        );
        assert_eq!(
            oracle.stats, event.stats,
            "{name}: identical issue logs but diverging statistics"
        );
    }
}

#[test]
fn issue_log_is_cycle_sm_ordered() {
    // The diff above is only meaningful if the drained log has a canonical
    // order; verify the (cycle, sm) sort contract on a real workload.
    let reg = full_registry();
    let run = run_on_core(&reg, "pathfinder", CoreKind::Event);
    for w in run.issues.windows(2) {
        assert!(
            (w[0].cycle, w[0].sm) <= (w[1].cycle, w[1].sm),
            "issue log out of order: {:?} before {:?}",
            w[0],
            w[1]
        );
    }
}
