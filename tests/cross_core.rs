//! Cross-core validator: the event-queue core must be **bit-identical** to
//! the stepping oracle ([`higpu_sim::config::CoreKind`]).
//!
//! Every registered workload runs once per core with per-instruction issue
//! logging enabled; the two issue logs are then diffed record for record.
//! On divergence the failure message pinpoints the first differing issue
//! slot as (cycle, SM, warp) — the exact coordinates needed to replay the
//! stepping oracle up to the bug. Execution traces (block/kernel timings,
//! makespan) and aggregate statistics must match too: agreement on the
//! issue trace with disagreement in, say, cache counters would mean the
//! cores diverge somewhere the issue log cannot see.

use higpu_bench::matrix::full_registry;
use higpu_sim::config::{CoreKind, GpuConfig};
use higpu_sim::gpu::{DevPtr, DeviceSnapshot, Gpu};
use higpu_sim::kernel::{Dim3, KernelLaunch, LaunchConfig};
use higpu_sim::program::Program;
use higpu_sim::sm::IssueRecord;
use higpu_sim::stats::SimStats;
use higpu_sim::trace::ExecutionTrace;
use higpu_workloads::session::{BufId, GpuSession, SParam, SessionError, SoloSession};
use higpu_workloads::{Scale, WorkloadRegistry};
use std::sync::Arc;

/// One core's complete observable behaviour for a workload run.
struct CoreRun {
    issues: Vec<IssueRecord>,
    trace: ExecutionTrace,
    stats: SimStats,
}

fn run_on_core(reg: &WorkloadRegistry, name: &str, core: CoreKind) -> CoreRun {
    let cfg = GpuConfig {
        core,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    gpu.set_issue_log(true);
    let workload = reg
        .build(name, Scale::Campaign)
        .unwrap_or_else(|| panic!("workload '{name}' not in registry"));
    {
        let mut session = SoloSession::new(&mut gpu);
        workload
            .run(&mut session)
            .unwrap_or_else(|e| panic!("workload '{name}' failed on {core:?}: {e:?}"));
    }
    CoreRun {
        issues: gpu.drain_issue_log(),
        trace: gpu.trace().clone(),
        stats: gpu.stats(),
    }
}

/// Diffs two issue logs and panics with the first-divergence coordinates.
fn assert_logs_identical(name: &str, oracle: &[IssueRecord], event: &[IssueRecord]) {
    let n = oracle.len().min(event.len());
    for i in 0..n {
        if oracle[i] != event[i] {
            panic!(
                "{name}: cores diverge at issue slot {i}: first divergence at \
                 cycle {} sm {} warp {} — stepping issued {:?}, event issued {:?}",
                oracle[i].cycle, oracle[i].sm, oracle[i].warp, oracle[i], event[i]
            );
        }
    }
    assert_eq!(
        oracle.len(),
        event.len(),
        "{name}: logs agree for {n} records, then one core issued more \
         (stepping {} vs event {}; first extra record: {:?})",
        oracle.len(),
        event.len(),
        if oracle.len() > event.len() {
            &oracle[n]
        } else {
            &event[n]
        }
    );
}

#[test]
fn every_registry_workload_is_bit_identical_across_cores() {
    let reg = full_registry();
    let names: Vec<String> = reg.names().iter().map(|n| n.to_string()).collect();
    assert!(
        names.len() >= 17,
        "registry shrank to {} workloads — the cross-core sweep lost coverage",
        names.len()
    );
    for name in &names {
        let oracle = run_on_core(&reg, name, CoreKind::Stepping);
        let event = run_on_core(&reg, name, CoreKind::Event);
        assert!(
            !oracle.issues.is_empty(),
            "{name}: stepping oracle issued nothing — the diff would be vacuous"
        );
        assert_logs_identical(name, &oracle.issues, &event.issues);
        assert_eq!(
            oracle.trace, event.trace,
            "{name}: identical issue logs but diverging execution traces"
        );
        assert_eq!(
            oracle.stats, event.stats,
            "{name}: identical issue logs but diverging statistics"
        );
    }
}

/// The sentinel a [`PausingSession`] raises to stop the workload's host
/// program once the segment of interest has completed.
fn abort_sentinel() -> SessionError {
    SessionError::ReplicaMismatch {
        first_word: usize::MAX,
    }
}

/// A [`SoloSession`]-shaped session that either (a) pauses the device at a
/// target cycle mid-segment, snapshots it, finishes that segment and then
/// aborts the host program, or (b) runs segments normally and aborts after
/// a given segment index — so a snapshotted run and a from-zero run can be
/// truncated at exactly the same host-program point and compared.
struct PausingSession<'g> {
    gpu: &'g mut Gpu,
    buffers: Vec<DevPtr>,
    pending: bool,
    /// Snapshot mode: pause-and-snapshot at this device cycle.
    pause_at: Option<u64>,
    /// Truncation mode: abort after this sync segment completes.
    stop_segment: Option<usize>,
    segment: usize,
    snap: Option<(usize, u64, DeviceSnapshot)>,
}

impl<'g> PausingSession<'g> {
    fn snapshotting(gpu: &'g mut Gpu, pause_at: u64) -> Self {
        Self {
            gpu,
            buffers: Vec::new(),
            pending: false,
            pause_at: Some(pause_at),
            stop_segment: None,
            segment: 0,
            snap: None,
        }
    }

    fn truncating(gpu: &'g mut Gpu, stop_segment: usize) -> Self {
        Self {
            gpu,
            buffers: Vec::new(),
            pending: false,
            pause_at: None,
            stop_segment: Some(stop_segment),
            segment: 0,
            snap: None,
        }
    }
}

impl GpuSession for PausingSession<'_> {
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError> {
        let ptr = self.gpu.alloc_words(words)?;
        self.buffers.push(ptr);
        Ok(BufId::from_index(self.buffers.len() - 1))
    }

    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError> {
        self.gpu.write_u32(self.buffers[buf.index()], data);
        Ok(())
    }

    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError> {
        self.gpu.write_f32(self.buffers[buf.index()], data);
        Ok(())
    }

    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError> {
        let mut cfg = LaunchConfig::new(grid, block).shared_mem(shared_mem_bytes);
        for p in params {
            cfg = match *p {
                SParam::Buf(b) => cfg.param_u32(self.buffers[b.index()].0),
                SParam::BufOffset(b, w) => cfg.param_u32(self.buffers[b.index()].offset_words(w).0),
                SParam::U32(v) => cfg.param_u32(v),
                SParam::I32(v) => cfg.param_i32(v),
                SParam::F32(v) => cfg.param_f32(v),
            };
        }
        self.gpu
            .launch(KernelLaunch::new(program.clone(), cfg).tag(program.name().to_string()))?;
        self.pending = true;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), SessionError> {
        if !self.pending {
            return Ok(());
        }
        if self.snap.is_none() {
            if let Some(target) = self.pause_at {
                let idle = self.gpu.run_to_cycle(target)?;
                if !idle {
                    self.snap = Some((self.segment, self.gpu.cycle(), self.gpu.snapshot()));
                }
            }
        }
        self.gpu.run_to_idle()?;
        self.pending = false;
        let segment = self.segment;
        self.segment += 1;
        let done_snapshotting = self.snap.as_ref().is_some_and(|(s, _, _)| *s == segment);
        if done_snapshotting || self.stop_segment == Some(segment) {
            return Err(abort_sentinel());
        }
        Ok(())
    }

    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError> {
        self.sync()?;
        Ok(self.gpu.read_u32(self.buffers[buf.index()], words))
    }
}

/// Runs `name` under a [`PausingSession`] (either mode); the abort sentinel
/// is expected and swallowed, any other error is a real failure.
fn run_paused(
    reg: &WorkloadRegistry,
    name: &str,
    core: CoreKind,
    mode: impl FnOnce(&mut Gpu) -> PausingSession<'_>,
) -> (Option<(usize, u64, DeviceSnapshot)>, CoreRun) {
    let cfg = GpuConfig {
        core,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    gpu.set_issue_log(true);
    let workload = reg
        .build(name, Scale::Campaign)
        .unwrap_or_else(|| panic!("workload '{name}' not in registry"));
    let snap = {
        let mut session = mode(&mut gpu);
        match workload.run(&mut session) {
            Ok(_) => {}
            Err(e) if e == abort_sentinel() => {}
            Err(e) => panic!("workload '{name}' failed on {core:?}: {e:?}"),
        }
        session.snap.take()
    };
    let run = CoreRun {
        issues: gpu.drain_issue_log(),
        trace: gpu.trace().clone(),
        stats: gpu.stats(),
    };
    (snap, run)
}

#[test]
fn mid_run_snapshot_restores_bit_identically_on_both_cores() {
    // The checkpoint fence: for every registry workload, snapshot the
    // device mid-run (half the fault-free makespan), finish the snapshot's
    // segment on BOTH cores from the restored state, and require the full
    // drained issue logs — restored prefix plus simulated suffix — to be
    // bit-identical to each other and to a from-zero run truncated at the
    // same host-program point.
    let reg = full_registry();
    let names: Vec<String> = reg.names().iter().map(|n| n.to_string()).collect();
    for name in &names {
        let full = run_on_core(&reg, name, CoreKind::Event);
        let makespan = full.trace.makespan().unwrap_or(0);
        assert!(makespan > 0, "{name}: empty run makes the fence vacuous");
        let mid = makespan / 2;

        let (snap, paused) = run_paused(&reg, name, CoreKind::Event, |gpu| {
            PausingSession::snapshotting(gpu, mid)
        });
        let (segment, snap_cycle, snap) =
            snap.unwrap_or_else(|| panic!("{name}: no mid-run snapshot at cycle {mid}"));

        // From-zero oracle truncated at the same segment, on the stepping
        // core (so the comparison spans both the pause machinery and the
        // core boundary).
        let (_, truncated) = run_paused(&reg, name, CoreKind::Stepping, |gpu| {
            PausingSession::truncating(gpu, segment)
        });
        assert_logs_identical(name, &truncated.issues, &paused.issues);
        assert_eq!(
            truncated.stats, paused.stats,
            "{name}: pausing to snapshot perturbed the run"
        );

        // Restore the snapshot onto a bare device of each core and finish
        // the segment; every observable must match the truncated oracle.
        for core in [CoreKind::Stepping, CoreKind::Event] {
            let mut gpu = Gpu::new(GpuConfig {
                core,
                ..GpuConfig::default()
            });
            gpu.restore(&snap);
            gpu.run_to_idle()
                .unwrap_or_else(|e| panic!("{name}: restored run failed on {core:?}: {e:?}"));
            let issues = gpu.drain_issue_log();
            assert!(
                issues.iter().any(|r| r.cycle >= snap_cycle),
                "{name}: restored {core:?} run simulated no suffix past cycle {snap_cycle}"
            );
            assert_logs_identical(name, &truncated.issues, &issues);
            assert_eq!(
                &truncated.trace,
                gpu.trace(),
                "{name}: restored {core:?} trace diverged"
            );
            assert_eq!(
                truncated.stats,
                gpu.stats(),
                "{name}: restored {core:?} stats diverged"
            );
        }
    }
}

#[test]
fn issue_log_is_cycle_sm_ordered() {
    // The diff above is only meaningful if the drained log has a canonical
    // order; verify the (cycle, sm) sort contract on a real workload.
    let reg = full_registry();
    let run = run_on_core(&reg, "pathfinder", CoreKind::Event);
    for w in run.issues.windows(2) {
        assert!(
            (w[0].cycle, w[0].sm) <= (w[1].cycle, w[1].sm),
            "issue log out of order: {:?} before {:?}",
            w[0],
            w[1]
        );
    }
}
