//! The two-replica golden fence: the NMR generalization (majority voter,
//! replica axis, SLICE policy, per-workload FTTI budgets) must leave every
//! pre-existing two-replica campaign result **bit-identical**.
//!
//! The constants below were captured from the PR 2 engine (pairwise DCLS
//! compare, flat 8× watchdog) immediately before the NMR refactor:
//! `campaign_matrix --trials 6 --workloads iterated_fma,bfs,hotspot,nn,\
//! pathfinder --policies default,srrs,half --faults transient,permanent`
//! at the default seed. Any drift in these cells means the refactor
//! changed two-replica semantics — a regression, not a measurement.

use higpu_bench::matrix::{full_registry, run_matrix, MatrixConfig};
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::FaultSpec;

/// (workload, policy, fault, not_activated, masked, detected, undetected)
/// — captured from PR 2, 6 trials/cell, seed 0x0DD5EED.
const GOLDEN: [(&str, &str, &str, u32, u32, u32, u32); 30] = [
    ("iterated_fma", "GPGPU-SIM", "transient-sm", 6, 0, 0, 0),
    ("iterated_fma", "GPGPU-SIM", "permanent-sm", 4, 0, 0, 2),
    ("iterated_fma", "SRRS", "transient-sm", 6, 0, 0, 0),
    ("iterated_fma", "SRRS", "permanent-sm", 1, 0, 5, 0),
    ("iterated_fma", "HALF", "transient-sm", 6, 0, 0, 0),
    ("iterated_fma", "HALF", "permanent-sm", 1, 0, 5, 0),
    ("bfs", "GPGPU-SIM", "transient-sm", 5, 0, 1, 0),
    ("bfs", "GPGPU-SIM", "permanent-sm", 4, 0, 2, 0),
    ("bfs", "SRRS", "transient-sm", 6, 0, 0, 0),
    ("bfs", "SRRS", "permanent-sm", 0, 1, 5, 0),
    ("bfs", "HALF", "transient-sm", 6, 0, 0, 0),
    ("bfs", "HALF", "permanent-sm", 0, 1, 5, 0),
    ("hotspot", "GPGPU-SIM", "transient-sm", 5, 0, 1, 0),
    ("hotspot", "GPGPU-SIM", "permanent-sm", 4, 0, 0, 2),
    ("hotspot", "SRRS", "transient-sm", 5, 0, 1, 0),
    ("hotspot", "SRRS", "permanent-sm", 1, 0, 5, 0),
    ("hotspot", "HALF", "transient-sm", 5, 0, 1, 0),
    ("hotspot", "HALF", "permanent-sm", 1, 0, 5, 0),
    ("nn", "GPGPU-SIM", "transient-sm", 6, 0, 0, 0),
    ("nn", "GPGPU-SIM", "permanent-sm", 4, 0, 0, 2),
    ("nn", "SRRS", "transient-sm", 6, 0, 0, 0),
    ("nn", "SRRS", "permanent-sm", 1, 0, 5, 0),
    ("nn", "HALF", "transient-sm", 6, 0, 0, 0),
    ("nn", "HALF", "permanent-sm", 1, 0, 5, 0),
    ("pathfinder", "GPGPU-SIM", "transient-sm", 6, 0, 0, 0),
    ("pathfinder", "GPGPU-SIM", "permanent-sm", 4, 0, 1, 1),
    ("pathfinder", "SRRS", "transient-sm", 5, 0, 1, 0),
    ("pathfinder", "SRRS", "permanent-sm", 0, 0, 6, 0),
    ("pathfinder", "HALF", "transient-sm", 5, 0, 1, 0),
    ("pathfinder", "HALF", "permanent-sm", 0, 0, 6, 0),
];

#[test]
fn two_replica_campaign_cells_are_byte_identical_to_pre_nmr_engine() {
    let reg = full_registry();
    let cfg = MatrixConfig {
        trials: 6,
        workloads: ["iterated_fma", "bfs", "hotspot", "nn", "pathfinder"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        policies: vec![PolicyKind::Default, PolicyKind::Srrs, PolicyKind::Half],
        faults: vec![FaultSpec::Transient { duration: 400 }, FaultSpec::Permanent],
        replica_counts: vec![2],
        ..MatrixConfig::default()
    };
    let m = run_matrix(&reg, &cfg).expect("sweep");
    assert_eq!(m.reports.len(), GOLDEN.len());
    for (r, g) in m.reports.iter().zip(GOLDEN.iter()) {
        let got = (
            r.workload.as_str(),
            r.policy.as_str(),
            r.fault,
            r.not_activated,
            r.masked,
            r.detected,
            r.undetected,
        );
        assert_eq!(got, *g, "cell drifted from the PR 2 golden capture");
        assert_eq!(r.corrected, 0, "2-replica cells can never correct: {r:?}");
        assert_eq!(r.trials, 6);
    }
}
