//! Integration: the fault-detection guarantees across the policy × fault
//! matrix, exercised through the public crate APIs.

use higpu::core::redundancy::RedundancyMode;
use higpu::faults::campaign::{run_campaign, run_trial, CampaignConfig, FaultSpec, TrialOutcome};
use higpu::faults::model::FaultModel;
use higpu::faults::workload::IteratedFma;

fn cfg(trials: u32) -> CampaignConfig {
    CampaignConfig {
        trials,
        seed: 1234,
        ..CampaignConfig::default()
    }
}

fn workload() -> IteratedFma {
    IteratedFma {
        n: 256,
        threads_per_block: 64,
        iters: 16,
    }
}

#[test]
fn diverse_policies_never_fail_undetected() {
    for mode in [RedundancyMode::srrs_default(6), RedundancyMode::Half] {
        for fault in [
            FaultSpec::Permanent,
            FaultSpec::Droop { duration: 500 },
            FaultSpec::Transient { duration: 500 },
        ] {
            let r = run_campaign(&cfg(10), &mode, fault, &workload()).expect("campaign");
            assert_eq!(
                r.undetected, 0,
                "{} under {:?} must never fail undetected: {r:?}",
                r.policy, fault
            );
        }
    }
}

#[test]
fn uncontrolled_redundancy_fails_under_permanent_faults() {
    let r = run_campaign(
        &cfg(10),
        &RedundancyMode::uncontrolled(),
        FaultSpec::Permanent,
        &workload(),
    )
    .expect("campaign");
    assert!(
        r.undetected > 0,
        "identical placement must defeat plain redundancy: {r:?}"
    );
}

#[test]
fn specific_permanent_fault_is_detected_by_srrs_and_missed_by_default() {
    // A deterministic stuck-at fault on SM 2 from cycle 0.
    let fault = FaultModel::PermanentSm {
        sm: 2,
        from_cycle: 0,
        bit: 9,
    };
    let srrs = run_trial(
        &cfg(1),
        &RedundancyMode::srrs_default(6),
        &workload(),
        fault,
    )
    .expect("trial");
    assert_eq!(srrs, TrialOutcome::Detected, "SRRS: different SMs per copy");

    let default =
        run_trial(&cfg(1), &RedundancyMode::uncontrolled(), &workload(), fault).expect("trial");
    assert_eq!(
        default,
        TrialOutcome::UndetectedFailure,
        "default: both copies of each block land on the same SM"
    );
}

#[test]
fn scheduler_misroute_is_caught_by_the_self_test() {
    let fault = FaultModel::SchedulerMisroute {
        shift: 2,
        from_cycle: 0,
    };
    let outcome = run_trial(
        &cfg(1),
        &RedundancyMode::srrs_default(6),
        &workload(),
        fault,
    )
    .expect("trial");
    assert_eq!(
        outcome,
        TrialOutcome::Detected,
        "a functionally silent scheduler fault must not become latent"
    );
}

#[test]
fn fault_window_outside_execution_does_not_activate() {
    let fault = FaultModel::TransientSm {
        sm: 0,
        start: u64::MAX / 2,
        duration: 100,
        bit: 0,
    };
    let outcome = run_trial(
        &cfg(1),
        &RedundancyMode::srrs_default(6),
        &workload(),
        fault,
    )
    .expect("trial");
    assert_eq!(outcome, TrialOutcome::NotActivated);
}
