//! Integration: the complete safety pipeline — redundant execution →
//! diversity evidence → scheduler self-test → fault campaign → assembled
//! ASIL-D safety case — through the public APIs only.

use higpu::core::bist::scheduler_bist;
use higpu::core::diversity::{analyze, DiversityRequirements};
use higpu::core::ftti::{FttiBudget, RecoveryAnalysis};
use higpu::core::prelude::{Asil, PolicyKind};
use higpu::core::redundancy::{RedundancyMode, RedundantExecutor};
use higpu::core::safety_case::SafetyCase;
use higpu::faults::campaign::{run_campaign, CampaignConfig, FaultSpec};
use higpu::faults::workload::{IteratedFma, RedundantWorkload};
use higpu::sim::config::GpuConfig;
use higpu::sim::gpu::Gpu;

fn workload() -> IteratedFma {
    IteratedFma {
        n: 256,
        threads_per_block: 64,
        iters: 16,
    }
}

#[test]
fn full_safety_case_reaches_asil_d_under_srrs() {
    let mode = RedundancyMode::srrs_default(6);
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());

    // 1. Redundant execution with diversity evidence.
    let diversity = {
        let mut exec = RedundantExecutor::new(&mut gpu, mode.clone()).expect("mode");
        let v = workload().run(&mut exec).expect("workload");
        assert!(v.matched && v.correct);
        drop(exec);
        analyze(gpu.trace(), DiversityRequirements::default())
    };

    // 2. Periodic scheduler self-test.
    let bist = scheduler_bist(&mut gpu, mode.clone(), 12).expect("bist");

    // 3. Fault-injection campaign.
    let campaign = run_campaign(
        &CampaignConfig {
            trials: 8,
            seed: 99,
            ..CampaignConfig::default()
        },
        &mode,
        FaultSpec::Permanent,
        &workload(),
    )
    .expect("campaign");

    // 4. Assemble and evaluate the case.
    let case = SafetyCase {
        policy: mode.policy_kind().label().to_string(),
        channel_asil: Asil::B,
        diversity,
        bist: Some(bist),
        campaign: Some(campaign.evidence()),
    };
    assert!(case.supports_asil_d(), "{case}");
    let rendered = case.to_string();
    assert!(rendered.contains("ASIL-D"));
    assert!(rendered.contains("PASS"));
}

#[test]
fn uncontrolled_execution_cannot_support_asil_d() {
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    let diversity = {
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::uncontrolled()).expect("mode");
        workload().run(&mut exec).expect("workload");
        drop(exec);
        analyze(gpu.trace(), DiversityRequirements::default())
    };
    let case = SafetyCase {
        policy: PolicyKind::Default.label().to_string(),
        channel_asil: Asil::B,
        diversity,
        bist: None,
        campaign: None,
    };
    assert_eq!(
        case.achieved_asil(),
        Asil::B,
        "no decomposition credit without diversity evidence"
    );
}

#[test]
fn recovery_fits_a_realistic_ftti() {
    // Measure a real redundant round, then check the re-execution budget.
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    {
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        workload().run(&mut exec).expect("workload");
    }
    let round = gpu.cycle();
    let analysis = RecoveryAnalysis {
        round_cycles: round,
        compare_cycles: round / 50,
        recovery_rounds: 1,
    };
    // 10 ms FTTI at the paper platform's 1.4 GHz.
    let ftti = FttiBudget::from_ms(10.0, 1.4);
    assert!(
        analysis.fits(ftti),
        "worst case {} cycles exceeds FTTI {} cycles",
        analysis.worst_case_cycles(),
        ftti.cycles
    );
}

#[test]
fn policy_swap_between_kernels_matches_paper_operation() {
    // The paper selects the policy per kernel before deployment; the GPU
    // allows reconfiguration between (not during) kernels.
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    {
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("srrs");
        workload().run(&mut exec).expect("workload");
    }
    assert_eq!(gpu.policy_name(), "srrs");
    {
        let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::Half).expect("half");
        workload().run(&mut exec).expect("workload");
    }
    assert_eq!(gpu.policy_name(), "half");
    let report = analyze(gpu.trace(), DiversityRequirements::default());
    assert!(
        report.is_diverse(),
        "both phases must be diverse: {report:?}"
    );
    assert_eq!(report.groups, 2, "one group per executor phase");
}
