//! Integration: the end-to-end COTS model's mechanisms across the whole
//! benchmark suite — redundancy always costs something, the cost
//! concentrates where kernel time dominates, and the breakdown components
//! scale the way the paper's three explanations require.

mod common;

use higpu::cots::{run_baseline, run_redundant, CotsPlatform};

#[test]
fn redundancy_is_never_free_but_fixed_costs_are_not_duplicated() {
    let platform = CotsPlatform::gtx1050ti();
    for bench in common::small_suite() {
        let base = run_baseline(&platform, bench.as_ref()).expect("baseline");
        let red = run_redundant(&platform, bench.as_ref()).expect("redundant");
        assert!(
            red.total_ms() > base.total_ms(),
            "{}: redundant must cost more",
            bench.name()
        );
        assert_eq!(
            base.breakdown.fixed_ms,
            red.breakdown.fixed_ms,
            "{}: fixed host cost is incurred once in both variants",
            bench.name()
        );
        assert!(
            red.total_ms() < 2.0 * base.total_ms() + 1.0,
            "{}: with an undoubled fixed cost the ratio stays below 2x",
            bench.name()
        );
    }
}

#[test]
fn transfers_and_compares_double_under_redundancy() {
    let platform = CotsPlatform::gtx1050ti();
    for bench in common::small_suite().into_iter().take(5) {
        let base = run_baseline(&platform, bench.as_ref()).expect("baseline");
        let red = run_redundant(&platform, bench.as_ref()).expect("redundant");
        let rel = (red.breakdown.h2d_ms - 2.0 * base.breakdown.h2d_ms).abs();
        assert!(
            rel < 1e-9,
            "{}: inputs are copied exactly twice",
            bench.name()
        );
        assert_eq!(base.breakdown.compare_ms, 0.0);
        assert!(red.breakdown.compare_ms > 0.0, "{}", bench.name());
    }
}

#[test]
fn serialized_kernels_take_longer_on_the_device() {
    let platform = CotsPlatform::gtx1050ti();
    for bench in common::small_suite().into_iter().take(5) {
        let base = run_baseline(&platform, bench.as_ref()).expect("baseline");
        let red = run_redundant(&platform, bench.as_ref()).expect("redundant");
        assert!(
            red.gpu_cycles > base.gpu_cycles,
            "{}: two serialized copies occupy the GPU longer ({} vs {})",
            bench.name(),
            red.gpu_cycles,
            base.gpu_cycles
        );
    }
}

#[test]
fn overhead_correlates_with_gpu_fraction() {
    // The paper's Fig. 5 explanation: benchmarks whose baseline is
    // kernel-dominated feel redundancy the most. Verify the correlation on
    // the scaled suite: the max-ratio benchmark also has the max gpu share.
    let platform = CotsPlatform::gtx1050ti();
    let mut rows = Vec::new();
    for bench in common::small_suite() {
        let base = run_baseline(&platform, bench.as_ref()).expect("baseline");
        let red = run_redundant(&platform, bench.as_ref()).expect("redundant");
        let ratio = red.total_ms() / base.total_ms();
        let fraction = base.breakdown.gpu_ms / base.total_ms();
        rows.push((bench.name().to_string(), ratio, fraction));
    }
    // Rank correlation, robust to small-size noise: the most
    // kernel-dominated benchmark's overhead sits in the upper half of all
    // overheads, and the least kernel-dominated one's in the lower half.
    let mut ratios: Vec<f64> = rows.iter().map(|r| r.1).collect();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    let most = rows
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    let least = rows
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    assert!(
        most.1 >= median,
        "most kernel-dominated ({}) must feel redundancy at least median: {rows:?}",
        most.0
    );
    assert!(
        least.1 <= median,
        "least kernel-dominated ({}) must feel it at most median: {rows:?}",
        least.0
    );
}
