//! 5-modular redundancy on a wider (10-SM) simulated device: the replica
//! axis beyond TMR. A 3-of-5 majority settles **double** corruptions that
//! tie a TMR vote, SRRS spreads five pairwise-distinct start SMs, the
//! SLICE validator accepts five one-SM-per-replica slices, and full fault
//! campaigns at N = 5 stay clean (undetected = 0) while correcting what
//! DCLS merely detects.

use higpu_core::policy::PolicyKind;
use higpu_core::redundancy::{RParam, RedundancyMode, RedundantExecutor};
use higpu_core::vote::VoteOutcome;
use higpu_faults::campaign::{policy_mode, run_campaign, CampaignConfig, FaultSpec};
use higpu_faults::workload::IteratedFma;
use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use higpu_sim::program::Program;
use std::sync::Arc;

fn wide_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::wide_10sm();
    cfg.global_mem_bytes = 2 * 1024 * 1024;
    cfg
}

fn triple_kernel() -> Arc<Program> {
    let mut b = KernelBuilder::new("triple");
    let out = b.param(0);
    let i = b.global_tid_x();
    let addr = b.addr_w(out, i);
    let v = b.imul(i, 3u32);
    b.stg(addr, 0, v);
    b.build().expect("valid").into_shared()
}

/// The headline property: two corrupted replicas (with *different* wrong
/// values) defeat a TMR vote — no strict majority exists — but a 3-of-5
/// majority still restores the clean data in place.
#[test]
fn double_corruption_ties_tmr_but_is_outvoted_by_5mr() {
    let clean = [1u32, 2, 3, 4, 5, 6, 7, 8];

    // TMR: corrupt replicas 1 and 2 differently → 1-1-1 split per word.
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    let mut exec =
        RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_spread(6, 3)).expect("TMR");
    let buf = exec.alloc_words(8).expect("alloc");
    exec.write_u32(&buf, &clean).expect("write");
    let (p1, p2) = (buf.ptr(1), buf.ptr(2));
    exec.gpu_mut().write_u32(p1, &[91]);
    exec.gpu_mut().write_u32(p2, &[92]);
    let vote = exec.read_vote_u32(&buf, 8).expect("vote");
    assert!(
        matches!(vote.outcome, VoteOutcome::Tied { .. }),
        "no strict majority among {{clean, 91, 92}}: {:?}",
        vote.outcome
    );

    // 5MR on the wider device: the same double corruption leaves a clean
    // 3-of-5 majority on every word.
    let mut gpu = Gpu::new(wide_cfg());
    let mut exec =
        RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_spread(10, 5)).expect("5MR");
    assert_eq!(exec.replicas(), 5);
    let buf = exec.alloc_words(8).expect("alloc");
    exec.write_u32(&buf, &clean).expect("write");
    let (p1, p2) = (buf.ptr(1), buf.ptr(2));
    exec.gpu_mut().write_u32(p1, &[91]);
    exec.gpu_mut().write_u32(p2, &[92]);
    let vote = exec.read_vote_u32(&buf, 8).expect("vote");
    assert!(
        matches!(vote.outcome, VoteOutcome::Corrected { .. }),
        "3-of-5 outvotes a double fault: {:?}",
        vote.outcome
    );
    assert_eq!(vote.value, clean, "the voted data is the clean data");
}

/// The full placement stack accepts N = 5: SRRS spreads five
/// pairwise-distinct start SMs over ten SMs, and the SLICE validator cuts
/// five disjoint slices — every replica block stays in its slice.
#[test]
fn srrs_spread_and_slice_validate_five_replicas_on_ten_sms() {
    assert_eq!(
        RedundancyMode::srrs_spread(10, 5),
        RedundancyMode::Srrs {
            start_sms: vec![0, 2, 4, 6, 8]
        }
    );
    assert_eq!(
        policy_mode(PolicyKind::Slice, 5, 10).expect("slice@5"),
        RedundancyMode::slice(5)
    );

    let mut gpu = Gpu::new(wide_cfg());
    let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::slice(5)).expect("mode");
    assert_eq!(exec.replicas(), 5);
    let prog = triple_kernel();
    let out = exec.alloc_words(64).expect("alloc");
    exec.launch(&prog, 2u32, 32u32, 0, &[RParam::Buf(&out)])
        .expect("launch");
    exec.sync().expect("run");
    let vote = exec.read_vote_u32(&out, 64).expect("vote");
    assert!(vote.outcome.is_unanimous());
    assert_eq!(vote.value[7], 21);
    drop(exec);
    for rec in &gpu.trace().blocks {
        let k = gpu.trace().kernel(rec.kernel).expect("kernel");
        let replica = k.attrs.redundant.expect("tag").replica;
        let slice = k.attrs.slice.expect("slice hint");
        assert_eq!(slice.index, replica);
        assert_eq!(slice.of, 5);
        assert!(slice.contains(rec.sm, 10), "replica escaped its slice");
    }
}

/// Campaign smoke at N = 5 on the wide device: permanent single-SM faults
/// are outvoted under both the SRRS spread and the SLICE cut — coverage
/// stays total (undetected = 0) and correction replaces detection.
#[test]
fn five_replica_campaigns_correct_permanent_faults_cleanly() {
    let cfg = CampaignConfig {
        trials: 8,
        seed: 0x51CE5,
        gpu: wide_cfg(),
        ..CampaignConfig::default()
    };
    let workload = IteratedFma {
        n: 256,
        threads_per_block: 64,
        iters: 16,
    };
    for mode in [RedundancyMode::srrs_spread(10, 5), RedundancyMode::slice(5)] {
        let r = run_campaign(&cfg, &mode, FaultSpec::Permanent, &workload)
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_eq!(r.replicas, 5);
        assert_eq!(r.undetected, 0, "{mode:?}: diversity holds at N=5: {r:?}");
        assert!(
            r.corrected > 0,
            "{mode:?}: a 4-of-5 majority outvotes a stuck SM: {r:?}"
        );
        assert_eq!(
            r.detected, 0,
            "{mode:?}: nothing merely fail-stops at N=5: {r:?}"
        );
    }
}
