//! Shared helpers for the integration tests: scaled-down benchmark
//! instances that keep full-suite runs fast.

use higpu::rodinia::{
    backprop::Backprop, bfs::Bfs, cfd::Cfd, dwt2d::Dwt2d, gaussian::Gaussian, hotspot::Hotspot,
    hotspot3d::Hotspot3d, kmeans::Kmeans, leukocyte::Leukocyte, lud::Lud, myocyte::Myocyte, nn::Nn,
    nw::Nw, pathfinder::Pathfinder, srad::Srad, streamcluster::Streamcluster, Benchmark,
};

/// Every benchmark at a size that completes in well under a second.
pub fn small_suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Backprop {
            inputs: 16,
            hidden: 192,
            threads_per_block: 64,
            eta: 0.3,
        }),
        Box::new(Bfs {
            nodes: 384,
            extra_degree: 2,
            threads_per_block: 64,
            source: 0,
        }),
        Box::new(Cfd {
            cells: 256,
            steps: 8,
            dtdx: 0.1,
            threads_per_block: 64,
        }),
        Box::new(Dwt2d {
            size: 32,
            levels: 2,
        }),
        Box::new(Gaussian {
            n: 24,
            threads_per_block: 64,
        }),
        Box::new(Hotspot {
            size: 48,
            steps: 2,
            ..Hotspot::default()
        }),
        Box::new(Hotspot3d {
            nx: 16,
            nz: 4,
            steps: 2,
            ..Hotspot3d::default()
        }),
        Box::new(Kmeans {
            points: 256,
            features: 4,
            k: 3,
            iterations: 2,
            threads_per_block: 64,
        }),
        Box::new(Leukocyte { size: 24 }),
        Box::new(Lud { n: 48 }),
        Box::new(Myocyte {
            cells: 32,
            threads_per_block: 32,
            steps: 150,
            dt: 0.02,
        }),
        Box::new(Nn {
            records: 512,
            ..Nn::default()
        }),
        Box::new(Nw { n: 48, penalty: 4 }),
        Box::new(Pathfinder {
            cols: 384,
            rows: 8,
            threads_per_block: 64,
        }),
        Box::new(Srad {
            size: 24,
            iterations: 2,
            lambda: 0.5,
        }),
        Box::new(Streamcluster {
            points: 256,
            dims: 4,
            candidates: 6,
            rounds: 2,
            threads_per_block: 64,
        }),
    ]
}
