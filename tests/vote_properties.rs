//! Property-style randomized tests of the NMR majority voter, driven by
//! the offline `rand` compat shim (seeded, reproducible — no external
//! crates). The proptest-strategy versions of these properties live in
//! `tests/proptest_invariants.rs`, which compiles only once the real
//! `proptest` crate is available; this file keeps the properties enforced
//! in tier-1 today.

use higpu::core::vote::{majority_vote, VoteOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 300;

fn random_words(rng: &mut StdRng, words: usize, span: u32) -> Vec<u32> {
    (0..words).map(|_| rng.gen_range(0..span)).collect()
}

/// Corrupting strictly fewer than half of N replicas — at arbitrary words,
/// with arbitrary wrong values — is always outvoted: the vote is never
/// `Tied`, and the voted value equals the clean data.
#[test]
fn minority_corruption_is_always_outvoted() {
    let mut rng = StdRng::seed_from_u64(0xB07E5);
    for case in 0..CASES {
        let replicas = rng.gen_range(3..8usize);
        let words = rng.gen_range(1..24usize);
        let clean = random_words(&mut rng, words, 50);
        let mut copies = vec![clean.clone(); replicas];
        // Corrupt a strict minority of replicas (the shim's gen_range is
        // half-open, hence the + 1).
        let corrupt = rng.gen_range(1..(replicas - 1) / 2 + 1);
        for copy in copies.iter_mut().take(corrupt) {
            let w = rng.gen_range(0..words);
            copy[w] ^= 1 << rng.gen_range(0..32u32);
        }
        let refs: Vec<&[u32]> = copies.iter().map(Vec::as_slice).collect();
        let v = majority_vote(&refs, words);
        assert_eq!(
            v.value, clean,
            "case {case}: N={replicas}, {corrupt} corrupt minority must be outvoted"
        );
        assert!(
            !matches!(v.outcome, VoteOutcome::Tied { .. }),
            "case {case}: a strict minority can never tie: {:?}",
            v.outcome
        );
    }
}

/// The voter never invents data: every voted word is bitwise equal to that
/// word in at least one replica, and a strict-majority word always carries
/// the majority count.
#[test]
fn voted_words_always_come_from_some_replica() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let replicas = rng.gen_range(2..7usize);
        let words = rng.gen_range(1..16usize);
        // Small value span forces plenty of accidental agreement and ties.
        let copies: Vec<Vec<u32>> = (0..replicas)
            .map(|_| random_words(&mut rng, words, 4))
            .collect();
        let refs: Vec<&[u32]> = copies.iter().map(Vec::as_slice).collect();
        let v = majority_vote(&refs, words);
        for w in 0..words {
            assert!(
                copies.iter().any(|c| c[w] == v.value[w]),
                "case {case} word {w}: voted value not present in any replica"
            );
            let winners = copies.iter().filter(|c| c[w] == v.value[w]).count();
            let max_count = (0..replicas)
                .map(|i| copies.iter().filter(|c| c[w] == copies[i][w]).count())
                .max()
                .expect("non-empty");
            if max_count * 2 > replicas {
                assert_eq!(
                    winners, max_count,
                    "case {case} word {w}: strict majority must win the word"
                );
            } else {
                assert_eq!(
                    v.value[w], copies[0][w],
                    "case {case} word {w}: tie-break is replica 0"
                );
            }
        }
    }
}

/// Outcome bookkeeping is exact: `corrected_words + tied_words` equals the
/// number of disagreeing words, `first_word` is the earliest disagreement,
/// and unanimity holds iff no word disagrees.
#[test]
fn outcome_counters_match_a_direct_recount() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for case in 0..CASES {
        let replicas = rng.gen_range(2..6usize);
        let words = rng.gen_range(1..16usize);
        let copies: Vec<Vec<u32>> = (0..replicas)
            .map(|_| random_words(&mut rng, words, 3))
            .collect();
        let refs: Vec<&[u32]> = copies.iter().map(Vec::as_slice).collect();
        let v = majority_vote(&refs, words);
        let disagreeing: Vec<usize> = (0..words)
            .filter(|&w| copies.iter().any(|c| c[w] != copies[0][w]))
            .collect();
        assert_eq!(
            v.outcome.disagreeing_words(),
            disagreeing.len(),
            "case {case}: {:?}",
            v.outcome
        );
        assert_eq!(
            v.outcome.first_disagreement(),
            disagreeing.first().copied(),
            "case {case}"
        );
        assert_eq!(
            v.outcome.is_unanimous(),
            disagreeing.is_empty(),
            "case {case}"
        );
    }
}

/// With exactly two replicas the voter is the DCLS pairwise compare:
/// unanimity iff the copies are equal, otherwise a tie whose surviving
/// value is replica 0's — bit for bit.
#[test]
fn two_replica_vote_is_the_pairwise_compare() {
    let mut rng = StdRng::seed_from_u64(0xD0C5);
    for case in 0..CASES {
        let words = rng.gen_range(1..32usize);
        let a = random_words(&mut rng, words, 6);
        let b = if rng.gen_bool(0.5) {
            a.clone()
        } else {
            random_words(&mut rng, words, 6)
        };
        let v = majority_vote(&[&a, &b], words);
        assert_eq!(v.value, a, "case {case}: replica 0 always survives at N=2");
        let diffs: Vec<usize> = (0..words).filter(|&w| a[w] != b[w]).collect();
        match v.outcome {
            VoteOutcome::Unanimous => assert!(diffs.is_empty(), "case {case}"),
            VoteOutcome::Tied {
                first_word,
                tied_words,
                corrected_words,
            } => {
                assert_eq!(Some(first_word), diffs.first().copied(), "case {case}");
                assert_eq!(tied_words, diffs.len(), "case {case}");
                assert_eq!(corrected_words, 0, "case {case}: N=2 never corrects");
            }
            VoteOutcome::Corrected { .. } => {
                panic!("case {case}: two replicas can never reach a strict majority")
            }
        }
    }
}
