//! Property-based tests over the core data structures and invariants:
//! the ASIL decomposition algebra, the coalescer, the SIMT execution model
//! (against a scalar reference), the diversity analyzer and the scheduling
//! policies' structural guarantees.

use higpu::core::asil::Asil;
use higpu::core::diversity::{analyze, DiversityRequirements};
use higpu::core::redundancy::{RedundancyMode, RedundantExecutor, RParam};
use higpu::core::vote::{majority_vote, VoteOutcome};
use higpu::sim::builder::KernelBuilder;
use higpu::sim::config::GpuConfig;
use higpu::sim::gpu::Gpu;
use higpu::sim::isa::CmpOp;
use higpu::sim::kernel::{KernelLaunch, LaunchConfig};
use higpu::sim::mem::coalesce::{coalesce, SECTOR_BYTES};
use proptest::prelude::*;

fn asil_strategy() -> impl Strategy<Value = Asil> {
    prop_oneof![
        Just(Asil::QM),
        Just(Asil::A),
        Just(Asil::B),
        Just(Asil::C),
        Just(Asil::D),
    ]
}

proptest! {
    #[test]
    fn asil_composition_is_commutative_and_monotone(
        a in asil_strategy(),
        b in asil_strategy(),
        c in asil_strategy(),
    ) {
        prop_assert_eq!(a.compose_independent(b), b.compose_independent(a));
        // Adding redundancy never lowers integrity.
        prop_assert!(a.compose_independent(b) >= a);
        // Monotone in each argument.
        if b >= c {
            prop_assert!(a.compose_independent(b) >= a.compose_independent(c));
        }
    }

    #[test]
    fn asil_decompositions_recompose_to_their_target(target in asil_strategy()) {
        for (l, r) in target.decompositions() {
            prop_assert_eq!(
                l.compose_independent(r),
                target,
                "decomposition {}+{} must reach {}", l, r, target
            );
            prop_assert!(l >= r, "pairs are ordered");
        }
    }

    #[test]
    fn coalescer_bounds_and_covers(addrs in prop::collection::vec(0u32..1_000_000, 32), mask in any::<u32>()) {
        let txs = coalesce(&addrs, mask, false);
        let active = mask.count_ones() as usize;
        prop_assert!(txs.len() <= active, "at most one tx per active lane");
        if active > 0 {
            prop_assert!(!txs.is_empty(), "active lanes need at least one tx");
        }
        // Every active lane's sector is covered, every tx is aligned and unique.
        for (lane, &a) in addrs.iter().enumerate() {
            if mask & (1 << lane) != 0 {
                prop_assert!(txs.iter().any(|t| t.addr == (a / SECTOR_BYTES) * SECTOR_BYTES));
            }
        }
        let mut sorted: Vec<u32> = txs.iter().map(|t| t.addr).collect();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), txs.len(), "no duplicate transactions");
        prop_assert!(txs.iter().all(|t| t.addr % SECTOR_BYTES == 0));
    }

    #[test]
    fn simt_execution_matches_scalar_reference(
        xs in prop::collection::vec(-100i32..100, 64),
        threshold in -50i32..50,
        scale in 1i32..8,
    ) {
        // GPU kernel: y[i] = x[i] > threshold ? x[i]*scale : x[i] - 1,
        // with a divergent branch.
        let mut b = KernelBuilder::new("prop");
        let x = b.param(0);
        let y = b.param(1);
        let th = b.param(2);
        let sc = b.param(3);
        let i = b.global_tid_x();
        let xa = b.addr_w(x, i);
        let v = b.ldg(xa, 0);
        let p = b.isetp(CmpOp::Gt, v, th);
        let out = b.reg();
        b.if_else(
            p,
            |b| {
                let m = b.imul(v, sc);
                b.mov_to(out, m);
            },
            |b| {
                let m = b.isub(v, 1u32);
                b.mov_to(out, m);
            },
        );
        let ya = b.addr_w(y, i);
        b.stg(ya, 0, out);
        let prog = b.build().expect("valid").into_shared();

        let mut gpu = Gpu::new(GpuConfig::tiny_2sm());
        let xb = gpu.alloc_words(64).expect("alloc");
        let yb = gpu.alloc_words(64).expect("alloc");
        let words: Vec<u32> = xs.iter().map(|&v| v as u32).collect();
        gpu.write_u32(xb, &words);
        gpu.launch(KernelLaunch::new(
            prog,
            LaunchConfig::new(2u32, 32u32)
                .param_u32(xb.0)
                .param_u32(yb.0)
                .param_i32(threshold)
                .param_i32(scale),
        ))
        .expect("launch");
        gpu.run_to_idle().expect("run");
        let got = gpu.read_u32(yb, 64);

        for (i, &xv) in xs.iter().enumerate() {
            let expect = if xv > threshold {
                xv.wrapping_mul(scale)
            } else {
                xv.wrapping_sub(1)
            } as u32;
            prop_assert_eq!(got[i], expect, "lane {}", i);
        }
        prop_assert_eq!(gpu.stats().oob_accesses, 0u64);
    }

    #[test]
    fn srrs_diversity_holds_for_arbitrary_geometry(
        blocks in 1u32..24,
        threads in 1u32..128,
        start_a in 0usize..6,
        offset in 1usize..6,
    ) {
        let start_b = (start_a + offset) % 6;
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec = RedundantExecutor::new(
            &mut gpu,
            RedundancyMode::Srrs { start_sms: vec![start_a, start_b] },
        )
        .expect("mode");
        let mut b = KernelBuilder::new("geom");
        let out = b.param(0);
        let i = b.global_tid_x();
        let a = b.addr_w(out, i);
        let v = b.imul(i, 7u32);
        b.stg(a, 0, v);
        let prog = b.build().expect("valid").into_shared();
        let buf = exec.alloc_words(blocks * threads).expect("alloc");
        exec.launch(&prog, blocks, threads, 0, &[RParam::Buf(&buf)]).expect("launch");
        exec.sync().expect("run");
        prop_assert!(exec.read_compare_u32(&buf, (blocks * threads) as usize)
            .expect("cmp")
            .is_match());
        let report = analyze(gpu.trace(), DiversityRequirements::default());
        prop_assert!(report.is_diverse(), "{:?}", report);
        prop_assert_eq!(report.pairs_checked as u32, blocks);
        // SRRS block placement is fully deterministic: block i on (start+i)%6.
        for rec in &gpu.trace().blocks {
            let k = gpu.trace().kernel(rec.kernel).expect("kernel");
            let start = k.attrs.start_sm.expect("srrs hint");
            prop_assert_eq!(rec.sm, (start + rec.block as usize) % 6);
        }
    }

    #[test]
    fn minority_corruption_never_defeats_the_majority_voter(
        clean in prop::collection::vec(any::<u32>(), 1..24),
        replicas in 3usize..8,
        corrupt_words in prop::collection::vec((0usize..24, 0u32..32), 1..6),
    ) {
        // Corrupt a strict minority of replicas at arbitrary words/bits.
        let words = clean.len();
        let mut copies = vec![clean.clone(); replicas];
        let minority = (replicas - 1) / 2;
        for (i, &(w, bit)) in corrupt_words.iter().enumerate() {
            copies[i % minority.max(1)][w % words] ^= 1 << bit;
        }
        let refs: Vec<&[u32]> = copies.iter().map(Vec::as_slice).collect();
        let v = majority_vote(&refs, words);
        prop_assert_eq!(&v.value, &clean, "minority corruption must be outvoted");
        prop_assert!(!matches!(v.outcome, VoteOutcome::Tied { .. }));
    }

    #[test]
    fn two_replica_vote_degenerates_to_pairwise_compare(
        a in prop::collection::vec(0u32..8, 1..32),
        b in prop::collection::vec(0u32..8, 1..32),
    ) {
        let words = a.len().min(b.len());
        let v = majority_vote(&[&a[..words], &b[..words]], words);
        prop_assert_eq!(&v.value[..], &a[..words], "replica 0 survives at N=2");
        let diffs: Vec<usize> = (0..words).filter(|&w| a[w] != b[w]).collect();
        match v.outcome {
            VoteOutcome::Unanimous => prop_assert!(diffs.is_empty()),
            VoteOutcome::Tied { first_word, tied_words, corrected_words } => {
                prop_assert_eq!(Some(first_word), diffs.first().copied());
                prop_assert_eq!(tied_words, diffs.len());
                prop_assert_eq!(corrected_words, 0);
            }
            VoteOutcome::Corrected { .. } =>
                prop_assert!(false, "two replicas can never reach a strict majority"),
        }
    }

    #[test]
    fn voted_value_always_exists_in_some_replica(
        copies in prop::collection::vec(prop::collection::vec(0u32..4, 8), 2..7),
    ) {
        let words = 8usize;
        let refs: Vec<&[u32]> = copies.iter().map(Vec::as_slice).collect();
        let v = majority_vote(&refs, words);
        for w in 0..words {
            prop_assert!(
                copies.iter().any(|c| c[w] == v.value[w]),
                "voter invented a value at word {}", w
            );
        }
        prop_assert_eq!(
            v.outcome.disagreeing_words(),
            (0..words).filter(|&w| copies.iter().any(|c| c[w] != copies[0][w])).count()
        );
    }

    #[test]
    fn half_partitions_are_never_crossed(
        blocks in 1u32..24,
        threads in 1u32..128,
    ) {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::Half).expect("mode");
        let mut b = KernelBuilder::new("geom");
        let out = b.param(0);
        let i = b.global_tid_x();
        let a = b.addr_w(out, i);
        let v = b.iadd(i, 3u32);
        b.stg(a, 0, v);
        let prog = b.build().expect("valid").into_shared();
        let buf = exec.alloc_words(blocks * threads).expect("alloc");
        exec.launch(&prog, blocks, threads, 0, &[RParam::Buf(&buf)]).expect("launch");
        exec.sync().expect("run");
        for rec in &gpu.trace().blocks {
            let k = gpu.trace().kernel(rec.kernel).expect("kernel");
            let replica = k.attrs.redundant.expect("tag").replica;
            if replica == 0 {
                prop_assert!(rec.sm < 3, "lower replica crossed the partition");
            } else {
                prop_assert!(rec.sm >= 3, "upper replica crossed the partition");
            }
        }
    }
}
