//! Property test for the event-queue core's O(1) wake-up cache: after
//! every batch of mutations — block admissions, issue slots at jumping
//! cycles, kernel discards, resets — an SM's incrementally maintained
//! [`higpu_sim::sm::Sm::next_ready_at`] must equal the exhaustive scan
//! over every resident warp.
//!
//! Driven by the offline `rand` compat shim (seeded, reproducible), so the
//! property is enforced in tier-1 today; the in-crate `debug_assert!`
//! checks the same invariant on every call in debug builds, this test
//! keeps it checked in release CI too and exercises adversarial mutation
//! orders the workloads never produce.

use higpu_sim::block::{BlockDims, BlockState};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::{GpuConfig, WarpSchedPolicy};
use higpu_sim::fault::NoFaults;
use higpu_sim::kernel::{BlockFootprint, Dim3, KernelId};
use higpu_sim::mem::system::MemorySystem;
use higpu_sim::program::Program;
use higpu_sim::sm::Sm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A randomized kernel: a counted loop whose body mixes ALU, FMA, SFU,
/// memory traffic, divergence and (for multi-warp blocks) barriers, so the
/// wake-time mirror sees every latency class and the barrier sleep/wake
/// transitions.
fn random_kernel(rng: &mut StdRng, with_barrier: bool) -> Arc<Program> {
    let mut b = KernelBuilder::new("prop");
    let base = b.param(0);
    let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
    let addr = b.addr_w(base, tid);
    let iters = rng.gen_range(2..20u32);
    let body_ops = rng.gen_range(1..6u32);
    let barrier = with_barrier && rng.gen_range(0..2u32) == 1;
    let divergent = rng.gen_range(0..2u32) == 1;
    b.for_range(0u32, iters, 1u32, |b, i| {
        for op in 0..body_ops {
            match (op + iters) % 5 {
                0 => {
                    let v = b.ldg(addr, 0);
                    b.stg(addr, 0, v);
                }
                1 => {
                    let f = b.i2f(i);
                    let _ = b.ffma(f, 1.5f32, 0.5f32);
                }
                2 => {
                    let f = b.i2f(i);
                    let _ = b.fsqrt(f);
                }
                3 => {
                    let _ = b.iadd(i, 3u32);
                }
                _ => {
                    let v = b.ldg(addr, 0);
                    let _ = b.imul(v, 5u32);
                }
            }
        }
        if divergent {
            let p = b.isetp(higpu_sim::isa::CmpOp::Lt, tid, 16u32);
            b.if_(p, |b| {
                let one = b.mov(1u32);
                let _ = b.atom_add(base, 0, one);
            });
        }
        if barrier {
            b.bar();
        }
    });
    b.build().expect("valid").into_shared()
}

fn check(sm: &Sm, seed: u64, step: &str) {
    assert_eq!(
        sm.next_ready_at(),
        sm.debug_exhaustive_next_ready(),
        "incremental next_ready_at diverged from the exhaustive warp scan \
         after {step} (case seed {seed:#x})"
    );
}

#[test]
fn incremental_next_ready_matches_exhaustive_scan_after_every_mutation_batch() {
    let mut seeder = StdRng::seed_from_u64(0x0EA7_01D5);
    for _case in 0..60 {
        let seed = seeder.gen_range(0..u64::MAX);
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = if rng.gen_range(0..2u32) == 0 {
            WarpSchedPolicy::Gto
        } else {
            WarpSchedPolicy::Lrr
        };
        let cfg = GpuConfig {
            warp_scheduler: policy,
            ..GpuConfig::tiny_2sm()
        };
        let mut sm = Sm::new(0, &cfg);
        let mut memsys = MemorySystem::new(&cfg);
        let mut global = vec![0u32; 8192];
        let mut hook = NoFaults;
        let mut dirty = 0u32;
        let mut completions = Vec::new();
        let params: Arc<[u32]> = Arc::from(vec![0u32].into_boxed_slice());
        let mut now = 0u64;
        let mut next_kernel = 0u64;

        for _batch in 0..40 {
            match rng.gen_range(0..10u32) {
                // Admit a fresh block of a random kernel (if it fits).
                0 | 1 => {
                    let threads = 32 * rng.gen_range(1..3u32);
                    let warps = threads / 32;
                    let prog = random_kernel(&mut rng, warps > 1);
                    let fp = BlockFootprint {
                        threads,
                        warps,
                        registers: threads * prog.regs_per_thread() as u32,
                        shared_mem: 0,
                    };
                    if sm.fits(&fp) {
                        let ready_at = now + rng.gen_range(0..8u64);
                        let dims = BlockDims {
                            ctaid: (0, 0, 0),
                            ntid: Dim3::x(threads),
                            nctaid: Dim3::x(1),
                        };
                        let mut block = BlockState::new(
                            KernelId(next_kernel),
                            0,
                            dims,
                            prog,
                            params.clone(),
                            fp,
                            now,
                            now,
                        );
                        // Stagger the warps' first wake-ups.
                        for w in &mut block.warps {
                            w.ready_at = ready_at + rng.gen_range(0..4u64);
                        }
                        sm.admit(block);
                        next_kernel += 1;
                    }
                }
                // Discard one kernel's blocks (watchdog / quarantine path).
                2 => {
                    if next_kernel > 0 {
                        let victim = KernelId(rng.gen_range(0..next_kernel));
                        sm.discard_blocks_of(&[victim]);
                    }
                }
                // Watchdog abort: discard everything, then reset (rare).
                3 => {
                    if rng.gen_range(0..8u32) == 0 {
                        sm.discard_blocks();
                        sm.reset();
                        now = 0;
                    }
                }
                // Issue slots at (possibly jumping) cycles — the common case.
                _ => {
                    for _ in 0..rng.gen_range(1..30u32) {
                        sm.issue(
                            now,
                            &mut global,
                            &mut dirty,
                            &mut memsys,
                            &mut hook,
                            false,
                            &mut completions,
                        );
                        now += rng.gen_range(1..5u64);
                    }
                }
            }
            check(&sm, seed, "mutation batch");
        }

        // Drain: run the SM to completion; the cache must stay exact all
        // the way down to the idle fixpoint.
        while sm.next_ready_at() != u64::MAX {
            now = now.max(sm.next_ready_at());
            sm.issue(
                now,
                &mut global,
                &mut dirty,
                &mut memsys,
                &mut hook,
                false,
                &mut completions,
            );
            now += 1;
            check(&sm, seed, "drain step");
        }
        assert!(sm.is_idle(), "idle fixpoint must mean no resident blocks");
    }
}
