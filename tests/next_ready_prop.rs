//! Property test for the event-queue core's O(1) wake-up cache: after
//! every batch of mutations — block admissions, issue slots at jumping
//! cycles, kernel discards, resets — an SM's incrementally maintained
//! [`higpu_sim::sm::Sm::next_ready_at`] must equal the exhaustive scan
//! over every resident warp.
//!
//! Driven by the offline `rand` compat shim (seeded, reproducible), so the
//! property is enforced in tier-1 today; the in-crate `debug_assert!`
//! checks the same invariant on every call in debug builds, this test
//! keeps it checked in release CI too and exercises adversarial mutation
//! orders the workloads never produce.

use higpu_sim::block::{BlockDims, BlockState};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::config::{CoreKind, GpuConfig, WarpSchedPolicy};
use higpu_sim::fault::NoFaults;
use higpu_sim::gpu::Gpu;
use higpu_sim::kernel::{BlockFootprint, Dim3, KernelId, KernelLaunch, LaunchConfig};
use higpu_sim::mem::system::MemorySystem;
use higpu_sim::program::Program;
use higpu_sim::sm::Sm;
use higpu_sim::timeq::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A randomized kernel: a counted loop whose body mixes ALU, FMA, SFU,
/// memory traffic, divergence and (for multi-warp blocks) barriers, so the
/// wake-time mirror sees every latency class and the barrier sleep/wake
/// transitions.
fn random_kernel(rng: &mut StdRng, with_barrier: bool) -> Arc<Program> {
    let mut b = KernelBuilder::new("prop");
    let base = b.param(0);
    let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
    let addr = b.addr_w(base, tid);
    let iters = rng.gen_range(2..20u32);
    let body_ops = rng.gen_range(1..6u32);
    let barrier = with_barrier && rng.gen_range(0..2u32) == 1;
    let divergent = rng.gen_range(0..2u32) == 1;
    b.for_range(0u32, iters, 1u32, |b, i| {
        for op in 0..body_ops {
            match (op + iters) % 5 {
                0 => {
                    let v = b.ldg(addr, 0);
                    b.stg(addr, 0, v);
                }
                1 => {
                    let f = b.i2f(i);
                    let _ = b.ffma(f, 1.5f32, 0.5f32);
                }
                2 => {
                    let f = b.i2f(i);
                    let _ = b.fsqrt(f);
                }
                3 => {
                    let _ = b.iadd(i, 3u32);
                }
                _ => {
                    let v = b.ldg(addr, 0);
                    let _ = b.imul(v, 5u32);
                }
            }
        }
        if divergent {
            let p = b.isetp(higpu_sim::isa::CmpOp::Lt, tid, 16u32);
            b.if_(p, |b| {
                let one = b.mov(1u32);
                let _ = b.atom_add(base, 0, one);
            });
        }
        if barrier {
            b.bar();
        }
    });
    b.build().expect("valid").into_shared()
}

fn check(sm: &Sm, seed: u64, step: &str) {
    assert_eq!(
        sm.next_ready_at(),
        sm.debug_exhaustive_next_ready(),
        "incremental next_ready_at diverged from the exhaustive warp scan \
         after {step} (case seed {seed:#x})"
    );
}

#[test]
fn incremental_next_ready_matches_exhaustive_scan_after_every_mutation_batch() {
    let mut seeder = StdRng::seed_from_u64(0x0EA7_01D5);
    for _case in 0..60 {
        let seed = seeder.gen_range(0..u64::MAX);
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = if rng.gen_range(0..2u32) == 0 {
            WarpSchedPolicy::Gto
        } else {
            WarpSchedPolicy::Lrr
        };
        let cfg = GpuConfig {
            warp_scheduler: policy,
            ..GpuConfig::tiny_2sm()
        };
        let mut sm = Sm::new(0, &cfg);
        let mut memsys = MemorySystem::new(&cfg);
        let mut global = vec![0u32; 8192];
        let mut hook = NoFaults;
        let mut dirty = 0u32;
        let mut completions = Vec::new();
        let params: Arc<[u32]> = Arc::from(vec![0u32].into_boxed_slice());
        let mut now = 0u64;
        let mut next_kernel = 0u64;

        for _batch in 0..40 {
            match rng.gen_range(0..10u32) {
                // Admit a fresh block of a random kernel (if it fits).
                0 | 1 => {
                    let threads = 32 * rng.gen_range(1..3u32);
                    let warps = threads / 32;
                    let prog = random_kernel(&mut rng, warps > 1);
                    let fp = BlockFootprint {
                        threads,
                        warps,
                        registers: threads * prog.regs_per_thread() as u32,
                        shared_mem: 0,
                    };
                    if sm.fits(&fp) {
                        let ready_at = now + rng.gen_range(0..8u64);
                        let dims = BlockDims {
                            ctaid: (0, 0, 0),
                            ntid: Dim3::x(threads),
                            nctaid: Dim3::x(1),
                        };
                        let mut block = BlockState::new(
                            KernelId(next_kernel),
                            0,
                            dims,
                            prog,
                            params.clone(),
                            fp,
                            now,
                            now,
                        );
                        // Stagger the warps' first wake-ups.
                        for w in &mut block.warps {
                            w.ready_at = ready_at + rng.gen_range(0..4u64);
                        }
                        sm.admit(block);
                        next_kernel += 1;
                    }
                }
                // Discard one kernel's blocks (watchdog / quarantine path).
                2 => {
                    if next_kernel > 0 {
                        let victim = KernelId(rng.gen_range(0..next_kernel));
                        sm.discard_blocks_of(&[victim]);
                    }
                }
                // Watchdog abort: discard everything, then reset (rare).
                3 => {
                    if rng.gen_range(0..8u32) == 0 {
                        sm.discard_blocks();
                        sm.reset();
                        now = 0;
                    }
                }
                // Issue slots at (possibly jumping) cycles — the common case.
                _ => {
                    for _ in 0..rng.gen_range(1..30u32) {
                        sm.issue(
                            now,
                            &mut global,
                            &mut dirty,
                            &mut memsys,
                            &mut hook,
                            false,
                            &mut completions,
                        );
                        now += rng.gen_range(1..5u64);
                    }
                }
            }
            check(&sm, seed, "mutation batch");
        }

        // Drain: run the SM to completion; the cache must stay exact all
        // the way down to the idle fixpoint.
        while sm.next_ready_at() != u64::MAX {
            now = now.max(sm.next_ready_at());
            sm.issue(
                now,
                &mut global,
                &mut dirty,
                &mut memsys,
                &mut hook,
                false,
                &mut completions,
            );
            now += 1;
            check(&sm, seed, "drain step");
        }
        assert!(sm.is_idle(), "idle fixpoint must mean no resident blocks");
    }
}

/// Property fence for the time wheel's horizon boundary: randomized push/pop
/// sequences whose cycles cluster *at and around* `base + HORIZON` — the
/// exact off-by-one surface device snapshots made observable — must match a
/// multiset reference model entry for entry. The deltas are drawn so that
/// roughly a third of all pushes land within ±2 cycles of the boundary,
/// far denser adversarial coverage than the uniform mixed-sequence test in
/// the `timeq` unit suite.
#[test]
fn timeq_horizon_boundary_matches_reference_model() {
    let h = TimeQ::<usize>::HORIZON as u64;
    let mut seeder = StdRng::seed_from_u64(0xB0DA_C0DE);
    for _case in 0..40 {
        let seed = seeder.gen_range(0..u64::MAX);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = TimeQ::new();
        let mut reference: std::collections::BTreeMap<(u64, usize), u32> =
            std::collections::BTreeMap::new();
        let mut clock = 0u64;
        let (mut pushes, mut outstanding, mut max_outstanding) = (0u64, 0u64, 0u64);
        for _step in 0..2000 {
            if rng.gen_range(0..3u32) != 0 {
                // Cycle classes: at/around the boundary, inside the window,
                // far beyond it, and occasionally before the current clock
                // (late wake-ups land on the overflow path).
                let cycle = match rng.gen_range(0..6u32) {
                    0 | 1 => (clock + h + rng.gen_range(0..5u64)).saturating_sub(2),
                    2 => clock + h - rng.gen_range(1..4u64),
                    3 => clock + rng.gen_range(0..h),
                    4 => clock + h + rng.gen_range(0..10_000u64),
                    _ => clock.saturating_sub(rng.gen_range(0..50u64)),
                };
                let payload = rng.gen_range(0..9u64) as usize;
                q.push(cycle, payload);
                *reference.entry((cycle, payload)).or_insert(0) += 1;
                pushes += 1;
                outstanding += 1;
                max_outstanding = max_outstanding.max(outstanding);
            } else if let Some((&e, _)) = reference.iter().next() {
                assert_eq!(
                    q.peek_min(),
                    Some(e),
                    "peek diverged at the horizon boundary (case seed {seed:#x})"
                );
                let got = q.pop_min().expect("reference says non-empty");
                assert_eq!(
                    got, e,
                    "pop order diverged at the horizon boundary (case seed {seed:#x})"
                );
                let n = reference.get_mut(&e).expect("present");
                *n -= 1;
                if *n == 0 {
                    reference.remove(&e);
                }
                outstanding -= 1;
                clock = clock.max(e.0);
            }
        }
        while let Some((&e, _)) = reference.iter().next() {
            assert_eq!(
                q.pop_min(),
                Some(e),
                "drain diverged at the horizon boundary (case seed {seed:#x})"
            );
            let n = reference.get_mut(&e).expect("present");
            *n -= 1;
            if *n == 0 {
                reference.remove(&e);
            }
        }
        assert!(q.is_empty());
        // Routing diagnostics must account for every push, and the
        // overflow heap can never have held more than the queue's own
        // high-water entry count — a heap "deeper" than the entries that
        // ever coexisted would mean entries leak into it (the O(log n)
        // spill path silently hoarding work the wheel should route).
        let stats = q.stats();
        assert_eq!(
            stats.wheel_pushes + stats.overflow_pushes,
            pushes,
            "push accounting lost entries (case seed {seed:#x})"
        );
        assert!(
            stats.max_heap_depth <= max_outstanding,
            "overflow heap depth {} exceeds the {} entries that ever \
             coexisted (case seed {seed:#x})",
            stats.max_heap_depth,
            max_outstanding
        );
    }
}

/// Pending-event state must not survive `Gpu::reset`/`Gpu::force_reset`
/// observably: a device whose event queues were left populated — by a
/// completed run, or by a `run_to_cycle` pause mid-flight — must replay the
/// next workload bit-identically to a freshly constructed device. Randomizes
/// the interrupted prefix (workload shape, pause cycle, reset flavor) to
/// exercise stale wheel entries at many clock offsets.
#[test]
fn event_state_is_unobservable_across_resets() {
    fn little_kernel(iters: u32) -> Arc<Program> {
        let mut b = KernelBuilder::new("little");
        let base = b.param(0);
        let tid = b.global_tid_x();
        let addr = b.addr_w(base, tid);
        b.for_range(0u32, iters, 1u32, |b, _| {
            let v = b.ldg(addr, 0);
            let f = b.i2f(v);
            let _ = b.ffma(f, 1.25f32, 0.5f32);
            let v1 = b.iadd(v, 1u32);
            b.stg(addr, 0, v1);
        });
        b.build().expect("valid").into_shared()
    }

    fn launch_case(gpu: &mut Gpu, iters: u32, blocks: u32, delay: u64) {
        let buf = gpu.alloc_words(blocks * 32).expect("alloc");
        gpu.write_u32(buf, &vec![1u32; (blocks * 32) as usize]);
        gpu.launch(
            KernelLaunch::new(
                little_kernel(iters),
                LaunchConfig::new(blocks, 32u32).param_u32(buf.0),
            )
            .dispatch_delay(delay),
        )
        .expect("launch");
    }

    let mut seeder = StdRng::seed_from_u64(0x5EED_0F0F);
    for _case in 0..25 {
        let seed = seeder.gen_range(0..u64::MAX);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GpuConfig {
            core: CoreKind::Event,
            ..GpuConfig::tiny_2sm()
        };

        // Recycled device: run a random prefix workload, interrupt it at a
        // random cycle (or complete it), then reset.
        let mut recycled = Gpu::new(cfg.clone());
        recycled.set_issue_log(true);
        launch_case(
            &mut recycled,
            rng.gen_range(2..12u32),
            rng.gen_range(1..5u32),
            rng.gen_range(0..400u64),
        );
        if rng.gen_range(0..2u32) == 0 {
            let pause = rng.gen_range(1..3000u64);
            recycled.run_to_cycle(pause).expect("paused prefix");
            recycled.force_reset();
        } else {
            recycled.run_to_idle().expect("prefix run");
            recycled.reset().expect("idle reset");
        }

        // Identical main workload on the recycled and on a fresh device.
        let main_iters = rng.gen_range(2..12u32);
        let main_blocks = rng.gen_range(1..6u32);
        let main_delay = rng.gen_range(0..600u64);
        recycled.set_issue_log(true);
        launch_case(&mut recycled, main_iters, main_blocks, main_delay);
        recycled.run_to_idle().expect("recycled main run");

        let mut fresh = Gpu::new(cfg);
        fresh.set_issue_log(true);
        launch_case(&mut fresh, main_iters, main_blocks, main_delay);
        fresh.run_to_idle().expect("fresh main run");

        assert_eq!(
            recycled.drain_issue_log(),
            fresh.drain_issue_log(),
            "stale event state leaked across reset (case seed {seed:#x})"
        );
        assert_eq!(
            recycled.stats(),
            fresh.stats(),
            "stats diverged across reset (case seed {seed:#x})"
        );
    }
}
