//! The campaign-matrix acceptance fence: fault campaigns over 10+ Rodinia
//! workloads under 2+ scheduler policies via the unified registry, with
//! every parallel report bit-identical to the serial reference engine, and
//! per-trial golden determinism under device reset/reuse.

use higpu_bench::matrix::{full_registry, run_matrix, MatrixConfig};
use higpu_core::policy::PolicyKind;
use higpu_core::redundancy::RedundancyMode;
use higpu_faults::campaign::{
    draw_models, dry_run_makespan, run_trial, CampaignConfig, CampaignRunner, FaultSpec,
};
use higpu_faults::workload::CampaignWorkload;
use higpu_sim::gpu::Gpu;
use higpu_workloads::runner::run_solo;
use higpu_workloads::Scale;

/// The Rodinia subset swept in tier-1 (kept to the fastest campaign-scale
/// benchmarks so the bit-identity check — which runs every campaign twice —
/// stays quick; the `campaign_matrix` binary sweeps all of them).
const TIER1_WORKLOADS: [&str; 11] = [
    "backprop",
    "bfs",
    "dwt2d",
    "gaussian",
    "hotspot",
    "hotspot3D",
    "kmeans",
    "nn",
    "nw",
    "pathfinder",
    "srad",
];

#[test]
fn matrix_over_rodinia_suite_is_bit_identical_to_serial_reference() {
    let reg = full_registry();
    let cfg = MatrixConfig {
        trials: 2,
        workloads: TIER1_WORKLOADS.iter().map(|s| s.to_string()).collect(),
        policies: vec![PolicyKind::Srrs, PolicyKind::Half],
        faults: vec![FaultSpec::Permanent],
        replica_counts: vec![2], // the NMR axis has its own fence below
        check_serial: true,      // asserts parallel == serial for every cell
        ..MatrixConfig::default()
    };
    let m = run_matrix(&reg, &cfg).expect("sweep");
    assert_eq!(
        m.reports.len(),
        TIER1_WORKLOADS.len() * 2,
        "11 workloads x 2 policies x 1 fault"
    );
    assert_eq!(
        m.undetected_under_diverse_policies(),
        0,
        "diverse policies must not fail silently on any Rodinia workload: {:?}",
        m.reports
    );
    for r in &m.reports {
        assert_eq!(r.replicas, 2);
        assert_eq!(r.corrected, 0, "2 replicas can never outvote: {r:?}");
        assert_eq!(
            r.trials,
            r.not_activated + r.masked + r.detected + r.corrected + r.undetected,
            "every trial classified: {r:?}"
        );
    }
}

/// The NMR bit-identity fence: campaigns at three replicas, across six
/// Rodinia workloads under both N-capable diverse policies (SRRS and
/// SLICE), must produce parallel reports bit-identical to the serial
/// reference engine at 1, 2 and 8 workers — and TMR must correct at least
/// one permanent fault somewhere in the sweep.
#[test]
fn tmr_campaigns_are_bit_identical_to_serial_across_worker_counts() {
    use higpu_faults::campaign::{
        run_campaign_selected, run_campaign_selected_serial, CampaignSpec,
    };

    let reg = full_registry();
    let workloads = ["backprop", "bfs", "hotspot", "kmeans", "nn", "pathfinder"];
    let mut corrected_total = 0;
    for name in workloads {
        for policy in [PolicyKind::Srrs, PolicyKind::Slice] {
            let spec = CampaignSpec::new(name, policy, FaultSpec::Permanent).with_replicas(3);
            let mut cfg = CampaignConfig {
                trials: 2,
                seed: 0x0DD5EED,
                ..CampaignConfig::default()
            };
            let serial = run_campaign_selected_serial(&cfg, &reg, &spec)
                .unwrap_or_else(|e| panic!("{name}/{policy:?}: serial: {e}"));
            assert_eq!(serial.replicas, 3);
            for workers in [1usize, 2, 8] {
                cfg.workers = workers;
                let parallel = run_campaign_selected(&cfg, &reg, &spec)
                    .unwrap_or_else(|e| panic!("{name}/{policy:?}@{workers}: {e}"));
                assert_eq!(
                    parallel, serial,
                    "{name}/{policy:?}: report must not depend on workers={workers}"
                );
            }
            assert_eq!(
                serial.undetected, 0,
                "{name}/{policy:?}: diversity must hold at 3 replicas: {serial:?}"
            );
            corrected_total += serial.corrected;
        }
    }
    assert!(
        corrected_total > 0,
        "TMR must outvote at least one permanent fault across the sweep"
    );
}

/// The NMR classification distinction, end to end through the registry: a
/// deterministic permanent fault confined to one SM strikes exactly one
/// replica per block under SRRS. Two replicas can only *detect* the dissent
/// (re-execute); three replicas outvote it and classify *corrected*.
#[test]
fn single_replica_fault_is_corrected_under_tmr_but_detected_under_dcls() {
    use higpu::faults::model::FaultModel;
    use higpu_faults::campaign::TrialOutcome;

    let reg = full_registry();
    let cfg = CampaignConfig {
        trials: 1,
        seed: 7,
        ..CampaignConfig::default()
    };
    let wl =
        CampaignWorkload::from_registry(&reg, "iterated_fma", Scale::Campaign).expect("registered");
    let fault = FaultModel::PermanentSm {
        sm: 2,
        from_cycle: 0,
        bit: 9,
    };

    let dcls = CampaignRunner::new(&cfg)
        .run_trial(&RedundancyMode::srrs_default(6), &wl, fault)
        .expect("dcls trial");
    assert_eq!(
        dcls,
        TrialOutcome::Detected,
        "2 replicas see the dissent but cannot outvote it"
    );

    let tmr = CampaignRunner::new(&cfg)
        .run_trial(&RedundancyMode::srrs_spread(6, 3), &wl, fault)
        .expect("tmr trial");
    assert_eq!(
        tmr,
        TrialOutcome::Corrected,
        "under SRRS each block passes the faulty SM in exactly one replica; \
         the 2-of-3 vote restores the clean words"
    );

    // The same holds for the concurrent SLICE policy: the faulty SM lies in
    // exactly one of the three slices.
    let slice = CampaignRunner::new(&cfg)
        .run_trial(&RedundancyMode::slice(3), &wl, fault)
        .expect("slice trial");
    assert_eq!(slice, TrialOutcome::Corrected);
}

/// A *finding* of the honest (voter-observables-only) classifier, pinned
/// as documentation: a voltage droop lasting longer than the inter-replica
/// start skew can corrupt the same computation **identically in two of
/// three concurrent SLICE replicas** — the corrupted pair forms a clean
/// strict majority, outvotes the clean replica, and the deployed voter
/// continues silently with wrong data (an undetected failure). The
/// serialized SRRS mode at the same replica count disjoints the replicas
/// in time, so the identical same-draw campaign stays fully covered —
/// the paper's Sec. IV-B2 temporal-diversity argument, quantified at N=3.
/// (The pre-NMR oracle classification would have hidden this as
/// "detected"; see `TrialOutcome::UndetectedFailure`.)
#[test]
fn long_droops_can_defeat_concurrent_slice_tmr_but_not_serialized_srrs() {
    use higpu_faults::campaign::{run_campaign_selected, CampaignSpec};

    let reg = full_registry();
    let cfg = CampaignConfig {
        trials: 4,
        seed: 0x0DD5EED,
        ..CampaignConfig::default()
    };
    let droop = FaultSpec::Droop { duration: 400 };

    let slice = run_campaign_selected(
        &cfg,
        &reg,
        &CampaignSpec::new("nw", PolicyKind::Slice, droop).with_replicas(3),
    )
    .expect("slice campaign");
    assert!(
        slice.undetected > 0,
        "this droop is known to align two concurrent slice replicas: {slice:?}"
    );

    let srrs = run_campaign_selected(
        &cfg,
        &reg,
        &CampaignSpec::new("nw", PolicyKind::Srrs, droop).with_replicas(3),
    )
    .expect("srrs campaign");
    assert_eq!(
        srrs.undetected, 0,
        "serialized replicas are disjoint in time; the same draws stay covered: {srrs:?}"
    );
    assert!(
        srrs.corrected > 0,
        "and a minority-replica droop is outvoted, not just detected: {srrs:?}"
    );
}

/// The droop-aware start skew closes the `nw × droop` window: the same
/// campaign draws that defeat plain concurrent SLICE@3 (the pinned
/// vulnerability above) are fully covered under SLICE+SKEW, because
/// replica *r* is dispatched `r × (WORST_CASE_CCF_CYCLES + 1)` cycles
/// late — a droop can still corrupt several replicas, but never the *same
/// computation point* in two of them, so the corrupted values differ and
/// can never form a clean wrong majority.
#[test]
fn droop_aware_start_skew_defeats_the_slice_droop_vulnerability() {
    use higpu_faults::campaign::{run_campaign_selected, CampaignSpec};

    let reg = full_registry();
    let cfg = CampaignConfig {
        trials: 4,
        seed: 0x0DD5EED,
        ..CampaignConfig::default()
    };
    let droop = FaultSpec::Droop { duration: 400 };

    let skewed = run_campaign_selected(
        &cfg,
        &reg,
        &CampaignSpec::new("nw", PolicyKind::SliceSkewed, droop).with_replicas(3),
    )
    .expect("skewed slice campaign");
    assert_eq!(
        skewed.undetected, 0,
        "a skew larger than the droop leaves nothing silent: {skewed:?}"
    );
    assert_eq!(skewed.policy, "SLICE+SKEW");
    // The unskewed path stays vulnerable (the pinned regression above) —
    // this is the measured delta of the mitigation on the identical draws.
    let plain = run_campaign_selected(
        &cfg,
        &reg,
        &CampaignSpec::new("nw", PolicyKind::Slice, droop).with_replicas(3),
    )
    .expect("plain slice campaign");
    assert!(
        plain.undetected > 0,
        "unskewed fence still holds: {plain:?}"
    );
}

/// The N-replica uncontrolled baseline: the frontier's GPGPU-SIM column now
/// exists at N = 3. COTS placement makes no diversity guarantee — replicas
/// of the same block frequently share an SM, so a permanent single-SM
/// fault corrupts a majority (often all) of the copies identically and the
/// vote accepts the wrong value. Occupancy dynamics *occasionally* scatter
/// a block by luck (a stray correction), but undetected failures persist
/// at every replica count: more replicas without diversity buy no
/// guarantee — that is the point of the baseline column.
#[test]
fn uncontrolled_baseline_stays_defeated_at_three_replicas() {
    use higpu_faults::campaign::{run_campaign_selected, CampaignSpec};

    let reg = full_registry();
    let cfg = CampaignConfig {
        trials: 8,
        seed: 42,
        ..CampaignConfig::default()
    };
    let spec = CampaignSpec::new("iterated_fma", PolicyKind::Default, FaultSpec::Permanent)
        .with_replicas(3);
    let r = run_campaign_selected(&cfg, &reg, &spec).expect("campaign");
    assert_eq!(r.replicas, 3);
    assert_eq!(r.policy, "GPGPU-SIM");
    assert!(
        r.undetected > 0,
        "shared placement corrupts replica majorities identically: {r:?}"
    );
    // And the diverse policies stay clean on the same draws at N = 3 —
    // the baseline column exists to make this delta measurable.
    let srrs = run_campaign_selected(
        &cfg,
        &reg,
        &CampaignSpec::new("iterated_fma", PolicyKind::Srrs, FaultSpec::Permanent).with_replicas(3),
    )
    .expect("srrs campaign");
    assert_eq!(srrs.undetected, 0, "{srrs:?}");
}

/// Regression fence for the campaign watchdog: this exact configuration
/// (leukocyte × voltage-droop × SRRS at the default matrix seed) used to
/// livelock — a droop flipping the sign bit of a loop counter turned a
/// fixed 3×… pass loop into a ~2³¹-iteration runaway. The watchdog deadline
/// now classifies such trials as detected (the DCLS host's deadline
/// monitor), so the campaign completes promptly and stays bit-identical to
/// the serial reference.
#[test]
fn runaway_corrupted_loops_are_detected_by_the_watchdog_not_simulated() {
    let reg = full_registry();
    let cfg = MatrixConfig {
        trials: 3,
        workloads: vec!["leukocyte".into()],
        policies: vec![PolicyKind::Srrs],
        faults: vec![FaultSpec::Droop { duration: 400 }],
        replica_counts: vec![2],
        check_serial: true,
        ..MatrixConfig::default()
    };
    let m = run_matrix(&reg, &cfg).expect("sweep completes");
    let r = &m.reports[0];
    assert_eq!(r.trials, 3);
    assert_eq!(
        r.undetected, 0,
        "temporal diversity + deadline monitor leave nothing silent: {r:?}"
    );
}

/// Golden determinism under campaign reset/reuse for three ported Rodinia
/// workloads: a trial on a reused (reset) device must classify exactly as
/// on a fresh device, and fault-free solo outputs must be bitwise stable
/// across reset.
#[test]
fn rodinia_trials_are_deterministic_under_device_reuse() {
    let reg = full_registry();
    let cfg = CampaignConfig {
        trials: 4,
        seed: 0x60D1DE7,
        ..CampaignConfig::default()
    };
    let mode = RedundancyMode::srrs_default(cfg.gpu.num_sms);
    for name in ["bfs", "hotspot", "nn"] {
        let wl = CampaignWorkload::from_registry(&reg, name, Scale::Campaign).expect("registered");
        let window = dry_run_makespan(&cfg, &mode, &wl)
            .unwrap_or_else(|e| panic!("{name}: dry run failed: {e}"));
        let models = draw_models(&cfg, FaultSpec::Transient { duration: 400 }, window);
        let mut runner = CampaignRunner::new(&cfg);
        for (i, &model) in models.iter().enumerate() {
            let reused = runner
                .run_trial(&mode, &wl, model)
                .unwrap_or_else(|e| panic!("{name}: reused trial {i} failed: {e}"));
            let fresh = run_trial(&cfg, &mode, &wl, model)
                .unwrap_or_else(|e| panic!("{name}: fresh trial {i} failed: {e}"));
            assert_eq!(
                reused, fresh,
                "{name}: trial {i} must not see residue from earlier trials"
            );
        }

        // Fault-free golden stability across reset on one shared device.
        let workload = reg.build(name, Scale::Campaign).expect("registered");
        let mut gpu = Gpu::new(cfg.gpu.clone());
        let first = run_solo(&mut gpu, &*workload).expect("first solo run");
        gpu.reset().expect("idle");
        let second = run_solo(&mut gpu, &*workload).expect("second solo run");
        assert_eq!(first, second, "{name}: reset device must reproduce bits");
        workload.verify(&first).expect("matches CPU reference");
    }
}
