//! The campaign-matrix acceptance fence: fault campaigns over 10+ Rodinia
//! workloads under 2+ scheduler policies via the unified registry, with
//! every parallel report bit-identical to the serial reference engine, and
//! per-trial golden determinism under device reset/reuse.

use higpu_bench::matrix::{full_registry, run_matrix, MatrixConfig};
use higpu_core::policy::PolicyKind;
use higpu_core::redundancy::RedundancyMode;
use higpu_faults::campaign::{
    draw_models, dry_run_makespan, run_trial, CampaignConfig, CampaignRunner, FaultSpec,
};
use higpu_faults::workload::CampaignWorkload;
use higpu_sim::gpu::Gpu;
use higpu_workloads::runner::run_solo;
use higpu_workloads::Scale;

/// The Rodinia subset swept in tier-1 (kept to the fastest campaign-scale
/// benchmarks so the bit-identity check — which runs every campaign twice —
/// stays quick; the `campaign_matrix` binary sweeps all of them).
const TIER1_WORKLOADS: [&str; 11] = [
    "backprop",
    "bfs",
    "dwt2d",
    "gaussian",
    "hotspot",
    "hotspot3D",
    "kmeans",
    "nn",
    "nw",
    "pathfinder",
    "srad",
];

#[test]
fn matrix_over_rodinia_suite_is_bit_identical_to_serial_reference() {
    let reg = full_registry();
    let cfg = MatrixConfig {
        trials: 2,
        workloads: TIER1_WORKLOADS.iter().map(|s| s.to_string()).collect(),
        policies: vec![PolicyKind::Srrs, PolicyKind::Half],
        faults: vec![FaultSpec::Permanent],
        check_serial: true, // asserts parallel == serial for every cell
        ..MatrixConfig::default()
    };
    let m = run_matrix(&reg, &cfg).expect("sweep");
    assert_eq!(
        m.reports.len(),
        TIER1_WORKLOADS.len() * 2,
        "11 workloads x 2 policies x 1 fault"
    );
    assert_eq!(
        m.undetected_under_diverse_policies(),
        0,
        "diverse policies must not fail silently on any Rodinia workload: {:?}",
        m.reports
    );
    for r in &m.reports {
        assert_eq!(
            r.trials,
            r.not_activated + r.masked + r.detected + r.undetected,
            "every trial classified: {r:?}"
        );
    }
}

/// Regression fence for the campaign watchdog: this exact configuration
/// (leukocyte × voltage-droop × SRRS at the default matrix seed) used to
/// livelock — a droop flipping the sign bit of a loop counter turned a
/// fixed 3×… pass loop into a ~2³¹-iteration runaway. The watchdog deadline
/// now classifies such trials as detected (the DCLS host's deadline
/// monitor), so the campaign completes promptly and stays bit-identical to
/// the serial reference.
#[test]
fn runaway_corrupted_loops_are_detected_by_the_watchdog_not_simulated() {
    let reg = full_registry();
    let cfg = MatrixConfig {
        trials: 3,
        workloads: vec!["leukocyte".into()],
        policies: vec![PolicyKind::Srrs],
        faults: vec![FaultSpec::Droop { duration: 400 }],
        check_serial: true,
        ..MatrixConfig::default()
    };
    let m = run_matrix(&reg, &cfg).expect("sweep completes");
    let r = &m.reports[0];
    assert_eq!(r.trials, 3);
    assert_eq!(
        r.undetected, 0,
        "temporal diversity + deadline monitor leave nothing silent: {r:?}"
    );
}

/// Golden determinism under campaign reset/reuse for three ported Rodinia
/// workloads: a trial on a reused (reset) device must classify exactly as
/// on a fresh device, and fault-free solo outputs must be bitwise stable
/// across reset.
#[test]
fn rodinia_trials_are_deterministic_under_device_reuse() {
    let reg = full_registry();
    let cfg = CampaignConfig {
        trials: 4,
        seed: 0x60D1DE7,
        ..CampaignConfig::default()
    };
    let mode = RedundancyMode::srrs_default(cfg.gpu.num_sms);
    for name in ["bfs", "hotspot", "nn"] {
        let wl = CampaignWorkload::from_registry(&reg, name, Scale::Campaign).expect("registered");
        let window = dry_run_makespan(&cfg, &mode, &wl)
            .unwrap_or_else(|e| panic!("{name}: dry run failed: {e}"));
        let models = draw_models(&cfg, FaultSpec::Transient { duration: 400 }, window);
        let mut runner = CampaignRunner::new(&cfg);
        for (i, &model) in models.iter().enumerate() {
            let reused = runner
                .run_trial(&mode, &wl, model)
                .unwrap_or_else(|e| panic!("{name}: reused trial {i} failed: {e}"));
            let fresh = run_trial(&cfg, &mode, &wl, model)
                .unwrap_or_else(|e| panic!("{name}: fresh trial {i} failed: {e}"));
            assert_eq!(
                reused, fresh,
                "{name}: trial {i} must not see residue from earlier trials"
            );
        }

        // Fault-free golden stability across reset on one shared device.
        let workload = reg.build(name, Scale::Campaign).expect("registered");
        let mut gpu = Gpu::new(cfg.gpu.clone());
        let first = run_solo(&mut gpu, &*workload).expect("first solo run");
        gpu.reset().expect("idle");
        let second = run_solo(&mut gpu, &*workload).expect("second solo run");
        assert_eq!(first, second, "{name}: reset device must reproduce bits");
        workload.verify(&first).expect("matches CPU reference");
    }
}
