//! Registry round-trip: every registered workload must run solo, run
//! redundantly (matching, verified against its CPU reference), and survive
//! one injected fault trial — the contract that makes the registry the
//! single workload source for campaigns, the COTS model and the benches.

use higpu_core::redundancy::{RedundancyMode, RedundantExecutor};
use higpu_faults::campaign::{CampaignConfig, CampaignRunner};
use higpu_faults::model::FaultModel;
use higpu_faults::workload::CampaignWorkload;
use higpu_sim::gpu::Gpu;
use higpu_workloads::runner::{run_redundant, run_solo};
use higpu_workloads::Scale;

#[test]
fn every_registered_workload_runs_solo_redundant_and_under_fault() {
    let reg = higpu_bench::matrix::full_registry();
    assert!(
        reg.len() >= 17,
        "expected the synthetic workload plus all 16 Rodinia benchmarks, got {}",
        reg.len()
    );
    let cfg = CampaignConfig::default();
    for entry in reg.entries() {
        let name = entry.name();
        let workload = entry.build(Scale::Campaign);

        // Solo, verified against the CPU reference.
        let mut gpu = Gpu::new(cfg.gpu.clone());
        let solo = run_solo(&mut gpu, &*workload)
            .unwrap_or_else(|e| panic!("{name}: solo run failed: {e}"));
        workload
            .verify(&solo)
            .unwrap_or_else(|e| panic!("{name}: solo output wrong: {e}"));

        // Redundant under SRRS, matching and verified.
        let mut gpu = Gpu::new(cfg.gpu.clone());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(cfg.gpu.num_sms))
                .expect("mode");
        let red = run_redundant(&mut exec, &*workload)
            .unwrap_or_else(|e| panic!("{name}: redundant run failed: {e}"));
        assert!(red.matched(), "{name}: fault-free replicas must agree");
        workload
            .verify(&red.output)
            .unwrap_or_else(|e| panic!("{name}: redundant output wrong: {e}"));
        assert_eq!(red.output, solo, "{name}: solo and redundant bits differ");

        // One injected fault trial classifies without panicking or erroring.
        let campaign =
            CampaignWorkload::from_registry(&reg, name, Scale::Campaign).expect("just enumerated");
        let mut runner = CampaignRunner::new(&cfg);
        let model = FaultModel::TransientSm {
            sm: 1,
            start: 200,
            duration: 400,
            bit: 7,
        };
        runner
            .run_trial(
                &RedundancyMode::srrs_default(cfg.gpu.num_sms),
                &campaign,
                model,
            )
            .unwrap_or_else(|e| panic!("{name}: fault trial failed: {e}"));
    }
}
