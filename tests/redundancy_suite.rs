//! Integration: every benchmark, executed redundantly under both diversity
//! policies, must (a) produce outputs that bitwise match across replicas,
//! (b) match its non-redundant execution, (c) verify against the CPU
//! reference, and (d) leave a trace whose every redundant block pair is
//! spatially and temporally diverse — the paper's central guarantee,
//! demonstrated end-to-end on the whole suite.

mod common;

use higpu::core::diversity::{analyze, DiversityRequirements};
use higpu::core::redundancy::{RedundancyMode, RedundantExecutor};
use higpu::rodinia::{RedundantSession, SoloSession};
use higpu::sim::config::GpuConfig;
use higpu::sim::gpu::Gpu;

fn run_redundant(
    bench: &dyn higpu::rodinia::Benchmark,
    mode: RedundancyMode,
) -> (Vec<u32>, higpu::core::diversity::DiversityReport) {
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    let out = {
        let mut exec = RedundantExecutor::new(&mut gpu, mode).expect("mode");
        let mut session = RedundantSession::new(&mut exec);
        bench.run(&mut session).expect("redundant run")
    };
    let report = analyze(gpu.trace(), DiversityRequirements::default());
    (out, report)
}

#[test]
fn whole_suite_is_diverse_and_correct_under_srrs() {
    for bench in common::small_suite() {
        let (out, report) = run_redundant(bench.as_ref(), RedundancyMode::srrs_default(6));
        bench
            .verify(&out)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        assert!(
            report.is_diverse(),
            "{}: SRRS diversity violated: {report:?}",
            bench.name()
        );
        // SRRS serializes: every pair is disjoint in time, so the observed
        // minimum slack is meaningful evidence against transient CCFs.
        assert!(
            report.min_slack_observed.is_some(),
            "{}: no slack recorded",
            bench.name()
        );
    }
}

#[test]
fn whole_suite_is_diverse_and_correct_under_half() {
    for bench in common::small_suite() {
        let (out, report) = run_redundant(bench.as_ref(), RedundancyMode::Half);
        bench
            .verify(&out)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        assert!(
            report.is_diverse(),
            "{}: HALF diversity violated: {report:?}",
            bench.name()
        );
    }
}

#[test]
fn redundant_outputs_equal_solo_outputs() {
    for bench in common::small_suite() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let solo = {
            let mut s = SoloSession::new(&mut gpu);
            bench.run(&mut s).expect("solo run")
        };
        let (red, _) = run_redundant(bench.as_ref(), RedundancyMode::srrs_default(6));
        assert_eq!(
            solo,
            red,
            "{}: redundant execution must be functionally transparent",
            bench.name()
        );
    }
}

#[test]
fn subset_suite_is_diverse_and_correct_at_three_replicas() {
    // The NMR generalization: the same benchmarks, unchanged, at three
    // replicas under both N-capable diverse modes — serialized round-robin
    // (SRRS with spread start SMs) and concurrent SM slicing (SLICE).
    for bench in common::small_suite().into_iter().take(4) {
        for mode in [RedundancyMode::srrs_spread(6, 3), RedundancyMode::slice(3)] {
            let label = format!("{mode:?}");
            let (out, report) = run_redundant(bench.as_ref(), mode);
            bench
                .verify(&out)
                .unwrap_or_else(|e| panic!("{} under {label}: {e}", bench.name()));
            assert!(
                report.is_diverse(),
                "{} under {label}: diversity violated: {report:?}",
                bench.name()
            );
        }
    }
}

#[test]
fn suite_runs_are_deterministic() {
    for bench in common::small_suite().into_iter().take(4) {
        let (a, _) = run_redundant(bench.as_ref(), RedundancyMode::srrs_default(6));
        let (b, _) = run_redundant(bench.as_ref(), RedundancyMode::srrs_default(6));
        assert_eq!(a, b, "{}: simulation must be deterministic", bench.name());
    }
}
