//! Observability fences: telemetry must be a pure **observer**.
//!
//! The contract (`higpu_telemetry`): enabling the event ring and the
//! campaign telemetry aggregation changes *nothing* observable about the
//! simulation — every report, issue stream, trace and statistic is
//! bit-identical with telemetry on and off, at every worker count, on both
//! simulator cores, checkpointed or from zero. The aggregate telemetry
//! itself is a deterministic function of the campaign (order-independent
//! histogram merge), so it too must be bit-identical at every worker
//! count.

use higpu_bench::matrix::full_registry;
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::{
    run_campaign_selected, run_campaign_selected_with_telemetry, CampaignConfig, CampaignReport,
    CampaignSpec, CampaignTelemetry, FaultSpec,
};
use higpu_faults::checkpoint::CheckpointConfig;
use higpu_sim::config::{CoreKind, GpuConfig};
use higpu_sim::gpu::Gpu;
use higpu_sim::sm::IssueRecord;
use higpu_sim::stats::SimStats;
use higpu_sim::trace::ExecutionTrace;
use higpu_workloads::session::SoloSession;
use higpu_workloads::Scale;

/// The swept cell: small but fault-active (transient windows inside the
/// hotspot execution window activate often enough to exercise detection,
/// correction and the corrupted-terminating paths).
fn spec() -> CampaignSpec {
    CampaignSpec::new(
        "hotspot",
        PolicyKind::Srrs,
        FaultSpec::Transient { duration: 400 },
    )
}

fn campaign_cfg(core: CoreKind, workers: usize, telemetry: bool) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        trials: 24,
        workers,
        ..CampaignConfig::default()
    };
    cfg.gpu.core = core;
    cfg.gpu.telemetry_capacity = if telemetry { Some(1 << 12) } else { None };
    cfg
}

fn run_cell(core: CoreKind, workers: usize, telemetry: bool) -> CampaignReport {
    run_campaign_selected(
        &campaign_cfg(core, workers, telemetry),
        &full_registry(),
        &spec(),
    )
    .expect("campaign")
}

/// The primary fence: a telemetry-enabled campaign reports exactly what the
/// telemetry-free campaign reports — per core, per worker count.
#[test]
fn reports_bit_identical_with_telemetry_on_and_off() {
    for core in [CoreKind::Stepping, CoreKind::Event] {
        let baseline = run_cell(core, 1, false);
        for workers in [1usize, 2, 8] {
            let off = run_cell(core, workers, false);
            let on = run_cell(core, workers, true);
            assert_eq!(
                off, baseline,
                "{core:?}/{workers} workers: telemetry-off report diverged from serial baseline"
            );
            assert_eq!(
                on, baseline,
                "{core:?}/{workers} workers: enabling telemetry changed the campaign report"
            );
        }
    }
}

/// Checkpointed variant: suffix-only replay with the event ring enabled
/// still reproduces the from-zero, telemetry-free report bit-for-bit.
#[test]
fn checkpointed_reports_unaffected_by_telemetry() {
    let reg = full_registry();
    let baseline = run_cell(CoreKind::default(), 1, false);
    for telemetry in [false, true] {
        let mut cfg = campaign_cfg(CoreKind::default(), 2, telemetry);
        cfg.checkpoint = Some(CheckpointConfig::default());
        let report = run_campaign_selected(&cfg, &reg, &spec()).expect("checkpointed campaign");
        assert_eq!(
            report, baseline,
            "checkpointed campaign (telemetry={telemetry}) diverged from from-zero baseline"
        );
    }
}

/// The aggregate telemetry is itself deterministic: histograms and restore
/// counters merge order-independently, so every worker count produces the
/// same `CampaignTelemetry` — and it actually measured something.
#[test]
fn campaign_telemetry_bit_identical_at_every_worker_count() {
    let reg = full_registry();
    let mut baseline: Option<CampaignTelemetry> = None;
    for workers in [1usize, 2, 8] {
        let cfg = campaign_cfg(CoreKind::default(), workers, true);
        let (_, telemetry) =
            run_campaign_selected_with_telemetry(&cfg, &reg, &spec()).expect("campaign");
        assert_eq!(
            telemetry.makespans.count(),
            u64::from(cfg.trials),
            "{workers} workers: every trial must land one makespan sample"
        );
        match &baseline {
            None => baseline = Some(telemetry),
            Some(b) => assert_eq!(
                &telemetry, b,
                "{workers} workers: telemetry aggregate diverged from the serial aggregate"
            ),
        }
    }
}

/// One workload's complete observable device behaviour.
struct SoloRun {
    issues: Vec<IssueRecord>,
    trace: ExecutionTrace,
    stats: SimStats,
}

fn solo_run(core: CoreKind, telemetry: bool) -> SoloRun {
    let cfg = GpuConfig {
        core,
        telemetry_capacity: if telemetry { Some(1 << 12) } else { None },
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    gpu.set_issue_log(true);
    let workload = full_registry()
        .build("hotspot", Scale::Campaign)
        .expect("hotspot registered");
    {
        let mut session = SoloSession::new(&mut gpu);
        workload.run(&mut session).expect("hotspot run");
    }
    SoloRun {
        issues: gpu.drain_issue_log(),
        trace: gpu.trace().clone(),
        stats: gpu.stats(),
    }
}

/// Below the campaign layer: the device's per-instruction issue stream,
/// execution trace and statistics are bit-identical with the event ring
/// enabled and disabled, on both cores — the ring observes the simulation
/// without perturbing it.
#[test]
fn issue_stream_trace_and_stats_unaffected_by_telemetry() {
    for core in [CoreKind::Stepping, CoreKind::Event] {
        let off = solo_run(core, false);
        let on = solo_run(core, true);
        assert_eq!(
            off.issues.len(),
            on.issues.len(),
            "{core:?}: issue counts diverge with telemetry enabled"
        );
        for (i, (a, b)) in off.issues.iter().zip(on.issues.iter()).enumerate() {
            assert_eq!(
                a, b,
                "{core:?}: issue slot {i} diverges with telemetry enabled \
                 (cycle {} sm {} warp {})",
                a.cycle, a.sm, a.warp
            );
        }
        assert_eq!(off.trace, on.trace, "{core:?}: execution trace diverges");
        assert_eq!(off.stats, on.stats, "{core:?}: statistics diverge");
    }
}
