//! The frozen limp-home mission: the full diagnosis → quarantine →
//! re-plan ladder on the wide 10-SM device, with every cycle count pinned.
//!
//! A permanent datapath fault arms at the entry of frame 1 of a five-frame
//! `ad_pipeline` mission. Frame 0 completes at nominal budgets; frame 1
//! detects, exhausts its in-FTTI retries against the persistent fault,
//! fail-stops, and the targeted per-SM BIST sweep convicts the faulty SM;
//! frames 2..4 complete in degraded mode inside the *re-planned*
//! critical-path FTTI. The constants below were captured from the engine
//! that introduced the limp-home driver; any drift means diagnosis,
//! placement around the quarantined SM, or degraded re-planning changed
//! semantics — a regression, not a measurement.

use higpu_core::redundancy::RedundancyMode;
use higpu_faults::injector::{FaultInjector, InjectionCounters};
use higpu_faults::model::FaultModel;
use higpu_pipeline::{
    ad_pipeline, plan, plan_degraded, run_limp_home, run_pipeline, FrameOptions, FrameStatus,
};
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use higpu_workloads::Scale;

/// The SM the fault (and therefore the quarantine) lands on.
const FAULTY_SM: usize = 6;

/// Nominal (10-SM) serial calibration makespan of one `ad_pipeline` frame.
const NOMINAL_CALIBRATION_MAKESPAN: u64 = 260_372;

/// Frame 0's overlapped makespan at nominal budgets.
const NOMINAL_FRAME_MAKESPAN: u64 = 260_372;

/// Degraded (9-SM) serial calibration makespan after the quarantine.
/// It matches the nominal calibration: on this linear DAG the 9-SM
/// placement leaves every stage's critical path unchanged.
const DEGRADED_CALIBRATION_MAKESPAN: u64 = 260_372;

/// The re-planned critical-path end-to-end FTTI the degraded frames are
/// admitted against.
const DEGRADED_E2E_FTTI: u64 = 2_112_976;

/// Makespans of the three degraded frames (frames 2, 3, 4).
const DEGRADED_FRAME_MAKESPANS: [u64; 3] = [258_635, 258_635, 258_635];

fn cfg() -> GpuConfig {
    let mut cfg = GpuConfig::wide_10sm();
    cfg.global_mem_bytes = 2 * 1024 * 1024;
    cfg
}

#[test]
fn limp_home_mission_timeline_is_frozen() {
    let p = ad_pipeline(Scale::Campaign);
    let mode = RedundancyMode::srrs_spread(10, 2);
    let nominal = plan(&cfg(), &p, &mode).expect("calibration");
    assert_eq!(nominal.fault_free_makespan, NOMINAL_CALIBRATION_MAKESPAN);

    // Measure frame 0's fault-free end on a scratch device so the fault
    // can be armed exactly at frame 1's entry on the mission device.
    let mut probe = Gpu::new(cfg());
    let probe_run = run_pipeline(&mut probe, &p, &mode, &nominal, FrameOptions::default())
        .expect("fault-free probe frame");
    assert!(probe_run.completed());
    let frame0_end = probe_run.end_cycle;

    let mut gpu = Gpu::new(cfg());
    let counters = InjectionCounters::shared();
    gpu.set_fault_hook(Box::new(FaultInjector::new(
        FaultModel::PermanentSm {
            sm: FAULTY_SM,
            from_cycle: frame0_end + 1,
            bit: 9,
        },
        counters,
    )));
    let rep = run_limp_home(&mut gpu, &p, &mode, &nominal, FrameOptions::default(), 5)
        .expect("mission runs");

    // The ladder: nominal frame, diagnosing fail-stop, three degraded
    // frames — and exactly one BIST sweep, which convicted.
    assert_eq!(rep.frames.len(), 5);
    assert_eq!(rep.frames[0].status, FrameStatus::Nominal);
    assert!(rep.frames[0].completed());
    assert_eq!(rep.frames[0].makespan(), NOMINAL_FRAME_MAKESPAN);
    assert_eq!(rep.frames[1].status, FrameStatus::FailStopped);
    assert_eq!(
        rep.quarantined,
        vec![FAULTY_SM],
        "the faulty SM and only it"
    );
    assert_eq!(rep.diagnosis_frame, Some(1));
    assert_eq!(rep.frames_to_diagnosis(), Some(2));
    assert_eq!(rep.bist_sweeps, 1);
    assert_eq!(rep.unattributed_detections, 0);
    assert!(rep.limp_home_ok());

    // Degraded frames: completed inside the re-planned FTTI, cycle counts
    // frozen.
    let degraded = rep.degraded_plan.as_ref().expect("re-planned");
    assert_eq!(degraded.fault_free_makespan, DEGRADED_CALIBRATION_MAKESPAN);
    assert_eq!(degraded.ftti.end_to_end(), DEGRADED_E2E_FTTI);
    for (f, &makespan) in rep.frames[2..].iter().zip(&DEGRADED_FRAME_MAKESPANS) {
        assert_eq!(f.status, FrameStatus::Degraded, "frame {}", f.frame);
        assert!(f.completed());
        assert_eq!(f.e2e_budget, DEGRADED_E2E_FTTI);
        assert_eq!(f.makespan(), makespan, "frame {}", f.frame);
        assert!(f.makespan() <= f.e2e_budget, "inside the re-planned FTTI");
    }

    // Serial oracle on an equally-degraded fresh device: the degraded
    // frames' voted outputs must be bit-identical to a serial fault-free
    // frame with the same SM out of service (the quarantine removed the
    // fault from the data path entirely).
    let oracle_plan = plan_degraded(&cfg(), &[FAULTY_SM], &p, &mode).expect("degraded calibration");
    assert_eq!(
        oracle_plan.fault_free_makespan,
        DEGRADED_CALIBRATION_MAKESPAN
    );

    let mut oracle_gpu = Gpu::new(cfg());
    oracle_gpu.quarantine_sm(FAULTY_SM);
    let oracle = run_pipeline(
        &mut oracle_gpu,
        &p,
        &mode,
        &oracle_plan,
        FrameOptions::serial(),
    )
    .expect("serial oracle frame");
    assert!(oracle.completed());
    for f in &rep.frames[2..] {
        assert_eq!(
            f.run.as_ref().expect("degraded frames ran").outputs,
            oracle.outputs,
            "degraded frame {} diverges from the serial oracle",
            f.frame
        );
    }
}
