//! # higpu — High-Integrity GPU designs for critical real-time automotive systems
//!
//! A from-scratch Rust reproduction of *High-Integrity GPU Designs for
//! Critical Real-Time Automotive Systems* (Alcaide, Kosmidis, Hernandez,
//! Abella — DATE 2019): lightweight GPU kernel-scheduler modifications
//! (**SRRS** and **HALF**) that make diverse redundant execution — and with
//! it ISO 26262 ASIL-D compliance via ASIL decomposition — achievable on
//! COTS-class GPUs.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`sim`] — a cycle-level SIMT GPU simulator with a pluggable global
//!   kernel scheduler (the GPGPU-Sim-class substrate);
//! * [`core`] — the paper's contribution: the SRRS/HALF policies, the DCLS
//!   redundant-offload protocol, diversity verification, ASIL decomposition,
//!   FTTI accounting and the scheduler self-test;
//! * [`faults`] — fault models and injection campaigns quantifying
//!   detection coverage;
//! * [`rodinia`] — the Rodinia-style benchmarks of the paper's evaluation;
//! * [`workloads`] — the unified workload/session layer every benchmark,
//!   campaign and bench runs through;
//! * [`pipeline`] — the real-time multi-kernel pipeline subsystem: stage
//!   DAGs with per-stage deadline budgets, an end-to-end FTTI, and
//!   in-FTTI re-execution recovery (fail-operational vs fail-stop);
//! * [`cots`] — the end-to-end COTS platform model (Fig. 5).
//!
//! # Quickstart
//!
//! ```
//! use higpu::core::prelude::*;
//! use higpu::sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 6-SM GPU, as in the paper's evaluation.
//! let mut gpu = Gpu::new(GpuConfig::paper_6sm());
//!
//! // Offload a kernel redundantly under SRRS with start SMs 0 and 3.
//! let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6))?;
//! let mut b = KernelBuilder::new("axpy");
//! let buf = b.param(0);
//! let i = b.global_tid_x();
//! let addr = b.addr_w(buf, i);
//! let v = b.ldg(addr, 0);
//! let r = b.ffma(v, 2.0f32, 1.0f32);
//! b.stg(addr, 0, r);
//! let prog = b.build()?.into_shared();
//!
//! let data = exec.alloc_words(128)?;
//! exec.write_f32(&data, &vec![1.0; 128])?;
//! exec.launch(&prog, 4u32, 32u32, 0, &[RParam::Buf(&data)])?;
//! exec.sync()?;
//!
//! // The DCLS host compares both copies...
//! assert!(exec.read_compare_f32(&data, 128)?.is_match());
//! // ...and the trace proves spatial + temporal diversity.
//! drop(exec);
//! let report = analyze(gpu.trace(), DiversityRequirements::default());
//! assert!(report.is_diverse());
//! # Ok(())
//! # }
//! ```

pub use higpu_core as core;
pub use higpu_cots as cots;
pub use higpu_faults as faults;
pub use higpu_pipeline as pipeline;
pub use higpu_rodinia as rodinia;
pub use higpu_sim as sim;
pub use higpu_telemetry as telemetry;
pub use higpu_workloads as workloads;
