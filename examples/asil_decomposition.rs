//! ASIL decomposition explorer (paper Fig. 1): evaluates the integrity
//! level achieved by the architectures the paper contrasts — heterogeneous
//! replication, monitor/actuator splits, DCLS, and the paper's diverse
//! redundant GPU execution.
//!
//! Run with: `cargo run --release --example asil_decomposition`

use higpu::core::prelude::*;

fn single(name: &str, asil: Asil) -> Architecture {
    Architecture::Single(Element::new(name, asil))
}

fn main() {
    println!("ISO 26262 single-step decompositions:");
    for target in [Asil::D, Asil::C, Asil::B, Asil::A] {
        let opts: Vec<String> = target
            .decompositions()
            .iter()
            .map(|(a, b)| format!("{a}+{b}"))
            .collect();
        println!("  {target}  <=  {}", opts.join("  |  "));
    }

    println!("\nArchitectures:");
    let cases: Vec<(&str, Architecture)> = vec![
        (
            "Fig.1 left: independent ASIL-A + ASIL-B sensors",
            Architecture::Redundant {
                a: Box::new(single("camera path", Asil::A)),
                b: Box::new(single("lidar path", Asil::B)),
                independence: Independence::Heterogeneous,
            },
        ),
        (
            "Fig.1 mid: DCLS microcontroller (B + B, staggered lockstep)",
            Architecture::Redundant {
                a: Box::new(single("core A", Asil::B)),
                b: Box::new(single("core B", Asil::B)),
                independence: Independence::DiverseLockstep,
            },
        ),
        (
            "Fig.1 right: ASIL-D monitor + QM operation (safe state exists)",
            Architecture::MonitorActuator {
                monitor: Box::new(single("steering-lock monitor", Asil::D)),
                operation: Box::new(single("steering-lock actuator", Asil::QM)),
            },
        ),
        (
            "COTS GPU, plain redundancy (no diversity evidence)",
            Architecture::Redundant {
                a: Box::new(single("GPU kernel copy 1", Asil::B)),
                b: Box::new(single("GPU kernel copy 2", Asil::B)),
                independence: Independence::None,
            },
        ),
        (
            "This paper: GPU redundancy under SRRS/HALF (diversity verified)",
            Architecture::Redundant {
                a: Box::new(single("GPU kernel copy 1", Asil::B)),
                b: Box::new(single("GPU kernel copy 2", Asil::B)),
                independence: Independence::DiverseGpuScheduling {
                    pairs_checked: 256,
                    violations: 0,
                },
            },
        ),
    ];
    for (name, arch) in cases {
        println!("  {:<62} -> {}", name, arch.achieved_asil());
    }
}
