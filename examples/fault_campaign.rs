//! Fault-injection campaign: quantifies how diverse scheduling turns
//! redundancy into detection. Injects permanent SM faults and voltage
//! droops under the uncontrolled baseline and under SRRS, and prints the
//! detection outcomes.
//!
//! Run with: `cargo run --release --example fault_campaign`

use higpu::core::prelude::*;
use higpu::core::safety_case::SafetyCase;
use higpu::faults::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CampaignConfig {
        trials: 25,
        seed: 0xAB1E,
        ..CampaignConfig::default()
    };
    let workload = IteratedFma {
        n: 512,
        threads_per_block: 64,
        iters: 24,
    };

    println!("policy        fault          detected  masked  UNDETECTED");
    let mut srrs_evidence = None;
    for mode in [
        RedundancyMode::uncontrolled(),
        RedundancyMode::srrs_default(6),
    ] {
        for fault in [FaultSpec::Permanent, FaultSpec::Droop { duration: 400 }] {
            let r = run_campaign(&cfg, &mode, fault, &workload)?;
            println!(
                "{:<13} {:<14} {:<9} {:<7} {}",
                r.policy, r.fault, r.detected, r.masked, r.undetected
            );
            if mode.policy_kind() == PolicyKind::Srrs && fault == FaultSpec::Permanent {
                srrs_evidence = Some(r.evidence());
            }
        }
    }

    // Assemble the safety case for the SRRS configuration.
    let mut gpu = higpu::sim::gpu::Gpu::new(cfg.gpu.clone());
    let diversity = {
        let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6))?;
        workload.run(&mut exec)?;
        drop(exec);
        analyze(gpu.trace(), DiversityRequirements::default())
    };
    let bist = scheduler_bist(&mut gpu, RedundancyMode::srrs_default(6), 12)?;
    let case = SafetyCase {
        policy: "srrs".into(),
        channel_asil: Asil::B,
        diversity,
        bist: Some(bist),
        campaign: srrs_evidence,
    };
    println!("\n{case}");
    assert!(case.supports_asil_d());
    Ok(())
}
