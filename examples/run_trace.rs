//! Records a Chrome-trace timeline of one overlapped `sensor_fusion` frame
//! with a transient SM fault, and writes it to `run_trace.json` — open it
//! in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The viewer shows one track per pipeline stage (camera ∥ radar branches
//! overlapping on disjoint SM partitions, then fuse → track), one track per
//! SM with its block-dispatch/retire spans, and a device track with kernel
//! launch/complete and fault instants. Timestamps are **simulated cycles**
//! (the axis labelled "µs" reads as cycles); everything in the file is
//! simulated state, so the trace is fully deterministic.
//!
//! Run with: `cargo run --release --example run_trace`

use higpu::faults::injector::{FaultInjector, InjectionCounters};
use higpu::faults::model::FaultModel;
use higpu::pipeline::{plan, run_pipeline, sensor_fusion, trace_export, FrameOptions};
use higpu::sim::config::GpuConfig;
use higpu::sim::gpu::Gpu;
use higpu::telemetry::{ChromeTrace, EventKind};
use higpu::workloads::Scale;
use higpu_core::redundancy::RedundancyMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = sensor_fusion(Scale::Campaign);
    let mut gpu_cfg = GpuConfig::paper_6sm();
    gpu_cfg.global_mem_bytes = 2 * 1024 * 1024;
    // Enabling the event ring is the only observability switch: with
    // `telemetry_capacity: None` (the default) every hook is a no-op branch
    // and the run is bit-identical — the fence `tests/telemetry_fence.rs`
    // holds the simulator to that.
    gpu_cfg.telemetry_capacity = Some(1 << 16);
    let mode = RedundancyMode::srrs_default(gpu_cfg.num_sms);

    // Calibrate the deadline plan (fault-free serial frame), then run one
    // overlapped frame with a transient fault armed inside the frame: the
    // DCLS vote detects the corrupted stage and the executor re-executes it
    // within the critical-path FTTI slack. A 400-cycle window over one SM
    // only activates if that SM produces values then, so scan a small
    // deterministic grid of arm points and keep the first frame whose fault
    // bites (the fallback — every window idle — still records a frame).
    let frame_plan = plan(&gpu_cfg, &pipeline, &mode)?;
    let makespan = frame_plan.stage_makespans[0];
    let mut recorded = None;
    'scan: for numer in [2u64, 1, 3] {
        for sm in 0..gpu_cfg.num_sms {
            let fault = FaultModel::TransientSm {
                sm,
                start: (makespan * numer) / 4,
                duration: 400,
                bit: 12,
            };
            let counters = InjectionCounters::shared();
            let mut gpu = Gpu::new(gpu_cfg.clone());
            gpu.set_fault_hook(Box::new(FaultInjector::new(fault, counters.clone())));
            gpu.record_event(EventKind::FaultArmed, fault.arm_cycle(), sm as u32, 0, 12);
            let run = run_pipeline(
                &mut gpu,
                &pipeline,
                &mode,
                &frame_plan,
                FrameOptions::overlapped(),
            )?;
            let activated = counters.activated();
            recorded = Some((gpu, run, fault));
            if activated {
                break 'scan;
            }
        }
    }
    let (mut gpu, run, fault) = recorded.expect("scan ran at least one frame");
    let FaultModel::TransientSm { sm, start, .. } = fault else {
        unreachable!()
    };
    println!(
        "fault: transient on SM {sm}, window {start}..{} \n",
        start + 400
    );

    let mut trace = ChromeTrace::new();
    trace_export::export_frame(
        &mut trace,
        1,
        "sensor_fusion frame (overlapped, transient fault)",
        &mut gpu,
        &run,
    );
    std::fs::write("run_trace.json", trace.to_json())?;

    for t in &run.timings {
        println!(
            "stage {} ({:12}) cycles {:>6}..{:>6}  attempts {}  status {:?}",
            t.stage, t.name, t.start, t.end, t.attempts, t.status
        );
    }
    println!(
        "\nframe end cycle {} — wrote run_trace.json ({} deadline miss)",
        run.end_cycle,
        if run.deadline_miss { "WITH" } else { "no" }
    );
    Ok(())
}
