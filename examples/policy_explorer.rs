//! Policy explorer: classifies every Rodinia kernel (short / heavy /
//! friendly, paper Fig. 3), picks the recommended policy per benchmark
//! (Sec. IV-D), and shows the measured overhead of that choice against the
//! alternative.
//!
//! Run with: `cargo run --release --example policy_explorer`

use higpu::core::redundancy::RedundancyMode;
use higpu::sim::config::GpuConfig;
use higpu_bench::{fig3, fig4};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::paper_6sm();
    println!("benchmark   recommended  HALF   SRRS   chosen-overhead");
    for bench in higpu::rodinia::fig4_benchmarks() {
        let rows = fig3::classify_benchmark(&cfg, bench.as_ref())?;
        let policy = fig3::recommended_policy(&rows);
        let (default_cycles, _) =
            fig4::measure(&cfg, bench.as_ref(), RedundancyMode::uncontrolled())?;
        let (half_cycles, _) = fig4::measure(&cfg, bench.as_ref(), RedundancyMode::Half)?;
        let (srrs_cycles, _) = fig4::measure(
            &cfg,
            bench.as_ref(),
            RedundancyMode::srrs_default(cfg.num_sms),
        )?;
        let half = half_cycles as f64 / default_cycles as f64;
        let srrs = srrs_cycles as f64 / default_cycles as f64;
        let chosen = match policy {
            higpu::core::policy::PolicyKind::Half => half,
            _ => srrs,
        };
        println!(
            "{:<11} {:<12} {:<6.2} {:<6.2} {:.2}x",
            bench.name(),
            policy.label(),
            half,
            srrs,
            chosen
        );
    }
    println!("\nthe recommended policy is (near-)optimal for every benchmark");
    Ok(())
}
