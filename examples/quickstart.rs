//! Quickstart: run one computation redundantly under SRRS, verify the
//! outputs agree, and print the diversity evidence.
//!
//! Run with: `cargo run --release --example quickstart`

use higpu::core::prelude::*;
use higpu::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 6-SM GPU.
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6))?;

    // A small kernel: out[i] = 2*x[i] + 1.
    let mut b = KernelBuilder::new("affine");
    let x = b.param(0);
    let out = b.param(1);
    let n = b.param(2);
    let i = b.global_tid_x();
    let in_range = b.isetp(CmpOp::Lt, i, n);
    b.if_(in_range, |b| {
        let xa = b.addr_w(x, i);
        let oa = b.addr_w(out, i);
        let v = b.ldg(xa, 0);
        let r = b.ffma(v, 2.0f32, 1.0f32);
        b.stg(oa, 0, r);
    });
    let prog = b.build()?.into_shared();

    // The five-step DCLS protocol: allocate x2, copy x2, launch x2,
    // collect x2, compare.
    let n = 1024u32;
    let input: Vec<f32> = (0..n).map(|v| v as f32 * 0.5).collect();
    let x_buf = exec.alloc_words(n)?;
    let out_buf = exec.alloc_words(n)?;
    exec.write_f32(&x_buf, &input)?;
    exec.launch(
        &prog,
        n.div_ceil(256),
        256u32,
        0,
        &[RParam::Buf(&x_buf), RParam::Buf(&out_buf), RParam::U32(n)],
    )?;
    exec.sync()?;

    match exec.read_compare_f32(&out_buf, n as usize)? {
        Comparison::Match(out) => {
            println!(
                "replicas agree; out[10] = {} (expected {})",
                out[10],
                2.0 * 5.0 + 1.0
            );
        }
        Comparison::Mismatch { first_word, .. } => {
            println!("FAULT DETECTED at word {first_word} — re-execution required");
        }
    }

    // The execution trace is the safety evidence: every redundant block pair
    // ran on different SMs at different times.
    drop(exec);
    let report = analyze(gpu.trace(), DiversityRequirements::default());
    println!(
        "diversity: {} pairs checked, {} violations, min slack {:?} cycles",
        report.pairs_checked,
        report.violations.len(),
        report.min_slack_observed
    );
    assert!(report.is_diverse());

    // Which makes two ASIL-B channels compose to ASIL-D (Fig. 1).
    let achieved = Architecture::Redundant {
        a: Box::new(Architecture::Single(Element::new("GPU exec A", Asil::B))),
        b: Box::new(Architecture::Single(Element::new("GPU exec B", Asil::B))),
        independence: report.independence(),
    }
    .achieved_asil();
    println!("achieved integrity level: {achieved}");
    Ok(())
}
