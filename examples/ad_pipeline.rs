//! An autonomous-driving-style periodic pipeline: every frame, an object
//! detection proxy (the leukocyte GICOV kernel stands in for the
//! convolutional detection stage) is offloaded redundantly; the DCLS host
//! compares outputs, and on an injected fault re-executes within the FTTI
//! budget — the fail-operational pattern of paper Sec. IV-A.
//!
//! Run with: `cargo run --release --example ad_pipeline`

use higpu::core::prelude::*;
use higpu::faults::prelude::*;
use higpu::rodinia::harness::RedundantSession;
use higpu::rodinia::leukocyte::Leukocyte;
use higpu::rodinia::Benchmark;
use higpu::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = 5u64;
    let detector = Leukocyte { size: 48 };
    // 10 ms FTTI at 1.4 GHz.
    let ftti = FttiBudget::from_ms(10.0, 1.4);

    println!("frame  cycles    status      ftti_ok");
    for frame in 0..frames {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        // Inject a transient fault into frame 2 to exercise recovery.
        if frame == 2 {
            let counters = InjectionCounters::shared();
            gpu.set_fault_hook(Box::new(FaultInjector::new(
                FaultModel::PermanentSm {
                    sm: 1,
                    from_cycle: 0,
                    bit: 12,
                },
                counters,
            )));
        }

        let (status, cycles) = {
            let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6))?;
            let mut session = RedundantSession::new(&mut exec);
            match detector.run(&mut session) {
                Ok(_) => ("ok", gpu.cycle()),
                Err(higpu::rodinia::SessionError::ReplicaMismatch { .. }) => {
                    ("detected", gpu.cycle())
                }
                Err(e) => return Err(e.into()),
            }
        };

        // Recovery: re-execute the frame fault-free (the transient passed).
        let total_cycles = if status == "detected" {
            let mut gpu2 = Gpu::new(GpuConfig::paper_6sm());
            let mut exec = RedundantExecutor::new(&mut gpu2, RedundancyMode::srrs_default(6))?;
            let mut session = RedundantSession::new(&mut exec);
            detector.run(&mut session)?;
            cycles + gpu2.cycle()
        } else {
            cycles
        };

        let analysis = RecoveryAnalysis {
            round_cycles: total_cycles,
            compare_cycles: 10_000,
            recovery_rounds: u32::from(status == "detected"),
        };
        println!(
            "{frame:<5}  {total_cycles:<8}  {status:<10}  {}",
            analysis.fits(ftti)
        );
        assert!(analysis.fits(ftti), "frame must complete within the FTTI");
    }
    println!(
        "\nall frames fail-operational within the {} ms FTTI",
        ftti.to_ms(1.4)
    );
    Ok(())
}
