//! The autonomous-driving pipeline, frame by frame: SRAD perception → BFS
//! detection → pathfinder planning, executed redundantly under SRRS with
//! per-stage deadline budgets and an end-to-end FTTI derived from them.
//!
//! A transient fault is injected into frame 2; the DCLS vote detects the
//! corrupted stage, the executor re-executes it with fresh replicas inside
//! the remaining FTTI slack, and the frame completes *fail-operational*
//! (`Recovered`) — the recovery pattern of paper Sec. IV-A lifted from one
//! kernel to a whole task graph.
//!
//! Run with: `cargo run --release --example ad_pipeline`

use higpu::core::redundancy::RedundancyMode;
use higpu::faults::injector::{FaultInjector, InjectionCounters};
use higpu::faults::model::FaultModel;
use higpu::pipeline::{ad_pipeline, plan, run_pipeline, FrameOptions, StageStatus};
use higpu::sim::config::GpuConfig;
use higpu::sim::gpu::Gpu;
use higpu::workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = ad_pipeline(Scale::Campaign);
    let mode = RedundancyMode::srrs_default(6);
    let mut gpu_cfg = GpuConfig::paper_6sm();
    gpu_cfg.global_mem_bytes = 2 * 1024 * 1024;

    // Calibrate the deadline plan once (fault-free frame): per-stage
    // budgets from each stage's declared FTTI multiplier, end-to-end FTTI
    // as the critical path of the stage DAG.
    let frame_plan = plan(&gpu_cfg, &pipeline, &mode)?;
    println!(
        "plan: stages {:?} cycles, budgets {:?}, critical-path FTTI {} cycles \
         (per-stage sum {}), frame traffic {} bytes\n",
        frame_plan.stage_makespans,
        frame_plan.ftti.stage_budgets,
        frame_plan.ftti.end_to_end(),
        frame_plan.ftti.serial_sum(),
        frame_plan.frame_bandwidth_bytes,
    );

    println!("frame  cycles    retries  status      per-stage");
    for frame in 0..5u64 {
        let mut gpu = Gpu::new(gpu_cfg.clone());
        if frame == 2 {
            // A 400-cycle voltage droop in the middle of the detect
            // stage's window: under SRRS the replicas are serialized, so
            // the droop corrupts exactly one copy — detected by the vote,
            // then repaired by in-FTTI re-execution.
            let counters = InjectionCounters::shared();
            gpu.set_fault_hook(Box::new(FaultInjector::new(
                FaultModel::VoltageDroop {
                    start: frame_plan.stage_makespans[0] + 8_000,
                    duration: 400,
                    bit: 12,
                },
                counters,
            )));
        }

        let run = run_pipeline(
            &mut gpu,
            &pipeline,
            &mode,
            &frame_plan,
            FrameOptions::overlapped(),
        )?;
        let stages: Vec<String> = run
            .timings
            .iter()
            .map(|t| {
                format!(
                    "{}={}",
                    t.name,
                    match t.status {
                        StageStatus::Clean => "ok",
                        StageStatus::Corrected => "corrected",
                        StageStatus::Recovered => "RECOVERED",
                        StageStatus::FailStop(_) => "FAIL-STOP",
                    }
                )
            })
            .collect();
        let status = if run.recovered_stages() > 0 {
            "recovered"
        } else if run.completed() {
            "ok"
        } else {
            "fail-stop"
        };
        println!(
            "{frame:<5}  {:<8}  {:<7}  {status:<10}  {}",
            run.end_cycle,
            run.retries_attempted,
            stages.join("  ")
        );
        assert!(
            run.completed(),
            "every frame must stay fail-operational within the FTTI"
        );
        assert!(!run.deadline_miss);
        // The delivered plan matches the golden dataflow even on the
        // faulty frame — that is what Recovered means.
        let sink = pipeline.sink();
        assert_eq!(
            run.outputs[sink],
            pipeline.reference_outputs()[sink],
            "frame {frame}: delivered plan must be correct"
        );
    }
    println!("\nall frames fail-operational within the end-to-end FTTI");
    Ok(())
}
