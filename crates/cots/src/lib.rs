//! # higpu-cots — end-to-end COTS GPU platform model
//!
//! Models the paper's real-hardware experiment (Fig. 5): end-to-end
//! execution time of Rodinia benchmarks on a desktop CPU + GTX 1050 Ti
//! system, comparing plain execution against redundant serialized execution
//! (double copies, double serialized kernels, DCLS host comparison).
//!
//! Kernel durations come from the `higpu-sim` simulator (the COTS card has
//! the same SM count as the simulated GPU, as in the paper); host API-call
//! overheads, PCIe transfers and comparison throughput are analytic
//! constants in [`platform::CotsPlatform`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod endtoend;
pub mod meter;
pub mod platform;

pub use endtoend::{
    run_baseline, run_redundant, run_redundant_nmr, EndToEndResult, TimeBreakdown, Variant,
};
pub use meter::{HostMeter, MeteredSession};
pub use platform::CotsPlatform;
