//! End-to-end execution time modelling (the paper's Fig. 5 experiment).
//!
//! `Baseline` runs a benchmark once, non-redundantly. `RedundantSerialized`
//! mimics the paper's COTS implementation of SRRS: every kernel is executed
//! twice with serialization (`cudaDeviceSynchronize` between replicas on the
//! real card; the SRRS policy on the simulator — identical timing
//! behaviour, see paper Sec. V-B), inputs are transferred twice, outputs are
//! transferred back twice and compared on the DCLS host.

use crate::meter::{HostMeter, MeteredSession};
use crate::platform::CotsPlatform;
use higpu_core::redundancy::{RedundancyMode, RedundantExecutor};
use higpu_sim::gpu::Gpu;
use higpu_workloads::{
    RedundantSession, Scale, SessionError, SoloSession, Workload as Benchmark, WorkloadRegistry,
};

/// Decomposition of one end-to-end run into cost sources (milliseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Fixed host cost (context init, input preparation) — never duplicated.
    pub fixed_ms: f64,
    /// Device allocations.
    pub alloc_ms: f64,
    /// Host→device transfers.
    pub h2d_ms: f64,
    /// Device→host transfers.
    pub d2h_ms: f64,
    /// Copy/sync API-call overheads.
    pub api_ms: f64,
    /// GPU time (kernels + serial launch dispatch, from the simulator).
    pub gpu_ms: f64,
    /// DCLS host output comparison.
    pub compare_ms: f64,
}

impl TimeBreakdown {
    /// Total end-to-end time.
    pub fn total_ms(&self) -> f64 {
        self.fixed_ms
            + self.alloc_ms
            + self.h2d_ms
            + self.d2h_ms
            + self.api_ms
            + self.gpu_ms
            + self.compare_ms
    }
}

/// Result of one end-to-end measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct EndToEndResult {
    /// Benchmark name.
    pub benchmark: String,
    /// `Baseline` or `RedundantSerialized`.
    pub variant: Variant,
    /// Cost breakdown.
    pub breakdown: TimeBreakdown,
    /// Host traffic counters (logical, per replica).
    pub meter: HostMeter,
    /// Device cycles simulated.
    pub gpu_cycles: u64,
}

impl EndToEndResult {
    /// Total end-to-end time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.breakdown.total_ms()
    }
}

/// The measured series: the paper's Fig. 5 pair plus the NMR extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Single, non-redundant execution.
    Baseline,
    /// Redundant execution with serialized kernels (the SRRS mimic,
    /// two replicas).
    RedundantSerialized,
    /// N-modular redundant execution with serialized kernels: N transfers,
    /// N kernels, and an N-way majority vote on the DCLS host — the cost
    /// side of the coverage-vs-cost frontier.
    RedundantNmr {
        /// Replica count (≥ 2).
        replicas: u8,
    },
}

fn breakdown(
    platform: &CotsPlatform,
    meter: HostMeter,
    gpu_cycles: u64,
    replicas: u64,
    compare: bool,
) -> TimeBreakdown {
    let copy_factor = replicas;
    let api_calls = meter.copy_calls * copy_factor + meter.syncs;
    TimeBreakdown {
        fixed_ms: platform.fixed_host_ms,
        alloc_ms: meter.allocs as f64 * replicas as f64 * platform.alloc_us / 1.0e3,
        h2d_ms: platform.transfer_ms(meter.h2d_bytes * copy_factor),
        d2h_ms: platform.transfer_ms(meter.d2h_bytes * copy_factor),
        api_ms: api_calls as f64 * platform.api_call_us / 1.0e3,
        gpu_ms: platform.cycles_to_ms(gpu_cycles),
        compare_ms: if compare {
            platform.compare_ms(meter.d2h_bytes * copy_factor)
        } else {
            0.0
        },
    }
}

/// Runs `bench` non-redundantly and models its end-to-end time.
///
/// # Errors
///
/// Propagates [`SessionError`] from the benchmark.
pub fn run_baseline(
    platform: &CotsPlatform,
    bench: &dyn Benchmark,
) -> Result<EndToEndResult, SessionError> {
    let mut gpu = Gpu::new(platform.gpu.clone());
    let (meter, cycles) = {
        let mut solo = SoloSession::new(&mut gpu);
        let mut metered = MeteredSession::new(&mut solo);
        bench.run(&mut metered)?;
        (metered.meter(), 0u64)
    };
    let cycles = gpu.cycle().max(cycles);
    Ok(EndToEndResult {
        benchmark: bench.name().to_string(),
        variant: Variant::Baseline,
        breakdown: breakdown(platform, meter, cycles, 1, false),
        meter,
        gpu_cycles: cycles,
    })
}

/// Runs `bench` redundantly (serialized replicas, as the paper's COTS
/// experiment) and models its end-to-end time including double transfers and
/// the host-side comparison.
///
/// # Errors
///
/// Propagates [`SessionError`]; a replica mismatch (impossible without fault
/// injection) is also surfaced as an error.
pub fn run_redundant(
    platform: &CotsPlatform,
    bench: &dyn Benchmark,
) -> Result<EndToEndResult, SessionError> {
    run_redundant_nmr(platform, bench, 2).map(|mut r| {
        r.variant = Variant::RedundantSerialized;
        r
    })
}

/// Runs `bench` N-modular-redundantly (serialized replicas under SRRS with
/// evenly spread start SMs) and models its end-to-end time including N-fold
/// transfers and the host-side N-way majority vote — the cost curve of the
/// replica-count sweep. At `replicas = 2` this is exactly the paper's
/// redundant-serialized experiment.
///
/// # Errors
///
/// Propagates [`SessionError`]; a replica mismatch (impossible without
/// fault injection) is also surfaced as an error.
pub fn run_redundant_nmr(
    platform: &CotsPlatform,
    bench: &dyn Benchmark,
    replicas: u8,
) -> Result<EndToEndResult, SessionError> {
    let mut gpu = Gpu::new(platform.gpu.clone());
    let num_sms = platform.gpu.num_sms;
    let meter = {
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_spread(num_sms, replicas))
                .map_err(SessionError::Redundancy)?;
        let mut session = RedundantSession::new(&mut exec);
        let mut metered = MeteredSession::new(&mut session);
        bench.run(&mut metered)?;
        metered.meter()
    };
    let cycles = gpu.cycle();
    Ok(EndToEndResult {
        benchmark: bench.name().to_string(),
        variant: Variant::RedundantNmr { replicas },
        breakdown: breakdown(platform, meter, cycles, u64::from(replicas), true),
        meter,
        gpu_cycles: cycles,
    })
}

/// Both Fig. 5 series for a registry workload: baseline and
/// redundant-serialized end-to-end models of the named workload at `scale`.
/// `None` when the name is not registered.
///
/// # Errors
///
/// Propagates [`SessionError`] from either run.
pub fn run_pair_by_name(
    platform: &CotsPlatform,
    reg: &WorkloadRegistry,
    name: &str,
    scale: Scale,
) -> Option<Result<(EndToEndResult, EndToEndResult), SessionError>> {
    let workload = reg.build(name, scale)?;
    Some(
        run_baseline(platform, &*workload)
            .and_then(|base| run_redundant(platform, &*workload).map(|red| (base, red))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_rodinia::nn::Nn;

    fn nn() -> Nn {
        Nn {
            records: 512,
            ..Default::default()
        }
    }

    #[test]
    fn redundant_costs_more_than_baseline() {
        let platform = CotsPlatform::gtx1050ti();
        let base = run_baseline(&platform, &nn()).expect("baseline");
        let red = run_redundant(&platform, &nn()).expect("redundant");
        assert!(
            red.total_ms() > base.total_ms(),
            "redundancy is never free: {} vs {}",
            red.total_ms(),
            base.total_ms()
        );
    }

    #[test]
    fn short_kernel_overhead_is_small() {
        // nn is launch/copy dominated: redundancy should cost well under 2x.
        let platform = CotsPlatform::gtx1050ti();
        let base = run_baseline(&platform, &nn()).expect("baseline");
        let red = run_redundant(&platform, &nn()).expect("redundant");
        let ratio = red.total_ms() / base.total_ms();
        assert!(ratio < 2.4, "nn end-to-end ratio {ratio} unexpectedly high");
    }

    #[test]
    fn nmr_cost_grows_monotonically_with_replicas() {
        let platform = CotsPlatform::gtx1050ti();
        let two = run_redundant_nmr(&platform, &nn(), 2).expect("dcls");
        let three = run_redundant_nmr(&platform, &nn(), 3).expect("tmr");
        let four = run_redundant_nmr(&platform, &nn(), 4).expect("4mr");
        assert!(three.total_ms() > two.total_ms());
        assert!(four.total_ms() > three.total_ms());
        assert_eq!(three.variant, Variant::RedundantNmr { replicas: 3 });
        // Two-replica NMR is the paper's redundant-serialized experiment.
        let legacy = run_redundant(&platform, &nn()).expect("redundant");
        assert_eq!(legacy.variant, Variant::RedundantSerialized);
        assert_eq!(legacy.breakdown, two.breakdown, "same cost model at N=2");
        assert_eq!(legacy.gpu_cycles, two.gpu_cycles);
    }

    #[test]
    fn breakdown_totals_add_up() {
        let b = TimeBreakdown {
            fixed_ms: 0.5,
            alloc_ms: 1.0,
            h2d_ms: 2.0,
            d2h_ms: 3.0,
            api_ms: 4.0,
            gpu_ms: 5.0,
            compare_ms: 6.0,
        };
        assert!((b.total_ms() - 21.5).abs() < 1e-12);
    }

    #[test]
    fn baseline_has_no_compare_cost() {
        let platform = CotsPlatform::gtx1050ti();
        let base = run_baseline(&platform, &nn()).expect("baseline");
        assert_eq!(base.breakdown.compare_ms, 0.0);
        let red = run_redundant(&platform, &nn()).expect("redundant");
        assert!(red.breakdown.compare_ms > 0.0);
    }

    #[test]
    fn registry_workload_runs_end_to_end_by_name() {
        let platform = CotsPlatform::gtx1050ti();
        let reg = higpu_rodinia::registry();
        let (base, red) = run_pair_by_name(&platform, &reg, "nn", Scale::Campaign)
            .expect("registered")
            .expect("runs");
        assert_eq!(base.benchmark, "nn");
        assert_eq!(red.variant, Variant::RedundantSerialized);
        assert!(red.total_ms() > base.total_ms());
        assert!(run_pair_by_name(&platform, &reg, "no_such", Scale::Full).is_none());
    }
}
