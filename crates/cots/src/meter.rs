//! A metering session wrapper: counts the host-side traffic (allocations,
//! copies, API calls) a benchmark generates, independent of the backend it
//! runs on.

use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{BufId, GpuSession, SParam, SessionError};
use std::sync::Arc;

/// Host-side activity counters for one benchmark run (logical — i.e. per
/// replica; the end-to-end model scales them by the replication factor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostMeter {
    /// `cudaMalloc`-equivalent calls.
    pub allocs: u64,
    /// Host→device bytes.
    pub h2d_bytes: u64,
    /// Device→host bytes.
    pub d2h_bytes: u64,
    /// Kernel launches.
    pub launches: u64,
    /// Explicit synchronizations.
    pub syncs: u64,
    /// Copy API calls (each write/read is one call).
    pub copy_calls: u64,
}

/// Wraps any session and meters the traffic flowing through it.
///
/// Not `Debug`: it borrows a `dyn` session with no debug rendering.
#[allow(missing_debug_implementations)]
pub struct MeteredSession<'s> {
    inner: &'s mut dyn GpuSession,
    meter: HostMeter,
}

impl<'s> MeteredSession<'s> {
    /// Wraps `inner`.
    pub fn new(inner: &'s mut dyn GpuSession) -> Self {
        Self {
            inner,
            meter: HostMeter::default(),
        }
    }

    /// The accumulated counters.
    pub fn meter(&self) -> HostMeter {
        self.meter
    }
}

impl GpuSession for MeteredSession<'_> {
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError> {
        self.meter.allocs += 1;
        self.inner.alloc_words(words)
    }

    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError> {
        self.meter.h2d_bytes += data.len() as u64 * 4;
        self.meter.copy_calls += 1;
        self.inner.write_u32(buf, data)
    }

    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError> {
        self.meter.h2d_bytes += data.len() as u64 * 4;
        self.meter.copy_calls += 1;
        self.inner.write_f32(buf, data)
    }

    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError> {
        self.meter.launches += 1;
        self.inner
            .launch(program, grid, block, shared_mem_bytes, params)
    }

    fn sync(&mut self) -> Result<(), SessionError> {
        self.meter.syncs += 1;
        self.inner.sync()
    }

    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError> {
        self.meter.d2h_bytes += words as u64 * 4;
        self.meter.copy_calls += 1;
        self.inner.read_u32(buf, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_rodinia::harness::SoloSession;
    use higpu_rodinia::Benchmark;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    #[test]
    fn meter_counts_nn_traffic() {
        let nn = higpu_rodinia::nn::Nn {
            records: 256,
            ..Default::default()
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut solo = SoloSession::new(&mut gpu);
        let mut m = MeteredSession::new(&mut solo);
        nn.run(&mut m).expect("runs");
        let meter = m.meter();
        assert_eq!(meter.allocs, 3, "lat, lng, out");
        assert_eq!(meter.h2d_bytes, 2 * 256 * 4);
        assert_eq!(meter.d2h_bytes, 256 * 4);
        assert_eq!(meter.launches, 1);
        assert_eq!(meter.copy_calls, 3);
    }
}
