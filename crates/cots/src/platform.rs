//! COTS platform description: the host CPU + PCIe + GPU system of the
//! paper's Fig. 5 experiment (AMD Ryzen 7 1800X + GTX 1050 Ti).

use higpu_sim::config::GpuConfig;

/// Host/interconnect/GPU timing constants for end-to-end modelling.
#[derive(Debug, Clone, PartialEq)]
pub struct CotsPlatform {
    /// GPU configuration (kernel time comes from simulating on it).
    pub gpu: GpuConfig,
    /// Per-API-call host overhead in microseconds (launch, memcpy,
    /// synchronize — the CUDA driver round trip).
    pub api_call_us: f64,
    /// Effective host↔device copy bandwidth in GiB/s.
    pub pcie_gibps: f64,
    /// Host-side allocation overhead per `cudaMalloc`, in microseconds.
    pub alloc_us: f64,
    /// DCLS-host output-comparison throughput in GiB/s (both replicas are
    /// streamed through the comparator).
    pub compare_gibps: f64,
    /// Fixed host-side cost per application run (CUDA context/driver
    /// initialization, input preparation, host post-processing), in
    /// milliseconds. Incurred once — redundant execution does **not**
    /// duplicate it, which is the paper's reason (2) for the negligible
    /// end-to-end overhead of most benchmarks (Sec. V-B). Scaled down from
    /// the real platform's hundreds of ms to match this model's scaled-down
    /// problem sizes.
    pub fixed_host_ms: f64,
}

impl CotsPlatform {
    /// The paper's COTS testbed: GTX 1050 Ti (6 SMs, ~1.4 GHz) behind PCIe,
    /// driven by a desktop CPU.
    pub fn gtx1050ti() -> Self {
        let mut gpu = GpuConfig::paper_6sm();
        // On the real platform the dominant per-launch cost is the CUDA
        // driver call; model it as the GPU-side dispatch gap.
        gpu.dispatch_gap_cycles = 11_200; // 8 us at 1.4 GHz
        Self {
            gpu,
            api_call_us: 8.0,
            pcie_gibps: 6.0,
            alloc_us: 40.0,
            compare_gibps: 8.0,
            fixed_host_ms: 12.0,
        }
    }

    /// Converts device cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.gpu.clock_ghz * 1.0e6)
    }

    /// Transfer time for `bytes` over PCIe, in milliseconds.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.pcie_gibps * 1024.0 * 1024.0 * 1024.0) * 1.0e3
    }

    /// Host comparison time for `bytes` (total bytes streamed), in
    /// milliseconds.
    pub fn compare_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.compare_gibps * 1024.0 * 1024.0 * 1024.0) * 1.0e3
    }
}

impl Default for CotsPlatform {
    fn default() -> Self {
        Self::gtx1050ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_sm_count() {
        let p = CotsPlatform::gtx1050ti();
        assert_eq!(
            p.gpu.num_sms, 6,
            "GTX 1050 Ti has the same SM count as the simulated GPU"
        );
    }

    #[test]
    fn cycle_conversion() {
        let p = CotsPlatform::gtx1050ti();
        let ms = p.cycles_to_ms(1_400_000);
        assert!((ms - 1.0).abs() < 1e-9, "1.4M cycles at 1.4 GHz = 1 ms");
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let p = CotsPlatform::gtx1050ti();
        let one = p.transfer_ms(1024 * 1024);
        let two = p.transfer_ms(2 * 1024 * 1024);
        assert!((two - 2.0 * one).abs() < 1e-12);
        assert!(one > 0.0);
    }
}
