//! # higpu-rodinia — Rodinia-style benchmarks for the higpu simulator
//!
//! Re-implementations of the Rodinia heterogeneous-computing benchmarks used
//! in the paper's evaluation, each with a deterministic input generator, a
//! GPU host program written against [`harness::GpuSession`] (so the same
//! code runs solo or redundantly), and a CPU reference implementation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backprop;
pub mod bfs;
pub mod cfd;
pub mod data;
pub mod dwt2d;
pub mod gaussian;
pub mod harness;
pub mod hotspot;
pub mod hotspot3d;
pub mod kmeans;
pub mod leukocyte;
pub mod lud;
pub mod myocyte;
pub mod nn;
pub mod nw;
pub mod pathfinder;
pub mod srad;
pub mod streamcluster;

pub use harness::{Benchmark, GpuSession, RedundantSession, SessionError, SoloSession};

/// All implemented benchmarks at their default (paper-scaled) sizes.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(backprop::Backprop::default()),
        Box::new(bfs::Bfs::default()),
        Box::new(cfd::Cfd::default()),
        Box::new(dwt2d::Dwt2d::default()),
        Box::new(gaussian::Gaussian::default()),
        Box::new(hotspot::Hotspot::default()),
        Box::new(hotspot3d::Hotspot3d::default()),
        Box::new(kmeans::Kmeans::default()),
        Box::new(leukocyte::Leukocyte::default()),
        Box::new(lud::Lud::default()),
        Box::new(myocyte::Myocyte::default()),
        Box::new(nn::Nn::default()),
        Box::new(nw::Nw::default()),
        Box::new(pathfinder::Pathfinder::default()),
        Box::new(srad::Srad::default()),
        Box::new(streamcluster::Streamcluster::default()),
    ]
}

/// The Figure 4 subset of the paper (simulator experiment).
pub fn fig4_benchmarks() -> Vec<Box<dyn Benchmark>> {
    const FIG4: [&str; 11] = [
        "backprop",
        "bfs",
        "dwt2d",
        "gaussian",
        "hotspot",
        "hotspot3D",
        "leukocyte",
        "lud",
        "myocyte",
        "nn",
        "nw",
    ];
    all_benchmarks()
        .into_iter()
        .filter(|b| FIG4.contains(&b.name()))
        .collect()
}

/// Looks a benchmark up by its paper name.
pub fn by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    all_benchmarks().into_iter().find(|b| b.name() == name)
}
