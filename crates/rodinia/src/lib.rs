//! # higpu-rodinia — Rodinia-style benchmarks for the higpu simulator
//!
//! Re-implementations of the Rodinia heterogeneous-computing benchmarks used
//! in the paper's evaluation, each with a deterministic input generator, a
//! GPU host program written against [`harness::GpuSession`] (so the same
//! code runs solo or redundantly), and a CPU reference implementation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backprop;
pub mod bfs;
pub mod cfd;
pub mod data;
pub mod dwt2d;
pub mod gaussian;
pub mod harness;
pub mod hotspot;
pub mod hotspot3d;
pub mod kmeans;
pub mod leukocyte;
pub mod lud;
pub mod myocyte;
pub mod nn;
pub mod nw;
pub mod pathfinder;
pub mod srad;
pub mod streamcluster;

pub use harness::{Benchmark, GpuSession, RedundantSession, SessionError, SoloSession};

use higpu_workloads::WorkloadRegistry;

/// Registers every Rodinia benchmark in `reg` (name → factory, with
/// [`higpu_workloads::Scale`] selecting paper-sized or campaign-sized
/// inputs). The fault-campaign engine, the COTS model and the benches all
/// select workloads from this one registry.
pub fn register_all(reg: &mut WorkloadRegistry) {
    backprop::register(reg);
    bfs::register(reg);
    cfd::register(reg);
    dwt2d::register(reg);
    gaussian::register(reg);
    hotspot::register(reg);
    hotspot3d::register(reg);
    kmeans::register(reg);
    leukocyte::register(reg);
    lud::register(reg);
    myocyte::register(reg);
    nn::register(reg);
    nw::register(reg);
    pathfinder::register(reg);
    srad::register(reg);
    streamcluster::register(reg);
}

/// A registry holding every Rodinia benchmark.
pub fn registry() -> WorkloadRegistry {
    let mut reg = WorkloadRegistry::new();
    register_all(&mut reg);
    reg
}

/// All implemented benchmarks at their default (paper-scaled) sizes.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(backprop::Backprop::default()),
        Box::new(bfs::Bfs::default()),
        Box::new(cfd::Cfd::default()),
        Box::new(dwt2d::Dwt2d::default()),
        Box::new(gaussian::Gaussian::default()),
        Box::new(hotspot::Hotspot::default()),
        Box::new(hotspot3d::Hotspot3d::default()),
        Box::new(kmeans::Kmeans::default()),
        Box::new(leukocyte::Leukocyte::default()),
        Box::new(lud::Lud::default()),
        Box::new(myocyte::Myocyte::default()),
        Box::new(nn::Nn::default()),
        Box::new(nw::Nw::default()),
        Box::new(pathfinder::Pathfinder::default()),
        Box::new(srad::Srad::default()),
        Box::new(streamcluster::Streamcluster::default()),
    ]
}

/// The Figure 4 subset of the paper (simulator experiment).
pub fn fig4_benchmarks() -> Vec<Box<dyn Benchmark>> {
    const FIG4: [&str; 11] = [
        "backprop",
        "bfs",
        "dwt2d",
        "gaussian",
        "hotspot",
        "hotspot3D",
        "leukocyte",
        "lud",
        "myocyte",
        "nn",
        "nw",
    ];
    all_benchmarks()
        .into_iter()
        .filter(|b| FIG4.contains(&b.name()))
        .collect()
}

/// Looks a benchmark up by its paper name.
pub fn by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    all_benchmarks().into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_workloads::Scale;

    #[test]
    fn registry_names_match_workload_names_at_both_scales() {
        let reg = registry();
        assert_eq!(reg.len(), 16, "every Rodinia benchmark is registered");
        for e in reg.entries() {
            for scale in [Scale::Full, Scale::Campaign] {
                assert_eq!(
                    e.build(scale).name(),
                    e.name(),
                    "registry name must match the workload's own name"
                );
            }
        }
    }

    #[test]
    fn registry_covers_all_benchmarks() {
        let reg = registry();
        for b in all_benchmarks() {
            assert!(
                reg.names().contains(&b.name()),
                "benchmark {} missing from registry",
                b.name()
            );
        }
    }
}
