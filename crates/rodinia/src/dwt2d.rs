//! `dwt2d` — 2D discrete wavelet transform (Rodinia).
//!
//! Multi-level separable Haar transform: a row-pass kernel and a column-pass
//! kernel per level, halving the transformed region each level (paper
//! category: friendly).

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

const INV_SQRT2: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// DWT2D benchmark.
#[derive(Debug, Clone)]
pub struct Dwt2d {
    /// Image width/height (power of two).
    pub size: u32,
    /// Decomposition levels.
    pub levels: u32,
}

impl Default for Dwt2d {
    fn default() -> Self {
        Self {
            size: 128,
            levels: 2,
        }
    }
}

impl Dwt2d {
    fn image(&self) -> Vec<f32> {
        data::f32_vec(0xd272, (self.size * self.size) as usize, 0.0, 255.0)
    }

    /// Row pass over the top-left `region × region` submatrix:
    /// `out[r][p] = (a+b)/√2`, `out[r][p+region/2] = (a−b)/√2`.
    pub fn rows_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("dwt2d_rows");
        let src = b.param(0);
        let dst = b.param(1);
        let stride = b.param(2);
        let region = b.param(3);
        let half = b.param(4);
        let p = b.global_tid_x(); // pair index within the row
        let r = b.global_tid_y(); // row index
        let p_ok = b.isetp(CmpOp::Lt, p, half);
        b.if_(p_ok, |b| {
            let r_ok = b.isetp(CmpOp::Lt, r, region);
            b.if_(r_ok, |b| {
                let col = b.ishl(p, 1u32);
                let base = b.imad(r, stride, col);
                let sa = b.addr_w(src, base);
                let av = b.ldg(sa, 0);
                let bv = b.ldg(sa, 4);
                let sum = b.fadd(av, bv);
                let dif = b.fsub(av, bv);
                let lo = b.fmul(sum, INV_SQRT2);
                let hi = b.fmul(dif, INV_SQRT2);
                let li = b.imad(r, stride, p);
                let la = b.addr_w(dst, li);
                b.stg(la, 0, lo);
                let hcol = b.iadd(p, half);
                let hi_i = b.imad(r, stride, hcol);
                let ha = b.addr_w(dst, hi_i);
                b.stg(ha, 0, hi);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Column pass (same butterfly down the columns).
    pub fn cols_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("dwt2d_cols");
        let src = b.param(0);
        let dst = b.param(1);
        let stride = b.param(2);
        let region = b.param(3);
        let half = b.param(4);
        let c = b.global_tid_x(); // column index
        let p = b.global_tid_y(); // pair index within the column
        let c_ok = b.isetp(CmpOp::Lt, c, region);
        b.if_(c_ok, |b| {
            let p_ok = b.isetp(CmpOp::Lt, p, half);
            b.if_(p_ok, |b| {
                let row = b.ishl(p, 1u32);
                let i0 = b.imad(row, stride, c);
                let row1 = b.iadd(row, 1u32);
                let i1 = b.imad(row1, stride, c);
                let a0 = b.addr_w(src, i0);
                let a1 = b.addr_w(src, i1);
                let av = b.ldg(a0, 0);
                let bv = b.ldg(a1, 0);
                let sum = b.fadd(av, bv);
                let dif = b.fsub(av, bv);
                let lo = b.fmul(sum, INV_SQRT2);
                let hi = b.fmul(dif, INV_SQRT2);
                let li = b.imad(p, stride, c);
                let la = b.addr_w(dst, li);
                b.stg(la, 0, lo);
                let hrow = b.iadd(p, half);
                let hi_i = b.imad(hrow, stride, c);
                let ha = b.addr_w(dst, hi_i);
                b.stg(ha, 0, hi);
            });
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl Benchmark for Dwt2d {
    fn name(&self) -> &'static str {
        "dwt2d"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let n = self.size;
        let words = n * n;
        let a = s.alloc_words(words)?;
        let tmp = s.alloc_words(words)?;
        s.write_f32(a, &self.image())?;
        // The scratch buffer must carry the untouched region outside the
        // transformed submatrix across ping-pongs.
        s.write_f32(tmp, &self.image())?;
        let rows = self.rows_kernel();
        let cols = self.cols_kernel();
        let mut region = n;
        for _ in 0..self.levels {
            let half = region / 2;
            let grid = Dim3::xy(half.div_ceil(16), region.div_ceil(16));
            s.launch(
                &rows,
                grid,
                Dim3::xy(16, 16),
                0,
                &[
                    SParam::Buf(a),
                    SParam::Buf(tmp),
                    SParam::U32(n),
                    SParam::U32(region),
                    SParam::U32(half),
                ],
            )?;
            s.sync()?;
            let grid = Dim3::xy(region.div_ceil(16), half.div_ceil(16));
            s.launch(
                &cols,
                grid,
                Dim3::xy(16, 16),
                0,
                &[
                    SParam::Buf(tmp),
                    SParam::Buf(a),
                    SParam::U32(n),
                    SParam::U32(region),
                    SParam::U32(half),
                ],
            )?;
            s.sync()?;
            region = half;
            if region < 2 {
                break;
            }
        }
        s.read_u32(a, words as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.size as usize;
        let mut a = self.image();
        let mut region = n;
        for _ in 0..self.levels {
            let half = region / 2;
            let mut tmp = a.clone();
            for r in 0..region {
                for p in 0..half {
                    let av = a[r * n + 2 * p];
                    let bv = a[r * n + 2 * p + 1];
                    tmp[r * n + p] = (av + bv) * INV_SQRT2;
                    tmp[r * n + p + half] = (av - bv) * INV_SQRT2;
                }
            }
            for c in 0..region {
                for p in 0..half {
                    let av = tmp[(2 * p) * n + c];
                    let bv = tmp[(2 * p + 1) * n + c];
                    a[p * n + c] = (av + bv) * INV_SQRT2;
                    a[(p + half) * n + c] = (av - bv) * INV_SQRT2;
                }
            }
            region = half;
            if region < 2 {
                break;
            }
        }
        f32s_to_words(&a)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// The level count is fixed; corrupted coefficients cannot
    /// lengthen a pass, so the mined budget holds.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Dwt2d {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            size: 32,
            levels: 2,
        }
    }
}

/// Registers `dwt2d` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "dwt2d", Dwt2d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Dwt2d {
        Dwt2d {
            size: 32,
            levels: 2,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let d = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = d.run(&mut s).expect("runs");
        d.verify(&out).expect("matches reference");
    }

    #[test]
    fn energy_is_preserved() {
        // An orthonormal transform preserves the L2 norm.
        let d = small();
        let input: f32 = d.image().iter().map(|v| v * v).sum();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = d.run(&mut s).expect("runs");
        let output: f32 = out
            .iter()
            .map(|w| {
                let v = f32::from_bits(*w);
                v * v
            })
            .sum();
        let rel = (input - output).abs() / input;
        assert!(rel < 1e-3, "energy drift {rel}");
    }

    #[test]
    fn two_kernels_per_level() {
        let d = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        d.run(&mut s).expect("runs");
        assert_eq!(gpu.trace().kernels.len() as u32, 2 * d.levels);
    }
}
