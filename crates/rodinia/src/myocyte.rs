//! `myocyte` — cardiac myocyte ODE simulation (Rodinia).
//!
//! Each thread integrates the nonlinear membrane/recovery dynamics of one
//! cell (a FitzHugh–Nagumo-class system standing in for the original
//! 91-equation model) over thousands of explicit Euler steps. Very long
//! kernel, very few blocks — the paper's poster child for SRRS overhead
//! (~2× under serialization, ~1× under HALF).

use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Myocyte benchmark.
#[derive(Debug, Clone)]
pub struct Myocyte {
    /// Cells simulated (one thread each).
    pub cells: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Euler steps.
    pub steps: u32,
    /// Time step.
    pub dt: f32,
}

impl Default for Myocyte {
    fn default() -> Self {
        Self {
            cells: 64,
            threads_per_block: 32,
            steps: 3000,
            dt: 0.02,
        }
    }
}

impl Myocyte {
    /// The integration kernel: per-thread sequential ODE solve.
    pub fn kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("myocyte_solve");
        let v_out = b.param(0);
        let w_out = b.param(1);
        let n = b.param(2);
        let steps = b.param(3);
        let dt = b.param(4);
        let i = b.global_tid_x();
        let in_range = b.isetp(higpu_sim::isa::CmpOp::Lt, i, n);
        b.if_(in_range, |b| {
            // Per-cell parameters derived from the thread index.
            let fi = b.i2f(i);
            let stim = b.ffma(fi, 0.002f32, 0.45f32); // I_ext
            let a = b.mov(0.7f32);
            let bb = b.mov(0.8f32);
            let eps = b.ffma(fi, 0.0001f32, 0.08f32);
            let v = b.mov(-1.0f32);
            let w = b.mov(1.0f32);
            b.for_range(0u32, steps, 1u32, |b, _s| {
                // dv = v - v^3/3 - w + I
                let v2 = b.fmul(v, v);
                let v3 = b.fmul(v2, v);
                let v3t = b.fmul(v3, 1.0f32 / 3.0);
                let dv0 = b.fsub(v, v3t);
                let dv1 = b.fsub(dv0, w);
                let dv = b.fadd(dv1, stim);
                // dw = eps * (v + a - b*w)
                let va = b.fadd(v, a);
                let bw = b.fmul(bb, w);
                let inner = b.fsub(va, bw);
                let dw = b.fmul(eps, inner);
                // Euler update
                b.ffma_to(v, dv, dt, v);
                b.ffma_to(w, dw, dt, w);
            });
            let va = b.addr_w(v_out, i);
            b.stg(va, 0, v);
            let wa = b.addr_w(w_out, i);
            b.stg(wa, 0, w);
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl Benchmark for Myocyte {
    fn name(&self) -> &'static str {
        "myocyte"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let v_b = s.alloc_words(self.cells)?;
        let w_b = s.alloc_words(self.cells)?;
        s.launch(
            &self.kernel(),
            Dim3::x(self.cells.div_ceil(self.threads_per_block)),
            Dim3::x(self.threads_per_block),
            0,
            &[
                SParam::Buf(v_b),
                SParam::Buf(w_b),
                SParam::U32(self.cells),
                SParam::U32(self.steps),
                SParam::F32(self.dt),
            ],
        )?;
        let mut out = s.read_u32(v_b, self.cells as usize)?;
        out.extend(s.read_u32(w_b, self.cells as usize)?);
        Ok(out)
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.cells as usize;
        let mut vs = vec![0.0f32; n];
        let mut ws = vec![0.0f32; n];
        for i in 0..n {
            let fi = i as f32;
            let stim = fi.mul_add(0.002, 0.45);
            let a = 0.7f32;
            let bb = 0.8f32;
            let eps = fi.mul_add(0.0001, 0.08);
            let mut v = -1.0f32;
            let mut w = 1.0f32;
            for _ in 0..self.steps {
                let v3t = (v * v * v) * (1.0 / 3.0);
                let dv = ((v - v3t) - w) + stim;
                let dw = eps * ((v + a) - bb * w);
                v = dv.mul_add(self.dt, v);
                w = dw.mul_add(self.dt, w);
            }
            vs[i] = v;
            ws[i] = w;
        }
        let mut out = f32s_to_words(&vs);
        out.extend(f32s_to_words(&ws));
        out
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// Long serial per-thread ODE integration, but over a fixed number of
    /// solver steps. Corrupted state stretches individual solver steps: the
    /// mined corrupted-but-terminating p99.9 is 4.99× the fault-free
    /// makespan, so `myocyte` keeps the flat default budget rather than the
    /// mined 3×.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::DEFAULT_FTTI_MULTIPLIER
    }
}

impl Myocyte {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            cells: 16,
            threads_per_block: 16,
            steps: 200,
            ..Self::default()
        }
    }
}

/// Registers `myocyte` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "myocyte", Myocyte);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Myocyte {
        Myocyte {
            cells: 32,
            threads_per_block: 32,
            steps: 200,
            dt: 0.02,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let m = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = m.run(&mut s).expect("runs");
        m.verify(&out).expect("matches reference");
    }

    #[test]
    fn states_remain_bounded() {
        // FitzHugh–Nagumo trajectories live in a bounded attractor.
        let m = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = m.run(&mut s).expect("runs");
        for w in out {
            let v = f32::from_bits(w);
            assert!(v.is_finite());
            assert!(v.abs() < 10.0, "state {v} escaped the attractor");
        }
    }

    #[test]
    fn single_long_kernel() {
        let m = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        m.run(&mut s).expect("runs");
        assert_eq!(gpu.trace().kernels.len(), 1);
    }
}
