//! `kmeans` — k-means clustering (Rodinia).
//!
//! The GPU computes the nearest centroid for every point; the host
//! recomputes centroids from the assignments and iterates — the same
//! device/host split as the original (paper category: friendly/short).

use crate::data;
use crate::harness::{Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// K-means benchmark.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Points.
    pub points: u32,
    /// Features per point.
    pub features: u32,
    /// Clusters.
    pub k: u32,
    /// Assignment/update iterations.
    pub iterations: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl Default for Kmeans {
    fn default() -> Self {
        Self {
            points: 2048,
            features: 8,
            k: 5,
            iterations: 4,
            threads_per_block: 256,
        }
    }
}

impl Kmeans {
    fn point_data(&self) -> Vec<f32> {
        data::f32_vec(0x6b3a, (self.points * self.features) as usize, 0.0, 10.0)
    }

    fn initial_centroids(&self) -> Vec<f32> {
        let pts = self.point_data();
        let f = self.features as usize;
        // First k points, as in the Rodinia initialization.
        pts[..self.k as usize * f].to_vec()
    }

    /// Assignment kernel: nearest centroid per point (row-major features).
    pub fn assign_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("kmeans_assign");
        let points = b.param(0);
        let centroids = b.param(1);
        let membership = b.param(2);
        let n = b.param(3);
        let nfeat = b.param(4);
        let k = b.param(5);
        let i = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, i, n);
        b.if_(in_range, |b| {
            let pbase = b.imul(i, nfeat);
            let best_d = b.mov(f32::MAX);
            let best_c = b.mov(0u32);
            b.for_range(0u32, k, 1u32, |b, c| {
                let cbase = b.imul(c, nfeat);
                let acc = b.mov(0.0f32);
                b.for_range(0u32, nfeat, 1u32, |b, f| {
                    let pi = b.iadd(pbase, f);
                    let pa = b.addr_w(points, pi);
                    let pv = b.ldg(pa, 0);
                    let ci = b.iadd(cbase, f);
                    let ca = b.addr_w(centroids, ci);
                    let cv = b.ldg(ca, 0);
                    let d = b.fsub(pv, cv);
                    b.ffma_to(acc, d, d, acc);
                });
                let closer = b.fsetp(CmpOp::Lt, acc, best_d);
                b.if_(closer, |b| {
                    b.mov_to(best_d, acc);
                    b.mov_to(best_c, c);
                });
                b.release_preds(1);
            });
            let ma = b.addr_w(membership, i);
            b.stg(ma, 0, best_c);
        });
        b.build().expect("well-formed").into_shared()
    }

    fn cpu_assign(&self, pts: &[f32], cents: &[f32], membership: &mut [u32]) {
        let f = self.features as usize;
        for (i, m) in membership.iter_mut().enumerate() {
            let mut best_d = f32::MAX;
            let mut best_c = 0u32;
            for c in 0..self.k as usize {
                let mut acc = 0.0f32;
                for j in 0..f {
                    let d = pts[i * f + j] - cents[c * f + j];
                    acc = d.mul_add(d, acc);
                }
                if acc < best_d {
                    best_d = acc;
                    best_c = c as u32;
                }
            }
            *m = best_c;
        }
    }

    fn cpu_update(&self, pts: &[f32], membership: &[u32], cents: &mut [f32]) {
        let f = self.features as usize;
        let mut counts = vec![0u32; self.k as usize];
        let mut sums = vec![0.0f32; self.k as usize * f];
        for (i, &m) in membership.iter().enumerate() {
            counts[m as usize] += 1;
            for j in 0..f {
                sums[m as usize * f + j] += pts[i * f + j];
            }
        }
        for c in 0..self.k as usize {
            if counts[c] > 0 {
                for j in 0..f {
                    cents[c * f + j] = sums[c * f + j] / counts[c] as f32;
                }
            }
        }
    }
}

impl Benchmark for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let pts = self.point_data();
        let mut cents = self.initial_centroids();
        let p_b = s.alloc_words(self.points * self.features)?;
        let c_b = s.alloc_words(self.k * self.features)?;
        let m_b = s.alloc_words(self.points)?;
        s.write_f32(p_b, &pts)?;
        let kernel = self.assign_kernel();
        let grid = Dim3::x(self.points.div_ceil(self.threads_per_block));
        let block = Dim3::x(self.threads_per_block);
        let mut membership = vec![0u32; self.points as usize];
        for _ in 0..self.iterations {
            s.write_f32(c_b, &cents)?;
            s.launch(
                &kernel,
                grid,
                block,
                0,
                &[
                    SParam::Buf(p_b),
                    SParam::Buf(c_b),
                    SParam::Buf(m_b),
                    SParam::U32(self.points),
                    SParam::U32(self.features),
                    SParam::U32(self.k),
                ],
            )?;
            membership = s.read_u32(m_b, self.points as usize)?;
            // Host-side centroid update (as in Rodinia).
            self.cpu_update(&pts, &membership, &mut cents);
        }
        Ok(membership)
    }

    fn reference(&self) -> Vec<u32> {
        let pts = self.point_data();
        let mut cents = self.initial_centroids();
        let mut membership = vec![0u32; self.points as usize];
        for _ in 0..self.iterations {
            self.cpu_assign(&pts, &cents, &mut membership);
            self.cpu_update(&pts, &membership, &mut cents);
        }
        membership
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }

    /// Assignment/update rounds are fixed, not convergence-driven; the
    /// mined corrupted-but-terminating tail is short.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Kmeans {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            points: 256,
            features: 4,
            k: 3,
            iterations: 2,
            threads_per_block: 64,
        }
    }
}

/// Registers `kmeans` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "kmeans", Kmeans);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Kmeans {
        Kmeans {
            points: 256,
            features: 4,
            k: 3,
            iterations: 3,
            threads_per_block: 64,
        }
    }

    #[test]
    fn matches_cpu_reference_exactly() {
        let km = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = km.run(&mut s).expect("runs");
        km.verify(&out).expect("matches reference");
    }

    #[test]
    fn memberships_are_valid_cluster_ids() {
        let km = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = km.run(&mut s).expect("runs");
        assert!(out.iter().all(|&m| m < km.k));
    }

    #[test]
    fn every_cluster_gets_members() {
        let km = small();
        let out = km.reference();
        for c in 0..km.k {
            assert!(out.contains(&c), "cluster {c} empty with well-spread data");
        }
    }
}
