//! `pathfinder` — grid dynamic programming (Rodinia).
//!
//! Bottom-up shortest-path over a weight grid: one kernel launch per row,
//! each thread extending one column with the minimum of its three parents.
//! Exact integer arithmetic; many short dependent launches.

use crate::data;
use crate::harness::{Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Pathfinder benchmark.
#[derive(Debug, Clone)]
pub struct Pathfinder {
    /// Grid columns.
    pub cols: u32,
    /// Grid rows.
    pub rows: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl Default for Pathfinder {
    fn default() -> Self {
        Self {
            cols: 4096,
            rows: 48,
            threads_per_block: 256,
        }
    }
}

impl Pathfinder {
    fn weights(&self) -> Vec<u32> {
        data::u32_vec(0xaf1d, (self.cols * self.rows) as usize, 10)
    }

    /// One DP step: `dst[j] = wall[row][j] + min(src[j-1], src[j], src[j+1])`.
    pub fn kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("pathfinder_step");
        let wall = b.param(0);
        let src = b.param(1);
        let dst = b.param(2);
        let cols = b.param(3);
        let row = b.param(4);
        let j = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, j, cols);
        b.if_(in_range, |b| {
            let cm1 = b.isub(cols, 1u32);
            let jm = b.isub(j, 1u32);
            let jl = b.imax(jm, 0u32);
            let jp = b.iadd(j, 1u32);
            let jr = b.imin(jp, cm1);
            let la = b.addr_w(src, jl);
            let ca = b.addr_w(src, j);
            let ra = b.addr_w(src, jr);
            let lv = b.ldg(la, 0);
            let cv = b.ldg(ca, 0);
            let rv = b.ldg(ra, 0);
            let m1 = b.imin(lv, cv);
            let m2 = b.imin(m1, rv);
            let wi = b.imad(row, cols, j);
            let wa = b.addr_w(wall, wi);
            let wv = b.ldg(wa, 0);
            let sum = b.iadd(wv, m2);
            let da = b.addr_w(dst, j);
            b.stg(da, 0, sum);
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl Benchmark for Pathfinder {
    fn name(&self) -> &'static str {
        "pathfinder"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let wall = self.weights();
        let w_b = s.alloc_words(self.cols * self.rows)?;
        let a_b = s.alloc_words(self.cols)?;
        let b_b = s.alloc_words(self.cols)?;
        s.write_u32(w_b, &wall)?;
        s.write_u32(a_b, &wall[..self.cols as usize])?;
        let kernel = self.kernel();
        let grid = Dim3::x(self.cols.div_ceil(self.threads_per_block));
        let block = Dim3::x(self.threads_per_block);
        let mut src = a_b;
        let mut dst = b_b;
        for row in 1..self.rows {
            s.launch(
                &kernel,
                grid,
                block,
                0,
                &[
                    SParam::Buf(w_b),
                    SParam::Buf(src),
                    SParam::Buf(dst),
                    SParam::U32(self.cols),
                    SParam::U32(row),
                ],
            )?;
            s.sync()?;
            std::mem::swap(&mut src, &mut dst);
        }
        s.read_u32(src, self.cols as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let wall = self.weights();
        let c = self.cols as usize;
        let mut cur: Vec<u32> = wall[..c].to_vec();
        let mut next = vec![0u32; c];
        for row in 1..self.rows as usize {
            for j in 0..c {
                let l = cur[j.saturating_sub(1)];
                let m = cur[j];
                let r = cur[(j + 1).min(c - 1)];
                next[j] = wall[row * c + j] + l.min(m).min(r);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }

    /// Fixed per-row sweeps; the mined corrupted-but-terminating tail is
    /// short.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Pathfinder {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            cols: 256,
            rows: 8,
            threads_per_block: 64,
        }
    }
}

/// Registers `pathfinder` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "pathfinder", Pathfinder);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Pathfinder {
        Pathfinder {
            cols: 512,
            rows: 12,
            threads_per_block: 128,
        }
    }

    #[test]
    fn matches_cpu_reference_exactly() {
        let p = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = p.run(&mut s).expect("runs");
        p.verify(&out).expect("matches reference");
    }

    #[test]
    fn one_launch_per_row() {
        let p = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        p.run(&mut s).expect("runs");
        assert_eq!(gpu.trace().kernels.len() as u32, p.rows - 1);
    }

    #[test]
    fn path_costs_grow_monotonically_with_rows() {
        let short = Pathfinder { rows: 4, ..small() };
        let long = Pathfinder {
            rows: 12,
            ..small()
        };
        let sum_short: u64 = short.reference().iter().map(|&v| u64::from(v)).sum();
        let sum_long: u64 = long.reference().iter().map(|&v| u64::from(v)).sum();
        assert!(sum_long >= sum_short);
    }
}
