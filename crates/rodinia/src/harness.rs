//! The benchmark harness: a session abstraction that lets each benchmark's
//! host program run unchanged in three environments — solo (plain GPU),
//! redundant (DCLS protocol), or any future backend — plus verification
//! against CPU references.

use higpu_core::redundancy::{Comparison, RBuf, RParam, RedundancyError, RedundantExecutor};
use higpu_sim::gpu::{DevPtr, Gpu, SimError};
use higpu_sim::kernel::{Dim3, KernelLaunch, LaunchConfig};
use higpu_sim::program::Program;
use std::fmt;
use std::sync::Arc;

/// Handle to a logical device buffer owned by a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(usize);

/// A kernel parameter referencing session buffers.
#[derive(Debug, Clone, Copy)]
pub enum SParam {
    /// Address of a buffer.
    Buf(BufId),
    /// Address of a buffer plus a word offset.
    BufOffset(BufId, u32),
    /// Raw word.
    U32(u32),
    /// Signed integer.
    I32(i32),
    /// Float (raw bits).
    F32(f32),
}

/// Errors surfaced while running a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Device error.
    Sim(SimError),
    /// Redundancy-protocol error.
    Redundancy(RedundancyError),
    /// Redundant replicas disagreed on a host-read value (fault detected).
    ReplicaMismatch {
        /// Word index of the first disagreement.
        first_word: usize,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Sim(e) => write!(f, "device error: {e}"),
            SessionError::Redundancy(e) => write!(f, "redundancy error: {e}"),
            SessionError::ReplicaMismatch { first_word } => {
                write!(f, "replica mismatch at word {first_word}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

impl From<RedundancyError> for SessionError {
    fn from(e: RedundancyError) -> Self {
        SessionError::Redundancy(e)
    }
}

/// The environment a benchmark's host program runs in.
///
/// Benchmarks allocate buffers, upload data, launch kernels (synchronizing
/// between dependent launches) and read results back — the same five-step
/// shape as a CUDA host program.
pub trait GpuSession {
    /// Allocates a logical buffer of `words` 32-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Sim`] when device memory is exhausted.
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError>;

    /// Uploads words into a buffer.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError>;

    /// Uploads floats into a buffer.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError>;

    /// Launches a kernel (asynchronously; see [`GpuSession::sync`]).
    ///
    /// # Errors
    ///
    /// Propagates launch errors (e.g. unschedulable geometry).
    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError>;

    /// Waits for all launched kernels to complete.
    ///
    /// # Errors
    ///
    /// Propagates device stalls.
    fn sync(&mut self) -> Result<(), SessionError>;

    /// Reads `words` words back (synchronizes first). In redundant sessions
    /// the replicas are compared; a disagreement is reported as
    /// [`SessionError::ReplicaMismatch`].
    ///
    /// # Errors
    ///
    /// Propagates backend errors and replica mismatches.
    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError>;

    /// Reads `words` floats back (bitwise-compared in redundant sessions).
    ///
    /// # Errors
    ///
    /// Propagates backend errors and replica mismatches.
    fn read_f32(&mut self, buf: BufId, words: usize) -> Result<Vec<f32>, SessionError> {
        Ok(self
            .read_u32(buf, words)?
            .into_iter()
            .map(f32::from_bits)
            .collect())
    }
}

/// Non-redundant session over a plain GPU (baselines, profiling).
#[derive(Debug)]
pub struct SoloSession<'g> {
    gpu: &'g mut Gpu,
    buffers: Vec<DevPtr>,
    pending: bool,
}

impl<'g> SoloSession<'g> {
    /// Wraps a GPU.
    pub fn new(gpu: &'g mut Gpu) -> Self {
        Self {
            gpu,
            buffers: Vec::new(),
            pending: false,
        }
    }

    /// The underlying GPU.
    pub fn gpu(&self) -> &Gpu {
        self.gpu
    }
}

impl GpuSession for SoloSession<'_> {
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError> {
        let ptr = self.gpu.alloc_words(words)?;
        self.buffers.push(ptr);
        Ok(BufId(self.buffers.len() - 1))
    }

    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError> {
        self.gpu.write_u32(self.buffers[buf.0], data);
        Ok(())
    }

    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError> {
        self.gpu.write_f32(self.buffers[buf.0], data);
        Ok(())
    }

    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError> {
        let mut cfg = LaunchConfig::new(grid, block).shared_mem(shared_mem_bytes);
        for p in params {
            cfg = match *p {
                SParam::Buf(b) => cfg.param_u32(self.buffers[b.0].0),
                SParam::BufOffset(b, w) => cfg.param_u32(self.buffers[b.0].offset_words(w).0),
                SParam::U32(v) => cfg.param_u32(v),
                SParam::I32(v) => cfg.param_i32(v),
                SParam::F32(v) => cfg.param_f32(v),
            };
        }
        self.gpu
            .launch(KernelLaunch::new(program.clone(), cfg).tag(program.name().to_string()))?;
        self.pending = true;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), SessionError> {
        if self.pending {
            self.gpu.run_to_idle()?;
            self.pending = false;
        }
        Ok(())
    }

    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError> {
        self.sync()?;
        Ok(self.gpu.read_u32(self.buffers[buf.0], words))
    }
}

/// Redundant session: every operation follows the DCLS protocol
/// (dual allocation, dual copies, dual launches, compare on read-back).
#[derive(Debug)]
pub struct RedundantSession<'g, 'e> {
    exec: &'e mut RedundantExecutor<'g>,
    buffers: Vec<RBuf>,
    pending: bool,
}

impl<'g, 'e> RedundantSession<'g, 'e> {
    /// Wraps a redundant executor.
    pub fn new(exec: &'e mut RedundantExecutor<'g>) -> Self {
        Self {
            exec,
            buffers: Vec::new(),
            pending: false,
        }
    }
}

impl GpuSession for RedundantSession<'_, '_> {
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError> {
        let b = self.exec.alloc_words(words)?;
        self.buffers.push(b);
        Ok(BufId(self.buffers.len() - 1))
    }

    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError> {
        let b = self.buffers[buf.0].clone();
        self.exec.write_u32(&b, data)?;
        Ok(())
    }

    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError> {
        let b = self.buffers[buf.0].clone();
        self.exec.write_f32(&b, data)?;
        Ok(())
    }

    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError> {
        let owned: Vec<RBuf> = self.buffers.clone();
        let rparams: Vec<RParam<'_>> = params
            .iter()
            .map(|p| match *p {
                SParam::Buf(b) => RParam::Buf(&owned[b.0]),
                SParam::BufOffset(b, w) => RParam::BufOffset(&owned[b.0], w),
                SParam::U32(v) => RParam::U32(v),
                SParam::I32(v) => RParam::I32(v),
                SParam::F32(v) => RParam::F32(v),
            })
            .collect();
        self.exec
            .launch(program, grid, block, shared_mem_bytes, &rparams)?;
        self.pending = true;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), SessionError> {
        if self.pending {
            self.exec.sync()?;
            self.pending = false;
        }
        Ok(())
    }

    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError> {
        self.sync()?;
        let b = self.buffers[buf.0].clone();
        match self.exec.read_compare_u32(&b, words)? {
            Comparison::Match(v) => Ok(v),
            Comparison::Mismatch { first_word, .. } => {
                Err(SessionError::ReplicaMismatch { first_word })
            }
        }
    }
}

/// Output comparison tolerance for verification against the CPU reference.
///
/// Replica-vs-replica comparison is always bitwise (that is the DCLS safety
/// mechanism); tolerances only apply to GPU-vs-CPU-reference verification,
/// where accumulation order may legitimately differ (as between CUDA and
/// C++ in the original Rodinia).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Outputs are integers/exact words.
    Exact,
    /// Outputs are `f32` values compared with relative/absolute tolerance.
    Approx {
        /// Relative tolerance.
        rel: f32,
        /// Absolute tolerance.
        abs: f32,
    },
}

impl Tolerance {
    /// Default float tolerance.
    pub fn approx() -> Self {
        Tolerance::Approx {
            rel: 1e-4,
            abs: 1e-5,
        }
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// First failing word index.
    pub index: usize,
    /// Produced word.
    pub got: u32,
    /// Expected word.
    pub expected: u32,
    /// Total failing words.
    pub mismatches: usize,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output differs from reference at word {} (got 0x{:08x}, expected 0x{:08x}; {} total mismatches)",
            self.index, self.got, self.expected, self.mismatches
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `got` against `expected` under `tol`.
///
/// # Errors
///
/// Returns the first mismatch (and the mismatch count) on failure.
pub fn verify_words(got: &[u32], expected: &[u32], tol: Tolerance) -> Result<(), VerifyError> {
    let mut first: Option<(usize, u32, u32)> = None;
    let mut mismatches = 0usize;
    for (i, (&g, &e)) in got.iter().zip(expected.iter()).enumerate() {
        let ok = match tol {
            Tolerance::Exact => g == e,
            Tolerance::Approx { rel, abs } => {
                let (fg, fe) = (f32::from_bits(g), f32::from_bits(e));
                if fg.is_nan() && fe.is_nan() {
                    true
                } else {
                    let diff = (fg - fe).abs();
                    diff <= abs || diff <= rel * fe.abs().max(fg.abs())
                }
            }
        };
        if !ok {
            mismatches += 1;
            if first.is_none() {
                first = Some((i, g, e));
            }
        }
    }
    if got.len() != expected.len() {
        mismatches += got.len().abs_diff(expected.len());
        if first.is_none() {
            first = Some((got.len().min(expected.len()), 0, 0));
        }
    }
    match first {
        None => Ok(()),
        Some((index, got, expected)) => Err(VerifyError {
            index,
            got,
            expected,
            mismatches,
        }),
    }
}

/// A Rodinia-style benchmark: deterministic inputs, a GPU host program and a
/// CPU reference.
pub trait Benchmark: fmt::Debug + Sync {
    /// Benchmark name (matches the paper's figures).
    fn name(&self) -> &'static str;

    /// Runs the host program in `session`; returns the output words.
    ///
    /// # Errors
    ///
    /// Propagates [`SessionError`] from the backend.
    fn run(&self, session: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError>;

    /// CPU reference output (words).
    fn reference(&self) -> Vec<u32>;

    /// GPU-vs-reference comparison tolerance.
    fn tolerance(&self) -> Tolerance;

    /// Verifies a GPU output against the CPU reference.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch on failure.
    fn verify(&self, out: &[u32]) -> Result<(), VerifyError> {
        verify_words(out, &self.reference(), self.tolerance())
    }
}

/// Wraps `f32` outputs into words for [`Benchmark::reference`].
pub fn f32s_to_words(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_core::redundancy::RedundancyMode;
    use higpu_sim::builder::KernelBuilder;
    use higpu_sim::config::GpuConfig;

    fn double_kernel() -> Arc<Program> {
        let mut b = KernelBuilder::new("double");
        let buf = b.param(0);
        let i = b.global_tid_x();
        let a = b.addr_w(buf, i);
        let v = b.ldg(a, 0);
        let d = b.iadd(v, v);
        b.stg(a, 0, d);
        b.build().expect("valid").into_shared()
    }

    #[test]
    fn solo_and_redundant_sessions_agree() {
        let prog = double_kernel();
        let data: Vec<u32> = (0..64).collect();

        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut solo = SoloSession::new(&mut gpu);
        let b = solo.alloc_words(64).expect("alloc");
        solo.write_u32(b, &data).expect("write");
        solo.launch(&prog, Dim3::x(2), Dim3::x(32), 0, &[SParam::Buf(b)])
            .expect("launch");
        let solo_out = solo.read_u32(b, 64).expect("read");

        let mut gpu2 = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu2, RedundancyMode::srrs_default(6)).expect("mode");
        let mut red = RedundantSession::new(&mut exec);
        let b = red.alloc_words(64).expect("alloc");
        red.write_u32(b, &data).expect("write");
        red.launch(&prog, Dim3::x(2), Dim3::x(32), 0, &[SParam::Buf(b)])
            .expect("launch");
        let red_out = red.read_u32(b, 64).expect("read");

        assert_eq!(solo_out, red_out);
        assert_eq!(solo_out[5], 10);
    }

    #[test]
    fn verify_exact_catches_mismatch() {
        let got = [1u32, 2, 3];
        let expected = [1u32, 9, 3];
        let err = verify_words(&got, &expected, Tolerance::Exact).expect_err("mismatch");
        assert_eq!(err.index, 1);
        assert_eq!(err.mismatches, 1);
    }

    #[test]
    fn verify_approx_allows_small_drift() {
        let got = f32s_to_words(&[1.0, 2.00001]);
        let expected = f32s_to_words(&[1.0, 2.0]);
        verify_words(&got, &expected, Tolerance::approx()).expect("within tolerance");
        let far = f32s_to_words(&[1.0, 2.1]);
        assert!(verify_words(&far, &expected, Tolerance::approx()).is_err());
    }

    #[test]
    fn verify_length_mismatch_fails() {
        let got = [1u32, 2];
        let expected = [1u32, 2, 3];
        assert!(verify_words(&got, &expected, Tolerance::Exact).is_err());
    }

    #[test]
    fn nan_matches_nan_in_approx_mode() {
        let got = f32s_to_words(&[f32::NAN]);
        let expected = f32s_to_words(&[f32::NAN]);
        verify_words(&got, &expected, Tolerance::approx()).expect("NaN == NaN for verification");
    }
}
