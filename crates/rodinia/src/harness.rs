//! The benchmark harness — now a thin façade over the unified workload
//! layer in `higpu_workloads`.
//!
//! Historically this module owned the session abstraction
//! (`GpuSession`/`SoloSession`/`RedundantSession`) and the `Benchmark`
//! trait. That machinery was extracted into the `higpu_workloads` crate so
//! the fault-campaign engine, the COTS end-to-end model and the benches can
//! all drive the same workload layer; the names are re-exported here
//! unchanged for existing callers. `Benchmark` is the
//! [`higpu_workloads::Workload`] trait under its historical name.

pub use higpu_workloads::session::{
    BufId, GpuSession, RedundantSession, SParam, SessionError, SoloSession,
};
pub use higpu_workloads::workload::{
    f32s_to_words, verify_words, Tolerance, VerifyError, Workload as Benchmark,
};
