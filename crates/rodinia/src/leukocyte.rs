//! `leukocyte` — cell detection and tracking (Rodinia).
//!
//! GICOV-style detection: for every interior pixel, a directional
//! mean²/variance score over gradient samples on a small circle, maximized
//! over directions, followed by a 3×3 max-dilation kernel. Heavy per-thread
//! floating point (paper category: friendly, long kernels).

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Sample points per direction.
const SAMPLES: u32 = 8;
/// Directions evaluated per pixel.
const DIRECTIONS: u32 = 8;

/// Leukocyte benchmark.
#[derive(Debug, Clone)]
pub struct Leukocyte {
    /// Image width/height.
    pub size: u32,
}

impl Default for Leukocyte {
    fn default() -> Self {
        Self { size: 128 }
    }
}

impl Leukocyte {
    fn image(&self) -> Vec<f32> {
        data::f32_vec(0x1e0c, (self.size * self.size) as usize, 0.0, 1.0)
    }

    /// Circle sample offsets per direction: `(dy, dx)` pairs, radius 3,
    /// rotated per direction — precomputed on the host exactly as Rodinia
    /// precomputes its sin/cos tables.
    fn offsets() -> Vec<i32> {
        let mut out = Vec::with_capacity((DIRECTIONS * SAMPLES * 2) as usize);
        for d in 0..DIRECTIONS {
            for s in 0..SAMPLES {
                let theta = (d as f32) * 0.15 + (s as f32) * std::f32::consts::TAU / SAMPLES as f32;
                let dy = (3.0 * theta.sin()).round() as i32;
                let dx = (3.0 * theta.cos()).round() as i32;
                out.push(dy);
                out.push(dx);
            }
        }
        out
    }

    /// GICOV kernel: directional mean²/var score, maximized over directions.
    pub fn gicov_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("leukocyte_gicov");
        let img = b.param(0);
        let offs = b.param(1);
        let out = b.param(2);
        let n = b.param(3);
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let x_ok = b.isetp(CmpOp::Lt, x, n);
        b.if_(x_ok, |b| {
            let y_ok = b.isetp(CmpOp::Lt, y, n);
            b.if_(y_ok, |b| {
                let nm1 = b.isub(n, 1u32);
                let best = b.mov(0.0f32);
                b.for_range(0u32, DIRECTIONS, 1u32, |b, d| {
                    let sum = b.mov(0.0f32);
                    let sum2 = b.mov(0.0f32);
                    let dbase = b.imul(d, SAMPLES * 2);
                    b.for_range(0u32, SAMPLES, 1u32, |b, sidx| {
                        let oi = b.imad(sidx, 2u32, dbase);
                        let oa = b.addr_w(offs, oi);
                        let dy = b.ldg(oa, 0);
                        let dx = b.ldg(oa, 4);
                        // clamp sample coordinates to the image
                        let sy0 = b.iadd(y, dy);
                        let sy1 = b.imax(sy0, 0u32);
                        let sy = b.imin(sy1, nm1);
                        let sx0 = b.iadd(x, dx);
                        let sx1 = b.imax(sx0, 0u32);
                        let sx = b.imin(sx1, nm1);
                        let si = b.imad(sy, n, sx);
                        let sa = b.addr_w(img, si);
                        let sv = b.ldg(sa, 0);
                        b.fadd_to(sum, sum, sv);
                        b.ffma_to(sum2, sv, sv, sum2);
                    });
                    // mean = sum/S ; var = sum2/S - mean² (+eps) ;
                    // score = mean²/var
                    let mean = b.fmul(sum, 1.0 / SAMPLES as f32);
                    let msq = b.fmul(mean, mean);
                    let ex2 = b.fmul(sum2, 1.0 / SAMPLES as f32);
                    let var0 = b.fsub(ex2, msq);
                    let var = b.fadd(var0, 1e-4f32);
                    let score = b.fdiv(msq, var);
                    let nb = b.fmax(best, score);
                    b.mov_to(best, nb);
                });
                let idx = b.imad(y, n, x);
                let oa = b.addr_w(out, idx);
                b.stg(oa, 0, best);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    /// 3×3 max-dilation kernel.
    pub fn dilate_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("leukocyte_dilate");
        let src = b.param(0);
        let dst = b.param(1);
        let n = b.param(2);
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let x_ok = b.isetp(CmpOp::Lt, x, n);
        b.if_(x_ok, |b| {
            let y_ok = b.isetp(CmpOp::Lt, y, n);
            b.if_(y_ok, |b| {
                let nm1 = b.isub(n, 1u32);
                let best = b.mov(f32::MIN);
                b.for_range(0u32, 3u32, 1u32, |b, dy| {
                    b.for_range(0u32, 3u32, 1u32, |b, dx| {
                        let yy0 = b.iadd(y, dy);
                        let yy1 = b.isub(yy0, 1u32);
                        let yy2 = b.imax(yy1, 0u32);
                        let yy = b.imin(yy2, nm1);
                        let xx0 = b.iadd(x, dx);
                        let xx1 = b.isub(xx0, 1u32);
                        let xx2 = b.imax(xx1, 0u32);
                        let xx = b.imin(xx2, nm1);
                        let si = b.imad(yy, n, xx);
                        let sa = b.addr_w(src, si);
                        let sv = b.ldg(sa, 0);
                        let nb = b.fmax(best, sv);
                        b.mov_to(best, nb);
                    });
                });
                let idx = b.imad(y, n, x);
                let oa = b.addr_w(dst, idx);
                b.stg(oa, 0, best);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    fn cpu_gicov(&self) -> Vec<f32> {
        let n = self.size as usize;
        let img = self.image();
        let offs = Self::offsets();
        let mut out = vec![0.0f32; n * n];
        for y in 0..n {
            for x in 0..n {
                let mut best = 0.0f32;
                for d in 0..DIRECTIONS as usize {
                    let mut sum = 0.0f32;
                    let mut sum2 = 0.0f32;
                    for s in 0..SAMPLES as usize {
                        let dy = offs[(d * SAMPLES as usize + s) * 2];
                        let dx = offs[(d * SAMPLES as usize + s) * 2 + 1];
                        let sy = (y as i32 + dy).clamp(0, n as i32 - 1) as usize;
                        let sx = (x as i32 + dx).clamp(0, n as i32 - 1) as usize;
                        let sv = img[sy * n + sx];
                        sum += sv;
                        sum2 = sv.mul_add(sv, sum2);
                    }
                    let mean = sum * (1.0 / SAMPLES as f32);
                    let msq = mean * mean;
                    let var = sum2 * (1.0 / SAMPLES as f32) - msq + 1e-4;
                    best = best.max(msq / var);
                }
                out[y * n + x] = best;
            }
        }
        out
    }
}

impl Benchmark for Leukocyte {
    fn name(&self) -> &'static str {
        "leukocyte"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let n = self.size;
        let words = n * n;
        let img_b = s.alloc_words(words)?;
        let off_b = s.alloc_words(DIRECTIONS * SAMPLES * 2)?;
        let sc_b = s.alloc_words(words)?;
        let di_b = s.alloc_words(words)?;
        s.write_f32(img_b, &self.image())?;
        let offs: Vec<u32> = Self::offsets().iter().map(|&v| v as u32).collect();
        s.write_u32(off_b, &offs)?;
        let grid = Dim3::xy(n.div_ceil(16), n.div_ceil(16));
        let block = Dim3::xy(16, 16);
        s.launch(
            &self.gicov_kernel(),
            grid,
            block,
            0,
            &[
                SParam::Buf(img_b),
                SParam::Buf(off_b),
                SParam::Buf(sc_b),
                SParam::U32(n),
            ],
        )?;
        s.sync()?;
        s.launch(
            &self.dilate_kernel(),
            grid,
            block,
            0,
            &[SParam::Buf(sc_b), SParam::Buf(di_b), SParam::U32(n)],
        )?;
        s.read_u32(di_b, words as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.size as usize;
        let score = self.cpu_gicov();
        let mut out = vec![0.0f32; n * n];
        for y in 0..n {
            for x in 0..n {
                let mut best = f32::MIN;
                for dy in 0..3usize {
                    for dx in 0..3usize {
                        let yy = (y + dy).saturating_sub(1).min(n - 1);
                        let xx = (x + dx).saturating_sub(1).min(n - 1);
                        best = best.max(score[yy * n + xx]);
                    }
                }
                out[y * n + x] = best;
            }
        }
        f32s_to_words(&out)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// The droop-runaway workload: a sign-flipped loop counter once
    /// livelocked whole campaigns here. The mined budget cuts the
    /// ~2³¹-iteration runaway promptly while clearing every legitimate
    /// perturbed run (regression-fenced in tests/campaign_matrix.rs; the
    /// mined corrupted-but-terminating tail is short).
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Leukocyte {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self { size: 32 }
    }
}

/// Registers `leukocyte` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "leukocyte", Leukocyte);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Leukocyte {
        Leukocyte { size: 24 }
    }

    #[test]
    fn matches_cpu_reference() {
        let l = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = l.run(&mut s).expect("runs");
        l.verify(&out).expect("matches reference");
    }

    #[test]
    fn scores_are_nonnegative() {
        let l = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = l.run(&mut s).expect("runs");
        for w in out {
            assert!(f32::from_bits(w) >= 0.0, "mean²/var is non-negative");
        }
    }

    #[test]
    fn dilation_dominates_raw_scores() {
        let l = small();
        let raw = l.cpu_gicov();
        let dilated: Vec<f32> = l.reference().iter().map(|w| f32::from_bits(*w)).collect();
        for (d, r) in dilated.iter().zip(&raw) {
            assert!(d >= r, "max-filter output below input");
        }
    }
}
