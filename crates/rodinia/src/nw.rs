//! `nw` — Needleman-Wunsch sequence alignment (Rodinia).
//!
//! Integer dynamic programming over an (N+1)×(N+1) score matrix, processed
//! as an anti-diagonal wavefront of 16×16 tiles; each tile is computed by a
//! 16-thread block sweeping its internal anti-diagonals with barriers.
//! Exact integer arithmetic (paper category: friendly, many dependent
//! launches).

use crate::data;
use crate::harness::{Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

const BS: u32 = 16;

/// Needleman-Wunsch benchmark.
#[derive(Debug, Clone)]
pub struct Nw {
    /// Sequence length (multiple of 16).
    pub n: u32,
    /// Gap penalty (positive).
    pub penalty: i32,
}

impl Default for Nw {
    fn default() -> Self {
        Self {
            n: 128,
            penalty: 10,
        }
    }
}

impl Nw {
    /// Random similarity scores in `[-10, 10]` for the (N+1)² matrix
    /// (row/column 0 unused, as in Rodinia).
    fn similarity(&self) -> Vec<i32> {
        let m = (self.n + 1) * (self.n + 1);
        data::u32_vec(0x9977, m as usize, 21)
            .into_iter()
            .map(|v| v as i32 - 10)
            .collect()
    }

    fn initial_scores(&self) -> Vec<i32> {
        let n1 = (self.n + 1) as usize;
        let mut s = vec![0i32; n1 * n1];
        for i in 1..n1 {
            s[i * n1] = -(i as i32) * self.penalty;
            s[i] = -(i as i32) * self.penalty;
        }
        s
    }

    /// Processes the tiles of one anti-diagonal. `first_bi` is the tile-row
    /// of the first block on the diagonal `d` (`bi + bj == d`).
    pub fn tile_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("nw_tile");
        let score = b.param(0);
        let sim = b.param(1);
        let n1 = b.param(2); // matrix stride (n + 1)
        let first_bi = b.param(3);
        let d = b.param(4);
        let penalty = b.param(5);
        let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
        let ctaid = b.special(higpu_sim::isa::SpecialReg::CtaidX);
        let bi = b.iadd(first_bi, ctaid);
        let bj = b.isub(d, bi);
        // Global coordinates of the tile's top-left DP cell (1-based).
        let row0 = b.imad(bi, BS, 1u32);
        let col0 = b.imad(bj, BS, 1u32);
        let neg_penalty = b.isub(penalty, penalty);
        b.isub_to(neg_penalty, neg_penalty, penalty);
        b.for_range(0u32, 2 * BS - 1, 1u32, |b, step| {
            // Thread t computes cell (t, step - t) of the tile.
            let jl = b.isub(step, tid);
            let j_ok_lo = b.isetp(CmpOp::Ge, jl, 0u32);
            b.if_(j_ok_lo, |b| {
                let j_ok_hi = b.isetp(CmpOp::Lt, jl, BS);
                b.if_(j_ok_hi, |b| {
                    let gi = b.iadd(row0, tid);
                    let gj = b.iadd(col0, jl);
                    let idx = b.imad(gi, n1, gj);
                    let im1 = b.isub(idx, n1);
                    let nw_i = b.isub(im1, 1u32);
                    let nwa = b.addr_w(score, nw_i);
                    let nwv = b.ldg(nwa, 0);
                    let na = b.addr_w(score, im1);
                    let nv = b.ldg(na, 0);
                    let wi = b.isub(idx, 1u32);
                    let wa = b.addr_w(score, wi);
                    let wv = b.ldg(wa, 0);
                    let sa = b.addr_w(sim, idx);
                    let sv = b.ldg(sa, 0);
                    let diag = b.iadd(nwv, sv);
                    let up = b.iadd(nv, neg_penalty);
                    let left = b.iadd(wv, neg_penalty);
                    let m1 = b.imax(diag, up);
                    let m2 = b.imax(m1, left);
                    let oa = b.addr_w(score, idx);
                    b.stg(oa, 0, m2);
                });
                b.release_preds(1);
            });
            b.release_preds(1);
            b.bar();
        });
        b.build().expect("well-formed").into_shared()
    }

    fn tiles(&self) -> u32 {
        self.n / BS
    }
}

impl Benchmark for Nw {
    fn name(&self) -> &'static str {
        "nw"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        assert_eq!(self.n % BS, 0, "sequence length must be a multiple of 16");
        let n1 = self.n + 1;
        let words = n1 * n1;
        let score_b = s.alloc_words(words)?;
        let sim_b = s.alloc_words(words)?;
        let scores: Vec<u32> = self.initial_scores().iter().map(|&v| v as u32).collect();
        let sims: Vec<u32> = self.similarity().iter().map(|&v| v as u32).collect();
        s.write_u32(score_b, &scores)?;
        s.write_u32(sim_b, &sims)?;
        let kernel = self.tile_kernel();
        let t = self.tiles();
        for d in 0..(2 * t - 1) {
            let first_bi = d.saturating_sub(t - 1);
            let last_bi = d.min(t - 1);
            let blocks = last_bi - first_bi + 1;
            s.launch(
                &kernel,
                Dim3::x(blocks),
                Dim3::x(BS),
                0,
                &[
                    SParam::Buf(score_b),
                    SParam::Buf(sim_b),
                    SParam::U32(n1),
                    SParam::U32(first_bi),
                    SParam::U32(d),
                    SParam::I32(self.penalty),
                ],
            )?;
            s.sync()?;
        }
        s.read_u32(score_b, words as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let n1 = (self.n + 1) as usize;
        let sim = self.similarity();
        let mut score = self.initial_scores();
        for i in 1..n1 {
            for j in 1..n1 {
                let diag = score[(i - 1) * n1 + (j - 1)] + sim[i * n1 + j];
                let up = score[(i - 1) * n1 + j] - self.penalty;
                let left = score[i * n1 + (j - 1)] - self.penalty;
                score[i * n1 + j] = diag.max(up).max(left);
            }
        }
        score.iter().map(|&v| v as u32).collect()
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }

    /// Anti-diagonal wavefront with a fixed number of diagonals, but a
    /// corrupted wavefront can replay whole passes: the mined
    /// corrupted-but-terminating p99.9 is 4.59× the fault-free makespan,
    /// so `nw` keeps the flat default budget rather than the mined 3×.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::DEFAULT_FTTI_MULTIPLIER
    }
}

impl Nw {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self { n: 32, penalty: 10 }
    }
}

/// Registers `nw` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "nw", Nw);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Nw {
        Nw { n: 48, penalty: 5 }
    }

    #[test]
    fn matches_cpu_reference_exactly() {
        let nw = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = nw.run(&mut s).expect("runs");
        nw.verify(&out).expect("matches reference");
    }

    #[test]
    fn wavefront_launch_count() {
        let nw = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        nw.run(&mut s).expect("runs");
        let t = nw.n / BS;
        assert_eq!(gpu.trace().kernels.len() as u32, 2 * t - 1);
    }

    #[test]
    fn scores_decrease_along_gap_runs() {
        let nw = small();
        let out = nw.reference();
        let n1 = (nw.n + 1) as usize;
        // First row/col are pure gaps: strictly decreasing by `penalty`.
        for (j, &cell) in out.iter().enumerate().take(n1).skip(1) {
            assert_eq!(cell as i32, -(j as i32) * nw.penalty);
        }
    }
}
