//! `nn` — nearest neighbor (Rodinia).
//!
//! Computes the Euclidean distance of every record (latitude/longitude) to a
//! target location; the host then selects the minimum. One very *short*
//! kernel (paper category: short), dominated by launch latency.

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Nearest-neighbor benchmark.
#[derive(Debug, Clone)]
pub struct Nn {
    /// Number of records.
    pub records: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Target latitude.
    pub target_lat: f32,
    /// Target longitude.
    pub target_lng: f32,
}

impl Default for Nn {
    fn default() -> Self {
        Self {
            records: 4096,
            threads_per_block: 256,
            target_lat: 30.0,
            target_lng: 90.0,
        }
    }
}

impl Nn {
    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let lat = data::f32_vec(0x4e4e01, self.records as usize, 0.0, 64.0);
        let lng = data::f32_vec(0x4e4e02, self.records as usize, 0.0, 180.0);
        (lat, lng)
    }

    /// The distance kernel.
    pub fn kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("nn_distance");
        let lat = b.param(0);
        let lng = b.param(1);
        let out = b.param(2);
        let n = b.param(3);
        let lat0 = b.param(4);
        let lng0 = b.param(5);
        let i = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, i, n);
        b.if_(in_range, |b| {
            let la = b.addr_w(lat, i);
            let lo = b.addr_w(lng, i);
            let lv = b.ldg(la, 0);
            let gv = b.ldg(lo, 0);
            let dlat = b.fsub(lv, lat0);
            let dlng = b.fsub(gv, lng0);
            let sq = b.fmul(dlat, dlat);
            let sum = b.ffma(dlng, dlng, sq);
            let d = b.fsqrt(sum);
            let oa = b.addr_w(out, i);
            b.stg(oa, 0, d);
        });
        b.build().expect("well-formed").into_shared()
    }

    fn grid(&self) -> Dim3 {
        Dim3::x(self.records.div_ceil(self.threads_per_block))
    }
}

impl Benchmark for Nn {
    fn name(&self) -> &'static str {
        "nn"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let (lat, lng) = self.inputs();
        let lat_b = s.alloc_words(self.records)?;
        let lng_b = s.alloc_words(self.records)?;
        let out_b = s.alloc_words(self.records)?;
        s.write_f32(lat_b, &lat)?;
        s.write_f32(lng_b, &lng)?;
        s.launch(
            &self.kernel(),
            self.grid(),
            Dim3::x(self.threads_per_block),
            0,
            &[
                SParam::Buf(lat_b),
                SParam::Buf(lng_b),
                SParam::Buf(out_b),
                SParam::U32(self.records),
                SParam::F32(self.target_lat),
                SParam::F32(self.target_lng),
            ],
        )?;
        s.read_u32(out_b, self.records as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let (lat, lng) = self.inputs();
        let out: Vec<f32> = lat
            .iter()
            .zip(&lng)
            .map(|(&la, &lo)| {
                let dlat = la - self.target_lat;
                let dlng = lo - self.target_lng;
                dlng.mul_add(dlng, dlat * dlat).sqrt()
            })
            .collect();
        f32s_to_words(&out)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// One short, launch-latency-dominated kernel; the deadline's fixed
    /// slack dominates the budget, so the mined multiplier is safe.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Nn {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            records: 256,
            threads_per_block: 64,
            ..Self::default()
        }
    }
}

/// Registers `nn` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "nn", Nn);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    #[test]
    fn matches_cpu_reference() {
        let nn = Nn {
            records: 512,
            ..Nn::default()
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = nn.run(&mut s).expect("runs");
        nn.verify(&out).expect("matches reference");
    }

    #[test]
    fn partial_last_block_is_handled() {
        let nn = Nn {
            records: 300, // not a multiple of 256
            ..Nn::default()
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = nn.run(&mut s).expect("runs");
        assert_eq!(out.len(), 300);
        nn.verify(&out).expect("matches reference");
    }

    #[test]
    fn deterministic_across_runs() {
        let nn = Nn {
            records: 256,
            ..Nn::default()
        };
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::paper_6sm());
            let mut s = SoloSession::new(&mut gpu);
            nn.run(&mut s).expect("runs")
        };
        assert_eq!(run(), run());
    }
}
