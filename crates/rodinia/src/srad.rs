//! `srad` — speckle reducing anisotropic diffusion (Rodinia).
//!
//! Two stencil kernels per iteration (gradient/diffusion-coefficient, then
//! the divergence update), with the diffusion scale `q0²` recomputed on the
//! host from the image statistics each iteration — the same host/device
//! interplay as the original (paper category: friendly).

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// SRAD benchmark.
#[derive(Debug, Clone)]
pub struct Srad {
    /// Image width/height.
    pub size: u32,
    /// Diffusion iterations.
    pub iterations: u32,
    /// Update rate λ.
    pub lambda: f32,
}

impl Default for Srad {
    fn default() -> Self {
        Self {
            size: 96,
            iterations: 6,
            lambda: 0.5,
        }
    }
}

impl Srad {
    fn image(&self) -> Vec<f32> {
        data::f32_vec(0x5aad, (self.size * self.size) as usize, 1.0, 2.0)
    }

    /// Kernel 1: directional derivatives and the diffusion coefficient.
    pub fn grad_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("srad_grad");
        let img = b.param(0);
        let dn = b.param(1);
        let ds = b.param(2);
        let de = b.param(3);
        let dw = b.param(4);
        let c = b.param(5);
        let n = b.param(6);
        let q0 = b.param(7);

        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let x_ok = b.isetp(CmpOp::Lt, x, n);
        b.if_(x_ok, |b| {
            let y_ok = b.isetp(CmpOp::Lt, y, n);
            b.if_(y_ok, |b| {
                let nm1 = b.isub(n, 1u32);
                let xm = b.isub(x, 1u32);
                let xw = b.imax(xm, 0u32);
                let xp = b.iadd(x, 1u32);
                let xe = b.imin(xp, nm1);
                let ym = b.isub(y, 1u32);
                let yn = b.imax(ym, 0u32);
                let yp = b.iadd(y, 1u32);
                let ys = b.imin(yp, nm1);
                let idx = b.imad(y, n, x);
                let load = |b: &mut KernelBuilder, yy, xx| {
                    let i = b.imad(yy, n, xx);
                    let a = b.addr_w(img, i);
                    b.ldg(a, 0)
                };
                let ca = b.addr_w(img, idx);
                let jc = b.ldg(ca, 0);
                let jn = load(b, yn, x);
                let js = load(b, ys, x);
                let je = load(b, y, xe);
                let jw = load(b, y, xw);
                let dnv = b.fsub(jn, jc);
                let dsv = b.fsub(js, jc);
                let dev = b.fsub(je, jc);
                let dwv = b.fsub(jw, jc);
                // G2 = (dn² + ds² + de² + dw²) / jc²
                let g1 = b.fmul(dnv, dnv);
                let g2 = b.ffma(dsv, dsv, g1);
                let g3 = b.ffma(dev, dev, g2);
                let g4 = b.ffma(dwv, dwv, g3);
                let jc2 = b.fmul(jc, jc);
                let g2n = b.fdiv(g4, jc2);
                // L = (dn + ds + de + dw) / jc
                let l1 = b.fadd(dnv, dsv);
                let l2 = b.fadd(l1, dev);
                let l3 = b.fadd(l2, dwv);
                let l = b.fdiv(l3, jc);
                // num = 0.5*G2 - L²/16 ; den = (1 + 0.25*L)² ; q = num/den
                let halfg = b.fmul(g2n, 0.5f32);
                let l_sq = b.fmul(l, l);
                let num = b.ffma(l_sq, -1.0f32 / 16.0, halfg);
                let lq = b.ffma(l, 0.25f32, 1.0f32);
                let den = b.fmul(lq, lq);
                let q = b.fdiv(num, den);
                // cval = 1 / (1 + (q - q0)/(q0*(1+q0)))
                let qdiff = b.fsub(q, q0);
                let q0p1 = b.fadd(q0, 1.0f32);
                let q0q = b.fmul(q0, q0p1);
                let ratio = b.fdiv(qdiff, q0q);
                let onep = b.fadd(ratio, 1.0f32);
                let cval = b.frcp(onep);
                // clamp to [0, 1]
                let clo = b.fmax(cval, 0.0f32);
                let cclamped = b.fmin(clo, 1.0f32);
                let store = |b: &mut KernelBuilder, buf, v| {
                    let a = b.addr_w(buf, idx);
                    b.stg(a, 0, v);
                };
                store(b, dn, dnv);
                store(b, ds, dsv);
                store(b, de, dev);
                store(b, dw, dwv);
                store(b, c, cclamped);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Kernel 2: divergence update
    /// `img += λ/4 · (cS·dS + cC·dN + cE·dE + cC·dW)`.
    pub fn update_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("srad_update");
        let img = b.param(0);
        let dn = b.param(1);
        let ds = b.param(2);
        let de = b.param(3);
        let dw = b.param(4);
        let c = b.param(5);
        let n = b.param(6);
        let lambda = b.param(7);

        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let x_ok = b.isetp(CmpOp::Lt, x, n);
        b.if_(x_ok, |b| {
            let y_ok = b.isetp(CmpOp::Lt, y, n);
            b.if_(y_ok, |b| {
                let nm1 = b.isub(n, 1u32);
                let xp = b.iadd(x, 1u32);
                let xe = b.imin(xp, nm1);
                let yp = b.iadd(y, 1u32);
                let ys = b.imin(yp, nm1);
                let idx = b.imad(y, n, x);
                let si = b.imad(ys, n, x);
                let ei = b.imad(y, n, xe);
                let load_at = |b: &mut KernelBuilder, buf, i| {
                    let a = b.addr_w(buf, i);
                    b.ldg(a, 0)
                };
                let cc = load_at(b, c, idx);
                let cs = load_at(b, c, si);
                let ce = load_at(b, c, ei);
                let dnv = load_at(b, dn, idx);
                let dsv = load_at(b, ds, idx);
                let dev = load_at(b, de, idx);
                let dwv = load_at(b, dw, idx);
                // div = cC*dN + cS*dS + cC*dW + cE*dE
                let t1 = b.fmul(cc, dnv);
                let t2 = b.ffma(cs, dsv, t1);
                let t3 = b.ffma(cc, dwv, t2);
                let div = b.ffma(ce, dev, t3);
                let ia = b.addr_w(img, idx);
                let jc = b.ldg(ia, 0);
                let rate = b.fmul(lambda, 0.25f32);
                let upd = b.ffma(div, rate, jc);
                b.stg(ia, 0, upd);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Host-side q0² for the current image (mean/variance of the image).
    fn q0sqr(img: &[f32]) -> f32 {
        let n = img.len() as f32;
        let sum: f32 = img.iter().sum();
        let sum2: f32 = img.iter().map(|v| v * v).sum();
        let mean = sum / n;
        let var = (sum2 / n) - mean * mean;
        var / (mean * mean)
    }

    fn cpu_iteration(&self, img: &mut [f32], q0: f32) {
        let n = self.size as usize;
        let mut dn = vec![0.0f32; n * n];
        let mut ds = vec![0.0f32; n * n];
        let mut de = vec![0.0f32; n * n];
        let mut dw = vec![0.0f32; n * n];
        let mut c = vec![0.0f32; n * n];
        for y in 0..n {
            for x in 0..n {
                let idx = y * n + x;
                let jc = img[idx];
                let jn = img[y.saturating_sub(1) * n + x];
                let js = img[(y + 1).min(n - 1) * n + x];
                let je = img[y * n + (x + 1).min(n - 1)];
                let jw = img[y * n + x.saturating_sub(1)];
                dn[idx] = jn - jc;
                ds[idx] = js - jc;
                de[idx] = je - jc;
                dw[idx] = jw - jc;
                let g2 = dn[idx].mul_add(dn[idx], 0.0);
                let g2 = ds[idx].mul_add(ds[idx], g2);
                let g2 = de[idx].mul_add(de[idx], g2);
                let g2 = dw[idx].mul_add(dw[idx], g2);
                let g2 = g2 / (jc * jc);
                let l = (((dn[idx] + ds[idx]) + de[idx]) + dw[idx]) / jc;
                let num = (l * l).mul_add(-1.0 / 16.0, g2 * 0.5);
                let lq = l.mul_add(0.25, 1.0);
                let q = num / (lq * lq);
                let cval = 1.0 / (1.0 + (q - q0) / (q0 * (q0 + 1.0)));
                c[idx] = cval.clamp(0.0, 1.0);
            }
        }
        for y in 0..n {
            for x in 0..n {
                let idx = y * n + x;
                let cs = c[(y + 1).min(n - 1) * n + x];
                let ce = c[y * n + (x + 1).min(n - 1)];
                let div = ce.mul_add(
                    de[idx],
                    c[idx].mul_add(dw[idx], cs.mul_add(ds[idx], c[idx] * dn[idx])),
                );
                img[idx] = div.mul_add(self.lambda * 0.25, img[idx]);
            }
        }
    }
}

impl Benchmark for Srad {
    fn name(&self) -> &'static str {
        "srad"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let n = self.size;
        let words = n * n;
        let img = s.alloc_words(words)?;
        let dn = s.alloc_words(words)?;
        let ds = s.alloc_words(words)?;
        let de = s.alloc_words(words)?;
        let dw = s.alloc_words(words)?;
        let c = s.alloc_words(words)?;
        s.write_f32(img, &self.image())?;
        let grad = self.grad_kernel();
        let update = self.update_kernel();
        let grid = Dim3::xy(n.div_ceil(16), n.div_ceil(16));
        let block = Dim3::xy(16, 16);
        for _ in 0..self.iterations {
            // Host recomputes the diffusion scale from the current image.
            let current = s.read_f32(img, words as usize)?;
            let q0 = Self::q0sqr(&current);
            s.launch(
                &grad,
                grid,
                block,
                0,
                &[
                    SParam::Buf(img),
                    SParam::Buf(dn),
                    SParam::Buf(ds),
                    SParam::Buf(de),
                    SParam::Buf(dw),
                    SParam::Buf(c),
                    SParam::U32(n),
                    SParam::F32(q0),
                ],
            )?;
            s.sync()?;
            s.launch(
                &update,
                grid,
                block,
                0,
                &[
                    SParam::Buf(img),
                    SParam::Buf(dn),
                    SParam::Buf(ds),
                    SParam::Buf(de),
                    SParam::Buf(dw),
                    SParam::Buf(c),
                    SParam::U32(n),
                    SParam::F32(self.lambda),
                ],
            )?;
            s.sync()?;
        }
        s.read_u32(img, words as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let mut img = self.image();
        for _ in 0..self.iterations {
            let q0 = Self::q0sqr(&img);
            self.cpu_iteration(&mut img, q0);
        }
        f32s_to_words(&img)
    }

    fn tolerance(&self) -> Tolerance {
        // Iterated nonlinear diffusion accumulates rounding differences in
        // the host-side q0 statistics; slightly wider than the default.
        Tolerance::Approx {
            rel: 2e-3,
            abs: 1e-4,
        }
    }

    /// Fixed diffusion iterations; the mined corrupted-but-terminating
    /// tail is short.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Srad {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            size: 32,
            iterations: 2,
            lambda: 0.5,
        }
    }
}

/// Registers `srad` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "srad", Srad);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Srad {
        Srad {
            size: 24,
            iterations: 3,
            lambda: 0.5,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let sr = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = sr.run(&mut s).expect("runs");
        sr.verify(&out).expect("matches reference");
    }

    #[test]
    fn diffusion_smooths_the_image() {
        let sr = small();
        let before = sr.image();
        let var = |v: &[f32]| {
            let m: f32 = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32
        };
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = sr.run(&mut s).expect("runs");
        let after: Vec<f32> = out.iter().map(|w| f32::from_bits(*w)).collect();
        assert!(
            var(&after) < var(&before),
            "anisotropic diffusion must reduce variance"
        );
    }

    #[test]
    fn two_kernels_per_iteration() {
        let sr = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        sr.run(&mut s).expect("runs");
        assert_eq!(gpu.trace().kernels.len() as u32, 2 * sr.iterations);
    }
}
