//! `lud` — blocked LU decomposition (Rodinia).
//!
//! Right-looking blocked factorization with 16×16 tiles: per step, a
//! single-block `diagonal` kernel (with intra-block barriers), `row` and
//! `col` panel kernels, and a 2D `internal` trailing update whose grid
//! shrinks each step. The internal kernel's large blocks are what gives lud
//! the paper's worst-case HALF overhead (~10%).

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

const BS: u32 = 16;

/// LU decomposition benchmark.
#[derive(Debug, Clone)]
pub struct Lud {
    /// Matrix dimension (multiple of 16).
    pub n: u32,
}

impl Default for Lud {
    fn default() -> Self {
        Self { n: 96 }
    }
}

impl Lud {
    fn matrix(&self) -> Vec<f32> {
        data::dominant_matrix(0x10d, self.n as usize)
    }

    /// Factors tile `(t,t)` in place (one 16-thread block, barriers between
    /// elimination steps).
    pub fn diagonal_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("lud_diagonal");
        let a = b.param(0);
        let n = b.param(1);
        let t = b.param(2);
        let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
        let base = b.imul(t, BS);
        // row index of this thread within the matrix
        let grow = b.iadd(base, tid);
        b.for_range(0u32, BS - 1, 1u32, |b, k| {
            let gk = b.iadd(base, k);
            let above = b.isetp(CmpOp::Gt, tid, k);
            b.if_(above, |b| {
                // a[grow][gk] /= a[gk][gk]
                let ri = b.imad(grow, n, gk);
                let ra = b.addr_w(a, ri);
                let di = b.imad(gk, n, gk);
                let da = b.addr_w(a, di);
                let rv = b.ldg(ra, 0);
                let dv = b.ldg(da, 0);
                let l = b.fdiv(rv, dv);
                b.stg(ra, 0, l);
            });
            b.release_preds(1);
            b.bar();
            let above2 = b.isetp(CmpOp::Gt, tid, k);
            b.if_(above2, |b| {
                let ri = b.imad(grow, n, gk);
                let ra = b.addr_w(a, ri);
                let l = b.ldg(ra, 0);
                let kp1 = b.iadd(k, 1u32);
                b.for_range(kp1, BS, 1u32, |b, j| {
                    let gj = b.iadd(base, j);
                    // a[grow][gj] -= l * a[gk][gj]
                    let ui = b.imad(gk, n, gj);
                    let ua = b.addr_w(a, ui);
                    let uv = b.ldg(ua, 0);
                    let ci = b.imad(grow, n, gj);
                    let ca = b.addr_w(a, ci);
                    let cv = b.ldg(ca, 0);
                    let prod = b.fmul(l, uv);
                    let upd = b.fsub(cv, prod);
                    b.stg(ca, 0, upd);
                });
            });
            b.release_preds(1);
            b.bar();
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Row-panel solve: tile `(t, t+1+ctaid)`, one thread per column —
    /// forward substitution with the unit-lower tile `(t,t)`.
    pub fn row_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("lud_row");
        let a = b.param(0);
        let n = b.param(1);
        let t = b.param(2);
        let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
        let ctaid = b.special(higpu_sim::isa::SpecialReg::CtaidX);
        let base = b.imul(t, BS);
        let jt = b.iadd(t, ctaid);
        b.iadd_to(jt, jt, 1u32);
        let cbase = b.imul(jt, BS);
        let col = b.iadd(cbase, tid);
        b.for_range(1u32, BS, 1u32, |b, k| {
            let gk = b.iadd(base, k);
            let acc_i = b.imad(gk, n, col);
            let acc_a = b.addr_w(a, acc_i);
            let acc = b.ldg(acc_a, 0);
            b.for_range(0u32, k, 1u32, |b, m| {
                let gm = b.iadd(base, m);
                let li = b.imad(gk, n, gm);
                let la = b.addr_w(a, li);
                let lv = b.ldg(la, 0);
                let ui = b.imad(gm, n, col);
                let ua = b.addr_w(a, ui);
                let uv = b.ldg(ua, 0);
                let prod = b.fmul(lv, uv);
                let next = b.fsub(acc, prod);
                b.mov_to(acc, next);
            });
            b.stg(acc_a, 0, acc);
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Column-panel solve: tile `(t+1+ctaid, t)`, one thread per row —
    /// right-division by the upper tile `(t,t)`.
    pub fn col_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("lud_col");
        let a = b.param(0);
        let n = b.param(1);
        let t = b.param(2);
        let tid = b.special(higpu_sim::isa::SpecialReg::TidX);
        let ctaid = b.special(higpu_sim::isa::SpecialReg::CtaidX);
        let base = b.imul(t, BS);
        let it = b.iadd(t, ctaid);
        b.iadd_to(it, it, 1u32);
        let rbase = b.imul(it, BS);
        let row = b.iadd(rbase, tid);
        b.for_range(0u32, BS, 1u32, |b, k| {
            let gk = b.iadd(base, k);
            let ci = b.imad(row, n, gk);
            let ca = b.addr_w(a, ci);
            let acc = b.ldg(ca, 0);
            b.for_range(0u32, k, 1u32, |b, m| {
                let gm = b.iadd(base, m);
                let li = b.imad(row, n, gm);
                let la = b.addr_w(a, li);
                let lv = b.ldg(la, 0);
                let ui = b.imad(gm, n, gk);
                let ua = b.addr_w(a, ui);
                let uv = b.ldg(ua, 0);
                let prod = b.fmul(lv, uv);
                let next = b.fsub(acc, prod);
                b.mov_to(acc, next);
            });
            let di = b.imad(gk, n, gk);
            let da = b.addr_w(a, di);
            let dv = b.ldg(da, 0);
            let l = b.fdiv(acc, dv);
            b.stg(ca, 0, l);
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Trailing update: tile `(t+1+ctaid.y, t+1+ctaid.x)`, 16×16 threads:
    /// `a[r][c] -= Σ_k L[r][k] · U[k][c]`.
    pub fn internal_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("lud_internal");
        let a = b.param(0);
        let n = b.param(1);
        let t = b.param(2);
        let tx = b.special(higpu_sim::isa::SpecialReg::TidX);
        let ty = b.special(higpu_sim::isa::SpecialReg::TidY);
        let bx = b.special(higpu_sim::isa::SpecialReg::CtaidX);
        let by = b.special(higpu_sim::isa::SpecialReg::CtaidY);
        let base = b.imul(t, BS);
        let jt = b.iadd(t, bx);
        b.iadd_to(jt, jt, 1u32);
        let it = b.iadd(t, by);
        b.iadd_to(it, it, 1u32);
        let row = b.imad(it, BS, ty);
        let col = b.imad(jt, BS, tx);
        let ci = b.imad(row, n, col);
        let ca = b.addr_w(a, ci);
        let acc = b.ldg(ca, 0);
        b.for_range(0u32, BS, 1u32, |b, k| {
            let gk = b.iadd(base, k);
            let li = b.imad(row, n, gk);
            let la = b.addr_w(a, li);
            let lv = b.ldg(la, 0);
            let ui = b.imad(gk, n, col);
            let ua = b.addr_w(a, ui);
            let uv = b.ldg(ua, 0);
            let prod = b.fmul(lv, uv);
            let next = b.fsub(acc, prod);
            b.mov_to(acc, next);
        });
        b.stg(ca, 0, acc);
        b.build().expect("well-formed").into_shared()
    }

    fn tiles(&self) -> u32 {
        self.n / BS
    }
}

impl Benchmark for Lud {
    fn name(&self) -> &'static str {
        "lud"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        assert_eq!(self.n % BS, 0, "matrix size must be a multiple of 16");
        let n = self.n;
        let a = s.alloc_words(n * n)?;
        s.write_f32(a, &self.matrix())?;
        let diag = self.diagonal_kernel();
        let rowk = self.row_kernel();
        let colk = self.col_kernel();
        let intern = self.internal_kernel();
        let tiles = self.tiles();
        for t in 0..tiles {
            let params = [SParam::Buf(a), SParam::U32(n), SParam::U32(t)];
            s.launch(&diag, Dim3::x(1), Dim3::x(BS), 0, &params)?;
            s.sync()?;
            let rest = tiles - t - 1;
            if rest == 0 {
                break;
            }
            s.launch(&rowk, Dim3::x(rest), Dim3::x(BS), 0, &params)?;
            s.launch(&colk, Dim3::x(rest), Dim3::x(BS), 0, &params)?;
            s.sync()?;
            s.launch(&intern, Dim3::xy(rest, rest), Dim3::xy(BS, BS), 0, &params)?;
            s.sync()?;
        }
        s.read_u32(a, (n * n) as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.n as usize;
        let bs = BS as usize;
        let mut a = self.matrix();
        let tiles = n / bs;
        for t in 0..tiles {
            let base = t * bs;
            // diagonal tile
            for k in 0..bs - 1 {
                let gk = base + k;
                for r in k + 1..bs {
                    let gr = base + r;
                    let l = a[gr * n + gk] / a[gk * n + gk];
                    a[gr * n + gk] = l;
                    for j in k + 1..bs {
                        let gj = base + j;
                        a[gr * n + gj] -= l * a[gk * n + gj];
                    }
                }
            }
            // row panels
            for jt in t + 1..tiles {
                for c in 0..bs {
                    let col = jt * bs + c;
                    for k in 1..bs {
                        let gk = base + k;
                        let mut acc = a[gk * n + col];
                        for m in 0..k {
                            let gm = base + m;
                            acc -= a[gk * n + gm] * a[gm * n + col];
                        }
                        a[gk * n + col] = acc;
                    }
                }
            }
            // column panels
            for it in t + 1..tiles {
                for r in 0..bs {
                    let row = it * bs + r;
                    for k in 0..bs {
                        let gk = base + k;
                        let mut acc = a[row * n + gk];
                        for m in 0..k {
                            let gm = base + m;
                            acc -= a[row * n + gm] * a[gm * n + gk];
                        }
                        a[row * n + gk] = acc / a[gk * n + gk];
                    }
                }
            }
            // trailing update
            for it in t + 1..tiles {
                for jt in t + 1..tiles {
                    for r in 0..bs {
                        for c in 0..bs {
                            let row = it * bs + r;
                            let col = jt * bs + c;
                            let mut acc = a[row * n + col];
                            for k in 0..bs {
                                let gk = base + k;
                                acc -= a[row * n + gk] * a[gk * n + col];
                            }
                            a[row * n + col] = acc;
                        }
                    }
                }
            }
        }
        f32s_to_words(&a)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Approx {
            rel: 1e-3,
            abs: 1e-4,
        }
    }

    /// The factorization sweep count is fixed by the matrix size, but
    /// corrupted pivots perturb the elimination structure hard: the mined
    /// corrupted-but-terminating p99.9 is 7.28× the fault-free makespan —
    /// the longest tail in the registry — so `lud` keeps the flat default
    /// budget rather than the mined 3×.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::DEFAULT_FTTI_MULTIPLIER
    }
}

impl Lud {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self { n: 32 }
    }
}

/// Registers `lud` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "lud", Lud);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Lud {
        Lud { n: 48 }
    }

    #[test]
    fn matches_cpu_reference() {
        let l = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = l.run(&mut s).expect("runs");
        l.verify(&out).expect("matches reference");
    }

    #[test]
    fn factorization_reconstructs_the_matrix() {
        // L (unit diag) times U must reproduce the input.
        let l = small();
        let n = l.n as usize;
        let orig = l.matrix();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = l.run(&mut s).expect("runs");
        let lu: Vec<f32> = out.iter().map(|w| f32::from_bits(*w)).collect();
        let mut max_rel = 0.0f32;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f64;
                for k in 0..n {
                    let lv = if k < i {
                        lu[i * n + k]
                    } else if k == i {
                        1.0
                    } else {
                        0.0
                    };
                    let uv = if k <= j { lu[k * n + j] } else { 0.0 };
                    acc += f64::from(lv) * f64::from(uv);
                }
                let rel = (acc as f32 - orig[i * n + j]).abs() / orig[i * n + j].abs().max(1.0);
                max_rel = max_rel.max(rel);
            }
        }
        assert!(max_rel < 1e-2, "L*U deviates from A by {max_rel}");
    }

    #[test]
    fn kernel_sequence_shrinks() {
        let l = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        l.run(&mut s).expect("runs");
        let tiles = l.n / BS;
        // per step t < tiles-1: diag + row + col + internal; final step: diag.
        let expected = 4 * (tiles - 1) + 1;
        assert_eq!(gpu.trace().kernels.len() as u32, expected);
    }
}
