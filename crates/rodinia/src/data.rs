//! Seeded, deterministic input generators shared by the benchmarks.
//!
//! The flat-vector generators are memoized: campaign runs re-create each
//! workload thousands of times with identical `(seed, shape)` arguments, and
//! regenerating the inputs through the PRNG on every trial showed up as a
//! double-digit share of the fault-campaign profile. The cache hands back a
//! memcpy of the first generation — bit-identical by determinism of the
//! generators, so observable behaviour is unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// Lazily initialized memoization table keyed by generator arguments.
type Memo<K, V> = Mutex<Option<HashMap<K, Vec<V>>>>;

/// Memoization table for [`f32_vec`]: `(seed, n, lo bits, hi bits) → data`.
static F32_CACHE: Memo<(u64, usize, u32, u32), f32> = Mutex::new(None);

/// Memoization table for [`u32_vec`]: `(seed, n, max) → data`.
static U32_CACHE: Memo<(u64, usize, u32), u32> = Mutex::new(None);

/// Uniform `f32` values in `[lo, hi)`.
pub fn f32_vec(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut cache = F32_CACHE.lock().expect("data cache poisoned");
    cache
        .get_or_insert_with(HashMap::new)
        .entry((seed, n, lo.to_bits(), hi.to_bits()))
        .or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| rng.gen_range(lo..hi)).collect()
        })
        .clone()
}

/// Uniform `u32` values in `[0, max)`.
pub fn u32_vec(seed: u64, n: usize, max: u32) -> Vec<u32> {
    let mut cache = U32_CACHE.lock().expect("data cache poisoned");
    cache
        .get_or_insert_with(HashMap::new)
        .entry((seed, n, max))
        .or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| rng.gen_range(0..max)).collect()
        })
        .clone()
}

/// A connected random graph in CSR form: `(offsets, edges)` with
/// `offsets.len() == nodes + 1`.
///
/// Node `i > 0` always has an edge to a random earlier node (connectivity),
/// plus `extra_degree` random edges. Edges are directed.
pub fn csr_graph(seed: u64, nodes: usize, extra_degree: usize) -> (Vec<u32>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes];
    for i in 1..nodes {
        let parent = rng.gen_range(0..i);
        adj[parent].push(i as u32);
    }
    for _ in 0..nodes * extra_degree {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        adj[a].push(b as u32);
    }
    let mut offsets = Vec::with_capacity(nodes + 1);
    let mut edges = Vec::new();
    offsets.push(0u32);
    for a in adj {
        edges.extend_from_slice(&a);
        offsets.push(edges.len() as u32);
    }
    (offsets, edges)
}

/// A diagonally dominant matrix (safe for unpivoted elimination), row-major.
pub fn dominant_matrix(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    for i in 0..n {
        m[i * n + i] = n as f32 + rng.gen_range(1.0f32..2.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(f32_vec(7, 16, 0.0, 1.0), f32_vec(7, 16, 0.0, 1.0));
        assert_eq!(u32_vec(7, 16, 100), u32_vec(7, 16, 100));
        assert_eq!(csr_graph(7, 64, 2), csr_graph(7, 64, 2));
        assert_eq!(dominant_matrix(7, 8), dominant_matrix(7, 8));
    }

    #[test]
    fn f32_vec_respects_bounds() {
        for v in f32_vec(1, 1000, -2.0, 3.0) {
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn csr_graph_is_well_formed() {
        let (offsets, edges) = csr_graph(3, 128, 3);
        assert_eq!(offsets.len(), 129);
        assert_eq!(*offsets.last().expect("non-empty") as usize, edges.len());
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets monotone");
        }
        for &e in &edges {
            assert!((e as usize) < 128, "edge targets in range");
        }
    }

    #[test]
    fn csr_graph_reaches_every_node_from_root() {
        let (offsets, edges) = csr_graph(11, 256, 0);
        // BFS from node 0 must reach everyone (spanning-tree edges).
        let mut seen = vec![false; 256];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            for e in offsets[n]..offsets[n + 1] {
                let t = edges[e as usize] as usize;
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dominant_matrix_has_large_diagonal() {
        let n = 16;
        let m = dominant_matrix(5, n);
        for i in 0..n {
            let diag = m[i * n + i].abs();
            let off: f32 = (0..n).filter(|&j| j != i).map(|j| m[i * n + j].abs()).sum();
            assert!(diag > off, "row {i} dominant");
        }
    }
}
