//! `streamcluster` — online clustering (Rodinia).
//!
//! The `pgain`-style kernel evaluates, for every point, the distance to a
//! set of candidate centers (the dominant computation of streamcluster) and
//! records the best candidate; the host then swaps candidate sets and
//! iterates. Long, kernel-dominated execution — the other benchmark the
//! paper singles out in Fig. 5 as visibly hurt by redundancy.

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Streamcluster benchmark.
#[derive(Debug, Clone)]
pub struct Streamcluster {
    /// Points.
    pub points: u32,
    /// Dimensions per point.
    pub dims: u32,
    /// Candidate centers evaluated per round.
    pub candidates: u32,
    /// Rounds (candidate-set swaps).
    pub rounds: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl Default for Streamcluster {
    fn default() -> Self {
        Self {
            points: 8192,
            dims: 16,
            candidates: 24,
            rounds: 24,
            threads_per_block: 192,
        }
    }
}

impl Streamcluster {
    fn point_data(&self) -> Vec<f32> {
        data::f32_vec(0x5c01, (self.points * self.dims) as usize, 0.0, 1.0)
    }

    fn candidate_data(&self, round: u32) -> Vec<f32> {
        data::f32_vec(
            0x5c10 + u64::from(round),
            (self.candidates * self.dims) as usize,
            0.0,
            1.0,
        )
    }

    /// The pgain kernel: per point, squared distance to every candidate;
    /// keeps the running minimum across rounds.
    pub fn kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("sc_pgain");
        let points = b.param(0);
        let cands = b.param(1);
        let best = b.param(2);
        let n = b.param(3);
        let dims = b.param(4);
        let ncand = b.param(5);
        let i = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, i, n);
        b.if_(in_range, |b| {
            let pbase = b.imul(i, dims);
            let ba = b.addr_w(best, i);
            let best_d = b.ldg(ba, 0);
            b.for_range(0u32, ncand, 1u32, |b, c| {
                let cbase = b.imul(c, dims);
                let acc = b.mov(0.0f32);
                b.for_range(0u32, dims, 1u32, |b, f| {
                    let pi = b.iadd(pbase, f);
                    let pa = b.addr_w(points, pi);
                    let pv = b.ldg(pa, 0);
                    let ci = b.iadd(cbase, f);
                    let ca = b.addr_w(cands, ci);
                    let cv = b.ldg(ca, 0);
                    let d = b.fsub(pv, cv);
                    b.ffma_to(acc, d, d, acc);
                });
                let nb = b.fmin(best_d, acc);
                b.mov_to(best_d, nb);
            });
            b.stg(ba, 0, best_d);
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl Benchmark for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let pts = self.point_data();
        let p_b = s.alloc_words(self.points * self.dims)?;
        let c_b = s.alloc_words(self.candidates * self.dims)?;
        let best_b = s.alloc_words(self.points)?;
        s.write_f32(p_b, &pts)?;
        s.write_f32(best_b, &vec![f32::MAX; self.points as usize])?;
        let kernel = self.kernel();
        let grid = Dim3::x(self.points.div_ceil(self.threads_per_block));
        let block = Dim3::x(self.threads_per_block);
        for round in 0..self.rounds {
            s.write_f32(c_b, &self.candidate_data(round))?;
            s.launch(
                &kernel,
                grid,
                block,
                0,
                &[
                    SParam::Buf(p_b),
                    SParam::Buf(c_b),
                    SParam::Buf(best_b),
                    SParam::U32(self.points),
                    SParam::U32(self.dims),
                    SParam::U32(self.candidates),
                ],
            )?;
            s.sync()?;
        }
        s.read_u32(best_b, self.points as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let pts = self.point_data();
        let d = self.dims as usize;
        let mut best = vec![f32::MAX; self.points as usize];
        for round in 0..self.rounds {
            let cands = self.candidate_data(round);
            for (i, b) in best.iter_mut().enumerate() {
                for c in 0..self.candidates as usize {
                    let mut acc = 0.0f32;
                    for f in 0..d {
                        let diff = pts[i * d + f] - cands[c * d + f];
                        acc = diff.mul_add(diff, acc);
                    }
                    *b = b.min(acc);
                }
            }
        }
        f32s_to_words(&best)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// Fixed candidate-evaluation passes; the mined
    /// corrupted-but-terminating tail is short.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Streamcluster {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            points: 256,
            dims: 4,
            candidates: 6,
            rounds: 4,
            threads_per_block: 64,
        }
    }
}

/// Registers `streamcluster` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "streamcluster", Streamcluster);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Streamcluster {
        Streamcluster {
            points: 256,
            dims: 4,
            candidates: 8,
            rounds: 3,
            threads_per_block: 64,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let sc = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = sc.run(&mut s).expect("runs");
        sc.verify(&out).expect("matches reference");
    }

    #[test]
    fn best_distances_shrink_with_more_rounds() {
        let short = Streamcluster {
            rounds: 1,
            ..small()
        };
        let long = Streamcluster {
            rounds: 3,
            ..small()
        };
        let sum = |b: &Streamcluster| -> f64 {
            b.reference()
                .iter()
                .map(|w| f64::from(f32::from_bits(*w)))
                .sum()
        };
        assert!(sum(&long) <= sum(&short), "minima are monotone in rounds");
    }

    #[test]
    fn distances_are_finite_after_first_round() {
        let sc = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = sc.run(&mut s).expect("runs");
        for w in out {
            assert!(f32::from_bits(w).is_finite());
        }
    }
}
