//! `gaussian` — Gaussian elimination (Rodinia).
//!
//! For every elimination step `t`, kernel `Fan1` computes the column of
//! multipliers and kernel `Fan2` updates the trailing submatrix — a long
//! host-driven sequence of small kernels (paper category: short kernels,
//! iterated).

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Gaussian elimination benchmark.
#[derive(Debug, Clone)]
pub struct Gaussian {
    /// Matrix dimension.
    pub n: u32,
    /// Threads per block (Fan1; Fan2 uses a 16×16 block).
    pub threads_per_block: u32,
}

impl Default for Gaussian {
    fn default() -> Self {
        Self {
            n: 48,
            threads_per_block: 128,
        }
    }
}

impl Gaussian {
    fn matrix(&self) -> Vec<f32> {
        data::dominant_matrix(0x9a55, self.n as usize)
    }

    /// `Fan1`: multipliers `m[row] = a[row][t] / a[t][t]` for `row > t`.
    pub fn fan1_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("gaussian_fan1");
        let a = b.param(0);
        let m = b.param(1);
        let n = b.param(2);
        let t = b.param(3);
        let i = b.global_tid_x();
        let limit = b.isub(n, t);
        let limit1 = b.isub(limit, 1u32);
        let in_range = b.isetp(CmpOp::Lt, i, limit1);
        b.if_(in_range, |b| {
            let row = b.iadd(i, t);
            b.iadd_to(row, row, 1u32);
            // a[row*n + t]
            let ri = b.imad(row, n, t);
            let ra = b.addr_w(a, ri);
            let a_it = b.ldg(ra, 0);
            // a[t*n + t]
            let ti = b.imad(t, n, t);
            let ta = b.addr_w(a, ti);
            let a_tt = b.ldg(ta, 0);
            let mult = b.fdiv(a_it, a_tt);
            let ma = b.addr_w(m, row);
            b.stg(ma, 0, mult);
        });
        b.build().expect("well-formed").into_shared()
    }

    /// `Fan2`: trailing update `a[row][col] -= m[row] * a[t][col]`.
    pub fn fan2_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("gaussian_fan2");
        let a = b.param(0);
        let m = b.param(1);
        let n = b.param(2);
        let t = b.param(3);
        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let cols = b.isub(n, t);
        let rows = b.isub(cols, 1u32);
        let x_ok = b.isetp(CmpOp::Lt, x, cols);
        b.if_(x_ok, |b| {
            let y_ok = b.isetp(CmpOp::Lt, y, rows);
            b.if_(y_ok, |b| {
                let row = b.iadd(y, t);
                b.iadd_to(row, row, 1u32);
                let col = b.iadd(x, t);
                let ma = b.addr_w(m, row);
                let mv = b.ldg(ma, 0);
                let ti = b.imad(t, n, col);
                let ta = b.addr_w(a, ti);
                let pivot = b.ldg(ta, 0);
                let ri = b.imad(row, n, col);
                let ra = b.addr_w(a, ri);
                let cur = b.ldg(ra, 0);
                let prod = b.fmul(mv, pivot);
                let upd = b.fsub(cur, prod);
                b.stg(ra, 0, upd);
            });
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl Benchmark for Gaussian {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let n = self.n;
        let a_b = s.alloc_words(n * n)?;
        let m_b = s.alloc_words(n)?;
        s.write_f32(a_b, &self.matrix())?;
        s.write_f32(m_b, &vec![0.0; n as usize])?;

        let fan1 = self.fan1_kernel();
        let fan2 = self.fan2_kernel();
        for t in 0..n - 1 {
            let remaining = n - t - 1;
            s.launch(
                &fan1,
                Dim3::x(remaining.div_ceil(self.threads_per_block)),
                Dim3::x(self.threads_per_block),
                0,
                &[
                    SParam::Buf(a_b),
                    SParam::Buf(m_b),
                    SParam::U32(n),
                    SParam::U32(t),
                ],
            )?;
            s.sync()?;
            let gx = (n - t).div_ceil(16);
            let gy = remaining.div_ceil(16);
            s.launch(
                &fan2,
                Dim3::xy(gx, gy),
                Dim3::xy(16, 16),
                0,
                &[
                    SParam::Buf(a_b),
                    SParam::Buf(m_b),
                    SParam::U32(n),
                    SParam::U32(t),
                ],
            )?;
            s.sync()?;
        }
        s.read_u32(a_b, (n * n) as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.n as usize;
        let mut a = self.matrix();
        let mut m = vec![0.0f32; n];
        for t in 0..n - 1 {
            for (row, mr) in m.iter_mut().enumerate().take(n).skip(t + 1) {
                *mr = a[row * n + t] / a[t * n + t];
            }
            for row in t + 1..n {
                for col in t..n {
                    a[row * n + col] -= m[row] * a[t * n + col];
                }
            }
        }
        f32s_to_words(&a)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// Elimination rounds are fixed by the matrix size; the mined
    /// corrupted-but-terminating tail is short.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Gaussian {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            n: 16,
            threads_per_block: 32,
        }
    }
}

/// Registers `gaussian` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "gaussian", Gaussian);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Gaussian {
        Gaussian {
            n: 24,
            threads_per_block: 64,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let g = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = g.run(&mut s).expect("runs");
        g.verify(&out).expect("matches reference");
    }

    #[test]
    fn result_is_upper_triangular() {
        let g = small();
        let n = g.n as usize;
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = g.run(&mut s).expect("runs");
        for row in 1..n {
            for col in 0..row {
                let v = f32::from_bits(out[row * n + col]);
                assert!(
                    v.abs() < 1e-3,
                    "below-diagonal element [{row}][{col}] = {v} not eliminated"
                );
            }
        }
    }

    #[test]
    fn launches_two_kernels_per_step() {
        let g = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        g.run(&mut s).expect("runs");
        assert_eq!(
            gpu.trace().kernels.len() as u32,
            2 * (g.n - 1),
            "Fan1+Fan2 per elimination step"
        );
    }
}
