//! `hotspot` — thermal simulation stencil (Rodinia).
//!
//! Iterative 5-point stencil over a 2D temperature grid with a power map;
//! ping-pong buffers, one kernel launch per time step (paper category:
//! friendly).

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Hotspot benchmark.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Grid width (and height).
    pub size: u32,
    /// Time steps.
    pub steps: u32,
    /// Rx/Ry/Rz thermal coefficients.
    pub rx: f32,
    /// See `rx`.
    pub ry: f32,
    /// See `rx`.
    pub rz: f32,
    /// Thermal capacitance step.
    pub cap: f32,
    /// Ambient temperature.
    pub amb: f32,
}

impl Default for Hotspot {
    fn default() -> Self {
        Self {
            size: 256,
            steps: 2,
            rx: 0.1,
            ry: 0.1,
            rz: 0.05,
            cap: 0.5,
            amb: 80.0,
        }
    }
}

impl Hotspot {
    fn temp_data(&self) -> Vec<f32> {
        data::f32_vec(0x807, (self.size * self.size) as usize, 320.0, 345.0)
    }

    fn power_data(&self) -> Vec<f32> {
        data::f32_vec(0x808, (self.size * self.size) as usize, 0.0, 0.2)
    }

    /// One stencil step: `out = step(temp, power)`.
    pub fn kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("hotspot_step");
        let temp = b.param(0);
        let power = b.param(1);
        let out = b.param(2);
        let w = b.param(3);
        let h = b.param(4);
        let rx = b.param(5);
        let ry = b.param(6);
        let rz = b.param(7);
        let cap = b.param(8);
        let amb = b.param(9);

        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let x_ok = b.isetp(CmpOp::Lt, x, w);
        b.if_(x_ok, |b| {
            let y_ok = b.isetp(CmpOp::Lt, y, h);
            b.if_(y_ok, |b| {
                let wm1 = b.isub(w, 1u32);
                let hm1 = b.isub(h, 1u32);
                // Clamped neighbor coordinates (no divergence).
                let xm = b.isub(x, 1u32);
                let xw = b.imax(xm, 0u32);
                let xp = b.iadd(x, 1u32);
                let xe = b.imin(xp, wm1);
                let ym = b.isub(y, 1u32);
                let yn = b.imax(ym, 0u32);
                let yp = b.iadd(y, 1u32);
                let ys = b.imin(yp, hm1);

                let idx = b.imad(y, w, x);
                let addr_of = |b: &mut KernelBuilder, yy, xx| {
                    let i = b.imad(yy, w, xx);
                    b.addr_w(temp, i)
                };
                let ca = b.addr_w(temp, idx);
                let tc = b.ldg(ca, 0);
                let na = addr_of(b, yn, x);
                let tn = b.ldg(na, 0);
                let sa = addr_of(b, ys, x);
                let ts = b.ldg(sa, 0);
                let ea = addr_of(b, y, xe);
                let te = b.ldg(ea, 0);
                let wa = addr_of(b, y, xw);
                let tw = b.ldg(wa, 0);
                let pa = b.addr_w(power, idx);
                let pv = b.ldg(pa, 0);

                // vertical = (tn + ts) - 2*tc ; horizontal = (te + tw) - 2*tc
                let vsum = b.fadd(tn, ts);
                let vterm = b.ffma(tc, -2.0f32, vsum);
                let hsum = b.fadd(te, tw);
                let hterm = b.ffma(tc, -2.0f32, hsum);
                let aterm = b.fsub(amb, tc);
                // delta = power + vterm*ry + hterm*rx + aterm*rz
                let acc = b.ffma(vterm, ry, pv);
                let acc2 = b.ffma(hterm, rx, acc);
                let acc3 = b.ffma(aterm, rz, acc2);
                let result = b.ffma(acc3, cap, tc);
                let oa = b.addr_w(out, idx);
                b.stg(oa, 0, result);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    fn step_cpu(&self, temp: &[f32], power: &[f32], out: &mut [f32]) {
        let n = self.size as usize;
        for y in 0..n {
            for x in 0..n {
                let idx = y * n + x;
                let tc = temp[idx];
                let tn = temp[y.saturating_sub(1) * n + x];
                let ts = temp[(y + 1).min(n - 1) * n + x];
                let te = temp[y * n + (x + 1).min(n - 1)];
                let tw = temp[y * n + x.saturating_sub(1)];
                let vterm = tc.mul_add(-2.0, tn + ts);
                let hterm = tc.mul_add(-2.0, te + tw);
                let aterm = self.amb - tc;
                let acc = vterm.mul_add(self.ry, power[idx]);
                let acc2 = hterm.mul_add(self.rx, acc);
                let acc3 = aterm.mul_add(self.rz, acc2);
                out[idx] = acc3.mul_add(self.cap, tc);
            }
        }
    }
}

impl Benchmark for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let n = self.size;
        let words = n * n;
        let t0 = s.alloc_words(words)?;
        let t1 = s.alloc_words(words)?;
        let p = s.alloc_words(words)?;
        s.write_f32(t0, &self.temp_data())?;
        s.write_f32(p, &self.power_data())?;
        let kernel = self.kernel();
        let grid = Dim3::xy(n.div_ceil(16), n.div_ceil(16));
        let block = Dim3::xy(16, 16);
        let mut src = t0;
        let mut dst = t1;
        for _ in 0..self.steps {
            s.launch(
                &kernel,
                grid,
                block,
                0,
                &[
                    SParam::Buf(src),
                    SParam::Buf(p),
                    SParam::Buf(dst),
                    SParam::U32(n),
                    SParam::U32(n),
                    SParam::F32(self.rx),
                    SParam::F32(self.ry),
                    SParam::F32(self.rz),
                    SParam::F32(self.cap),
                    SParam::F32(self.amb),
                ],
            )?;
            s.sync()?;
            std::mem::swap(&mut src, &mut dst);
        }
        s.read_u32(src, words as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let mut cur = self.temp_data();
        let power = self.power_data();
        let mut next = vec![0.0f32; cur.len()];
        for _ in 0..self.steps {
            self.step_cpu(&cur, &power, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        f32s_to_words(&cur)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// Fixed stencil iterations; corrupted temperatures cannot
    /// extend them, so the mined budget holds.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Hotspot {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            size: 32,
            steps: 2,
            ..Self::default()
        }
    }
}

/// Registers `hotspot` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "hotspot", Hotspot);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Hotspot {
        Hotspot {
            size: 32,
            steps: 3,
            ..Hotspot::default()
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let h = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = h.run(&mut s).expect("runs");
        h.verify(&out).expect("matches reference");
    }

    #[test]
    fn one_launch_per_step() {
        let h = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        h.run(&mut s).expect("runs");
        assert_eq!(gpu.trace().kernels.len() as u32, h.steps);
    }

    #[test]
    fn temperatures_stay_physical() {
        let h = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = h.run(&mut s).expect("runs");
        for w in out {
            let v = f32::from_bits(w);
            assert!(v.is_finite());
            assert!((0.0..1000.0).contains(&v), "temperature {v} diverged");
        }
    }
}
