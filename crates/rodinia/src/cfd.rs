//! `cfd` — computational fluid dynamics (Rodinia euler3d, reduced to a 1D
//! Euler shock tube with the same kernel structure).
//!
//! Per time step: a flux kernel (Rusanov/local Lax-Friedrichs interface
//! fluxes, with sound-speed square roots and divisions — the hot math of
//! euler3d's `compute_flux`) and an update kernel. Long, kernel-dominated
//! execution: one of the two benchmarks whose end-to-end time the paper
//! shows is visibly hurt by redundancy (Fig. 5).

use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

const GAMMA: f32 = 1.4;

/// CFD benchmark (1D Euler, 3 conserved variables per cell).
#[derive(Debug, Clone)]
pub struct Cfd {
    /// Cells.
    pub cells: u32,
    /// Time steps.
    pub steps: u32,
    /// dt/dx.
    pub dtdx: f32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl Default for Cfd {
    fn default() -> Self {
        Self {
            cells: 8192,
            steps: 120,
            dtdx: 0.1,
            threads_per_block: 192,
        }
    }
}

impl Cfd {
    /// Sod shock tube initial condition: `[rho, rho*u, E]` per cell.
    fn initial_state(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let n = self.cells as usize;
        let mut rho = vec![0.125f32; n];
        let mut mom = vec![0.0f32; n];
        let mut ene = vec![0.25f32; n];
        for i in 0..n / 2 {
            rho[i] = 1.0;
            mom[i] = 0.0;
            ene[i] = 2.5;
        }
        (rho, mom, ene)
    }

    /// Flux kernel: Rusanov flux at interface `i` (between cells `i-1`,`i`).
    pub fn flux_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("cfd_flux");
        let rho = b.param(0);
        let mom = b.param(1);
        let ene = b.param(2);
        let f_rho = b.param(3);
        let f_mom = b.param(4);
        let f_ene = b.param(5);
        let n = b.param(6);
        let i = b.global_tid_x();
        let lo = b.isetp(CmpOp::Gt, i, 0u32);
        b.if_(lo, |b| {
            let hi = b.isetp(CmpOp::Lt, i, n);
            b.if_(hi, |b| {
                let im1 = b.isub(i, 1u32);
                // per-side primitive recovery + physical flux
                let side = |b: &mut KernelBuilder, idx| {
                    let ra = b.addr_w(rho, idx);
                    let ma = b.addr_w(mom, idx);
                    let ea = b.addr_w(ene, idx);
                    let r = b.ldg(ra, 0);
                    let m = b.ldg(ma, 0);
                    let e = b.ldg(ea, 0);
                    let u = b.fdiv(m, r);
                    let ke = b.fmul(m, u); // rho*u²
                    let kehalf = b.fmul(ke, 0.5f32);
                    let inner = b.fsub(e, kehalf);
                    let p = b.fmul(inner, GAMMA - 1.0);
                    // fluxes: [m, m*u + p, u*(e + p)]
                    let f1 = b.mov(m);
                    let f2 = b.ffma(m, u, p);
                    let ep = b.fadd(e, p);
                    let f3 = b.fmul(u, ep);
                    // wave speed |u| + sqrt(gamma*p/rho)
                    let pr = b.fdiv(p, r);
                    let gpr = b.fmul(pr, GAMMA);
                    let c = b.fsqrt(gpr);
                    let au = b.fabs(u);
                    let speed = b.fadd(au, c);
                    (r, m, e, f1, f2, f3, speed)
                };
                let (rl, ml, el, fl1, fl2, fl3, sl) = side(b, im1);
                let (rr, mr, er, fr1, fr2, fr3, sr) = side(b, i);
                let a = b.fmax(sl, sr);
                // F = 0.5*(FL + FR) - 0.5*a*(UR - UL), one component at a time
                let component = |b: &mut KernelBuilder, fl, fr, ul, ur, out| {
                    let favg0 = b.fadd(fl, fr);
                    let favg = b.fmul(favg0, 0.5f32);
                    let du = b.fsub(ur, ul);
                    let adu = b.fmul(a, du);
                    let half_adu = b.fmul(adu, 0.5f32);
                    let f = b.fsub(favg, half_adu);
                    let oa = b.addr_w(out, i);
                    b.stg(oa, 0, f);
                };
                component(b, fl1, fr1, rl, rr, f_rho);
                component(b, fl2, fr2, ml, mr, f_mom);
                component(b, fl3, fr3, el, er, f_ene);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Update kernel: `U_i -= dtdx * (F_{i+1} - F_i)` for interior cells.
    pub fn update_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("cfd_update");
        let rho = b.param(0);
        let mom = b.param(1);
        let ene = b.param(2);
        let f_rho = b.param(3);
        let f_mom = b.param(4);
        let f_ene = b.param(5);
        let n = b.param(6);
        let dtdx = b.param(7);
        let i = b.global_tid_x();
        let lo = b.isetp(CmpOp::Gt, i, 0u32);
        b.if_(lo, |b| {
            let nm1 = b.isub(n, 1u32);
            let hi = b.isetp(CmpOp::Lt, i, nm1);
            b.if_(hi, |b| {
                let ip1 = b.iadd(i, 1u32);
                let component = |b: &mut KernelBuilder, state, flux| {
                    let fa = b.addr_w(flux, i);
                    let fl = b.ldg(fa, 0);
                    let fa1 = b.addr_w(flux, ip1);
                    let fr = b.ldg(fa1, 0);
                    let df = b.fsub(fr, fl);
                    let sa = b.addr_w(state, i);
                    let sv = b.ldg(sa, 0);
                    let ndf = b.fneg(df);
                    let upd = b.ffma(ndf, dtdx, sv);
                    b.stg(sa, 0, upd);
                };
                component(b, rho, f_rho);
                component(b, mom, f_mom);
                component(b, ene, f_ene);
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    fn cpu_step(&self, rho: &mut [f32], mom: &mut [f32], ene: &mut [f32]) {
        let n = self.cells as usize;
        let prim = |r: f32, m: f32, e: f32| {
            let u = m / r;
            let p = (e - (m * u) * 0.5) * (GAMMA - 1.0);
            let speed = u.abs() + (p / r * GAMMA).sqrt();
            (u, p, speed)
        };
        let mut fr = vec![0.0f32; n];
        let mut fm = vec![0.0f32; n];
        let mut fe = vec![0.0f32; n];
        for i in 1..n {
            let (ul, pl, sl) = prim(rho[i - 1], mom[i - 1], ene[i - 1]);
            let (ur, pr, sr) = prim(rho[i], mom[i], ene[i]);
            let a = sl.max(sr);
            let flux = |f_l: f32, f_r: f32, q_l: f32, q_r: f32| {
                (f_l + f_r) * 0.5 - (a * (q_r - q_l)) * 0.5
            };
            fr[i] = flux(mom[i - 1], mom[i], rho[i - 1], rho[i]);
            fm[i] = flux(
                mom[i - 1].mul_add(ul, pl),
                mom[i].mul_add(ur, pr),
                mom[i - 1],
                mom[i],
            );
            fe[i] = flux(
                ul * (ene[i - 1] + pl),
                ur * (ene[i] + pr),
                ene[i - 1],
                ene[i],
            );
        }
        for i in 1..n - 1 {
            rho[i] = (-(fr[i + 1] - fr[i])).mul_add(self.dtdx, rho[i]);
            mom[i] = (-(fm[i + 1] - fm[i])).mul_add(self.dtdx, mom[i]);
            ene[i] = (-(fe[i + 1] - fe[i])).mul_add(self.dtdx, ene[i]);
        }
    }
}

impl Benchmark for Cfd {
    fn name(&self) -> &'static str {
        "cfd"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let n = self.cells;
        let (rho, mom, ene) = self.initial_state();
        let rho_b = s.alloc_words(n)?;
        let mom_b = s.alloc_words(n)?;
        let ene_b = s.alloc_words(n)?;
        let fr_b = s.alloc_words(n)?;
        let fm_b = s.alloc_words(n)?;
        let fe_b = s.alloc_words(n)?;
        s.write_f32(rho_b, &rho)?;
        s.write_f32(mom_b, &mom)?;
        s.write_f32(ene_b, &ene)?;
        let flux = self.flux_kernel();
        let update = self.update_kernel();
        let grid = Dim3::x(n.div_ceil(self.threads_per_block));
        let block = Dim3::x(self.threads_per_block);
        let bufs = [
            SParam::Buf(rho_b),
            SParam::Buf(mom_b),
            SParam::Buf(ene_b),
            SParam::Buf(fr_b),
            SParam::Buf(fm_b),
            SParam::Buf(fe_b),
        ];
        for _ in 0..self.steps {
            let mut p = bufs.to_vec();
            p.push(SParam::U32(n));
            s.launch(&flux, grid, block, 0, &p)?;
            s.sync()?;
            let mut p = bufs.to_vec();
            p.push(SParam::U32(n));
            p.push(SParam::F32(self.dtdx));
            s.launch(&update, grid, block, 0, &p)?;
            s.sync()?;
        }
        let mut out = s.read_u32(rho_b, n as usize)?;
        out.extend(s.read_u32(mom_b, n as usize)?);
        out.extend(s.read_u32(ene_b, n as usize)?);
        Ok(out)
    }

    fn reference(&self) -> Vec<u32> {
        let (mut rho, mut mom, mut ene) = self.initial_state();
        for _ in 0..self.steps {
            self.cpu_step(&mut rho, &mut mom, &mut ene);
        }
        let mut out = f32s_to_words(&rho);
        out.extend(f32s_to_words(&mom));
        out.extend(f32s_to_words(&ene));
        out
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Approx {
            rel: 2e-3,
            abs: 1e-4,
        }
    }

    /// Fixed-step explicit solver; per-step cost is data-independent and
    /// the mined corrupted-but-terminating tail is short.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Cfd {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            cells: 256,
            steps: 3,
            dtdx: 0.1,
            threads_per_block: 64,
        }
    }
}

/// Registers `cfd` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "cfd", Cfd);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Cfd {
        Cfd {
            cells: 256,
            steps: 10,
            dtdx: 0.1,
            threads_per_block: 64,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let c = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = c.run(&mut s).expect("runs");
        c.verify(&out).expect("matches reference");
    }

    #[test]
    fn mass_is_conserved_in_the_interior() {
        let c = small();
        let (rho0, _, _) = c.initial_state();
        let mass0: f32 = rho0.iter().sum();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = c.run(&mut s).expect("runs");
        let mass: f32 = out[..c.cells as usize]
            .iter()
            .map(|w| f32::from_bits(*w))
            .sum();
        let rel = (mass - mass0).abs() / mass0;
        assert!(rel < 1e-2, "mass drift {rel} (boundary cells are frozen)");
    }

    #[test]
    fn densities_stay_positive() {
        let c = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = c.run(&mut s).expect("runs");
        for w in &out[..c.cells as usize] {
            let v = f32::from_bits(*w);
            assert!(v > 0.0 && v.is_finite(), "density {v} unphysical");
        }
    }
}
