//! `hotspot3D` — 3D thermal simulation stencil (Rodinia).
//!
//! 7-point stencil over a 3D temperature volume; each thread walks the z
//! column (as in the original CUDA kernel), one launch per time step
//! (paper category: friendly).

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Hotspot3D benchmark.
#[derive(Debug, Clone)]
pub struct Hotspot3d {
    /// x/y extent.
    pub nx: u32,
    /// z extent (column walked per thread).
    pub nz: u32,
    /// Time steps.
    pub steps: u32,
    /// Lateral coefficient.
    pub cc: f32,
    /// Neighbour coefficient.
    pub cn: f32,
    /// Vertical coefficient.
    pub cz: f32,
}

impl Default for Hotspot3d {
    fn default() -> Self {
        Self {
            nx: 96,
            nz: 10,
            steps: 3,
            cc: 0.6,
            cn: 0.08,
            cz: 0.04,
        }
    }
}

impl Hotspot3d {
    fn words(&self) -> u32 {
        self.nx * self.nx * self.nz
    }

    fn temp_data(&self) -> Vec<f32> {
        data::f32_vec(0x3d07, self.words() as usize, 320.0, 345.0)
    }

    fn power_data(&self) -> Vec<f32> {
        data::f32_vec(0x3d08, self.words() as usize, 0.0, 0.1)
    }

    /// One stencil step: each (x, y) thread walks the z column.
    pub fn kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("hotspot3d_step");
        let temp = b.param(0);
        let power = b.param(1);
        let out = b.param(2);
        let nx = b.param(3);
        let nz = b.param(4);
        let cc = b.param(5);
        let cn = b.param(6);
        let cz = b.param(7);

        let x = b.global_tid_x();
        let y = b.global_tid_y();
        let x_ok = b.isetp(CmpOp::Lt, x, nx);
        b.if_(x_ok, |b| {
            let y_ok = b.isetp(CmpOp::Lt, y, nx);
            b.if_(y_ok, |b| {
                let nm1 = b.isub(nx, 1u32);
                let zm1 = b.isub(nz, 1u32);
                let layer = b.imul(nx, nx);
                let xm = b.isub(x, 1u32);
                let xw = b.imax(xm, 0u32);
                let xp = b.iadd(x, 1u32);
                let xe = b.imin(xp, nm1);
                let ym = b.isub(y, 1u32);
                let yn = b.imax(ym, 0u32);
                let yp = b.iadd(y, 1u32);
                let ys = b.imin(yp, nm1);
                b.for_range(0u32, nz, 1u32, |b, z| {
                    let zm = b.isub(z, 1u32);
                    let zb = b.imax(zm, 0u32);
                    let zp = b.iadd(z, 1u32);
                    let zt = b.imin(zp, zm1);
                    let plane = b.imul(z, layer);
                    let row = b.imad(y, nx, x);
                    let idx = b.iadd(plane, row);
                    let load = |b: &mut KernelBuilder, zz, yy, xx| {
                        let pl = b.imul(zz, layer);
                        let rw = b.imad(yy, nx, xx);
                        let ii = b.iadd(pl, rw);
                        let aa = b.addr_w(temp, ii);
                        b.ldg(aa, 0)
                    };
                    let ca = b.addr_w(temp, idx);
                    let tc = b.ldg(ca, 0);
                    let tn = load(b, z, yn, x);
                    let ts = load(b, z, ys, x);
                    let te = load(b, z, y, xe);
                    let tw = load(b, z, y, xw);
                    let tb = load(b, zb, y, x);
                    let tt = load(b, zt, y, x);
                    let pa = b.addr_w(power, idx);
                    let pv = b.ldg(pa, 0);
                    // out = tc*cc + (tn+ts+te+tw)*cn + (tt+tb)*cz + power
                    let lat1 = b.fadd(tn, ts);
                    let lat2 = b.fadd(te, tw);
                    let lat = b.fadd(lat1, lat2);
                    let ver = b.fadd(tt, tb);
                    let acc = b.fmul(tc, cc);
                    let acc2 = b.ffma(lat, cn, acc);
                    let acc3 = b.ffma(ver, cz, acc2);
                    let result = b.fadd(acc3, pv);
                    let oa = b.addr_w(out, idx);
                    b.stg(oa, 0, result);
                });
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    fn step_cpu(&self, temp: &[f32], power: &[f32], out: &mut [f32]) {
        let n = self.nx as usize;
        let d = self.nz as usize;
        let layer = n * n;
        for z in 0..d {
            for y in 0..n {
                for x in 0..n {
                    let idx = z * layer + y * n + x;
                    let tc = temp[idx];
                    let tn = temp[z * layer + y.saturating_sub(1) * n + x];
                    let ts = temp[z * layer + (y + 1).min(n - 1) * n + x];
                    let te = temp[z * layer + y * n + (x + 1).min(n - 1)];
                    let tw = temp[z * layer + y * n + x.saturating_sub(1)];
                    let tb = temp[z.saturating_sub(1) * layer + y * n + x];
                    let tt = temp[(z + 1).min(d - 1) * layer + y * n + x];
                    let lat = (tn + ts) + (te + tw);
                    let ver = tt + tb;
                    let acc = tc * self.cc;
                    let acc2 = lat.mul_add(self.cn, acc);
                    let acc3 = ver.mul_add(self.cz, acc2);
                    out[idx] = acc3 + power[idx];
                }
            }
        }
    }
}

impl Benchmark for Hotspot3d {
    fn name(&self) -> &'static str {
        "hotspot3D"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let words = self.words();
        let t0 = s.alloc_words(words)?;
        let t1 = s.alloc_words(words)?;
        let p = s.alloc_words(words)?;
        s.write_f32(t0, &self.temp_data())?;
        s.write_f32(p, &self.power_data())?;
        let kernel = self.kernel();
        let grid = Dim3::xy(self.nx.div_ceil(16), self.nx.div_ceil(16));
        let block = Dim3::xy(16, 16);
        let mut src = t0;
        let mut dst = t1;
        for _ in 0..self.steps {
            s.launch(
                &kernel,
                grid,
                block,
                0,
                &[
                    SParam::Buf(src),
                    SParam::Buf(p),
                    SParam::Buf(dst),
                    SParam::U32(self.nx),
                    SParam::U32(self.nz),
                    SParam::F32(self.cc),
                    SParam::F32(self.cn),
                    SParam::F32(self.cz),
                ],
            )?;
            s.sync()?;
            std::mem::swap(&mut src, &mut dst);
        }
        s.read_u32(src, words as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let mut cur = self.temp_data();
        let power = self.power_data();
        let mut next = vec![0.0f32; cur.len()];
        for _ in 0..self.steps {
            self.step_cpu(&cur, &power, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        f32s_to_words(&cur)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// Fixed 3D stencil iterations; corrupted temperatures cannot
    /// extend them, so the mined budget holds.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Hotspot3d {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            nx: 32,
            nz: 4,
            steps: 2,
            ..Self::default()
        }
    }
}

/// Registers `hotspot3D` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "hotspot3D", Hotspot3d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Hotspot3d {
        Hotspot3d {
            nx: 16,
            nz: 4,
            steps: 2,
            ..Hotspot3d::default()
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let h = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = h.run(&mut s).expect("runs");
        h.verify(&out).expect("matches reference");
    }

    #[test]
    fn volume_size_is_respected() {
        let h = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = h.run(&mut s).expect("runs");
        assert_eq!(out.len() as u32, h.nx * h.nx * h.nz);
    }
}
