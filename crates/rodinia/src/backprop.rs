//! `backprop` — neural-network layer training (Rodinia).
//!
//! Two short kernels (paper category: short, resource-hungry):
//! `layerforward` computes the hidden activations
//! `h[j] = sigmoid(Σ_i in[i] · w[i][j])`, and `adjust_weights` applies
//! `w[i][j] += lr · δ[j] · in[i]`.

use crate::data;
use crate::harness::{f32s_to_words, Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// Backpropagation benchmark.
#[derive(Debug, Clone)]
pub struct Backprop {
    /// Input-layer units.
    pub inputs: u32,
    /// Hidden-layer units.
    pub hidden: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Learning rate.
    pub eta: f32,
}

impl Default for Backprop {
    fn default() -> Self {
        Self {
            inputs: 16,
            hidden: 768,
            threads_per_block: 256,
            eta: 0.3,
        }
    }
}

impl Backprop {
    fn input_data(&self) -> Vec<f32> {
        data::f32_vec(0xb9c0, self.inputs as usize, 0.0, 1.0)
    }

    fn weight_data(&self) -> Vec<f32> {
        data::f32_vec(0xb9c1, (self.inputs * self.hidden) as usize, -0.5, 0.5)
    }

    fn delta_data(&self) -> Vec<f32> {
        data::f32_vec(0xb9c2, self.hidden as usize, -0.1, 0.1)
    }

    /// `layerforward`: one thread per hidden unit.
    pub fn layerforward_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("bp_layerforward");
        let input = b.param(0);
        let weights = b.param(1);
        let hidden_out = b.param(2);
        let n_in = b.param(3);
        let n_hid = b.param(4);
        let j = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, j, n_hid);
        b.if_(in_range, |b| {
            let sum = b.mov(0.0f32);
            // w is row-major [i][j]: address = weights + (i*n_hid + j)*4
            let waddr = b.addr_w(weights, j);
            let stride = b.ishl(n_hid, 2u32);
            let iaddr = b.mov(input);
            b.for_range(0u32, n_in, 1u32, |b, _i| {
                let inv = b.ldg(iaddr, 0);
                let wv = b.ldg(waddr, 0);
                b.ffma_to(sum, inv, wv, sum);
                b.iadd_to(iaddr, iaddr, 4u32);
                b.iadd_to(waddr, waddr, stride);
            });
            // sigmoid(sum) = 1 / (1 + exp(-sum))
            let neg = b.fneg(sum);
            let e = b.fexp(neg);
            let denom = b.fadd(e, 1.0f32);
            let act = b.frcp(denom);
            let oa = b.addr_w(hidden_out, j);
            b.stg(oa, 0, act);
        });
        b.build().expect("well-formed").into_shared()
    }

    /// `adjust_weights`: one thread per weight.
    pub fn adjust_weights_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("bp_adjust_weights");
        let input = b.param(0);
        let weights = b.param(1);
        let delta = b.param(2);
        let n_hid = b.param(3);
        let total = b.param(4);
        let eta = b.param(5);
        let t = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, t, total);
        b.if_(in_range, |b| {
            let i = b.idiv(t, n_hid);
            let j = b.irem(t, n_hid);
            let ia = b.addr_w(input, i);
            let da = b.addr_w(delta, j);
            let wa = b.addr_w(weights, t);
            let inv = b.ldg(ia, 0);
            let dv = b.ldg(da, 0);
            let wv = b.ldg(wa, 0);
            let step = b.fmul(dv, inv);
            let upd = b.ffma(step, eta, wv);
            b.stg(wa, 0, upd);
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl Benchmark for Backprop {
    fn name(&self) -> &'static str {
        "backprop"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let tpb = self.threads_per_block;
        let input = self.input_data();
        let weights = self.weight_data();
        let delta = self.delta_data();
        let in_b = s.alloc_words(self.inputs)?;
        let w_b = s.alloc_words(self.inputs * self.hidden)?;
        let hid_b = s.alloc_words(self.hidden)?;
        let d_b = s.alloc_words(self.hidden)?;
        s.write_f32(in_b, &input)?;
        s.write_f32(w_b, &weights)?;
        s.write_f32(d_b, &delta)?;

        s.launch(
            &self.layerforward_kernel(),
            Dim3::x(self.hidden.div_ceil(tpb)),
            Dim3::x(tpb),
            0,
            &[
                SParam::Buf(in_b),
                SParam::Buf(w_b),
                SParam::Buf(hid_b),
                SParam::U32(self.inputs),
                SParam::U32(self.hidden),
            ],
        )?;
        s.sync()?;

        let total = self.inputs * self.hidden;
        s.launch(
            &self.adjust_weights_kernel(),
            Dim3::x(total.div_ceil(tpb)),
            Dim3::x(tpb),
            0,
            &[
                SParam::Buf(in_b),
                SParam::Buf(w_b),
                SParam::Buf(d_b),
                SParam::U32(self.hidden),
                SParam::U32(total),
                SParam::F32(self.eta),
            ],
        )?;
        s.sync()?;

        // Output: hidden activations followed by the updated weights.
        let mut out = s.read_u32(hid_b, self.hidden as usize)?;
        out.extend(s.read_u32(w_b, total as usize)?);
        Ok(out)
    }

    fn reference(&self) -> Vec<u32> {
        let input = self.input_data();
        let mut weights = self.weight_data();
        let delta = self.delta_data();
        let nh = self.hidden as usize;
        let ni = self.inputs as usize;
        let mut hidden = vec![0.0f32; nh];
        for (j, h) in hidden.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for i in 0..ni {
                sum = input[i].mul_add(weights[i * nh + j], sum);
            }
            *h = 1.0 / (1.0 + (-sum).exp());
        }
        for i in 0..ni {
            for j in 0..nh {
                let step = delta[j] * input[i];
                weights[i * nh + j] = step.mul_add(self.eta, weights[i * nh + j]);
            }
        }
        let mut out = f32s_to_words(&hidden);
        out.extend(f32s_to_words(&weights));
        out
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }

    /// Fixed two-layer pass: corrupted runs either finish near the
    /// fault-free makespan or run away on a flipped loop bound. Mined
    /// corrupted-but-terminating tail is short, so the mined budget holds.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Backprop {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            inputs: 8,
            hidden: 64,
            threads_per_block: 32,
            eta: 0.3,
        }
    }
}

/// Registers `backprop` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "backprop", Backprop);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Backprop {
        Backprop {
            inputs: 16,
            hidden: 128,
            threads_per_block: 64,
            eta: 0.3,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let bp = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = bp.run(&mut s).expect("runs");
        bp.verify(&out).expect("matches reference");
    }

    #[test]
    fn activations_are_sigmoid_bounded() {
        let bp = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = bp.run(&mut s).expect("runs");
        for w in &out[..bp.hidden as usize] {
            let v = f32::from_bits(*w);
            assert!((0.0..=1.0).contains(&v), "sigmoid output {v} out of range");
        }
    }

    #[test]
    fn uses_two_kernels() {
        let bp = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        bp.run(&mut s).expect("runs");
        assert_eq!(gpu.trace().kernels.len(), 2);
    }
}
