//! `bfs` — breadth-first search (Rodinia).
//!
//! Level-synchronous frontier expansion over a CSR graph: kernel 1 expands
//! the current frontier, kernel 2 commits the next frontier and raises the
//! continuation flag read by the host. Many *short* kernel launches with a
//! host read between iterations (paper category: short).

use crate::data;
use crate::harness::{Benchmark, GpuSession, SParam, SessionError, Tolerance};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{register_scaled, WorkloadRegistry};
use std::sync::Arc;

/// BFS benchmark.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// Graph nodes.
    pub nodes: u32,
    /// Extra random out-edges per node (beyond the spanning tree).
    pub extra_degree: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Source node.
    pub source: u32,
}

impl Default for Bfs {
    fn default() -> Self {
        Self {
            nodes: 4096,
            extra_degree: 3,
            threads_per_block: 256,
            source: 0,
        }
    }
}

impl Bfs {
    fn graph(&self) -> (Vec<u32>, Vec<u32>) {
        data::csr_graph(0xbf5, self.nodes as usize, self.extra_degree as usize)
    }

    /// Kernel 1: frontier expansion.
    pub fn expand_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("bfs_expand");
        let offsets = b.param(0);
        let edges = b.param(1);
        let frontier = b.param(2);
        let visited = b.param(3);
        let cost = b.param(4);
        let updating = b.param(5);
        let n = b.param(6);
        let tid = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, tid, n);
        b.if_(in_range, |b| {
            let fa = b.addr_w(frontier, tid);
            let fv = b.ldg(fa, 0);
            let active = b.isetp(CmpOp::Eq, fv, 1u32);
            b.if_(active, |b| {
                let zero = b.mov(0u32);
                b.stg(fa, 0, zero);
                let ca = b.addr_w(cost, tid);
                let my_cost = b.ldg(ca, 0);
                let next_cost = b.iadd(my_cost, 1u32);
                let oa = b.addr_w(offsets, tid);
                let begin = b.ldg(oa, 0);
                let end = b.ldg(oa, 4);
                b.for_range(begin, end, 1u32, |b, e| {
                    let ea = b.addr_w(edges, e);
                    let nbr = b.ldg(ea, 0);
                    let va = b.addr_w(visited, nbr);
                    let vv = b.ldg(va, 0);
                    let unvisited = b.isetp(CmpOp::Eq, vv, 0u32);
                    b.if_(unvisited, |b| {
                        let nca = b.addr_w(cost, nbr);
                        b.stg(nca, 0, next_cost);
                        let ua = b.addr_w(updating, nbr);
                        let one = b.mov(1u32);
                        b.stg(ua, 0, one);
                    });
                });
            });
        });
        b.build().expect("well-formed").into_shared()
    }

    /// Kernel 2: commit the next frontier and raise the continuation flag.
    pub fn commit_kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("bfs_commit");
        let frontier = b.param(0);
        let visited = b.param(1);
        let updating = b.param(2);
        let flag = b.param(3);
        let n = b.param(4);
        let tid = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, tid, n);
        b.if_(in_range, |b| {
            let ua = b.addr_w(updating, tid);
            let uv = b.ldg(ua, 0);
            let pending = b.isetp(CmpOp::Eq, uv, 1u32);
            b.if_(pending, |b| {
                let one = b.mov(1u32);
                let zero = b.mov(0u32);
                let fa = b.addr_w(frontier, tid);
                b.stg(fa, 0, one);
                let va = b.addr_w(visited, tid);
                b.stg(va, 0, one);
                b.stg(ua, 0, zero);
                b.stg(flag, 0, one);
            });
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn run(&self, s: &mut dyn GpuSession) -> Result<Vec<u32>, SessionError> {
        let n = self.nodes;
        let (offsets, edges) = self.graph();
        let off_b = s.alloc_words(n + 1)?;
        let edg_b = s.alloc_words(edges.len().max(1) as u32)?;
        let fro_b = s.alloc_words(n)?;
        let vis_b = s.alloc_words(n)?;
        let cst_b = s.alloc_words(n)?;
        let upd_b = s.alloc_words(n)?;
        let flg_b = s.alloc_words(1)?;

        s.write_u32(off_b, &offsets)?;
        s.write_u32(edg_b, &edges)?;
        let mut frontier = vec![0u32; n as usize];
        frontier[self.source as usize] = 1;
        let mut visited = vec![0u32; n as usize];
        visited[self.source as usize] = 1;
        let mut cost = vec![u32::MAX; n as usize];
        cost[self.source as usize] = 0;
        s.write_u32(fro_b, &frontier)?;
        s.write_u32(vis_b, &visited)?;
        s.write_u32(cst_b, &cost)?;
        s.write_u32(upd_b, &vec![0u32; n as usize])?;

        let expand = self.expand_kernel();
        let commit = self.commit_kernel();
        let grid = Dim3::x(n.div_ceil(self.threads_per_block));
        let block = Dim3::x(self.threads_per_block);

        loop {
            s.write_u32(flg_b, &[0])?;
            s.launch(
                &expand,
                grid,
                block,
                0,
                &[
                    SParam::Buf(off_b),
                    SParam::Buf(edg_b),
                    SParam::Buf(fro_b),
                    SParam::Buf(vis_b),
                    SParam::Buf(cst_b),
                    SParam::Buf(upd_b),
                    SParam::U32(n),
                ],
            )?;
            s.sync()?;
            s.launch(
                &commit,
                grid,
                block,
                0,
                &[
                    SParam::Buf(fro_b),
                    SParam::Buf(vis_b),
                    SParam::Buf(upd_b),
                    SParam::Buf(flg_b),
                    SParam::U32(n),
                ],
            )?;
            let flag = s.read_u32(flg_b, 1)?;
            if flag[0] == 0 {
                break;
            }
        }
        s.read_u32(cst_b, n as usize)
    }

    fn reference(&self) -> Vec<u32> {
        let (offsets, edges) = self.graph();
        let n = self.nodes as usize;
        let mut cost = vec![u32::MAX; n];
        cost[self.source as usize] = 0;
        let mut frontier = vec![self.source as usize];
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &node in &frontier {
                for e in offsets[node]..offsets[node + 1] {
                    let t = edges[e as usize] as usize;
                    if cost[t] == u32::MAX {
                        cost[t] = level;
                        next.push(t);
                    }
                }
            }
            frontier = next;
        }
        cost
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }

    /// Frontier expansion is data-dependent: a corrupted frontier can
    /// add extra whole-graph passes, but the mined
    /// corrupted-but-terminating tail stays well inside the mined budget.
    fn ftti_multiplier(&self) -> u64 {
        higpu_workloads::MINED_FTTI_MULTIPLIER
    }
}

impl Bfs {
    /// Campaign-scale instance: a small fixed grid that keeps per-trial
    /// makespan and memory tiny (thousands of fault-injection trials must
    /// fit the campaign's small device image) while still exercising every
    /// kernel of the benchmark.
    pub fn campaign() -> Self {
        Self {
            nodes: 256,
            extra_degree: 2,
            threads_per_block: 64,
            source: 0,
        }
    }
}

/// Registers `bfs` in the unified workload registry
/// ([`higpu_workloads::Scale::Full`] = paper size, [`higpu_workloads::Scale::Campaign`] = the small fixed
/// grid above).
pub fn register(reg: &mut WorkloadRegistry) {
    register_scaled!(reg, "bfs", Bfs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SoloSession;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;

    fn small() -> Bfs {
        Bfs {
            nodes: 256,
            extra_degree: 2,
            threads_per_block: 64,
            source: 0,
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let bfs = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = bfs.run(&mut s).expect("runs");
        bfs.verify(&out).expect("matches reference");
    }

    #[test]
    fn all_nodes_reached() {
        let bfs = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = bfs.run(&mut s).expect("runs");
        assert!(
            out.iter().all(|&c| c != u32::MAX),
            "graph is connected, every node must be visited"
        );
    }

    #[test]
    fn iterates_until_frontier_empty() {
        let bfs = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        bfs.run(&mut s).expect("runs");
        let launches = gpu.trace().kernels.len();
        assert!(launches >= 4, "at least two BFS levels, got {launches}");
        assert_eq!(launches % 2, 0, "expand/commit pairs");
    }

    #[test]
    fn source_has_cost_zero() {
        let bfs = small();
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        let out = bfs.run(&mut s).expect("runs");
        assert_eq!(out[0], 0);
    }
}
