//! Property-based tests: benchmark GPU implementations must match their CPU
//! references for randomized problem sizes and inputs, not only the default
//! configurations.

use higpu_rodinia::bfs::Bfs;
use higpu_rodinia::dwt2d::Dwt2d;
use higpu_rodinia::harness::{Benchmark, SoloSession};
use higpu_rodinia::kmeans::Kmeans;
use higpu_rodinia::nw::Nw;
use higpu_rodinia::pathfinder::Pathfinder;
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use proptest::prelude::*;

fn run_solo(bench: &dyn Benchmark) -> Vec<u32> {
    let mut gpu = Gpu::new(GpuConfig::paper_6sm());
    let mut s = SoloSession::new(&mut gpu);
    bench.run(&mut s).expect("solo run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pathfinder_matches_reference_for_any_geometry(
        cols in 16u32..512,
        rows in 2u32..12,
        tpb_pow in 5u32..8,
    ) {
        let p = Pathfinder {
            cols,
            rows,
            threads_per_block: 1 << tpb_pow,
        };
        p.verify(&run_solo(&p)).expect("exact DP result");
    }

    #[test]
    fn bfs_matches_reference_for_random_graphs(
        nodes in 16u32..512,
        degree in 0u32..4,
        tpb_pow in 5u32..8,
    ) {
        let b = Bfs {
            nodes,
            extra_degree: degree,
            threads_per_block: 1 << tpb_pow,
            source: 0,
        };
        let out = run_solo(&b);
        b.verify(&out).expect("exact BFS levels");
        // The generator guarantees connectivity from node 0.
        prop_assert!(out.iter().all(|&c| c != u32::MAX));
    }

    #[test]
    fn nw_matches_reference_for_any_tile_count(
        tiles in 1u32..6,
        penalty in 1i32..20,
    ) {
        let n = Nw {
            n: tiles * 16,
            penalty,
        };
        n.verify(&run_solo(&n)).expect("exact alignment scores");
    }

    #[test]
    fn kmeans_assignments_match_reference(
        points_pow in 6u32..10,
        features in 2u32..6,
        k in 2u32..6,
    ) {
        let km = Kmeans {
            points: 1 << points_pow,
            features,
            k,
            iterations: 2,
            threads_per_block: 64,
        };
        km.verify(&run_solo(&km)).expect("exact memberships");
    }

    #[test]
    fn dwt2d_preserves_energy_for_any_size(
        size_pow in 4u32..7,
        levels in 1u32..4,
    ) {
        let d = Dwt2d {
            size: 1 << size_pow,
            levels,
        };
        let out = run_solo(&d);
        d.verify(&out).expect("matches reference");
        // Orthonormal transform: L2 norm preserved.
        let sq = |v: &[f32]| v.iter().map(|x| f64::from(*x) * f64::from(*x)).sum::<f64>();
        let input: Vec<f32> = d
            .reference()
            .iter()
            .map(|w| f32::from_bits(*w))
            .collect();
        let output: Vec<f32> = out.iter().map(|w| f32::from_bits(*w)).collect();
        let rel = (sq(&input) - sq(&output)).abs() / sq(&input).max(1e-9);
        prop_assert!(rel < 1e-3, "energy drift {}", rel);
    }
}
