//! Pipeline task graphs: a DAG of [`StageProgram`]s with buffers flowing
//! along the edges, plus the registry that names them.
//!
//! A [`Pipeline`] is stored in topological order by construction: a stage
//! may only depend on stages added before it, so cycles are impossible and
//! execution order is simply index order — matching how a real-time host
//! dispatches a frame's kernels (RTGPU-style DAG tasks with per-stage
//! deadlines over a serially-offloading CPU).

use higpu_workloads::{Scale, StageProgram};
use std::fmt;

/// One node of a pipeline: a named stage program plus its upstream edges.
pub struct Stage {
    /// Instance name, unique within the pipeline (two stages may wrap the
    /// same program under different names).
    pub name: &'static str,
    /// The stage's program.
    pub program: Box<dyn StageProgram>,
    /// Indices of the stages whose outputs this stage consumes, in the
    /// order the program expects them. Always less than this stage's own
    /// index (DAG by construction).
    pub deps: Vec<usize>,
}

impl fmt::Debug for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage")
            .field("name", &self.name)
            .field("program", &self.program.name())
            .field("deps", &self.deps)
            .finish()
    }
}

/// A multi-kernel pipeline: a DAG of stages in topological order.
///
/// The last stage is the pipeline's *sink*; its output is the pipeline's
/// output (intermediate outputs remain observable per stage).
#[derive(Debug)]
pub struct Pipeline {
    name: &'static str,
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            stages: Vec::new(),
        }
    }

    /// Pipeline name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Appends a stage consuming the outputs of `deps`; returns its index.
    ///
    /// # Panics
    ///
    /// Panics when a dependency index does not refer to an earlier stage or
    /// the instance name is reused — both wiring bugs, not runtime
    /// conditions.
    pub fn add_stage(
        &mut self,
        name: &'static str,
        program: Box<dyn StageProgram>,
        deps: &[usize],
    ) -> usize {
        let index = self.stages.len();
        assert!(
            !self.stages.iter().any(|s| s.name == name),
            "stage '{name}' added twice"
        );
        for &d in deps {
            assert!(
                d < index,
                "stage '{name}' depends on stage {d}, which is not an earlier stage"
            );
        }
        self.stages.push(Stage {
            name,
            program,
            deps: deps.to_vec(),
        });
        index
    }

    /// The stages, in topological (execution) order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Index of the sink stage (the last one).
    ///
    /// # Panics
    ///
    /// Panics on an empty pipeline.
    pub fn sink(&self) -> usize {
        assert!(!self.stages.is_empty(), "empty pipeline has no sink");
        self.stages.len() - 1
    }

    /// The CPU reference outputs of every stage, computed stage by stage
    /// over the reference outputs of its dependencies — the fault-free
    /// golden dataflow of the whole pipeline.
    pub fn reference_outputs(&self) -> Vec<Vec<u32>> {
        let mut outs: Vec<Vec<u32>> = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let inputs: Vec<&[u32]> = stage.deps.iter().map(|&d| outs[d].as_slice()).collect();
            outs.push(stage.program.reference(&inputs));
        }
        outs
    }
}

/// Builds one pipeline instance at the requested scale.
pub type PipelineFactory = fn(Scale) -> Pipeline;

/// One named entry of a [`PipelineRegistry`].
#[derive(Clone, Copy)]
pub struct PipelineEntry {
    name: &'static str,
    factory: PipelineFactory,
}

impl PipelineEntry {
    /// Registered pipeline name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds the pipeline at `scale`.
    pub fn build(&self, scale: Scale) -> Pipeline {
        (self.factory)(scale)
    }
}

impl fmt::Debug for PipelineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineEntry")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A name → factory map of pipelines, in registration order — the
/// pipeline-axis sibling of [`higpu_workloads::WorkloadRegistry`].
#[derive(Debug, Default)]
pub struct PipelineRegistry {
    entries: Vec<PipelineEntry>,
}

impl PipelineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `factory` under `name`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn register(&mut self, name: &'static str, factory: PipelineFactory) {
        assert!(
            !self.entries.iter().any(|e| e.name == name),
            "pipeline '{name}' registered twice"
        );
        self.entries.push(PipelineEntry { name, factory });
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// The entries, in registration order.
    pub fn entries(&self) -> &[PipelineEntry] {
        &self.entries
    }

    /// Builds the named pipeline at `scale`; `None` for unknown names.
    pub fn build(&self, name: &str, scale: Scale) -> Option<Pipeline> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.build(scale))
    }

    /// Number of registered pipelines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_workloads::synthetic::IteratedFma;
    use higpu_workloads::{Workload, WorkloadStage};

    fn fma_stage() -> Box<dyn StageProgram> {
        Box::new(WorkloadStage::new(Box::new(IteratedFma::campaign())))
    }

    #[test]
    fn stages_form_a_dag_in_topological_order() {
        let mut p = Pipeline::new("p");
        let a = p.add_stage("a", fma_stage(), &[]);
        let b = p.add_stage("b", fma_stage(), &[a]);
        let c = p.add_stage("c", fma_stage(), &[a, b]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(p.sink(), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.stages()[2].deps, vec![0, 1]);
        let refs = p.reference_outputs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0], IteratedFma::campaign().reference());
    }

    #[test]
    #[should_panic(expected = "not an earlier stage")]
    fn forward_dependency_is_rejected() {
        let mut p = Pipeline::new("p");
        p.add_stage("a", fma_stage(), &[0]);
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_stage_name_is_rejected() {
        let mut p = Pipeline::new("p");
        p.add_stage("a", fma_stage(), &[]);
        p.add_stage("a", fma_stage(), &[]);
    }

    #[test]
    fn registry_round_trips() {
        let mut reg = PipelineRegistry::new();
        reg.register("one", |_| {
            let mut p = Pipeline::new("one");
            p.add_stage(
                "a",
                Box::new(WorkloadStage::new(Box::new(IteratedFma::campaign()))),
                &[],
            );
            p
        });
        assert_eq!(reg.names(), vec!["one"]);
        let p = reg.build("one", Scale::Campaign).expect("known");
        assert_eq!(p.name(), "one");
        assert!(reg.build("nope", Scale::Campaign).is_none());
    }
}
