//! Pipeline execution: per-stage deadline accounting, redundant stage
//! offloads, and bounded **in-FTTI re-execution recovery**.
//!
//! A pipeline frame executes its stages in topological order on one GPU;
//! the device clock is the frame timeline. Each stage runs redundantly
//! (the NMR protocol of [`higpu_core::redundancy`]) under a watchdog
//! limit derived from its [`higpu_core::ftti::PipelineFtti`] budget. A
//! stage whose vote ties (Detected) or whose watchdog fires (timing
//! violation) is **retried with fresh replicas on the same device** —
//! provided the remaining end-to-end slack still covers the retry
//! ([`PipelineFtti::allows_retry`]). A clean retry turns the detection
//! into [`StageStatus::Recovered`]: fail-operational. A retry that fails
//! again, or a detection with no remaining slack, is a fail-stop
//! ([`StageStatus::FailStop`]) — the frame is abandoned within the FTTI,
//! which is the safe-state transition the deadline monitor guarantees.

use crate::graph::Pipeline;
use higpu_core::ftti::PipelineFtti;
use higpu_core::redundancy::{RedundancyError, RedundancyMode, RedundantExecutor};
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::{Gpu, SimError};
use higpu_workloads::{RedundantSession, SessionError};
use std::fmt;

/// How much re-execution a pipeline frame may attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries allowed per stage (0 disables recovery: every detection is
    /// a fail-stop, the pre-pipeline DCLS behaviour).
    pub max_retries_per_stage: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries_per_stage: 1,
        }
    }
}

impl RecoveryPolicy {
    /// No re-execution: detections fail-stop immediately.
    pub fn disabled() -> Self {
        Self {
            max_retries_per_stage: 0,
        }
    }
}

/// Why a stage fail-stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The final permitted attempt still tied or timed out (e.g. a
    /// permanent fault corrupts every re-execution identically).
    RetryExhausted,
    /// A detection occurred but the remaining end-to-end slack no longer
    /// covers a re-execution — recovery would blow the FTTI, so the frame
    /// stops instead.
    NoSlack,
}

/// What happened to one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// First attempt, unanimous replicas.
    Clean,
    /// First attempt; the N ≥ 3 vote outvoted a minority corruption in
    /// place (forward recovery, no re-execution).
    Corrected,
    /// A detected attempt was re-executed within the remaining FTTI slack
    /// and the retry succeeded — fail-operational backward recovery.
    Recovered,
    /// The stage could not deliver a trustworthy output in time.
    FailStop(FailReason),
}

impl StageStatus {
    /// True when the stage delivered a consumable output.
    pub fn delivered(&self) -> bool {
        !matches!(self, StageStatus::FailStop(_))
    }
}

/// The recorded timeline entry of one executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage index in the pipeline.
    pub stage: usize,
    /// Stage instance name.
    pub name: &'static str,
    /// Cycle the stage (first attempt) started.
    pub start: u64,
    /// Cycle the stage finished (successfully or not).
    pub end: u64,
    /// The stage's watchdog budget in cycles.
    pub budget: u64,
    /// Budget left unspent: `budget − (end − start)` (0 when overrun).
    pub slack: u64,
    /// Execution attempts (1 = no retry).
    pub attempts: u32,
    /// Outcome.
    pub status: StageStatus,
}

/// The per-frame deadline plan: fault-free per-stage makespans measured by
/// a calibration run, and the FTTI budget set derived from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinePlan {
    /// Fault-free redundant makespan per stage, in stage order.
    pub stage_makespans: Vec<u64>,
    /// The derived budget set (per-stage budgets + end-to-end FTTI).
    pub ftti: PipelineFtti,
    /// Fault-free end-to-end makespan (the calibration frame's total).
    pub fault_free_makespan: u64,
}

/// The result of one pipeline frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineRun {
    /// Timeline of every executed stage, in execution order.
    pub timings: Vec<StageTiming>,
    /// Voted output words per executed stage (empty for a fail-stopped
    /// stage).
    pub outputs: Vec<Vec<u32>>,
    /// Device cycle when the frame ended.
    pub end_cycle: u64,
    /// The frame exceeded its end-to-end FTTI (always accompanied by a
    /// fail-stop: the deadline monitor never lets a frame run on past it).
    pub deadline_miss: bool,
    /// Re-executions attempted across all stages.
    pub retries_attempted: u32,
    /// Re-executions that themselves tied or timed out.
    pub retries_failed: u32,
    /// Detections that could not be retried for lack of slack.
    pub no_slack_failures: u32,
    /// Reads on which an N ≥ 3 vote corrected a minority corruption,
    /// summed over all successful attempts.
    pub corrected_reads: usize,
}

impl PipelineRun {
    /// The fail-stopped stage, if any.
    pub fn failstop(&self) -> Option<(usize, FailReason)> {
        self.timings.iter().find_map(|t| match t.status {
            StageStatus::FailStop(r) => Some((t.stage, r)),
            _ => None,
        })
    }

    /// True when every stage delivered (the frame is fail-operational).
    pub fn completed(&self) -> bool {
        self.failstop().is_none() && !self.deadline_miss
    }

    /// Stages recovered by re-execution.
    pub fn recovered_stages(&self) -> u32 {
        self.count(StageStatus::Recovered)
    }

    /// Stages corrected in place by the vote.
    pub fn corrected_stages(&self) -> u32 {
        self.count(StageStatus::Corrected)
    }

    fn count(&self, status: StageStatus) -> u32 {
        self.timings.iter().filter(|t| t.status == status).count() as u32
    }
}

/// Errors of pipeline execution (never produced by mere value corruption —
/// detections and timing violations are *results*, not errors).
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Device/protocol error from a stage.
    Session(SessionError),
    /// The pipeline has no stages.
    Empty,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Session(e) => write!(f, "stage failed: {e}"),
            PipelineError::Empty => write!(f, "pipeline has no stages"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SessionError> for PipelineError {
    fn from(e: SessionError) -> Self {
        PipelineError::Session(e)
    }
}

impl From<RedundancyError> for PipelineError {
    fn from(e: RedundancyError) -> Self {
        PipelineError::Session(SessionError::Redundancy(e))
    }
}

/// True when the error is the watchdog firing (a *timing detection*, not a
/// failure), regardless of which wrapper it arrived in.
fn is_deadline_cutoff(e: &SessionError) -> bool {
    matches!(
        e,
        SessionError::Sim(SimError::DeadlineExceeded { .. })
            | SessionError::Redundancy(RedundancyError::Sim(SimError::DeadlineExceeded { .. }))
    )
}

/// One redundant attempt of one stage under a watchdog limit.
enum Attempt {
    /// Unanimous output.
    Clean(Vec<u32>),
    /// Every disagreement outvoted; the voted output plus corrected reads.
    Corrected(Vec<u32>, usize),
    /// At least one read tied (two-replica mismatch or an unresolvable
    /// N-way split) — the NMR monitor detected the fault.
    Tied,
    /// The watchdog fired; in-flight work was cancelled.
    Timeout,
}

fn run_stage_attempt(
    gpu: &mut Gpu,
    mode: &RedundancyMode,
    pipeline: &Pipeline,
    stage: usize,
    inputs: &[&[u32]],
    limit: Option<u64>,
) -> Result<Attempt, PipelineError> {
    gpu.set_cycle_limit(limit);
    let result = (|| -> Result<(Vec<u32>, usize, usize), SessionError> {
        let mut exec = RedundantExecutor::new(gpu, mode.clone())?;
        let mut session = RedundantSession::tolerant(&mut exec);
        let out = pipeline.stages()[stage].program.run(&mut session, inputs)?;
        Ok((out, session.tied_reads(), session.corrected_reads()))
    })();
    gpu.set_cycle_limit(None);
    match result {
        Ok((out, 0, 0)) => Ok(Attempt::Clean(out)),
        Ok((out, 0, corrected)) => Ok(Attempt::Corrected(out, corrected)),
        Ok((_, _tied, _)) => Ok(Attempt::Tied),
        Err(e) if is_deadline_cutoff(&e) => {
            // The deadline monitor killed the offload; discard the dead
            // work and keep the clock — the spent cycles stay on the FTTI.
            gpu.cancel_in_flight();
            Ok(Attempt::Timeout)
        }
        Err(e) => Err(e.into()),
    }
}

/// Calibrates the per-stage deadline plan: one fault-free redundant frame
/// on a fresh device, measuring each stage's makespan and deriving the
/// budget set from the stages' declared FTTI multipliers.
///
/// # Errors
///
/// [`PipelineError::Empty`] for a stageless pipeline; otherwise propagates
/// device/protocol errors.
pub fn plan(
    gpu_cfg: &GpuConfig,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
) -> Result<PipelinePlan, PipelineError> {
    if pipeline.is_empty() {
        return Err(PipelineError::Empty);
    }
    let mut gpu = Gpu::new(gpu_cfg.clone());
    let mut outputs: Vec<Vec<u32>> = Vec::with_capacity(pipeline.len());
    let mut makespans = Vec::with_capacity(pipeline.len());
    for (s, stage) in pipeline.stages().iter().enumerate() {
        let inputs: Vec<&[u32]> = stage.deps.iter().map(|&d| outputs[d].as_slice()).collect();
        let start = gpu.cycle();
        match run_stage_attempt(&mut gpu, mode, pipeline, s, &inputs, None)? {
            Attempt::Clean(out) => outputs.push(out),
            // Fault-free replicas can only disagree through a protocol
            // bug; surface it rather than calibrating on garbage.
            _ => {
                return Err(PipelineError::Session(SessionError::ReplicaMismatch {
                    first_word: 0,
                }))
            }
        }
        makespans.push(gpu.cycle() - start);
    }
    let ftti = PipelineFtti::from_stage_makespans(
        makespans
            .iter()
            .zip(pipeline.stages())
            .map(|(&m, stage)| (m, stage.program.ftti_multiplier())),
    );
    Ok(PipelinePlan {
        fault_free_makespan: gpu.cycle(),
        stage_makespans: makespans,
        ftti,
    })
}

/// Executes one pipeline frame on `gpu` under `plan`'s deadlines, with
/// bounded in-FTTI re-execution recovery per `recovery`.
///
/// The GPU is used as-is (campaign runners reset it between frames and may
/// have armed a fault hook); the device clock at entry is the frame's
/// zero. Stage deadlines and the end-to-end FTTI are enforced with the
/// device watchdog; a cut-off offload is cancelled (the clock keeps the
/// spent cycles) and, slack permitting, re-executed.
///
/// # Errors
///
/// Propagates device/protocol errors ([`SimError::Stalled`] cannot be
/// caused by value corruption, only by policy bugs).
pub fn run_pipeline(
    gpu: &mut Gpu,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
    plan: &PipelinePlan,
    recovery: RecoveryPolicy,
) -> Result<PipelineRun, PipelineError> {
    if pipeline.is_empty() {
        return Err(PipelineError::Empty);
    }
    // The frame's FTTI is measured from the device clock at entry, so a
    // frame may start at any cycle (campaign runners reset to 0; a
    // periodic host re-enters with the clock running).
    let frame_zero = gpu.cycle();
    let e2e = plan.ftti.end_to_end();
    let e2e_abs = frame_zero.saturating_add(e2e);
    let mut run = PipelineRun {
        timings: Vec::with_capacity(pipeline.len()),
        outputs: Vec::with_capacity(pipeline.len()),
        end_cycle: frame_zero,
        deadline_miss: false,
        retries_attempted: 0,
        retries_failed: 0,
        no_slack_failures: 0,
        corrected_reads: 0,
    };
    for (s, stage) in pipeline.stages().iter().enumerate() {
        let inputs: Vec<&[u32]> = stage
            .deps
            .iter()
            .map(|&d| run.outputs[d].as_slice())
            .collect();
        let start = gpu.cycle();
        let budget = plan.ftti.stage_budgets[s];
        let mut attempts = 0u32;
        let mut limit = plan.ftti.stage_limit(s, frame_zero, start);
        let (status, output) = loop {
            attempts += 1;
            let attempt = run_stage_attempt(gpu, mode, pipeline, s, &inputs, Some(limit))?;
            let retrying = attempts > 1;
            match attempt {
                Attempt::Clean(out) => {
                    break if retrying {
                        (StageStatus::Recovered, out)
                    } else {
                        (StageStatus::Clean, out)
                    }
                }
                Attempt::Corrected(out, corrected) => {
                    run.corrected_reads += corrected;
                    break if retrying {
                        (StageStatus::Recovered, out)
                    } else {
                        (StageStatus::Corrected, out)
                    };
                }
                Attempt::Tied | Attempt::Timeout => {
                    if retrying {
                        run.retries_failed += 1;
                    }
                    if attempts > recovery.max_retries_per_stage {
                        break (
                            StageStatus::FailStop(FailReason::RetryExhausted),
                            Vec::new(),
                        );
                    }
                    let now = gpu.cycle();
                    if !plan
                        .ftti
                        .allows_retry(now - frame_zero, plan.stage_makespans[s])
                    {
                        run.no_slack_failures += 1;
                        break (StageStatus::FailStop(FailReason::NoSlack), Vec::new());
                    }
                    run.retries_attempted += 1;
                    // The retry gets a fresh stage budget, still capped by
                    // the frame's absolute end-to-end FTTI.
                    limit = plan.ftti.stage_limit(s, frame_zero, now);
                }
            }
        };
        let end = gpu.cycle();
        run.timings.push(StageTiming {
            stage: s,
            name: stage.name,
            start,
            end,
            budget,
            slack: budget.saturating_sub(end - start),
            attempts,
            status,
        });
        run.outputs.push(output);
        if !status.delivered() {
            break;
        }
    }
    run.end_cycle = gpu.cycle();
    run.deadline_miss = run.end_cycle > e2e_abs;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::ad_pipeline;
    use higpu_workloads::Scale;

    fn cfg() -> GpuConfig {
        let mut cfg = GpuConfig::paper_6sm();
        cfg.global_mem_bytes = 2 * 1024 * 1024;
        cfg
    }

    #[test]
    fn fault_free_frame_is_clean_and_inside_every_budget() {
        let p = ad_pipeline(Scale::Campaign);
        let mode = RedundancyMode::srrs_default(6);
        let plan = plan(&cfg(), &p, &mode).expect("calibration");
        assert_eq!(plan.stage_makespans.len(), 3);
        assert_eq!(
            plan.ftti.end_to_end(),
            plan.ftti.stage_budgets.iter().sum::<u64>()
        );
        assert!(plan.fault_free_makespan < plan.ftti.end_to_end());

        let mut gpu = Gpu::new(cfg());
        let run = run_pipeline(&mut gpu, &p, &mode, &plan, RecoveryPolicy::default())
            .expect("frame runs");
        assert!(run.completed());
        assert_eq!(run.timings.len(), 3);
        for (t, &makespan) in run.timings.iter().zip(&plan.stage_makespans) {
            assert_eq!(t.status, StageStatus::Clean);
            assert_eq!(t.attempts, 1);
            assert_eq!(t.end - t.start, makespan, "plan matches execution");
            assert!(t.slack > 0);
        }
        assert_eq!(run.end_cycle, plan.fault_free_makespan);
        assert!(!run.deadline_miss);
        // Outputs verify stage-wise against the CPU references.
        let refs = p.reference_outputs();
        for (s, stage) in p.stages().iter().enumerate() {
            let inputs: Vec<&[u32]> = stage
                .deps
                .iter()
                .map(|&d| run.outputs[d].as_slice())
                .collect();
            stage
                .program
                .verify(&run.outputs[s], &inputs)
                .unwrap_or_else(|e| panic!("stage {s} ({}) wrong: {e}", stage.name));
        }
        assert_eq!(refs.len(), 3);
    }

    #[test]
    fn zero_budget_stage_fails_stop_without_slack() {
        // A pipeline whose budgets are artificially exhausted: the first
        // stage's watchdog fires immediately and no slack funds a retry.
        let p = ad_pipeline(Scale::Campaign);
        let mode = RedundancyMode::srrs_default(6);
        let mut plan = plan(&cfg(), &p, &mode).expect("calibration");
        plan.ftti.stage_budgets = vec![1; plan.stage_makespans.len()];
        let mut gpu = Gpu::new(cfg());
        let run = run_pipeline(&mut gpu, &p, &mode, &plan, RecoveryPolicy::default())
            .expect("frame runs");
        assert_eq!(
            run.failstop(),
            Some((0, FailReason::NoSlack)),
            "{:?}",
            run.timings
        );
        assert!(!run.completed());
        assert_eq!(run.no_slack_failures, 1);
        assert_eq!(run.timings.len(), 1, "downstream stages never execute");
        assert!(run.deadline_miss, "the cutoff passed the 3-cycle FTTI");
    }
}
