//! Pipeline execution: per-stage deadline accounting, redundant stage
//! offloads, and bounded **in-FTTI re-execution recovery** — with two
//! interchangeable frame executors.
//!
//! A pipeline frame executes its stage DAG on one GPU; the device clock is
//! the frame timeline. Each stage runs redundantly (the NMR protocol of
//! [`higpu_core::redundancy`]) under a watchdog limit derived from its
//! [`higpu_core::ftti::PipelineFtti`] budget. A stage whose vote ties
//! (Detected) or whose watchdog fires (timing violation) is **retried with
//! fresh replicas on the same device** — provided the remaining end-to-end
//! slack still covers the retry *with the critical path's downstream needs
//! reserved* ([`PipelineFtti::allows_retry`]). A clean retry turns the
//! detection into [`StageStatus::Recovered`]: fail-operational. A retry
//! that fails again, or a detection with no remaining slack, is a
//! fail-stop ([`StageStatus::FailStop`]) — the frame is abandoned within
//! the FTTI, which is the safe-state transition the deadline monitor
//! guarantees.
//!
//! Two executors implement this contract ([`ExecMode`]):
//!
//! * [`ExecMode::Overlapped`] (the default) — a ready-set scheduler that
//!   runs **independent DAG branches concurrently on disjoint SM
//!   partitions** of the one device (see [`crate::overlap`]), shrinking
//!   the end-to-end makespan to the critical path;
//! * [`ExecMode::Serial`] — the pre-concurrency one-stage-at-a-time
//!   executor, kept as the reference oracle: on fault-free runs both
//!   executors produce bit-identical voted outputs (test-fenced).

use crate::graph::Pipeline;
use higpu_core::bist::scheduler_bist;
use higpu_core::ftti::PipelineFtti;
use higpu_core::redundancy::{RedundancyError, RedundancyMode, RedundantExecutor};
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::{Gpu, SimError};
use higpu_sim::partition::SmRange;
use higpu_telemetry::{EventKind, NO_SM};
use higpu_workloads::{RedundantSession, SessionError};
use std::fmt;

/// Which frame executor runs the stage DAG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Independent DAG branches overlap on disjoint SM partitions (the
    /// concurrent ready-set executor of [`crate::overlap`]).
    #[default]
    Overlapped,
    /// One stage at a time on the whole device — the reference oracle.
    Serial,
}

impl ExecMode {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Overlapped => "overlapped",
            ExecMode::Serial => "serial",
        }
    }

    /// Parses a report label (`serial` / `overlapped`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "overlapped" | "overlap" => Some(ExecMode::Overlapped),
            "serial" => Some(ExecMode::Serial),
            _ => None,
        }
    }
}

/// How much re-execution a pipeline frame may attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries allowed per stage (0 disables recovery: every detection is
    /// a fail-stop, the pre-pipeline DCLS behaviour).
    pub max_retries_per_stage: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries_per_stage: 1,
        }
    }
}

impl RecoveryPolicy {
    /// No re-execution: detections fail-stop immediately.
    pub fn disabled() -> Self {
        Self {
            max_retries_per_stage: 0,
        }
    }
}

/// Per-frame execution options: executor, recovery budget, self-tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameOptions {
    /// Which executor runs the frame.
    pub exec: ExecMode,
    /// The re-execution budget.
    pub recovery: RecoveryPolicy,
    /// Run the scheduler BIST (paper Sec. IV-C) between stages — whenever a
    /// stage has delivered and the device is idle — and once more at frame
    /// end. The canary rounds consume FTTI slack, so this is off by
    /// default; scheduler-misroute campaigns switch it on to convert
    /// latent diversity loss into a detection.
    pub interstage_bist: bool,
}

impl FrameOptions {
    /// The overlapped executor with the default recovery budget.
    pub fn overlapped() -> Self {
        Self::default()
    }

    /// The serial reference executor with the default recovery budget.
    pub fn serial() -> Self {
        Self {
            exec: ExecMode::Serial,
            ..Self::default()
        }
    }

    /// The same options under `exec`.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// The same options with recovery disabled.
    pub fn without_recovery(mut self) -> Self {
        self.recovery = RecoveryPolicy::disabled();
        self
    }

    /// The same options with `recovery`.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The same options with inter-stage scheduler self-tests enabled.
    pub fn with_interstage_bist(mut self) -> Self {
        self.interstage_bist = true;
        self
    }
}

/// Why a stage fail-stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The final permitted attempt still tied or timed out (e.g. a
    /// permanent fault corrupts every re-execution identically).
    RetryExhausted,
    /// A detection occurred but the remaining end-to-end slack no longer
    /// covers a re-execution — recovery would blow the FTTI, so the frame
    /// stops instead.
    NoSlack,
}

/// What happened to one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// First attempt, unanimous replicas.
    Clean,
    /// First attempt; the N ≥ 3 vote outvoted a minority corruption in
    /// place (forward recovery, no re-execution).
    Corrected,
    /// A detected attempt was re-executed within the remaining FTTI slack
    /// and the retry succeeded — fail-operational backward recovery.
    Recovered,
    /// The stage could not deliver a trustworthy output in time.
    FailStop(FailReason),
}

impl StageStatus {
    /// True when the stage delivered a consumable output.
    pub fn delivered(&self) -> bool {
        !matches!(self, StageStatus::FailStop(_))
    }
}

/// Numeric outcome carried in the `aux` word of
/// [`EventKind::StageFinish`] telemetry events: 0 clean, 1 corrected,
/// 2 recovered, 3 fail-stop.
pub(crate) fn status_code(status: StageStatus) -> u64 {
    match status {
        StageStatus::Clean => 0,
        StageStatus::Corrected => 1,
        StageStatus::Recovered => 2,
        StageStatus::FailStop(_) => 3,
    }
}

/// The recorded timeline entry of one executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage index in the pipeline.
    pub stage: usize,
    /// Stage instance name.
    pub name: &'static str,
    /// Cycle the stage (first attempt) started.
    pub start: u64,
    /// Cycle the stage finished (successfully or not).
    pub end: u64,
    /// The stage's watchdog budget in cycles.
    pub budget: u64,
    /// Budget left unspent: `budget − (end − start)` (0 when overrun).
    pub slack: u64,
    /// Execution attempts (1 = no retry).
    pub attempts: u32,
    /// The SM partition the stage executed on (the whole device under the
    /// serial executor; a reserved disjoint range under the overlapped
    /// one).
    pub partition: SmRange,
    /// Host→device bytes uploaded by this stage per the DCLS protocol
    /// (every input transferred once per replica), summed over attempts.
    pub bytes_uploaded: u64,
    /// Device→host bytes read back (all replica copies fetched for every
    /// compare/vote), summed over attempts.
    pub bytes_read_back: u64,
    /// Outcome.
    pub status: StageStatus,
}

/// The per-frame deadline plan: fault-free per-stage makespans measured by
/// a calibration run, and the FTTI budget set derived from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinePlan {
    /// Fault-free redundant makespan per stage, in stage order (measured
    /// one stage at a time on the whole device).
    pub stage_makespans: Vec<u64>,
    /// The derived budget set: per-stage budgets plus the critical-path
    /// end-to-end FTTI over the stage DAG.
    pub ftti: PipelineFtti,
    /// Fault-free end-to-end makespan of the serial calibration frame.
    pub fault_free_makespan: u64,
    /// Host↔device bytes one fault-free frame moves per the DCLS protocol
    /// (uploads + read-backs over all stages and replicas) — the
    /// measurement baseline for device-resident inter-stage buffers.
    pub frame_bandwidth_bytes: u64,
}

/// The result of one pipeline frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineRun {
    /// Timeline of every executed stage, in completion order (equal to
    /// stage order under the serial executor; overlapped branches complete
    /// in makespan order).
    pub timings: Vec<StageTiming>,
    /// Voted output words per stage, indexed by stage (empty for a stage
    /// that never delivered).
    pub outputs: Vec<Vec<u32>>,
    /// Device cycle when the frame ended.
    pub end_cycle: u64,
    /// The frame exceeded its end-to-end FTTI (always accompanied by a
    /// fail-stop: the deadline monitor never lets a frame run on past it).
    pub deadline_miss: bool,
    /// Re-executions attempted across all stages.
    pub retries_attempted: u32,
    /// Re-executions that themselves tied or timed out.
    pub retries_failed: u32,
    /// Detections that could not be retried for lack of slack.
    pub no_slack_failures: u32,
    /// Reads on which an N ≥ 3 vote corrected a minority corruption,
    /// summed over all successful attempts.
    pub corrected_reads: usize,
    /// Host↔device bytes this frame actually moved (uploads + read-backs,
    /// all replicas, all attempts).
    pub bandwidth_bytes: u64,
    /// Scheduler BIST rounds run between stages
    /// ([`FrameOptions::interstage_bist`]).
    pub bist_rounds: u32,
    /// BIST rounds that found a placement disagreement — a scheduler
    /// (mis)behaviour caught before it could become latent.
    pub bist_failed: u32,
}

impl PipelineRun {
    pub(crate) fn new(stages: usize, frame_zero: u64) -> Self {
        Self {
            timings: Vec::with_capacity(stages),
            outputs: vec![Vec::new(); stages],
            end_cycle: frame_zero,
            deadline_miss: false,
            retries_attempted: 0,
            retries_failed: 0,
            no_slack_failures: 0,
            corrected_reads: 0,
            bandwidth_bytes: 0,
            bist_rounds: 0,
            bist_failed: 0,
        }
    }

    /// The fail-stopped stage, if any.
    pub fn failstop(&self) -> Option<(usize, FailReason)> {
        self.timings.iter().find_map(|t| match t.status {
            StageStatus::FailStop(r) => Some((t.stage, r)),
            _ => None,
        })
    }

    /// True when every stage delivered (the frame is fail-operational).
    pub fn completed(&self) -> bool {
        self.failstop().is_none() && !self.deadline_miss
    }

    /// Stages recovered by re-execution.
    pub fn recovered_stages(&self) -> u32 {
        self.count(StageStatus::Recovered)
    }

    /// Stages corrected in place by the vote.
    pub fn corrected_stages(&self) -> u32 {
        self.count(StageStatus::Corrected)
    }

    /// The timeline entry of `stage`, if it executed.
    pub fn timing_of(&self, stage: usize) -> Option<&StageTiming> {
        self.timings.iter().find(|t| t.stage == stage)
    }

    fn count(&self, status: StageStatus) -> u32 {
        self.timings.iter().filter(|t| t.status == status).count() as u32
    }
}

/// Errors of pipeline execution (never produced by mere value corruption —
/// detections and timing violations are *results*, not errors).
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Device/protocol error from a stage.
    Session(SessionError),
    /// The pipeline has no stages.
    Empty,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Session(e) => write!(f, "stage failed: {e}"),
            PipelineError::Empty => write!(f, "pipeline has no stages"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SessionError> for PipelineError {
    fn from(e: SessionError) -> Self {
        PipelineError::Session(e)
    }
}

impl From<RedundancyError> for PipelineError {
    fn from(e: RedundancyError) -> Self {
        PipelineError::Session(SessionError::Redundancy(e))
    }
}

/// True when the error is the watchdog firing (a *timing detection*, not a
/// failure), regardless of which wrapper it arrived in.
pub(crate) fn is_deadline_cutoff(e: &SessionError) -> bool {
    matches!(
        e,
        SessionError::Sim(SimError::DeadlineExceeded { .. })
            | SessionError::Redundancy(RedundancyError::Sim(SimError::DeadlineExceeded { .. }))
    )
}

/// One redundant attempt of one stage under a watchdog limit.
enum Attempt {
    /// Unanimous output.
    Clean(Vec<u32>),
    /// Every disagreement outvoted; the voted output plus corrected reads.
    Corrected(Vec<u32>, usize),
    /// At least one read tied (two-replica mismatch or an unresolvable
    /// N-way split) — the NMR monitor detected the fault.
    Tied,
    /// The watchdog fired; in-flight work was cancelled.
    Timeout,
}

/// Host↔device traffic of one attempt (uploads, read-backs).
type AttemptBytes = (u64, u64);

fn run_stage_attempt(
    gpu: &mut Gpu,
    mode: &RedundancyMode,
    pipeline: &Pipeline,
    stage: usize,
    inputs: &[&[u32]],
    limit: Option<u64>,
) -> Result<(Attempt, AttemptBytes), PipelineError> {
    gpu.set_cycle_limit(limit);
    // The byte counters survive an aborted attempt: traffic moved before a
    // watchdog cutoff really crossed the host interface and must stay in
    // the stage's accounting (the overlapped executor keeps a cancelled
    // attempt's partial counts the same way).
    let mut bytes: AttemptBytes = (0, 0);
    let result = (|bytes: &mut AttemptBytes| -> Result<(Vec<u32>, usize, usize), SessionError> {
        let mut exec = RedundantExecutor::new(gpu, mode.clone())?;
        let mut session = RedundantSession::tolerant(&mut exec);
        let out = pipeline.stages()[stage].program.run(&mut session, inputs);
        *bytes = (session.bytes_uploaded(), session.bytes_read_back());
        Ok((out?, session.tied_reads(), session.corrected_reads()))
    })(&mut bytes);
    gpu.set_cycle_limit(None);
    match result {
        Ok((out, 0, 0)) => Ok((Attempt::Clean(out), bytes)),
        Ok((out, 0, corrected)) => Ok((Attempt::Corrected(out, corrected), bytes)),
        Ok((_, _tied, _)) => Ok((Attempt::Tied, bytes)),
        Err(e) if is_deadline_cutoff(&e) => {
            // The deadline monitor killed the offload; discard the dead
            // work and keep the clock — the spent cycles stay on the FTTI.
            gpu.cancel_in_flight();
            Ok((Attempt::Timeout, bytes))
        }
        Err(e) => Err(e.into()),
    }
}

/// Calibrates the per-stage deadline plan: one fault-free redundant frame
/// on a fresh device (stages one at a time on the whole device), measuring
/// each stage's makespan and per-protocol byte traffic, and deriving the
/// budget set — per-stage budgets plus the **critical-path** end-to-end
/// FTTI over the pipeline's DAG — from the stages' declared FTTI
/// multipliers.
///
/// # Errors
///
/// [`PipelineError::Empty`] for a stageless pipeline; otherwise propagates
/// device/protocol errors.
pub fn plan(
    gpu_cfg: &GpuConfig,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
) -> Result<PipelinePlan, PipelineError> {
    plan_on(&mut Gpu::new(gpu_cfg.clone()), pipeline, mode)
}

/// Re-calibrates the deadline plan on a **degraded** device: a fresh GPU
/// of `gpu_cfg` with `quarantined` SMs taken out of service. This is the
/// limp-home re-planning step — after a permanent-fault diagnosis the
/// stage makespans stretch (fewer SMs share the round-robin) and every
/// budget, including the critical-path end-to-end FTTI, must be re-derived
/// for the shrunken device before the next frame may be admitted.
///
/// Quarantining out-of-range SM ids is a no-op (the degraded plan of a
/// narrower device than the diagnosis assumed is still well-defined).
///
/// # Errors
///
/// [`PipelineError::Empty`] for a stageless pipeline; device/protocol
/// errors when the residual capacity cannot host the redundant stages
/// (e.g. fewer healthy SMs than replicas) — the caller's cue to fail-stop.
pub fn plan_degraded(
    gpu_cfg: &GpuConfig,
    quarantined: &[usize],
    pipeline: &Pipeline,
    mode: &RedundancyMode,
) -> Result<PipelinePlan, PipelineError> {
    let mut gpu = Gpu::new(gpu_cfg.clone());
    for &sm in quarantined {
        if sm < gpu.config().num_sms {
            gpu.quarantine_sm(sm);
        }
    }
    plan_on(&mut gpu, pipeline, mode)
}

/// [`plan`] on a caller-provided device: calibrates the fault-free frame
/// on `gpu` exactly as the device stands — including any quarantined SMs —
/// measuring makespans as device-clock deltas from entry. The device is
/// left non-idle-clean (kernels ran, memory was allocated); calibrate on a
/// scratch device, not mid-mission.
pub fn plan_on(
    gpu: &mut Gpu,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
) -> Result<PipelinePlan, PipelineError> {
    if pipeline.is_empty() {
        return Err(PipelineError::Empty);
    }
    let frame_zero = gpu.cycle();
    let mut outputs: Vec<Vec<u32>> = Vec::with_capacity(pipeline.len());
    let mut makespans = Vec::with_capacity(pipeline.len());
    let mut bandwidth = 0u64;
    for (s, stage) in pipeline.stages().iter().enumerate() {
        let inputs: Vec<&[u32]> = stage.deps.iter().map(|&d| outputs[d].as_slice()).collect();
        let start = gpu.cycle();
        match run_stage_attempt(gpu, mode, pipeline, s, &inputs, None)? {
            (Attempt::Clean(out), (up, down)) => {
                bandwidth += up + down;
                outputs.push(out);
            }
            // Fault-free replicas can only disagree through a protocol
            // bug; surface it rather than calibrating on garbage.
            _ => {
                return Err(PipelineError::Session(SessionError::ReplicaMismatch {
                    first_word: 0,
                }))
            }
        }
        makespans.push(gpu.cycle() - start);
    }
    let ftti = PipelineFtti::from_dag(
        makespans
            .iter()
            .zip(pipeline.stages())
            .map(|(&m, stage)| (m, stage.program.ftti_multiplier())),
        pipeline.stages().iter().map(|s| s.deps.clone()).collect(),
    );
    Ok(PipelinePlan {
        fault_free_makespan: gpu.cycle() - frame_zero,
        stage_makespans: makespans,
        ftti,
        frame_bandwidth_bytes: bandwidth,
    })
}

/// Executes one pipeline frame on `gpu` under `plan`'s deadlines, with
/// bounded in-FTTI re-execution recovery and the executor selected by
/// `opts` ([`ExecMode`]).
///
/// The GPU is used as-is (campaign runners reset it between frames and may
/// have armed a fault hook); the device clock at entry is the frame's
/// zero. Stage deadlines and the end-to-end FTTI are enforced with the
/// device watchdog; a cut-off offload is cancelled (the clock keeps the
/// spent cycles) and, slack permitting, re-executed.
///
/// # Errors
///
/// Propagates device/protocol errors ([`SimError::Stalled`] cannot be
/// caused by value corruption, only by policy bugs).
pub fn run_pipeline(
    gpu: &mut Gpu,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
    plan: &PipelinePlan,
    opts: FrameOptions,
) -> Result<PipelineRun, PipelineError> {
    if pipeline.is_empty() {
        return Err(PipelineError::Empty);
    }
    match opts.exec {
        ExecMode::Serial => run_serial(gpu, pipeline, mode, plan, opts),
        ExecMode::Overlapped => crate::overlap::run_overlapped(gpu, pipeline, mode, plan, opts),
    }
}

/// Runs the scheduler self-test between stages (the device must be idle);
/// records the round in `run`.
pub(crate) fn bist_round(
    gpu: &mut Gpu,
    mode: &RedundancyMode,
    run: &mut PipelineRun,
) -> Result<(), PipelineError> {
    let blocks = 2 * gpu.config().num_sms as u32;
    let report = scheduler_bist(gpu, mode.clone(), blocks)?;
    run.bist_rounds += 1;
    run.bist_failed += u32::from(!report.passed());
    Ok(())
}

/// The serial reference executor: stages one at a time on the whole
/// device, in topological order.
fn run_serial(
    gpu: &mut Gpu,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
    plan: &PipelinePlan,
    opts: FrameOptions,
) -> Result<PipelineRun, PipelineError> {
    // The frame's FTTI is measured from the device clock at entry, so a
    // frame may start at any cycle (campaign runners reset to 0; a
    // periodic host re-enters with the clock running). A one-stage-at-a-
    // time executor is budgeted against the per-stage *sum*
    // ([`PipelineFtti::serial_sum`]) — it still owes every stage's budget
    // serially, where the overlapped executor owes only the critical path.
    // On chain pipelines the two budgets coincide.
    let frame_zero = gpu.cycle();
    let e2e_abs = frame_zero.saturating_add(plan.ftti.serial_sum());
    let whole = SmRange::whole(gpu.config().num_sms);
    let mut run = PipelineRun::new(pipeline.len(), frame_zero);
    for (s, stage) in pipeline.stages().iter().enumerate() {
        let inputs: Vec<&[u32]> = stage
            .deps
            .iter()
            .map(|&d| run.outputs[d].as_slice())
            .collect();
        let start = gpu.cycle();
        gpu.record_event(EventKind::StageStart, start, NO_SM, s as u64, 1);
        let budget = plan.ftti.stage_budgets[s];
        let mut attempts = 0u32;
        let mut stage_up = 0u64;
        let mut stage_down = 0u64;
        // Absolute attempt limit: the stage budget, capped by the frame's
        // absolute serial-sum FTTI.
        let serial_limit = |start: u64| start.saturating_add(budget).min(e2e_abs);
        let mut limit = serial_limit(start);
        let (status, output) = loop {
            attempts += 1;
            let (attempt, (up, down)) =
                run_stage_attempt(gpu, mode, pipeline, s, &inputs, Some(limit))?;
            stage_up += up;
            stage_down += down;
            let retrying = attempts > 1;
            match attempt {
                Attempt::Clean(out) => {
                    break if retrying {
                        (StageStatus::Recovered, out)
                    } else {
                        (StageStatus::Clean, out)
                    }
                }
                Attempt::Corrected(out, corrected) => {
                    run.corrected_reads += corrected;
                    break if retrying {
                        (StageStatus::Recovered, out)
                    } else {
                        (StageStatus::Corrected, out)
                    };
                }
                Attempt::Tied | Attempt::Timeout => {
                    if retrying {
                        run.retries_failed += 1;
                    }
                    if attempts > opts.recovery.max_retries_per_stage {
                        break (
                            StageStatus::FailStop(FailReason::RetryExhausted),
                            Vec::new(),
                        );
                    }
                    let now = gpu.cycle();
                    if !plan
                        .ftti
                        .allows_retry_serial(s, now - frame_zero, plan.stage_makespans[s])
                    {
                        run.no_slack_failures += 1;
                        break (StageStatus::FailStop(FailReason::NoSlack), Vec::new());
                    }
                    run.retries_attempted += 1;
                    gpu.record_event(
                        EventKind::StageRetry,
                        now,
                        NO_SM,
                        s as u64,
                        (attempts + 1) as u64,
                    );
                    // The retry gets a fresh stage budget, still capped by
                    // the frame's absolute end-to-end FTTI.
                    limit = serial_limit(now);
                }
            }
        };
        let end = gpu.cycle();
        gpu.record_event(
            EventKind::StageFinish,
            end,
            NO_SM,
            s as u64,
            status_code(status),
        );
        run.bandwidth_bytes += stage_up + stage_down;
        run.timings.push(StageTiming {
            stage: s,
            name: stage.name,
            start,
            end,
            budget,
            slack: budget.saturating_sub(end - start),
            attempts,
            partition: whole,
            bytes_uploaded: stage_up,
            bytes_read_back: stage_down,
            status,
        });
        let delivered = status.delivered();
        run.outputs[s] = output;
        if !delivered {
            break;
        }
        if opts.interstage_bist {
            // Between stages the device is idle: run the periodic
            // scheduler self-test so a latent misroute surfaces before the
            // next stage consumes this one's output.
            bist_round(gpu, mode, &mut run)?;
        }
    }
    run.end_cycle = gpu.cycle();
    run.deadline_miss = run.end_cycle > e2e_abs;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::ad_pipeline;
    use higpu_workloads::Scale;

    fn cfg() -> GpuConfig {
        let mut cfg = GpuConfig::paper_6sm();
        cfg.global_mem_bytes = 2 * 1024 * 1024;
        cfg
    }

    #[test]
    fn fault_free_serial_frame_is_clean_and_inside_every_budget() {
        let p = ad_pipeline(Scale::Campaign);
        let mode = RedundancyMode::srrs_default(6);
        let plan = plan(&cfg(), &p, &mode).expect("calibration");
        assert_eq!(plan.stage_makespans.len(), 3);
        assert_eq!(
            plan.ftti.end_to_end(),
            plan.ftti.stage_budgets.iter().sum::<u64>(),
            "a chain's critical path is the stage-budget sum"
        );
        assert_eq!(plan.ftti.end_to_end(), plan.ftti.serial_sum());
        assert!(plan.fault_free_makespan < plan.ftti.end_to_end());
        assert!(
            plan.frame_bandwidth_bytes > 0,
            "the DCLS protocol moves data"
        );

        let mut gpu = Gpu::new(cfg());
        let run =
            run_pipeline(&mut gpu, &p, &mode, &plan, FrameOptions::serial()).expect("frame runs");
        assert!(run.completed());
        assert_eq!(run.timings.len(), 3);
        for (t, &makespan) in run.timings.iter().zip(&plan.stage_makespans) {
            assert_eq!(t.status, StageStatus::Clean);
            assert_eq!(t.attempts, 1);
            assert_eq!(t.end - t.start, makespan, "plan matches execution");
            assert!(t.slack > 0);
            assert_eq!(t.partition, SmRange::whole(6), "serial owns the device");
            assert!(t.bytes_uploaded > 0 && t.bytes_read_back > 0);
        }
        assert_eq!(run.end_cycle, plan.fault_free_makespan);
        assert_eq!(
            run.bandwidth_bytes, plan.frame_bandwidth_bytes,
            "a fault-free frame moves exactly the calibrated traffic"
        );
        assert!(!run.deadline_miss);
        assert_eq!(run.bist_rounds, 0, "self-tests are opt-in");
        // Outputs verify stage-wise against the CPU references.
        let refs = p.reference_outputs();
        for (s, stage) in p.stages().iter().enumerate() {
            let inputs: Vec<&[u32]> = stage
                .deps
                .iter()
                .map(|&d| run.outputs[d].as_slice())
                .collect();
            stage
                .program
                .verify(&run.outputs[s], &inputs)
                .unwrap_or_else(|e| panic!("stage {s} ({}) wrong: {e}", stage.name));
        }
        assert_eq!(refs.len(), 3);
    }

    #[test]
    fn zero_budget_stage_fails_stop_without_slack() {
        // A pipeline whose budgets are artificially exhausted: the first
        // stage's watchdog fires immediately and no slack funds a retry.
        let p = ad_pipeline(Scale::Campaign);
        let mode = RedundancyMode::srrs_default(6);
        let mut plan = plan(&cfg(), &p, &mode).expect("calibration");
        plan.ftti.stage_budgets = vec![1; plan.stage_makespans.len()];
        let mut gpu = Gpu::new(cfg());
        let run =
            run_pipeline(&mut gpu, &p, &mode, &plan, FrameOptions::serial()).expect("frame runs");
        assert_eq!(
            run.failstop(),
            Some((0, FailReason::NoSlack)),
            "{:?}",
            run.timings
        );
        assert!(!run.completed());
        assert_eq!(run.no_slack_failures, 1);
        assert_eq!(run.timings.len(), 1, "downstream stages never execute");
        assert!(run.deadline_miss, "the cutoff passed the 3-cycle FTTI");
    }

    #[test]
    fn interstage_bist_passes_on_a_healthy_scheduler_and_costs_cycles() {
        let p = ad_pipeline(Scale::Campaign);
        let mode = RedundancyMode::srrs_default(6);
        let plan = plan(&cfg(), &p, &mode).expect("calibration");
        let mut gpu = Gpu::new(cfg());
        let run = run_pipeline(
            &mut gpu,
            &p,
            &mode,
            &plan,
            FrameOptions::serial().with_interstage_bist(),
        )
        .expect("frame runs");
        assert!(run.completed());
        assert_eq!(run.bist_rounds, 3, "one self-test after every stage");
        assert_eq!(run.bist_failed, 0, "healthy scheduler passes every round");
        assert!(
            run.end_cycle > plan.fault_free_makespan,
            "canary rounds consume frame cycles"
        );
    }
}
