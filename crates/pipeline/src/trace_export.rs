//! Chrome-trace export of a pipeline frame: one track per stage (complete
//! spans from the frame's [`StageTiming`] timeline), one track per SM plus
//! a device track (built from the device's telemetry ring via
//! [`higpu_telemetry::ChromeTrace`]), in one process group per frame.
//!
//! Timestamps are **simulated cycles** (the trace viewer's "µs" axis reads
//! as cycles); the export is a pure function of the frame run and the
//! drained telemetry events, so it inherits the simulator's determinism.

use crate::exec::{PipelineRun, StageStatus, StageTiming};
use higpu_sim::gpu::Gpu;
use higpu_telemetry::{ChromeTrace, TraceEvent};

/// Thread id offset of stage tracks within a frame's process group (SM
/// tracks use the SM index directly; stages sit above any plausible SM
/// count so the two families never collide).
const STAGE_TID_BASE: u32 = 1_000;

fn span_name(t: &StageTiming) -> String {
    let tag = match t.status {
        StageStatus::Clean => "",
        StageStatus::Corrected => " [corrected]",
        StageStatus::Recovered => " [recovered]",
        StageStatus::FailStop(_) => " [FAIL-STOP]",
    };
    if t.attempts > 1 {
        format!("{}{} ({} attempts)", t.name, tag, t.attempts)
    } else {
        format!("{}{}", t.name, tag)
    }
}

/// Adds one pipeline frame to `trace` as process `pid`: named stage tracks
/// with one complete span per executed stage, plus the SM/device tracks
/// from `events` (drain the device with [`Gpu::drain_telemetry`] first).
pub fn add_frame(trace: &mut ChromeTrace, pid: u32, run: &PipelineRun, events: &[TraceEvent]) {
    for t in &run.timings {
        let tid = STAGE_TID_BASE + t.stage as u32;
        trace.thread_name(pid, tid, &format!("stage {}: {}", t.stage, t.name));
        trace.complete(
            pid,
            tid,
            &span_name(t),
            t.start,
            t.end.saturating_sub(t.start).max(1),
        );
    }
    higpu_telemetry::chrome::add_device_events(trace, pid, events);
}

/// Records `run` plus the device's drained telemetry ring as process `pid`
/// of `trace`, naming the process `name`. Convenience wrapper used by the
/// trace-recording binaries and `examples/run_trace.rs`.
pub fn export_frame(
    trace: &mut ChromeTrace,
    pid: u32,
    name: &str,
    gpu: &mut Gpu,
    run: &PipelineRun,
) {
    trace.process_name(pid, name);
    let events = gpu.drain_telemetry();
    add_frame(trace, pid, run, &events);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FailReason;
    use higpu_sim::partition::SmRange;

    fn timing(stage: usize, name: &'static str, status: StageStatus) -> StageTiming {
        StageTiming {
            stage,
            name,
            start: 100,
            end: 500,
            budget: 600,
            slack: 200,
            attempts: if status == StageStatus::Recovered {
                2
            } else {
                1
            },
            partition: SmRange { start: 0, len: 2 },
            bytes_uploaded: 0,
            bytes_read_back: 0,
            status,
        }
    }

    #[test]
    fn frame_spans_carry_stage_names_and_status_tags() {
        let mut run = PipelineRun::new(3, 0);
        run.timings.push(timing(0, "camera", StageStatus::Clean));
        run.timings.push(timing(1, "fuse", StageStatus::Recovered));
        run.timings.push(timing(
            2,
            "track",
            StageStatus::FailStop(FailReason::NoSlack),
        ));
        let mut trace = ChromeTrace::new();
        add_frame(&mut trace, 1, &run, &[]);
        let json = trace.to_json();
        assert!(json.contains("\"camera\""));
        assert!(json.contains("fuse [recovered] (2 attempts)"));
        assert!(json.contains("track [FAIL-STOP]"));
        assert!(json.contains("stage 1: fuse"));
    }
}
