//! The registered pipelines: `ad_pipeline` and `sensor_fusion`.
//!
//! Both are campaign-ready at [`Scale::Campaign`] (small fixed grids, so
//! thousands of fault-injection frames fit the campaign device image) and
//! paper-sized at [`Scale::Full`].

use crate::graph::{Pipeline, PipelineRegistry};
use crate::stages::{BfsDetect, FuseAdd, NnTrack, PathfinderPlan};
use higpu_rodinia::hotspot::Hotspot;
use higpu_rodinia::srad::Srad;
use higpu_workloads::synthetic::IteratedFma;
use higpu_workloads::{Scale, WorkloadStage};

/// The autonomous-driving frame pipeline: perception → detection →
/// planning.
///
/// * **perception** — SRAD speckle-reducing diffusion denoises the sensor
///   frame (source stage; the Rodinia `srad` workload);
/// * **detect** — the denoised frame seeds region-growing detection over a
///   fixed sensor topology (the Rodinia BFS kernels);
/// * **plan** — the detection map becomes a cost grid and the Rodinia
///   pathfinder DP plans the cheapest traversal, one dependent launch per
///   row.
pub fn ad_pipeline(scale: Scale) -> Pipeline {
    let mut p = Pipeline::new("ad_pipeline");
    let perception = match scale {
        Scale::Full => Srad::default(),
        Scale::Campaign => Srad::campaign(),
    };
    let (detect, plan) = match scale {
        Scale::Full => (
            BfsDetect {
                nodes: 1024,
                extra_degree: 3,
                threads_per_block: 128,
            },
            PathfinderPlan {
                cols: 1024,
                rows: 24,
                threads_per_block: 128,
            },
        ),
        Scale::Campaign => (
            BfsDetect {
                nodes: 192,
                extra_degree: 2,
                threads_per_block: 64,
            },
            PathfinderPlan {
                cols: 192,
                rows: 6,
                threads_per_block: 64,
            },
        ),
    };
    let s0 = p.add_stage(
        "perception",
        Box::new(WorkloadStage::new(Box::new(perception))),
        &[],
    );
    let s1 = p.add_stage("detect", Box::new(detect), &[s0]);
    p.add_stage("plan", Box::new(plan), &[s1]);
    p
}

/// The sensor-fusion pipeline: two independent sources joined by a fusion
/// stage, then tracked.
///
/// * **camera** — hotspot thermal simulation stands in for the camera ISP
///   (source);
/// * **radar** — the iterated-FMA stress kernel stands in for radar DSP
///   (source);
/// * **fuse** — the DAG join: both streams fused element-wise on the GPU;
/// * **track** — fused words become track-hypothesis coordinates scored by
///   the Rodinia `nn` distance kernel.
pub fn sensor_fusion(scale: Scale) -> Pipeline {
    let mut p = Pipeline::new("sensor_fusion");
    let (camera, radar, fuse, track) = match scale {
        Scale::Full => (
            Hotspot::default(),
            IteratedFma::default(),
            FuseAdd {
                n: 1024,
                threads_per_block: 128,
            },
            NnTrack {
                records: 1024,
                threads_per_block: 128,
                target_lat: 30.0,
                target_lng: 90.0,
            },
        ),
        Scale::Campaign => (
            Hotspot::campaign(),
            IteratedFma::campaign(),
            FuseAdd {
                n: 256,
                threads_per_block: 64,
            },
            NnTrack {
                records: 256,
                threads_per_block: 64,
                target_lat: 30.0,
                target_lng: 90.0,
            },
        ),
    };
    let cam = p.add_stage(
        "camera",
        Box::new(WorkloadStage::new(Box::new(camera))),
        &[],
    );
    let rad = p.add_stage("radar", Box::new(WorkloadStage::new(Box::new(radar))), &[]);
    let fused = p.add_stage("fuse", Box::new(fuse), &[cam, rad]);
    p.add_stage("track", Box::new(track), &[fused]);
    p
}

/// Registers every built-in pipeline in `reg`.
pub fn register_all(reg: &mut PipelineRegistry) {
    reg.register("ad_pipeline", ad_pipeline);
    reg.register("sensor_fusion", sensor_fusion);
}

/// A registry holding every built-in pipeline — the pipeline-axis sibling
/// of `higpu_bench::matrix::full_registry`.
pub fn full_pipeline_registry() -> PipelineRegistry {
    let mut reg = PipelineRegistry::new();
    register_all(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_pipelines_register_and_build() {
        let reg = full_pipeline_registry();
        assert_eq!(reg.names(), vec!["ad_pipeline", "sensor_fusion"]);
        let ad = reg.build("ad_pipeline", Scale::Campaign).expect("known");
        assert_eq!(ad.len(), 3);
        assert_eq!(ad.stages()[1].deps, vec![0]);
        assert_eq!(ad.stages()[2].deps, vec![1]);
        let sf = reg.build("sensor_fusion", Scale::Full).expect("known");
        assert_eq!(sf.len(), 4);
        assert_eq!(sf.stages()[2].deps, vec![0, 1], "the DAG join");
    }

    #[test]
    fn reference_dataflow_is_deterministic() {
        let a = ad_pipeline(Scale::Campaign).reference_outputs();
        let b = ad_pipeline(Scale::Campaign).reference_outputs();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|o| !o.is_empty()));
    }
}
