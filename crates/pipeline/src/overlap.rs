//! The concurrent frame executor: independent DAG branches of one pipeline
//! frame overlap on **disjoint SM partitions** of the one simulated GPU.
//!
//! # Architecture
//!
//! A frame is driven by a *ready-set scheduler*: whenever a stage's
//! dependencies have all delivered, the executor reserves a contiguous SM
//! partition for it ([`higpu_sim::partition::SmPartitionTable`]; every
//! concurrently-ready stage gets an equal share of the free SMs, never
//! fewer than one SM per replica) and starts the stage's host program on a
//! worker thread. The worker drives an ordinary [`GpuSession`] whose
//! operations are **rendezvous messages**: every session call blocks until
//! the executor applies it to the shared device and replies. Workers are
//! therefore fully lock-stepped — the executor decides, in deterministic
//! stage order, whose operation is applied next — so the interleaving (and
//! with it every simulated cycle) is a pure function of the frame inputs,
//! exactly like the serial executor. Thread scheduling can change *wall
//! clock* time, never results.
//!
//! Replica fan-out happens at the executor: an `alloc` becomes N device
//! allocations, a `write` N uploads, a `launch` N kernel launches carrying
//! the branch's partition as the [`higpu_sim::kernel::LaunchAttrs::reserve`]
//! attribute plus the redundancy mode's diversity hints re-expressed
//! *relative to the partition* (SRRS start SMs spread over the partition,
//! SLICE sub-slices of it — see
//! [`higpu_core::policy::PartitionedScheduler`]), and a `read` fetches all
//! N copies and majority-votes them, mirroring
//! [`higpu_workloads::RedundantSession`] in tolerant mode.
//!
//! A branch's `sync` waits for *its own* kernels only
//! ([`higpu_sim::gpu::Gpu::run_until`]); sibling partitions keep executing
//! through it. Each branch attempt runs under its own absolute watchdog
//! limit (its stage budget, capped by the frame's critical-path FTTI); the
//! device watchdog is armed with the earliest limit of the blocked
//! branches, and when it fires only the overrunning branch is cancelled
//! ([`higpu_sim::gpu::Gpu::cancel_kernels`]) and — path-aware slack
//! permitting — retried on its own partition, without ever disturbing a
//! sibling partition's clock-visible state.

use crate::exec::{
    bist_round, is_deadline_cutoff, status_code, FailReason, FrameOptions, PipelineError,
    PipelinePlan, PipelineRun, StageStatus, StageTiming,
};
use crate::graph::{Pipeline, Stage};
use higpu_core::policy::PartitionedScheduler;
use higpu_core::redundancy::{RedundancyError, RedundancyMode};
use higpu_core::vote::majority_vote;
use higpu_sim::gpu::{DevPtr, Gpu, SimError};
use higpu_sim::kernel::{Dim3, KernelId, KernelLaunch, LaunchConfig};
use higpu_sim::partition::{SmPartitionTable, SmRange, SmReservation};
use higpu_sim::program::Program;
use higpu_telemetry::EventKind;
use higpu_workloads::{BufId, GpuSession, SParam, SessionError};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

/// One session operation, shipped from a branch worker to the executor.
enum Op {
    Alloc {
        words: u32,
    },
    WriteU32 {
        buf: BufId,
        data: Vec<u32>,
    },
    WriteF32 {
        buf: BufId,
        data: Vec<f32>,
    },
    Launch {
        program: Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: Vec<SParam>,
    },
    Sync,
    ReadU32 {
        buf: BufId,
        words: usize,
    },
    /// The host program returned; carries its result.
    Done(Result<Vec<u32>, SessionError>),
}

/// The executor's answer to one [`Op`].
enum Reply {
    Buf(BufId),
    Unit,
    Words(Vec<u32>),
    Fail(SessionError),
}

/// The worker-side session: every call is a rendezvous with the executor.
struct ChannelSession {
    ops: Sender<Op>,
    replies: Receiver<Reply>,
}

impl ChannelSession {
    fn call(&mut self, op: Op) -> Result<Reply, SessionError> {
        self.ops.send(op).expect("frame executor disappeared");
        match self.replies.recv().expect("frame executor disappeared") {
            Reply::Fail(e) => Err(e),
            r => Ok(r),
        }
    }
}

impl GpuSession for ChannelSession {
    fn alloc_words(&mut self, words: u32) -> Result<BufId, SessionError> {
        match self.call(Op::Alloc { words })? {
            Reply::Buf(b) => Ok(b),
            _ => unreachable!("alloc replies with a buffer id"),
        }
    }

    fn write_u32(&mut self, buf: BufId, data: &[u32]) -> Result<(), SessionError> {
        self.call(Op::WriteU32 {
            buf,
            data: data.to_vec(),
        })?;
        Ok(())
    }

    fn write_f32(&mut self, buf: BufId, data: &[f32]) -> Result<(), SessionError> {
        self.call(Op::WriteF32 {
            buf,
            data: data.to_vec(),
        })?;
        Ok(())
    }

    fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: Dim3,
        block: Dim3,
        shared_mem_bytes: u32,
        params: &[SParam],
    ) -> Result<(), SessionError> {
        self.call(Op::Launch {
            program: program.clone(),
            grid,
            block,
            shared_mem_bytes,
            params: params.to_vec(),
        })?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), SessionError> {
        self.call(Op::Sync)?;
        Ok(())
    }

    fn read_u32(&mut self, buf: BufId, words: usize) -> Result<Vec<u32>, SessionError> {
        match self.call(Op::ReadU32 { buf, words })? {
            Reply::Words(w) => Ok(w),
            _ => unreachable!("read replies with words"),
        }
    }
}

/// A logical branch buffer: one physical allocation per replica.
struct Replicated {
    ptrs: Vec<DevPtr>,
}

/// One running stage attempt (plus its cross-attempt accumulation).
struct Branch {
    stage: usize,
    name: &'static str,
    reservation: SmReservation,
    /// Cycle the stage's *first* attempt started.
    first_start: u64,
    /// Attempts so far (1 while the first runs).
    attempt: u32,
    /// Absolute watchdog limit of the current attempt.
    limit: u64,
    buffers: Vec<Replicated>,
    /// Kernels launched by the current attempt (cancellation set).
    kernels: Vec<KernelId>,
    /// Launched but not yet awaited kernels of the current attempt.
    pending: Vec<KernelId>,
    /// Disagreeing reads of the current attempt.
    tied: usize,
    corrected: usize,
    /// DCLS traffic, summed over all attempts of this stage.
    bytes_up: u64,
    bytes_down: u64,
    /// The deferred blocking op (`Sync`/`ReadU32`) while waiting on kernels.
    blocked: Option<Op>,
    /// The current attempt's watchdog fired; every further op is refused
    /// until the worker unwinds with `Done(Err(..))`.
    poisoned: bool,
    ops: Receiver<Op>,
    replies: Sender<Reply>,
}

impl Branch {
    fn reply(&self, r: Reply) {
        // A send can only fail if the worker panicked; the panic surfaces
        // at scope join, so the lost reply is irrelevant.
        let _ = self.replies.send(r);
    }

    fn pending_finished(&self, gpu: &Gpu) -> bool {
        self.pending.iter().all(|&id| gpu.kernel_finished(id))
    }

    fn partition(&self) -> SmRange {
        self.reservation.range()
    }

    /// The branch's timeline record, closed at cycle `now` with `status` —
    /// shared by the deliver and fail-stop paths so the accounting can
    /// never diverge between them.
    fn timing(&self, budget: u64, now: u64, status: StageStatus) -> StageTiming {
        StageTiming {
            stage: self.stage,
            name: self.name,
            start: self.first_start,
            end: now,
            budget,
            slack: budget.saturating_sub(now - self.first_start),
            attempts: self.attempt,
            partition: self.partition(),
            bytes_uploaded: self.bytes_up,
            bytes_read_back: self.bytes_down,
            status,
        }
    }
}

/// What serving a branch's op stream ended with.
enum Served {
    /// The branch parked on a blocking op (kernels still in flight).
    Blocked,
    /// The branch's host program returned.
    Finished(Result<Vec<u32>, SessionError>),
}

/// Per-stage progress of the ready-set scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageState {
    Pending,
    Running,
    Done,
    Failed,
}

fn spawn_attempt<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    stage: &'env Stage,
    inputs: Vec<Vec<u32>>,
) -> (Receiver<Op>, Sender<Reply>) {
    let (op_tx, op_rx) = channel();
    let (reply_tx, reply_rx) = channel();
    scope.spawn(move || {
        let mut session = ChannelSession {
            ops: op_tx,
            replies: reply_rx,
        };
        let refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
        let result = stage.program.run(&mut session, &refs);
        let _ = session.ops.send(Op::Done(result));
    });
    (op_rx, reply_tx)
}

/// Launches all replicas of one logical kernel of `branch`, carrying the
/// partition reservation plus the mode's diversity hints re-expressed
/// within the partition.
#[allow(clippy::too_many_arguments)] // the launch op's full payload; one call site
fn apply_launch(
    gpu: &mut Gpu,
    mode: &RedundancyMode,
    next_group: &mut u32,
    branch: &mut Branch,
    program: &Arc<Program>,
    grid: Dim3,
    block: Dim3,
    shared_mem_bytes: u32,
    params: &[SParam],
) -> Result<(), SessionError> {
    let replicas = usize::from(mode.replicas());
    let part = branch.partition();
    let group = *next_group;
    *next_group += 1;
    for r in 0..replicas {
        let mut cfg = LaunchConfig::new(grid, block).shared_mem(shared_mem_bytes);
        for p in params {
            cfg = match *p {
                SParam::Buf(b) => cfg.param_u32(branch.buffers[b.index()].ptrs[r].0),
                SParam::BufOffset(b, w) => {
                    cfg.param_u32(branch.buffers[b.index()].ptrs[r].offset_words(w).0)
                }
                SParam::U32(v) => cfg.param_u32(v),
                SParam::I32(v) => cfg.param_i32(v),
                SParam::F32(v) => cfg.param_f32(v),
            };
        }
        let mut launch = KernelLaunch::new(program.clone(), cfg)
            .tag(format!("{}#g{}r{}", program.name(), group, r))
            .redundant(group, r as u8)
            .reserve(part);
        launch = match mode {
            RedundancyMode::Uncontrolled { .. } => launch,
            // SRRS within the partition: start SMs spread over the
            // partition's SMs, replicas serialized against the partition.
            RedundancyMode::Srrs { .. } => launch
                .start_sm(part.start + r * part.len / replicas)
                .serialize_group(group),
            // HALF is SLICE@2 within a partition (the whole-device
            // odd-SM-count convention has no partition-relative analogue).
            RedundancyMode::Half => launch.slice(r as u8, 2),
            RedundancyMode::Slice {
                replicas: n,
                start_skew,
            } => launch
                .slice(r as u8, *n)
                .dispatch_delay(r as u64 * *start_skew),
        };
        let id = gpu.launch(launch).map_err(SessionError::Sim)?;
        branch.kernels.push(id);
        branch.pending.push(id);
    }
    Ok(())
}

/// Reads all replica copies of a branch buffer and majority-votes them —
/// [`higpu_workloads::RedundantSession`]'s tolerant read, at the executor.
fn vote_read(gpu: &Gpu, replicas: usize, branch: &mut Branch, buf: BufId, words: usize) -> Reply {
    // The full requested length, unclamped — exactly what the serial
    // executor's `read_vote_u32` reads (an over-long read is the stage
    // program's bug and must behave identically on both executors).
    let replicated = &branch.buffers[buf.index()];
    let outputs: Vec<Vec<u32>> = replicated
        .ptrs
        .iter()
        .map(|&p| gpu.read_u32(p, words))
        .collect();
    let refs: Vec<&[u32]> = outputs.iter().map(Vec::as_slice).collect();
    let vote = majority_vote(&refs, words);
    branch.bytes_down += 4 * words as u64 * replicas as u64;
    if !vote.outcome.is_unanimous() {
        if vote.outcome.is_corrected() {
            branch.corrected += 1;
        } else {
            branch.tied += 1;
        }
    }
    Reply::Words(vote.value)
}

/// Serves one branch's op stream until it blocks or its program returns.
fn serve(
    gpu: &mut Gpu,
    mode: &RedundancyMode,
    next_group: &mut u32,
    branch: &mut Branch,
) -> Served {
    let replicas = usize::from(mode.replicas());
    loop {
        let op = branch.ops.recv().expect("stage worker vanished");
        if branch.poisoned && !matches!(op, Op::Done(_)) {
            // The attempt's deadline already fired; refuse everything
            // until the worker unwinds.
            branch.reply(Reply::Fail(SessionError::Sim(SimError::DeadlineExceeded {
                cycle: gpu.cycle(),
                limit: branch.limit,
            })));
            continue;
        }
        match op {
            Op::Alloc { words } => {
                let mut ptrs = Vec::with_capacity(replicas);
                let mut failure = None;
                for _ in 0..replicas {
                    match gpu.alloc_words(words) {
                        Ok(p) => ptrs.push(p),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                match failure {
                    Some(e) => branch.reply(Reply::Fail(SessionError::Sim(e))),
                    None => {
                        branch.buffers.push(Replicated { ptrs });
                        branch.reply(Reply::Buf(BufId::from_index(branch.buffers.len() - 1)));
                    }
                }
            }
            Op::WriteU32 { buf, data } => {
                for r in 0..replicas {
                    gpu.write_u32(branch.buffers[buf.index()].ptrs[r], &data);
                }
                branch.bytes_up += 4 * data.len() as u64 * replicas as u64;
                branch.reply(Reply::Unit);
            }
            Op::WriteF32 { buf, data } => {
                for r in 0..replicas {
                    gpu.write_f32(branch.buffers[buf.index()].ptrs[r], &data);
                }
                branch.bytes_up += 4 * data.len() as u64 * replicas as u64;
                branch.reply(Reply::Unit);
            }
            Op::Launch {
                program,
                grid,
                block,
                shared_mem_bytes,
                params,
            } => {
                match apply_launch(
                    gpu,
                    mode,
                    next_group,
                    branch,
                    &program,
                    grid,
                    block,
                    shared_mem_bytes,
                    &params,
                ) {
                    Ok(()) => branch.reply(Reply::Unit),
                    Err(e) => branch.reply(Reply::Fail(e)),
                }
            }
            Op::Sync => {
                if branch.pending_finished(gpu) {
                    branch.pending.clear();
                    branch.reply(Reply::Unit);
                } else {
                    branch.blocked = Some(Op::Sync);
                    return Served::Blocked;
                }
            }
            Op::ReadU32 { buf, words } => {
                if branch.pending_finished(gpu) {
                    branch.pending.clear();
                    let reply = vote_read(gpu, replicas, branch, buf, words);
                    branch.reply(reply);
                } else {
                    branch.blocked = Some(Op::ReadU32 { buf, words });
                    return Served::Blocked;
                }
            }
            Op::Done(result) => return Served::Finished(result),
        }
    }
}

/// Unwinds and drains every remaining branch (cancelling its kernels and
/// releasing its partition) — the frame-abandonment path shared by
/// fail-stop and fatal errors.
fn abort_all(gpu: &mut Gpu, table: &mut SmPartitionTable, branches: &mut Vec<Branch>) {
    for b in branches.drain(..) {
        gpu.cancel_kernels(&b.kernels);
        let abort = SessionError::Sim(SimError::DeadlineExceeded {
            cycle: gpu.cycle(),
            limit: b.limit,
        });
        if b.blocked.is_some() {
            b.reply(Reply::Fail(abort.clone()));
        }
        loop {
            match b.ops.recv() {
                Ok(Op::Done(_)) | Err(_) => break,
                Ok(_) => b.reply(Reply::Fail(abort.clone())),
            }
        }
        table.release(b.reservation);
    }
}

/// Runs one frame with the concurrent ready-set executor. See the module
/// documentation for the architecture.
pub(crate) fn run_overlapped(
    gpu: &mut Gpu,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
    plan: &PipelinePlan,
    opts: FrameOptions,
) -> Result<PipelineRun, PipelineError> {
    let num_sms = gpu.config().num_sms;
    // Capacity is judged against the SMs still in service: a quarantined
    // SM can never join a partition, so a degraded device admits a frame
    // only when its *healthy* count covers the replica floor.
    let healthy_sms = gpu.effective_sms();
    let replicas = usize::from(mode.replicas());
    if replicas < 2 {
        return Err(RedundancyError::InvalidMode("at least two replicas required".into()).into());
    }
    if replicas > healthy_sms {
        return Err(RedundancyError::InvalidMode(format!(
            "a partition needs at least one healthy SM per replica: {replicas} replicas on \
             {healthy_sms} in-service SMs"
        ))
        .into());
    }
    let frame_zero = gpu.cycle();
    let e2e_abs = frame_zero.saturating_add(plan.ftti.end_to_end());
    gpu.set_policy(Box::new(PartitionedScheduler::new()))
        .map_err(|e| PipelineError::Session(SessionError::Sim(e)))?;
    let next_group_from_trace = |gpu: &Gpu| {
        gpu.trace()
            .kernels
            .iter()
            .filter_map(|k| k.attrs.redundant.map(|t| t.group + 1))
            .max()
            .unwrap_or(0)
    };
    let mut next_group = next_group_from_trace(gpu);
    let mut table = SmPartitionTable::new(num_sms);
    // Quarantined SMs are blocked in the partition table before anything
    // reserves: first-fit then only ever hands out contiguous runs of
    // healthy SMs, so every partition-relative SRRS start lands in
    // service and no stage replica can touch condemned hardware.
    for sm in gpu.quarantined_sms() {
        table.block_sm(sm);
    }
    let mut run = PipelineRun::new(pipeline.len(), frame_zero);
    let mut state = vec![StageState::Pending; pipeline.len()];
    // One SM per replica is the floor every diversity scheme needs
    // (disjoint sub-slices / distinct partition-relative start SMs).
    let min_part = replicas;

    let result = thread::scope(|scope| -> Result<(), PipelineError> {
        let mut branches: Vec<Branch> = Vec::new();
        let mut delivered_since_bist = false;
        let mut failed = false;

        let result = (|| -> Result<(), PipelineError> {
            'frame: loop {
                // ---- serve phase: start ready stages, drain runnable ops.
                loop {
                    if opts.interstage_bist
                        && delivered_since_bist
                        && !failed
                        && branches.is_empty()
                        && gpu.is_idle()
                    {
                        // Between stages, on an idle device: the periodic
                        // scheduler self-test, then back to the partition
                        // policy for the next wave.
                        bist_round(gpu, mode, &mut run)?;
                        gpu.set_policy(Box::new(PartitionedScheduler::new()))
                            .map_err(|e| PipelineError::Session(SessionError::Sim(e)))?;
                        next_group = next_group_from_trace(gpu);
                        delivered_since_bist = false;
                    }
                    // Ready-set scheduling: start every ready stage whose
                    // redundancy placement fits a free partition, splitting
                    // the free SMs evenly over the currently-ready set (a
                    // failed frame starts nothing).
                    loop {
                        if failed {
                            break;
                        }
                        let ready: Vec<usize> = (0..pipeline.len())
                            .filter(|&s| {
                                state[s] == StageState::Pending
                                    && pipeline.stages()[s]
                                        .deps
                                        .iter()
                                        .all(|&d| state[d] == StageState::Done)
                            })
                            .collect();
                        let Some(&s) = ready.first() else { break };
                        let share = (table.free_sms() / ready.len()).max(min_part);
                        let Some(reservation) =
                            table.reserve(share).or_else(|| table.reserve(min_part))
                        else {
                            break; // wait for a sibling partition release
                        };
                        let stage = &pipeline.stages()[s];
                        let inputs: Vec<Vec<u32>> =
                            stage.deps.iter().map(|&d| run.outputs[d].clone()).collect();
                        let (ops, replies) = spawn_attempt(scope, stage, inputs);
                        let now = gpu.cycle();
                        gpu.record_event(
                            EventKind::StageStart,
                            now,
                            reservation.range().start as u32,
                            s as u64,
                            1,
                        );
                        branches.push(Branch {
                            stage: s,
                            name: stage.name,
                            reservation,
                            first_start: now,
                            attempt: 1,
                            limit: plan.ftti.stage_limit(s, frame_zero, now),
                            buffers: Vec::new(),
                            kernels: Vec::new(),
                            pending: Vec::new(),
                            tied: 0,
                            corrected: 0,
                            bytes_up: 0,
                            bytes_down: 0,
                            blocked: None,
                            poisoned: false,
                            ops,
                            replies,
                        });
                        branches.sort_by_key(|b| b.stage);
                        state[s] = StageState::Running;
                    }
                    let Some(i) = branches.iter().position(|b| b.blocked.is_none()) else {
                        break;
                    };
                    let served = serve(gpu, mode, &mut next_group, &mut branches[i]);
                    let Served::Finished(attempt_result) = served else {
                        continue;
                    };
                    // ---- the branch's attempt ended: deliver / retry /
                    // fail-stop.
                    let b = &mut branches[i];
                    let s = b.stage;
                    let now = gpu.cycle();
                    let detected = match attempt_result {
                        Ok(out) if b.tied == 0 => {
                            let status = if b.attempt > 1 {
                                StageStatus::Recovered
                            } else if b.corrected > 0 {
                                StageStatus::Corrected
                            } else {
                                StageStatus::Clean
                            };
                            run.corrected_reads += b.corrected;
                            gpu.record_event(
                                EventKind::StageFinish,
                                now,
                                b.reservation.range().start as u32,
                                s as u64,
                                status_code(status),
                            );
                            run.timings
                                .push(b.timing(plan.ftti.stage_budgets[s], now, status));
                            run.bandwidth_bytes += b.bytes_up + b.bytes_down;
                            run.outputs[s] = out;
                            state[s] = StageState::Done;
                            delivered_since_bist = true;
                            let b = branches.remove(i);
                            table.release(b.reservation);
                            false
                        }
                        Ok(_) => true, // tied reads: the NMR monitor detected
                        Err(e) if is_deadline_cutoff(&e) => true,
                        Err(e) => return Err(e.into()),
                    };
                    if detected {
                        let b = &mut branches[i];
                        if b.attempt > 1 {
                            run.retries_failed += 1;
                        }
                        let reason = if b.attempt > opts.recovery.max_retries_per_stage {
                            Some(FailReason::RetryExhausted)
                        } else if !plan.ftti.allows_retry(
                            s,
                            now - frame_zero,
                            plan.stage_makespans[s],
                        ) {
                            run.no_slack_failures += 1;
                            Some(FailReason::NoSlack)
                        } else {
                            None
                        };
                        match reason {
                            None => {
                                // In-FTTI re-execution: a fresh attempt on
                                // the same partition, under a fresh stage
                                // budget capped by the frame's FTTI.
                                run.retries_attempted += 1;
                                gpu.record_event(
                                    EventKind::StageRetry,
                                    now,
                                    b.reservation.range().start as u32,
                                    s as u64,
                                    (b.attempt + 1) as u64,
                                );
                                let stage = &pipeline.stages()[s];
                                let inputs: Vec<Vec<u32>> =
                                    stage.deps.iter().map(|&d| run.outputs[d].clone()).collect();
                                let (ops, replies) = spawn_attempt(scope, stage, inputs);
                                b.attempt += 1;
                                b.limit = plan.ftti.stage_limit(s, frame_zero, now);
                                b.buffers.clear();
                                b.kernels.clear();
                                b.pending.clear();
                                b.tied = 0;
                                b.corrected = 0;
                                b.blocked = None;
                                b.poisoned = false;
                                b.ops = ops;
                                b.replies = replies;
                            }
                            Some(reason) => {
                                gpu.record_event(
                                    EventKind::StageFinish,
                                    now,
                                    b.reservation.range().start as u32,
                                    s as u64,
                                    status_code(StageStatus::FailStop(reason)),
                                );
                                run.timings.push(b.timing(
                                    plan.ftti.stage_budgets[s],
                                    now,
                                    StageStatus::FailStop(reason),
                                ));
                                run.bandwidth_bytes += b.bytes_up + b.bytes_down;
                                state[s] = StageState::Failed;
                                failed = true;
                                let b = branches.remove(i);
                                table.release(b.reservation);
                                // Frame abandoned: the safe-state
                                // transition kills every sibling offload
                                // within the FTTI.
                                abort_all(gpu, &mut table, &mut branches);
                            }
                        }
                    }
                }
                // ---- every branch is parked (or the frame is over).
                if branches.is_empty() {
                    break 'frame;
                }
                // Arm the watchdog with the earliest branch deadline and
                // advance the shared device until some parked branch's own
                // kernels complete.
                let min_limit = branches.iter().map(|b| b.limit).min().expect("non-empty");
                gpu.set_cycle_limit(Some(min_limit));
                let advanced = gpu.run_until(|g| branches.iter().any(|b| b.pending_finished(g)));
                gpu.set_cycle_limit(None);
                match advanced {
                    Ok(_) => {
                        for b in branches.iter_mut() {
                            if b.blocked.is_some() && b.pending_finished(gpu) {
                                let op = b.blocked.take().expect("parked branch");
                                b.pending.clear();
                                match op {
                                    Op::Sync => b.reply(Reply::Unit),
                                    Op::ReadU32 { buf, words } => {
                                        let reply = vote_read(gpu, replicas, b, buf, words);
                                        b.reply(reply);
                                    }
                                    _ => unreachable!("only sync/read park a branch"),
                                }
                            }
                        }
                    }
                    Err(SimError::DeadlineExceeded { .. }) => {
                        // The earliest stage deadline fired: cancel every
                        // overrunning branch's kernels (its partition
                        // empties; siblings are untouched) and unwind its
                        // worker — the retry decision happens when its
                        // `Done(Err)` arrives.
                        let now = gpu.cycle();
                        let mut any = false;
                        for b in branches.iter_mut() {
                            if now > b.limit {
                                any = true;
                                gpu.cancel_kernels(&b.kernels);
                                b.pending.clear();
                                b.poisoned = true;
                                if b.blocked.take().is_some() {
                                    b.reply(Reply::Fail(SessionError::Sim(
                                        SimError::DeadlineExceeded {
                                            cycle: now,
                                            limit: b.limit,
                                        },
                                    )));
                                }
                            }
                        }
                        assert!(any, "watchdog fired without an overrunning branch");
                    }
                    Err(e) => return Err(SessionError::Sim(e).into()),
                }
            }
            // A final self-test round covers the last stage's placements.
            if opts.interstage_bist && delivered_since_bist && !failed {
                bist_round(gpu, mode, &mut run)?;
            }
            Ok(())
        })();
        if result.is_err() {
            // Never leave workers parked on a dead executor: unwind them
            // all before the scope joins.
            abort_all(gpu, &mut table, &mut branches);
        }
        result
    });
    result?;
    run.end_cycle = gpu.cycle();
    run.deadline_miss = run.end_cycle > e2e_abs;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use crate::builtin::{ad_pipeline, sensor_fusion};
    use crate::exec::{plan, run_pipeline, FrameOptions, StageStatus};
    use higpu_core::redundancy::RedundancyMode;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;
    use higpu_workloads::Scale;

    fn cfg() -> GpuConfig {
        let mut cfg = GpuConfig::paper_6sm();
        cfg.global_mem_bytes = 2 * 1024 * 1024;
        cfg
    }

    #[test]
    fn overlapped_sensor_fusion_overlaps_disjoint_partitions_and_beats_serial() {
        let p = sensor_fusion(Scale::Campaign);
        let mode = RedundancyMode::srrs_default(6);
        let frame_plan = plan(&cfg(), &p, &mode).expect("calibration");

        let mut serial_gpu = Gpu::new(cfg());
        let serial = run_pipeline(
            &mut serial_gpu,
            &p,
            &mode,
            &frame_plan,
            FrameOptions::serial(),
        )
        .expect("serial frame");
        assert!(serial.completed());

        let mut gpu = Gpu::new(cfg());
        let over = run_pipeline(&mut gpu, &p, &mode, &frame_plan, FrameOptions::overlapped())
            .expect("overlapped frame");
        assert!(over.completed(), "{:?}", over.timings);
        assert_eq!(over.timings.len(), 4);
        for t in &over.timings {
            assert_eq!(t.status, StageStatus::Clean);
            assert_eq!(t.attempts, 1);
        }

        // The two source branches ran on disjoint partitions, overlapping
        // in time.
        let cam = over.timing_of(0).expect("camera ran");
        let rad = over.timing_of(1).expect("radar ran");
        let cam_r = cam.partition.range();
        let rad_r = rad.partition.range();
        assert!(
            cam_r.end <= rad_r.start || rad_r.end <= cam_r.start,
            "partitions must be disjoint: {cam_r:?} vs {rad_r:?}"
        );
        assert!(
            cam.start < rad.end && rad.start < cam.end,
            "branches must overlap in time: cam {}..{} vs rad {}..{}",
            cam.start,
            cam.end,
            rad.start,
            rad.end
        );
        // The serial executor cannot overlap them.
        let s_cam = serial.timing_of(0).expect("camera");
        let s_rad = serial.timing_of(1).expect("radar");
        assert!(s_cam.end <= s_rad.start, "serial stages never overlap");

        // Overlap strictly shrinks the end-to-end makespan on the same
        // calibrated plan.
        assert!(
            over.end_cycle < serial.end_cycle,
            "overlapped {} !< serial {}",
            over.end_cycle,
            serial.end_cycle
        );

        // Fault-free voted outputs are bit-identical across executors, and
        // correct.
        assert_eq!(over.outputs, serial.outputs);
        for (s, stage) in p.stages().iter().enumerate() {
            let inputs: Vec<&[u32]> = stage
                .deps
                .iter()
                .map(|&d| over.outputs[d].as_slice())
                .collect();
            stage
                .program
                .verify(&over.outputs[s], &inputs)
                .unwrap_or_else(|e| panic!("stage {s} wrong under overlap: {e}"));
        }
        // Both executors move the same DCLS byte volume on fault-free
        // frames.
        assert_eq!(over.bandwidth_bytes, serial.bandwidth_bytes);
        assert_eq!(over.bandwidth_bytes, frame_plan.frame_bandwidth_bytes);
    }

    #[test]
    fn overlapped_chain_pipeline_matches_serial_outputs() {
        // A pure chain has no branch parallelism: the overlapped executor
        // degenerates to one full-device partition per stage and must
        // reproduce the serial executor's voted outputs exactly.
        let p = ad_pipeline(Scale::Campaign);
        let mode = RedundancyMode::srrs_default(6);
        let frame_plan = plan(&cfg(), &p, &mode).expect("calibration");
        let mut gpu = Gpu::new(cfg());
        let serial =
            run_pipeline(&mut gpu, &p, &mode, &frame_plan, FrameOptions::serial()).expect("serial");
        let mut gpu = Gpu::new(cfg());
        let over = run_pipeline(&mut gpu, &p, &mode, &frame_plan, FrameOptions::overlapped())
            .expect("overlapped");
        assert!(over.completed());
        assert_eq!(over.outputs, serial.outputs);
        for t in &over.timings {
            assert_eq!(
                t.partition.range(),
                0..6,
                "a lone ready stage owns the whole device"
            );
        }
    }

    #[test]
    fn overlapped_executor_supports_all_policies_fault_free() {
        let p = sensor_fusion(Scale::Campaign);
        for mode in [
            RedundancyMode::uncontrolled(),
            RedundancyMode::srrs_default(6),
            RedundancyMode::Half,
            RedundancyMode::slice(2),
            RedundancyMode::slice_skewed_default(2),
            RedundancyMode::srrs_spread(6, 3),
            RedundancyMode::slice(3),
        ] {
            let frame_plan =
                plan(&cfg(), &p, &mode).unwrap_or_else(|e| panic!("{mode:?}: calibration: {e}"));
            let mut gpu = Gpu::new(cfg());
            let run = run_pipeline(&mut gpu, &p, &mode, &frame_plan, FrameOptions::overlapped())
                .unwrap_or_else(|e| panic!("{mode:?}: frame: {e}"));
            assert!(run.completed(), "{mode:?}: {:?}", run.timings);
            let refs = p.reference_outputs();
            assert_eq!(run.outputs[p.sink()], refs[p.sink()], "{mode:?}");
        }
    }
}
