//! Multi-frame **limp-home** driver: permanent-fault diagnosis, SM
//! quarantine, and degraded-mode re-planning across pipeline frames.
//!
//! One frame's recovery ladder ends at a fail-stop; a *mission's* ladder
//! does not. When a frame fail-stops, the driver escalates instead of
//! giving up the device:
//!
//! 1. **in-FTTI retry** — inside the frame, the executors already re-run a
//!    detected stage while the critical-path slack allows (see
//!    [`crate::exec`]);
//! 2. **diagnose + quarantine** — a fail-stopped frame is evidence of a
//!    fault the retry could not outrun. A DCLS tie or watchdog timeout
//!    cannot name the culprit replica, so the evidence is recorded as
//!    [`Evidence::Unattributed`] (which never quarantines by itself) and
//!    escalated to a targeted per-SM BIST sweep
//!    ([`higpu_core::health::sm_bist_sweep`]). Convicted SMs are
//!    quarantined ([`higpu_sim::gpu::Gpu::quarantine_sm`]);
//! 3. **re-plan + limp home** — stage makespans stretch on the shrunken
//!    device, so every budget — including the critical-path end-to-end
//!    FTTI — is re-derived with [`crate::exec::plan_degraded`]. Subsequent
//!    frames run against the re-planned budgets in [`FrameStatus::Degraded`]
//!    — fail-operational at reduced capacity;
//! 4. **fail-stop** — only when the re-planned frame is unschedulable
//!    (fewer healthy SMs than replicas, or the degraded calibration cannot
//!    place the redundancy scheme) does the mission fail-stop for good.
//!
//! A fail-stopped frame that the sweep cannot attribute (a transient hit
//! that died with the frame) costs that one frame and nothing else: the
//! plan is kept and the next frame runs at nominal budgets.

use crate::exec::{plan_degraded, FrameOptions, PipelineError, PipelinePlan, PipelineRun};
use crate::graph::Pipeline;
use higpu_core::health::{sm_bist_sweep, Evidence, HealthMonitor};
use higpu_core::redundancy::{RedundancyError, RedundancyMode};
use higpu_sim::gpu::Gpu;
use higpu_workloads::SessionError;

/// The operating state a frame executed (or was skipped) under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// Full device, nominal budgets.
    Nominal,
    /// Completed on a degraded device against re-planned budgets — the
    /// limp-home mode.
    Degraded,
    /// The frame did not deliver: its in-frame ladder ended in a fail-stop
    /// (or the mission had already fail-stopped and the frame was shed).
    FailStopped,
}

impl FrameStatus {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            FrameStatus::Nominal => "nominal",
            FrameStatus::Degraded => "degraded",
            FrameStatus::FailStopped => "fail-stop",
        }
    }
}

/// One frame of a limp-home mission.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Frame index (0-based).
    pub frame: usize,
    /// Operating state.
    pub status: FrameStatus,
    /// Device cycle the frame entered.
    pub start_cycle: u64,
    /// The end-to-end FTTI (in cycles from frame entry) the frame was
    /// admitted against — re-planned budgets once degraded.
    pub e2e_budget: u64,
    /// The frame's execution record; `None` for a frame shed after the
    /// mission fail-stopped.
    pub run: Option<PipelineRun>,
    /// SMs out of service once this frame (and its diagnosis) concluded.
    pub quarantined_after: Vec<usize>,
}

impl FrameRecord {
    /// True when every stage delivered inside the admitted deadline.
    pub fn completed(&self) -> bool {
        self.run.as_ref().is_some_and(PipelineRun::completed)
    }

    /// Frame makespan in cycles (0 for a shed frame).
    pub fn makespan(&self) -> u64 {
        self.run
            .as_ref()
            .map_or(0, |r| r.end_cycle - self.start_cycle)
    }
}

/// The outcome of a multi-frame limp-home mission.
#[derive(Debug, Clone, PartialEq)]
pub struct LimpHomeReport {
    /// Every frame, in order.
    pub frames: Vec<FrameRecord>,
    /// SMs quarantined over the mission, ascending.
    pub quarantined: Vec<usize>,
    /// Index of the frame whose fail-stop led to the (first) conviction,
    /// if any SM was quarantined.
    pub diagnosis_frame: Option<usize>,
    /// The re-planned budget set in force at mission end (`None` when no
    /// quarantine ever happened).
    pub degraded_plan: Option<PipelinePlan>,
    /// Fail-stops whose BIST sweep convicted nobody — transient evidence
    /// the monitor refused to quarantine on (the satellite fence).
    pub unattributed_detections: u64,
    /// Targeted per-SM BIST sweeps run.
    pub bist_sweeps: u32,
}

impl LimpHomeReport {
    /// Frames completed in degraded mode.
    pub fn degraded_frames(&self) -> u32 {
        self.frames
            .iter()
            .filter(|f| f.status == FrameStatus::Degraded)
            .count() as u32
    }

    /// Frames completed (nominal or degraded).
    pub fn completed_frames(&self) -> u32 {
        self.frames.iter().filter(|f| f.completed()).count() as u32
    }

    /// Frames from the fault's first observable (the diagnosing frame's
    /// entry) to quarantine, inclusive — 1 means the very frame that
    /// tripped also convicted.
    pub fn frames_to_diagnosis(&self) -> Option<u32> {
        self.diagnosis_frame.map(|f| f as u32 + 1)
    }

    /// True when a quarantine happened and **every** subsequent frame
    /// completed in degraded mode inside its re-planned FTTI — the
    /// fail-operational limp-home contract.
    pub fn limp_home_ok(&self) -> bool {
        match self.diagnosis_frame {
            None => false,
            Some(d) => self
                .frames
                .iter()
                .skip(d + 1)
                .all(|f| f.status == FrameStatus::Degraded && f.completed()),
        }
    }

    /// Post-quarantine frames that broke the limp-home contract — not
    /// completed in degraded mode inside the re-planned FTTI (missed
    /// deadlines, fail-stops, shed frames).
    pub fn limp_deadline_misses(&self) -> u32 {
        match self.diagnosis_frame {
            None => 0,
            Some(d) => self
                .frames
                .iter()
                .skip(d + 1)
                .filter(|f| !(f.status == FrameStatus::Degraded && f.completed()))
                .count() as u32,
        }
    }

    /// Summed makespan of the degraded frames (for post-quarantine
    /// inflation statistics).
    pub fn degraded_makespan_sum(&self) -> u64 {
        self.frames
            .iter()
            .filter(|f| f.status == FrameStatus::Degraded)
            .map(FrameRecord::makespan)
            .sum()
    }
}

/// The enforced end-to-end budget of one frame under `opts`' executor
/// (critical path when overlapped, per-stage sum when serial).
fn e2e_budget(plan: &PipelinePlan, opts: FrameOptions) -> u64 {
    match opts.exec {
        crate::exec::ExecMode::Overlapped => plan.ftti.end_to_end(),
        crate::exec::ExecMode::Serial => plan.ftti.serial_sum(),
    }
}

/// True when the error means the degraded device cannot host the
/// redundancy scheme (the unschedulable cue), as opposed to a device or
/// protocol defect that must propagate.
fn is_unschedulable(e: &PipelineError) -> bool {
    matches!(
        e,
        PipelineError::Session(SessionError::Redundancy(RedundancyError::InvalidMode(_)))
    )
}

/// Drives `frames` consecutive pipeline frames on one device, escalating
/// per the module-level ladder: in-FTTI retry (inside [`crate::exec`]),
/// then diagnosis + quarantine + re-planning, then fail-stop. The device
/// is used as-is — the caller arms fault hooks and owns the clock; frame
/// buffers are freed between frames ([`Gpu::free_all`]).
///
/// # Errors
///
/// Propagates device/protocol errors; a fail-stopped frame, a missed
/// deadline, or an unschedulable degraded device are *results* (see
/// [`FrameStatus`] and [`LimpHomeReport`]), not errors.
pub fn run_limp_home(
    gpu: &mut Gpu,
    pipeline: &Pipeline,
    mode: &RedundancyMode,
    initial_plan: &PipelinePlan,
    opts: FrameOptions,
    frames: usize,
) -> Result<LimpHomeReport, PipelineError> {
    let sim_err = |e| PipelineError::Session(SessionError::Sim(e));
    let replicas = usize::from(mode.replicas());
    let mut monitor = HealthMonitor::new(gpu.config().num_sms);
    let mut report = LimpHomeReport {
        frames: Vec::with_capacity(frames),
        quarantined: Vec::new(),
        diagnosis_frame: None,
        degraded_plan: None,
        unattributed_detections: 0,
        bist_sweeps: 0,
    };
    let mut current = initial_plan.clone();
    let mut mission_failstop = false;
    for frame in 0..frames {
        if mission_failstop {
            // Safe state: the mission has fail-stopped; remaining frames
            // are shed, not run.
            report.frames.push(FrameRecord {
                frame,
                status: FrameStatus::FailStopped,
                start_cycle: gpu.cycle(),
                e2e_budget: e2e_budget(&current, opts),
                run: None,
                quarantined_after: report.quarantined.clone(),
            });
            continue;
        }
        // The previous frame's buffers are dead; the frame starts with the
        // full heap (the executors leave the device idle even after a
        // watchdog abort).
        gpu.free_all().map_err(sim_err)?;
        let start_cycle = gpu.cycle();
        let budget = e2e_budget(&current, opts);
        let run = crate::exec::run_pipeline(gpu, pipeline, mode, &current, opts)?;
        if run.completed() {
            let status = if report.quarantined.is_empty() {
                FrameStatus::Nominal
            } else {
                FrameStatus::Degraded
            };
            monitor.frame_clean();
            report.frames.push(FrameRecord {
                frame,
                status,
                start_cycle,
                e2e_budget: budget,
                run: Some(run),
                quarantined_after: report.quarantined.clone(),
            });
            continue;
        }
        // The in-frame ladder ended in a fail-stop. A tie/timeout cannot
        // name the culprit replica — record the unattributable evidence
        // (which must never quarantine on its own) and escalate to the
        // targeted per-SM BIST sweep over every SM still in service.
        monitor.record(Evidence::Unattributed);
        gpu.free_all().map_err(sim_err)?;
        let suspects: Vec<usize> = (0..gpu.config().num_sms)
            .filter(|&sm| !gpu.is_quarantined(sm))
            .collect();
        let convicted = sm_bist_sweep(gpu, &suspects).map_err(sim_err)?;
        report.bist_sweeps += 1;
        let mut newly_quarantined = false;
        for sm in convicted {
            if monitor.record(Evidence::Permanent { sm }) == Some(sm) && !gpu.is_quarantined(sm) {
                gpu.quarantine_sm(sm);
                newly_quarantined = true;
            }
        }
        if newly_quarantined {
            report.quarantined = gpu.quarantined_sms();
            report.diagnosis_frame.get_or_insert(frame);
            if gpu.effective_sms() < replicas {
                // Not enough in-service SMs for one SM per replica: no
                // degraded plan can restore diversity — fail-stop.
                mission_failstop = true;
            } else {
                // Limp-home re-planning: re-derive every budget for the
                // shrunken device on a scratch clone (the mission clock
                // must not pay for calibration).
                match plan_degraded(gpu.config(), &report.quarantined, pipeline, mode) {
                    Ok(p) => {
                        report.degraded_plan = Some(p.clone());
                        current = p;
                    }
                    Err(e) if is_unschedulable(&e) => mission_failstop = true,
                    Err(e) => return Err(e),
                }
            }
        } else {
            // Nobody convicted: transient evidence. The monitor holds the
            // suspicion decay; the frame is lost but the plan stands.
            report.unattributed_detections += 1;
        }
        report.frames.push(FrameRecord {
            frame,
            status: FrameStatus::FailStopped,
            start_cycle,
            e2e_budget: budget,
            run: Some(run),
            quarantined_after: report.quarantined.clone(),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::ad_pipeline;
    use crate::exec::plan;
    use higpu_faults::injector::{FaultInjector, InjectionCounters};
    use higpu_faults::model::FaultModel;
    use higpu_sim::config::GpuConfig;
    use higpu_workloads::Scale;

    fn cfg() -> GpuConfig {
        let mut cfg = GpuConfig::wide_10sm();
        cfg.global_mem_bytes = 2 * 1024 * 1024;
        cfg
    }

    #[test]
    fn fault_free_mission_stays_nominal() {
        let p = ad_pipeline(Scale::Campaign);
        let mode = higpu_core::redundancy::RedundancyMode::srrs_spread(10, 2);
        let plan = plan(&cfg(), &p, &mode).expect("calibration");
        let mut gpu = Gpu::new(cfg());
        let rep = run_limp_home(&mut gpu, &p, &mode, &plan, FrameOptions::default(), 3)
            .expect("mission runs");
        assert_eq!(rep.frames.len(), 3);
        assert!(rep
            .frames
            .iter()
            .all(|f| f.status == FrameStatus::Nominal && f.completed()));
        assert!(rep.quarantined.is_empty());
        assert_eq!(rep.diagnosis_frame, None);
        assert_eq!(rep.degraded_frames(), 0);
        assert!(!rep.limp_home_ok(), "no quarantine means no limp-home");
        assert_eq!(rep.bist_sweeps, 0);
    }

    #[test]
    fn permanent_fault_is_diagnosed_quarantined_and_limped_around() {
        let p = ad_pipeline(Scale::Campaign);
        let mode = higpu_core::redundancy::RedundancyMode::srrs_spread(10, 2);
        let nominal = plan(&cfg(), &p, &mode).expect("calibration");
        let mut gpu = Gpu::new(cfg());
        // A permanent datapath fault in SM 3, present from cycle 0: frame 0
        // detects (SRRS diversity), retries into the same fault, fail-stops
        // — then the sweep convicts SM 3 and frames 1.. limp home.
        let counters = InjectionCounters::shared();
        gpu.set_fault_hook(Box::new(FaultInjector::new(
            FaultModel::PermanentSm {
                sm: 3,
                from_cycle: 0,
                bit: 5,
            },
            counters,
        )));
        let rep = run_limp_home(&mut gpu, &p, &mode, &nominal, FrameOptions::default(), 4)
            .expect("mission runs");
        assert_eq!(rep.quarantined, vec![3], "the faulty SM and only it");
        assert_eq!(rep.diagnosis_frame, Some(0));
        assert_eq!(rep.frames_to_diagnosis(), Some(1));
        assert_eq!(rep.frames[0].status, FrameStatus::FailStopped);
        for f in &rep.frames[1..] {
            assert_eq!(f.status, FrameStatus::Degraded, "frame {}", f.frame);
            assert!(f.completed());
        }
        assert!(rep.limp_home_ok());
        let degraded = rep.degraded_plan.as_ref().expect("re-planned");
        assert!(
            degraded.ftti.end_to_end() > 0
                && degraded.fault_free_makespan >= nominal.fault_free_makespan,
            "nine SMs cannot beat ten on the calibration frame"
        );
        // Degraded frames hold their *re-planned* budgets.
        for f in &rep.frames[1..] {
            assert!(f.makespan() <= f.e2e_budget);
        }
    }

    #[test]
    fn capacity_exhaustion_fail_stops_the_mission() {
        let p = ad_pipeline(Scale::Campaign);
        // Paper-class SMs, but only two of them: losing one drops the
        // device below the one-SM-per-replica floor.
        let mut cfg = GpuConfig::paper_6sm();
        cfg.num_sms = 2;
        cfg.global_mem_bytes = 2 * 1024 * 1024;
        let mode = higpu_core::redundancy::RedundancyMode::srrs_spread(2, 2);
        let nominal = plan(&cfg, &p, &mode).expect("calibration");
        let mut gpu = Gpu::new(cfg);
        let counters = InjectionCounters::shared();
        gpu.set_fault_hook(Box::new(FaultInjector::new(
            FaultModel::PermanentSm {
                sm: 0,
                from_cycle: 0,
                bit: 9,
            },
            counters,
        )));
        // Two SMs, two replicas: quarantining the faulty SM leaves one —
        // below the one-SM-per-replica floor, so the mission fail-stops
        // and the remaining frames are shed.
        let rep = run_limp_home(&mut gpu, &p, &mode, &nominal, FrameOptions::default(), 3)
            .expect("mission runs");
        assert_eq!(rep.quarantined, vec![0]);
        assert!(rep
            .frames
            .iter()
            .all(|f| f.status == FrameStatus::FailStopped));
        assert!(rep.frames[2].run.is_none(), "shed, not executed");
        assert!(!rep.limp_home_ok());
    }
}
