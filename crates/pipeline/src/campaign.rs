//! Pipeline fault campaigns: randomized fault injection over whole
//! pipeline frames, with **fail-operational vs fail-stop** as the new
//! observable.
//!
//! A pipeline trial injects one pre-drawn fault into a full frame
//! (every stage, redundant, under the frame's deadline plan) and
//! classifies what the deployed safety mechanism would have delivered:
//!
//! * [`PipelineTrialOutcome::Recovered`] — a stage detection was repaired
//!   by in-FTTI re-execution and the frame's every stage verified correct:
//!   the vehicle keeps operating (fail-operational). Without the recovery
//!   budget the same trial is merely [`PipelineTrialOutcome::Detected`].
//! * [`PipelineTrialOutcome::Detected`] — the frame fail-stopped (an
//!   unrecoverable detection or a blown end-to-end FTTI): safe, but the
//!   function is lost for this frame.
//!
//! The engine mirrors `higpu_faults::campaign` exactly: pre-drawn models,
//! reusable per-worker devices, guided-self-scheduling work claims
//! ([`higpu_faults::campaign::claim_chunk`]) and an order-independent
//! count reduction, so the parallel report is bit-identical to the serial
//! reference at every worker count.

use crate::exec::{
    plan, run_pipeline, ExecMode, FrameOptions, PipelineError, PipelinePlan, PipelineRun,
    RecoveryPolicy,
};
use crate::graph::{Pipeline, PipelineRegistry};
use crate::limp::{run_limp_home, FrameStatus, LimpHomeReport};
use higpu_core::diversity::{analyze, DiversityRequirements};
use higpu_core::policy::PolicyKind;
use higpu_core::redundancy::RedundancyMode;
use higpu_core::safety_case::DetectionEvidence;
use higpu_faults::campaign::{
    claim_chunk, draw_models, policy_mode, CampaignConfig, CampaignError, FaultSpec,
};
use higpu_faults::injector::{FaultInjector, InjectionCounters};
use higpu_faults::model::FaultModel;
use higpu_sim::gpu::Gpu;
use higpu_workloads::Scale;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One cell of a pipeline campaign sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCampaignSpec {
    /// Registry name of the pipeline under test.
    pub pipeline: String,
    /// Input scale the factory builds.
    pub scale: Scale,
    /// Scheduling policy of every stage's redundant execution.
    pub policy: PolicyKind,
    /// Fault family injected.
    pub fault: FaultSpec,
    /// Replica count per stage.
    pub replicas: u8,
    /// Re-execution budget (default: one retry per stage; use
    /// [`RecoveryPolicy::disabled`] for the fail-stop-only ablation).
    pub recovery: RecoveryPolicy,
    /// Which frame executor runs the trials (default: the overlapped
    /// concurrent-branch executor; [`ExecMode::Serial`] is the reference
    /// oracle and the serial-vs-overlapped comparison axis).
    pub exec: ExecMode,
    /// Frames per trial (default 1). Above 1 each trial becomes a
    /// **limp-home mission** ([`crate::limp::run_limp_home`]): the fault's
    /// arming time is drawn across the whole mission window, a
    /// fail-stopped frame escalates to diagnosis + quarantine +
    /// re-planning, and the trial classifies the mission
    /// ([`PipelineTrialOutcome::Quarantined`] /
    /// [`PipelineTrialOutcome::LimpHomeMiss`]). Meant for value-corruption
    /// fault families; misroute classification stays single-frame.
    pub frames: u32,
}

impl PipelineCampaignSpec {
    /// Campaign-scale, two-replica spec with the default recovery budget
    /// on the overlapped executor.
    pub fn new(pipeline: impl Into<String>, policy: PolicyKind, fault: FaultSpec) -> Self {
        Self {
            pipeline: pipeline.into(),
            scale: Scale::Campaign,
            policy,
            fault,
            replicas: 2,
            recovery: RecoveryPolicy::default(),
            exec: ExecMode::default(),
            frames: 1,
        }
    }

    /// The same spec running `frames` consecutive frames per trial (the
    /// limp-home mission axis).
    pub fn with_frames(mut self, frames: u32) -> Self {
        self.frames = frames.max(1);
        self
    }

    /// The same spec at `replicas` replicas.
    pub fn with_replicas(mut self, replicas: u8) -> Self {
        self.replicas = replicas;
        self
    }

    /// The same spec with recovery disabled (every detection fail-stops).
    pub fn without_recovery(mut self) -> Self {
        self.recovery = RecoveryPolicy::disabled();
        self
    }

    /// The same spec under `exec`.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// The frame options these trials run under. Scheduler-misroute
    /// campaigns enable the inter-stage BIST: a misroute is functionally
    /// silent, so the periodic self-test (plus the diversity monitor) is
    /// the deployed mechanism that must catch it.
    pub fn frame_options(&self) -> FrameOptions {
        FrameOptions {
            exec: self.exec,
            recovery: self.recovery,
            interstage_bist: matches!(self.fault, FaultSpec::Misroute),
        }
    }
}

/// Classification of one pipeline injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineTrialOutcome {
    /// The fault never corrupted anything.
    NotActivated,
    /// Corruption happened; every stage stayed unanimous and verified
    /// correct (within its tolerance).
    Masked,
    /// At least one stage's N ≥ 3 vote outvoted the corruption in place
    /// (no re-execution needed) and every stage verified correct.
    Corrected,
    /// At least one detected stage was re-executed within the remaining
    /// FTTI slack, and the frame completed with every stage verified
    /// correct — **fail-operational**: the observable the frontier lacked.
    Recovered,
    /// The frame fail-stopped: an unrecoverable detection (retry
    /// exhausted / no slack) or an end-to-end deadline miss. Safe, but the
    /// frame is lost. In a multi-frame mission: a frame was lost to an
    /// unattributable (transient) fault, no SM was convicted, and every
    /// other frame completed verified.
    Detected,
    /// Multi-frame missions only: a fail-stopped frame was diagnosed to a
    /// permanent SM fault, the SM was quarantined, budgets were re-planned
    /// for the shrunken device, and **every** subsequent frame completed
    /// in degraded mode inside its re-planned FTTI, verified correct —
    /// the limp-home fail-operational outcome.
    Quarantined,
    /// Multi-frame missions only: an SM was quarantined but the limp-home
    /// contract broke — a post-quarantine frame missed its re-planned
    /// deadline, fail-stopped, or the degraded device was unschedulable.
    LimpHomeMiss,
    /// A frame the mechanism accepted whose data was wrong: some stage's
    /// voted output failed verification against the CPU reference on its
    /// actual inputs.
    UndetectedFailure,
}

/// Aggregated pipeline campaign results. All counts are order-independent
/// sums, so serial and parallel engines agree bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineCampaignReport {
    /// Pipeline name.
    pub pipeline: String,
    /// Scheduling policy label.
    pub policy: String,
    /// Fault family label.
    pub fault: &'static str,
    /// Replica count per stage.
    pub replicas: u8,
    /// Frame executor label (`serial` / `overlapped`).
    pub exec: &'static str,
    /// Stage count of the pipeline.
    pub stages: u32,
    /// Fault-free end-to-end frame makespan (cycles) **under this cell's
    /// executor** — the serial-vs-overlapped speedup numerator/denominator.
    pub fault_free_makespan: u64,
    /// The end-to-end FTTI this cell's executor enforced: the critical
    /// path of the stage-budget DAG (plus per-join slack) for
    /// `overlapped` cells, the per-stage sum for `serial` cells — so
    /// `deadline_miss` is always measured against this number.
    pub e2e_deadline: u64,
    /// The pre-concurrency end-to-end FTTI (plain sum of stage budgets) —
    /// strictly above the critical path for any pipeline with parallel
    /// branches (and equal to `e2e_deadline` on serial cells).
    pub serial_sum_deadline: u64,
    /// Host↔device bytes one fault-free frame moves per the DCLS protocol
    /// (uploads + read-backs, all replicas, all stages).
    pub bandwidth_bytes: u64,
    /// Trials run.
    pub trials: u32,
    /// Trials whose fault never activated.
    pub not_activated: u32,
    /// Activated but masked trials.
    pub masked: u32,
    /// Trials corrected in place by the vote.
    pub corrected: u32,
    /// Trials recovered by in-FTTI re-execution (fail-operational).
    pub recovered: u32,
    /// Fail-stop trials.
    pub detected: u32,
    /// Undetected failures (must be 0 under diverse policies).
    pub undetected: u32,
    /// Trials whose frame exceeded the end-to-end FTTI.
    pub deadline_miss: u32,
    /// Re-executions attempted across all trials.
    pub retries_attempted: u32,
    /// Re-executions that themselves failed (tied again / timed out).
    pub retries_failed: u32,
    /// Detections that found no slack left for a retry.
    pub no_slack: u32,
    /// Frames per trial (1 = classic single-frame campaign; above 1 the
    /// limp-home fields below are live).
    pub frames: u32,
    /// Trials that diagnosed + quarantined a permanent SM fault and kept
    /// every subsequent frame fail-operational in degraded mode.
    pub quarantined: u32,
    /// Trials that quarantined but then missed the limp-home contract.
    pub limp_home_miss: u32,
    /// Frames completed in degraded mode across all trials.
    pub degraded_frames: u32,
    /// Summed makespan of those degraded frames (inflation numerator).
    pub degraded_makespan_sum: u64,
    /// Summed frames-to-diagnosis over all trials that convicted an SM.
    pub frames_to_diagnosis_sum: u32,
    /// Post-quarantine frames that broke their re-planned deadline (the
    /// limp-home deadline-miss numerator).
    pub limp_deadline_miss: u32,
}

impl PipelineCampaignReport {
    /// The fail-operational recovery rate: trials the mechanism kept
    /// operational (in-FTTI recovery, or quarantine + limp-home) over all
    /// trials in which it *acted* (those plus fail-stops and broken
    /// limp-home contracts); `None` when it never had to act.
    pub fn recovery_rate(&self) -> Option<f64> {
        let operational = self.recovered + self.quarantined;
        let acted = operational + self.detected + self.limp_home_miss;
        if acted == 0 {
            None
        } else {
            Some(f64::from(operational) / f64::from(acted))
        }
    }

    /// End-to-end deadline-miss rate over all trials.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.deadline_miss) / f64::from(self.trials)
        }
    }

    /// Coverage over effective faults (everything the mechanism caught —
    /// corrected, recovered or fail-stopped — over all non-masked
    /// activations); `None` when no fault was effective.
    pub fn coverage(&self) -> Option<f64> {
        let caught = self.corrected
            + self.recovered
            + self.detected
            + self.quarantined
            + self.limp_home_miss;
        let effective = caught + self.undetected;
        if effective == 0 {
            None
        } else {
            Some(f64::from(caught) / f64::from(effective))
        }
    }

    /// Mean frames from fault manifestation to quarantine, over the trials
    /// that convicted an SM; `None` when nothing was ever quarantined.
    pub fn mean_frames_to_diagnosis(&self) -> Option<f64> {
        let diagnosed = self.quarantined + self.limp_home_miss;
        if diagnosed == 0 {
            None
        } else {
            Some(f64::from(self.frames_to_diagnosis_sum) / f64::from(diagnosed))
        }
    }

    /// Post-quarantine makespan inflation: the mean degraded-frame
    /// makespan over the nominal fault-free frame makespan; `None` without
    /// degraded frames.
    pub fn degraded_makespan_inflation(&self) -> Option<f64> {
        if self.degraded_frames == 0 || self.fault_free_makespan == 0 {
            None
        } else {
            let mean = self.degraded_makespan_sum as f64 / f64::from(self.degraded_frames);
            Some(mean / self.fault_free_makespan as f64)
        }
    }

    /// Limp-home deadline-miss rate: missions that quarantined but then
    /// broke the re-planned contract, over all missions that quarantined;
    /// `None` when nothing was ever quarantined.
    pub fn limp_home_miss_rate(&self) -> Option<f64> {
        let diagnosed = self.quarantined + self.limp_home_miss;
        if diagnosed == 0 {
            None
        } else {
            Some(f64::from(self.limp_home_miss) / f64::from(diagnosed))
        }
    }

    /// Converts to the safety-case evidence form.
    pub fn evidence(&self) -> DetectionEvidence {
        DetectionEvidence {
            activated: u64::from(self.trials - self.not_activated),
            masked: u64::from(self.masked),
            // A broken limp-home contract is still a safe detection; a
            // quarantined-and-limped mission stayed operational, which is
            // the evidence class in-FTTI recovery occupies.
            detected: u64::from(self.detected + self.limp_home_miss),
            corrected: u64::from(self.corrected),
            recovered: u64::from(self.recovered + self.quarantined),
            undetected_failures: u64::from(self.undetected),
        }
    }
}

/// Errors of pipeline campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineCampaignError {
    /// The spec named a pipeline absent from the registry.
    UnknownPipeline(String),
    /// Policy/replica resolution failed.
    Campaign(CampaignError),
    /// A frame failed in the device or the protocol.
    Pipeline(PipelineError),
}

impl fmt::Display for PipelineCampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineCampaignError::UnknownPipeline(name) => {
                write!(f, "pipeline '{name}' is not in the registry")
            }
            PipelineCampaignError::Campaign(e) => write!(f, "{e}"),
            PipelineCampaignError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineCampaignError {}

impl From<CampaignError> for PipelineCampaignError {
    fn from(e: CampaignError) -> Self {
        PipelineCampaignError::Campaign(e)
    }
}

impl From<PipelineError> for PipelineCampaignError {
    fn from(e: PipelineError) -> Self {
        PipelineCampaignError::Pipeline(e)
    }
}

/// Order-independent accumulator of pipeline trial outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PipelineCounts {
    not_activated: u32,
    masked: u32,
    corrected: u32,
    recovered: u32,
    detected: u32,
    undetected: u32,
    deadline_miss: u32,
    retries_attempted: u32,
    retries_failed: u32,
    no_slack: u32,
    quarantined: u32,
    limp_home_miss: u32,
    degraded_frames: u32,
    degraded_makespan_sum: u64,
    frames_to_diagnosis_sum: u32,
    limp_deadline_miss: u32,
}

impl PipelineCounts {
    fn add_outcome(&mut self, outcome: PipelineTrialOutcome) {
        match outcome {
            PipelineTrialOutcome::NotActivated => self.not_activated += 1,
            PipelineTrialOutcome::Masked => self.masked += 1,
            PipelineTrialOutcome::Corrected => self.corrected += 1,
            PipelineTrialOutcome::Recovered => self.recovered += 1,
            PipelineTrialOutcome::Detected => self.detected += 1,
            PipelineTrialOutcome::Quarantined => self.quarantined += 1,
            PipelineTrialOutcome::LimpHomeMiss => self.limp_home_miss += 1,
            PipelineTrialOutcome::UndetectedFailure => self.undetected += 1,
        }
    }

    fn add_run(&mut self, run: &PipelineRun) {
        self.deadline_miss += u32::from(run.deadline_miss);
        self.retries_attempted += run.retries_attempted;
        self.retries_failed += run.retries_failed;
        self.no_slack += run.no_slack_failures;
    }

    fn add(&mut self, outcome: PipelineTrialOutcome, run: &PipelineRun) {
        self.add_outcome(outcome);
        self.add_run(run);
    }

    fn add_limp(&mut self, outcome: PipelineTrialOutcome, rep: &LimpHomeReport) {
        self.add_outcome(outcome);
        for run in rep.frames.iter().filter_map(|f| f.run.as_ref()) {
            self.add_run(run);
        }
        self.degraded_frames += rep.degraded_frames();
        self.degraded_makespan_sum += rep.degraded_makespan_sum();
        self.frames_to_diagnosis_sum += rep.frames_to_diagnosis().unwrap_or(0);
        self.limp_deadline_miss += rep.limp_deadline_misses();
    }

    fn merge(&mut self, o: PipelineCounts) {
        self.not_activated += o.not_activated;
        self.masked += o.masked;
        self.corrected += o.corrected;
        self.recovered += o.recovered;
        self.detected += o.detected;
        self.undetected += o.undetected;
        self.deadline_miss += o.deadline_miss;
        self.retries_attempted += o.retries_attempted;
        self.retries_failed += o.retries_failed;
        self.no_slack += o.no_slack;
        self.quarantined += o.quarantined;
        self.limp_home_miss += o.limp_home_miss;
        self.degraded_frames += o.degraded_frames;
        self.degraded_makespan_sum += o.degraded_makespan_sum;
        self.frames_to_diagnosis_sum += o.frames_to_diagnosis_sum;
        self.limp_deadline_miss += o.limp_deadline_miss;
    }
}

/// A reusable pipeline trial executor: one device, rewound between frames.
#[derive(Debug)]
pub struct PipelineCampaignRunner {
    gpu: Gpu,
}

impl PipelineCampaignRunner {
    /// Creates a runner with a fresh device per `cfg.gpu`.
    pub fn new(cfg: &CampaignConfig) -> Self {
        Self {
            gpu: Gpu::new(cfg.gpu.clone()),
        }
    }

    /// Runs one pipeline injection trial; returns the classified outcome
    /// and the frame record. Pure function of `(cfg.gpu, pipeline, mode,
    /// plan, opts, fault family, model)` — independent of previous trials
    /// and of which runner executes it.
    ///
    /// # Errors
    ///
    /// Propagates device/protocol errors (never mere corruption).
    pub fn run_trial(
        &mut self,
        pipeline: &Pipeline,
        mode: &RedundancyMode,
        frame_plan: &PipelinePlan,
        opts: FrameOptions,
        misroute: bool,
        model: FaultModel,
    ) -> Result<(PipelineTrialOutcome, PipelineRun), PipelineError> {
        if self.gpu.reset().is_err() {
            self.gpu.force_reset();
        }
        let counters = InjectionCounters::shared();
        self.gpu
            .set_fault_hook(Box::new(FaultInjector::new(model, counters.clone())));
        let run = run_pipeline(&mut self.gpu, pipeline, mode, frame_plan, opts)?;
        // A misrouted frame is functionally silent; the deployed detectors
        // are the inter-stage scheduler BIST plus the diversity monitor
        // over the frame's trace (mirroring the workload-level path).
        let diverse =
            !misroute || analyze(self.gpu.trace(), DiversityRequirements::default()).is_diverse();
        let outcome = classify(pipeline, &run, counters.activated(), misroute, diverse);
        Ok((outcome, run))
    }

    /// Runs one multi-frame limp-home trial ([`crate::limp`]): the device
    /// is reset (clearing any previous quarantine), the fault hook is
    /// armed for the whole mission, and the mission is classified at the
    /// mission level — [`PipelineTrialOutcome::Quarantined`] when an SM
    /// was convicted and every later frame limped home inside its
    /// re-planned FTTI, [`PipelineTrialOutcome::LimpHomeMiss`] when the
    /// contract broke after a conviction.
    ///
    /// # Errors
    ///
    /// Propagates device/protocol errors (never mere corruption).
    pub fn run_limp_trial(
        &mut self,
        pipeline: &Pipeline,
        mode: &RedundancyMode,
        frame_plan: &PipelinePlan,
        opts: FrameOptions,
        frames: u32,
        model: FaultModel,
    ) -> Result<(PipelineTrialOutcome, LimpHomeReport), PipelineError> {
        if self.gpu.reset().is_err() {
            self.gpu.force_reset();
        }
        let counters = InjectionCounters::shared();
        self.gpu
            .set_fault_hook(Box::new(FaultInjector::new(model, counters.clone())));
        let rep = run_limp_home(
            &mut self.gpu,
            pipeline,
            mode,
            frame_plan,
            opts,
            frames as usize,
        )?;
        let outcome = classify_limp(pipeline, &rep, counters.activated());
        Ok((outcome, rep))
    }
}

/// Classifies a limp-home mission: the oracle checks every delivered
/// frame, then the quarantine ladder decides between the mission-level
/// outcomes.
fn classify_limp(
    pipeline: &Pipeline,
    rep: &LimpHomeReport,
    activated: bool,
) -> PipelineTrialOutcome {
    if !activated {
        return PipelineTrialOutcome::NotActivated;
    }
    // Oracle: every completed frame's every stage output must verify
    // against the CPU reference over the data that actually flowed — a
    // degraded frame is held to the same bar as a nominal one.
    for f in rep.frames.iter().filter(|f| f.completed()) {
        let run = f.run.as_ref().expect("a completed frame has a run");
        for (s, stage) in pipeline.stages().iter().enumerate() {
            let inputs: Vec<&[u32]> = stage
                .deps
                .iter()
                .map(|&d| run.outputs[d].as_slice())
                .collect();
            if stage.program.verify(&run.outputs[s], &inputs).is_err() {
                return PipelineTrialOutcome::UndetectedFailure;
            }
        }
    }
    if rep.diagnosis_frame.is_some() {
        return if rep.limp_home_ok() {
            PipelineTrialOutcome::Quarantined
        } else {
            PipelineTrialOutcome::LimpHomeMiss
        };
    }
    if rep
        .frames
        .iter()
        .any(|f| f.status == FrameStatus::FailStopped)
    {
        return PipelineTrialOutcome::Detected;
    }
    let runs = || rep.frames.iter().filter_map(|f| f.run.as_ref());
    if runs().any(|r| r.recovered_stages() > 0) {
        PipelineTrialOutcome::Recovered
    } else if runs().any(|r| r.corrected_stages() > 0 || r.corrected_reads > 0) {
        PipelineTrialOutcome::Corrected
    } else {
        PipelineTrialOutcome::Masked
    }
}

/// Classifies a completed frame from the deployed mechanism's observables
/// plus the campaign's oracle (stage-wise CPU references over the data
/// that actually flowed).
fn classify(
    pipeline: &Pipeline,
    run: &PipelineRun,
    activated: bool,
    misroute: bool,
    diverse: bool,
) -> PipelineTrialOutcome {
    if !activated {
        return PipelineTrialOutcome::NotActivated;
    }
    if run.failstop().is_some() || run.deadline_miss {
        return PipelineTrialOutcome::Detected;
    }
    if misroute {
        // Latent diversity loss: outputs stay correct, so frame outcomes
        // cannot classify it — the inter-stage self-test and the
        // diversity monitor are the mechanisms on trial.
        return if run.bist_failed > 0 || !diverse {
            PipelineTrialOutcome::Detected
        } else {
            PipelineTrialOutcome::UndetectedFailure
        };
    }
    // Oracle: every delivered stage output must verify against the CPU
    // reference recomputed over its *actual* (voted) inputs. A corrupted
    // value the voter accepted anywhere in the dataflow fails here.
    for (s, stage) in pipeline.stages().iter().enumerate() {
        let inputs: Vec<&[u32]> = stage
            .deps
            .iter()
            .map(|&d| run.outputs[d].as_slice())
            .collect();
        if stage.program.verify(&run.outputs[s], &inputs).is_err() {
            return PipelineTrialOutcome::UndetectedFailure;
        }
    }
    if run.recovered_stages() > 0 {
        PipelineTrialOutcome::Recovered
    } else if run.corrected_stages() > 0 || run.corrected_reads > 0 {
        PipelineTrialOutcome::Corrected
    } else {
        PipelineTrialOutcome::Masked
    }
}

struct ResolvedSpec {
    pipeline: Pipeline,
    mode: RedundancyMode,
    frame_plan: PipelinePlan,
    opts: FrameOptions,
    /// Fault-free frame makespan under the cell's executor (the serial
    /// calibration total for [`ExecMode::Serial`]; the overlapped — i.e.
    /// critical-path — total otherwise).
    frame_makespan: u64,
    models: Vec<FaultModel>,
}

fn resolve(
    cfg: &CampaignConfig,
    reg: &PipelineRegistry,
    spec: &PipelineCampaignSpec,
) -> Result<ResolvedSpec, PipelineCampaignError> {
    let pipeline = reg
        .build(&spec.pipeline, spec.scale)
        .ok_or_else(|| PipelineCampaignError::UnknownPipeline(spec.pipeline.clone()))?;
    let mode = policy_mode(spec.policy, spec.replicas, cfg.gpu.num_sms)?;
    let frame_plan = plan(&cfg.gpu, &pipeline, &mode)?;
    let opts = spec.frame_options();
    // One fault-free frame under the cell's executor: its makespan is both
    // the executor-comparison observable and the fault sampling window —
    // fault times are drawn inside the frame the trials actually run,
    // exactly as workload campaigns sample inside the redundant makespan.
    let frame_makespan = if spec.exec == ExecMode::Serial {
        frame_plan.fault_free_makespan
    } else {
        let mut gpu = Gpu::new(cfg.gpu.clone());
        let no_bist = FrameOptions {
            interstage_bist: false,
            ..opts
        };
        run_pipeline(&mut gpu, &pipeline, &mode, &frame_plan, no_bist)?.end_cycle
    };
    // Multi-frame missions draw the fault's arming time across the whole
    // mission window (frames × the fault-free frame), so a permanent
    // fault may manifest in any frame k and the remaining frames must
    // limp home; single-frame cells keep the classic per-frame window
    // (and therefore their exact historical draws).
    let window = frame_makespan.saturating_mul(u64::from(spec.frames.max(1)));
    let models = draw_models(cfg, spec.fault, window);
    Ok(ResolvedSpec {
        pipeline,
        mode,
        frame_plan,
        opts,
        frame_makespan,
        models,
    })
}

fn finish_report(
    spec: &PipelineCampaignSpec,
    r: &ResolvedSpec,
    trials: u32,
    counts: PipelineCounts,
) -> PipelineCampaignReport {
    PipelineCampaignReport {
        pipeline: spec.pipeline.clone(),
        policy: r.mode.policy_kind().label().to_string(),
        fault: spec.fault.label(),
        replicas: r.mode.replicas(),
        exec: spec.exec.label(),
        stages: r.pipeline.len() as u32,
        fault_free_makespan: r.frame_makespan,
        // The budget the cell's executor actually enforced: the serial
        // executor still owes every stage budget in sequence, so its
        // deadline_miss counts are measured against the per-stage sum,
        // while the overlapped executor enforces the critical path.
        e2e_deadline: match spec.exec {
            ExecMode::Serial => r.frame_plan.ftti.serial_sum(),
            ExecMode::Overlapped => r.frame_plan.ftti.end_to_end(),
        },
        serial_sum_deadline: r.frame_plan.ftti.serial_sum(),
        bandwidth_bytes: r.frame_plan.frame_bandwidth_bytes,
        trials,
        not_activated: counts.not_activated,
        masked: counts.masked,
        corrected: counts.corrected,
        recovered: counts.recovered,
        detected: counts.detected,
        undetected: counts.undetected,
        deadline_miss: counts.deadline_miss,
        retries_attempted: counts.retries_attempted,
        retries_failed: counts.retries_failed,
        no_slack: counts.no_slack,
        frames: spec.frames.max(1),
        quarantined: counts.quarantined,
        limp_home_miss: counts.limp_home_miss,
        degraded_frames: counts.degraded_frames,
        degraded_makespan_sum: counts.degraded_makespan_sum,
        frames_to_diagnosis_sum: counts.frames_to_diagnosis_sum,
        limp_deadline_miss: counts.limp_deadline_miss,
    }
}

/// One trial under `spec` — a single frame or a limp-home mission —
/// reduced to the order-independent counts.
fn run_one_trial(
    runner: &mut PipelineCampaignRunner,
    spec: &PipelineCampaignSpec,
    resolved: &ResolvedSpec,
    model: FaultModel,
    counts: &mut PipelineCounts,
) -> Result<(), PipelineError> {
    if spec.frames > 1 {
        let (outcome, rep) = runner.run_limp_trial(
            &resolved.pipeline,
            &resolved.mode,
            &resolved.frame_plan,
            resolved.opts,
            spec.frames,
            model,
        )?;
        counts.add_limp(outcome, &rep);
    } else {
        let (outcome, run) = runner.run_trial(
            &resolved.pipeline,
            &resolved.mode,
            &resolved.frame_plan,
            resolved.opts,
            matches!(spec.fault, FaultSpec::Misroute),
            model,
        )?;
        counts.add(outcome, &run);
    }
    Ok(())
}

/// The reference serial engine: one runner, trials in draw order — the
/// oracle the parallel engine is checked against.
///
/// # Errors
///
/// Unknown pipeline / unsupported fault / unsupported replica count;
/// otherwise propagates device/protocol errors from any trial.
pub fn run_pipeline_campaign_serial(
    cfg: &CampaignConfig,
    reg: &PipelineRegistry,
    spec: &PipelineCampaignSpec,
) -> Result<PipelineCampaignReport, PipelineCampaignError> {
    let resolved = resolve(cfg, reg, spec)?;
    let mut runner = PipelineCampaignRunner::new(cfg);
    let mut counts = PipelineCounts::default();
    for &model in &resolved.models {
        run_one_trial(&mut runner, spec, &resolved, model, &mut counts)?;
    }
    Ok(finish_report(spec, &resolved, cfg.trials, counts))
}

/// Runs a pipeline campaign on a pool of
/// [`CampaignConfig::resolved_workers`] threads. Bit-identical to
/// [`run_pipeline_campaign_serial`] at every worker count: all randomness
/// is pre-drawn, every trial is a pure function of its model, and the
/// reduction is a sum of order-independent counts.
///
/// # Errors
///
/// As [`run_pipeline_campaign_serial`]; when several trials fail, the
/// error of the lowest-numbered trial is returned.
pub fn run_pipeline_campaign(
    cfg: &CampaignConfig,
    reg: &PipelineRegistry,
    spec: &PipelineCampaignSpec,
) -> Result<PipelineCampaignReport, PipelineCampaignError> {
    let resolved = resolve(cfg, reg, spec)?;
    let workers = cfg.resolved_workers().min(resolved.models.len()).max(1);

    if workers == 1 {
        let mut runner = PipelineCampaignRunner::new(cfg);
        let mut counts = PipelineCounts::default();
        for &model in &resolved.models {
            run_one_trial(&mut runner, spec, &resolved, model, &mut counts)?;
        }
        return Ok(finish_report(spec, &resolved, cfg.trials, counts));
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Vec<Result<PipelineCounts, (usize, PipelineError)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let resolved = &resolved;
                    let next = &next;
                    let abort = &abort;
                    scope.spawn(move || {
                        let mut runner = PipelineCampaignRunner::new(cfg);
                        let mut counts = PipelineCounts::default();
                        'claims: while !abort.load(Ordering::Relaxed) {
                            let Some(range) = claim_chunk(next, resolved.models.len(), workers)
                            else {
                                break;
                            };
                            for i in range {
                                if abort.load(Ordering::Relaxed) {
                                    break 'claims;
                                }
                                if let Err(e) = run_one_trial(
                                    &mut runner,
                                    spec,
                                    resolved,
                                    resolved.models[i],
                                    &mut counts,
                                ) {
                                    abort.store(true, Ordering::Relaxed);
                                    return Err((i, e));
                                }
                            }
                        }
                        Ok(counts)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pipeline campaign worker panicked"))
                .collect()
        });

    let mut counts = PipelineCounts::default();
    let mut first_error: Option<(usize, PipelineError)> = None;
    for r in results {
        match r {
            Ok(c) => counts.merge(c),
            Err((i, e)) => {
                if first_error.as_ref().is_none_or(|(fi, _)| i < *fi) {
                    first_error = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e.into());
    }
    Ok(finish_report(spec, &resolved, cfg.trials, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::full_pipeline_registry;

    fn small_cfg(trials: u32) -> CampaignConfig {
        CampaignConfig {
            trials,
            seed: 42,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn unknown_pipelines_and_replica_counts_are_rejected() {
        let reg = full_pipeline_registry();
        let cfg = small_cfg(1);
        let unknown = PipelineCampaignSpec::new("no_such", PolicyKind::Srrs, FaultSpec::Permanent);
        assert!(matches!(
            run_pipeline_campaign(&cfg, &reg, &unknown),
            Err(PipelineCampaignError::UnknownPipeline(_))
        ));
        let one_replica =
            PipelineCampaignSpec::new("ad_pipeline", PolicyKind::Srrs, FaultSpec::Permanent)
                .with_replicas(1);
        assert!(matches!(
            run_pipeline_campaign(&cfg, &reg, &one_replica),
            Err(PipelineCampaignError::Campaign(
                CampaignError::UnsupportedReplicas { .. }
            ))
        ));
    }

    #[test]
    fn misroute_frames_classify_through_the_interstage_bist() {
        let reg = full_pipeline_registry();
        let cfg = small_cfg(2);
        for exec in [ExecMode::Serial, ExecMode::Overlapped] {
            let spec =
                PipelineCampaignSpec::new("ad_pipeline", PolicyKind::Srrs, FaultSpec::Misroute)
                    .with_exec(exec);
            assert!(spec.frame_options().interstage_bist);
            let r = run_pipeline_campaign(&cfg, &reg, &spec).expect("misroute is classified");
            assert_eq!(
                r.detected,
                r.trials,
                "every misrouted frame caught by the inter-stage self-test ({}): {r:?}",
                exec.label()
            );
            assert_eq!(r.undetected, 0);
        }
    }

    #[test]
    fn multi_frame_permanent_campaign_quarantines_and_limps_home() {
        use higpu_sim::config::GpuConfig;
        let reg = full_pipeline_registry();
        let mut gpu = GpuConfig::wide_10sm();
        gpu.global_mem_bytes = 2 * 1024 * 1024;
        let cfg = CampaignConfig {
            trials: 3,
            seed: 7,
            gpu,
            ..CampaignConfig::default()
        };
        let spec =
            PipelineCampaignSpec::new("sensor_fusion", PolicyKind::Srrs, FaultSpec::Permanent)
                .with_frames(4);
        let r = run_pipeline_campaign(&cfg, &reg, &spec).expect("mission campaign");
        assert_eq!(r.frames, 4);
        assert_eq!(r.undetected, 0, "the ASIL-D fence holds over missions");
        assert_eq!(
            r.limp_home_miss, 0,
            "re-planned budgets hold every degraded frame: {r:?}"
        );
        assert!(
            r.quarantined > 0,
            "a permanent fault inside the mission window gets convicted: {r:?}"
        );
        assert!(r.degraded_frames > 0, "post-quarantine frames limp home");
        // The inflation is a *reported* observable, not bounded below by
        // 1.0: losing an SM shifts the SRRS stagger alignment, which can
        // make the shrunken device marginally faster on a branchy DAG.
        // It must still be the same order of magnitude as nominal.
        let inflation = r
            .degraded_makespan_inflation()
            .expect("degraded frames ran");
        assert!(
            (0.5..2.0).contains(&inflation),
            "degraded frames stay commensurate with nominal: {r:?}"
        );
        assert!(r.mean_frames_to_diagnosis().expect("diagnosed") >= 1.0);
        assert_eq!(r.limp_home_miss_rate(), Some(0.0));
        // The parallel engine must agree bit-for-bit on missions too.
        let serial = run_pipeline_campaign_serial(&cfg, &reg, &spec).expect("serial oracle");
        assert_eq!(r, serial);
        let par = run_pipeline_campaign(
            &CampaignConfig {
                workers: 3,
                ..cfg.clone()
            },
            &reg,
            &spec,
        )
        .expect("parallel engine");
        assert_eq!(r, par);
    }

    #[test]
    fn report_rates_and_evidence() {
        let r = PipelineCampaignReport {
            pipeline: "p".into(),
            policy: "SRRS".into(),
            fault: "transient-sm",
            replicas: 2,
            exec: "overlapped",
            stages: 3,
            fault_free_makespan: 100_000,
            e2e_deadline: 830_000,
            serial_sum_deadline: 900_000,
            bandwidth_bytes: 64 * 1024,
            trials: 10,
            not_activated: 1,
            masked: 2,
            corrected: 1,
            recovered: 4,
            detected: 2,
            undetected: 0,
            deadline_miss: 1,
            retries_attempted: 6,
            retries_failed: 2,
            no_slack: 0,
            frames: 1,
            quarantined: 0,
            limp_home_miss: 0,
            degraded_frames: 0,
            degraded_makespan_sum: 0,
            frames_to_diagnosis_sum: 0,
            limp_deadline_miss: 0,
        };
        assert_eq!(r.recovery_rate(), Some(4.0 / 6.0));
        assert!((r.deadline_miss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(r.coverage(), Some(1.0));
        let e = r.evidence();
        assert_eq!(e.activated, 9);
        assert_eq!(e.recovered, 4);
        assert_eq!(e.coverage(), Some(1.0));
        assert_eq!(e.fail_operational_rate(), Some(5.0 / 7.0));
    }
}
