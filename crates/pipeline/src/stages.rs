//! Consuming stage programs: pipeline stages that compute over the voted
//! outputs of their upstream stages.
//!
//! Each stage derives its device inputs from the upstream words **on the
//! host** (exact integer derivations, mirrored bit-for-bit in the CPU
//! reference) and offloads the real computation — Rodinia detection and
//! planning kernels, plus a raw fusion kernel — to the GPU. This is the
//! DCLS dataflow shape: the lockstep host votes each stage's outputs, then
//! marshals them into the next stage's redundant upload.

use higpu_rodinia::bfs::Bfs;
use higpu_rodinia::data;
use higpu_rodinia::nn::Nn;
use higpu_rodinia::pathfinder::Pathfinder;
use higpu_sim::builder::KernelBuilder;
use higpu_sim::isa::CmpOp;
use higpu_sim::kernel::Dim3;
use higpu_sim::program::Program;
use higpu_workloads::{
    f32s_to_words, GpuSession, SParam, SessionError, StageInputs, StageProgram, Tolerance,
};
use std::sync::Arc;

/// Flattens upstream outputs into one word stream; an isolated source
/// stage (no deps) yields an empty stream and derivations fall back to
/// constants.
fn concat(inputs: StageInputs<'_>) -> Vec<u32> {
    inputs.iter().flat_map(|s| s.iter().copied()).collect()
}

/// `words[i % len]`, or `fallback` for an empty stream.
fn cycle_word(words: &[u32], i: usize, fallback: u32) -> u32 {
    if words.is_empty() {
        fallback
    } else {
        words[i % words.len()]
    }
}

/// Region-growing detection over upstream data: upstream words seed a
/// multi-source frontier on a fixed sensor-topology CSR graph, and the
/// Rodinia BFS kernels grow the detected regions level by level — each
/// output word is the hop distance from the nearest seed (`u32::MAX` =
/// unreached). Exact integer output.
#[derive(Debug, Clone)]
pub struct BfsDetect {
    /// Graph nodes (detection cells).
    pub nodes: u32,
    /// Extra random out-edges per node beyond the spanning tree.
    pub extra_degree: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl BfsDetect {
    /// Seed mask derived from the upstream words: cell *i* is a seed when
    /// bit 4 of its word is set; the word-sum cell is always seeded so a
    /// frontier exists for any input.
    fn seeds(&self, upstream: &[u32]) -> Vec<bool> {
        let n = self.nodes as usize;
        let mut active = vec![false; n];
        for (i, a) in active.iter_mut().enumerate() {
            *a = (cycle_word(upstream, i, 0) >> 4) & 1 == 1;
        }
        let sum = upstream.iter().fold(0u32, |acc, &w| acc.wrapping_add(w));
        active[(sum as usize) % n] = true;
        active
    }

    fn graph(&self) -> (Vec<u32>, Vec<u32>) {
        data::csr_graph(0xde7ec7, self.nodes as usize, self.extra_degree as usize)
    }

    fn kernels(&self) -> (Arc<Program>, Arc<Program>) {
        let bfs = Bfs {
            nodes: self.nodes,
            extra_degree: self.extra_degree,
            threads_per_block: self.threads_per_block,
            source: 0,
        };
        (bfs.expand_kernel(), bfs.commit_kernel())
    }
}

impl StageProgram for BfsDetect {
    fn name(&self) -> &'static str {
        "bfs_detect"
    }

    fn run(
        &self,
        s: &mut dyn GpuSession,
        inputs: StageInputs<'_>,
    ) -> Result<Vec<u32>, SessionError> {
        let n = self.nodes;
        let upstream = concat(inputs);
        let seeds = self.seeds(&upstream);
        let (offsets, edges) = self.graph();
        let off_b = s.alloc_words(n + 1)?;
        let edg_b = s.alloc_words(edges.len().max(1) as u32)?;
        let fro_b = s.alloc_words(n)?;
        let vis_b = s.alloc_words(n)?;
        let cst_b = s.alloc_words(n)?;
        let upd_b = s.alloc_words(n)?;
        let flg_b = s.alloc_words(1)?;

        s.write_u32(off_b, &offsets)?;
        s.write_u32(edg_b, &edges)?;
        let frontier: Vec<u32> = seeds.iter().map(|&a| u32::from(a)).collect();
        let cost: Vec<u32> = seeds
            .iter()
            .map(|&a| if a { 0 } else { u32::MAX })
            .collect();
        s.write_u32(fro_b, &frontier)?;
        s.write_u32(vis_b, &frontier)?;
        s.write_u32(cst_b, &cost)?;
        s.write_u32(upd_b, &vec![0u32; n as usize])?;

        let (expand, commit) = self.kernels();
        let grid = Dim3::x(n.div_ceil(self.threads_per_block));
        let block = Dim3::x(self.threads_per_block);
        loop {
            s.write_u32(flg_b, &[0])?;
            s.launch(
                &expand,
                grid,
                block,
                0,
                &[
                    SParam::Buf(off_b),
                    SParam::Buf(edg_b),
                    SParam::Buf(fro_b),
                    SParam::Buf(vis_b),
                    SParam::Buf(cst_b),
                    SParam::Buf(upd_b),
                    SParam::U32(n),
                ],
            )?;
            s.sync()?;
            s.launch(
                &commit,
                grid,
                block,
                0,
                &[
                    SParam::Buf(fro_b),
                    SParam::Buf(vis_b),
                    SParam::Buf(upd_b),
                    SParam::Buf(flg_b),
                    SParam::U32(n),
                ],
            )?;
            let flag = s.read_u32(flg_b, 1)?;
            if flag[0] == 0 {
                break;
            }
        }
        s.read_u32(cst_b, n as usize)
    }

    fn reference(&self, inputs: StageInputs<'_>) -> Vec<u32> {
        let upstream = concat(inputs);
        let seeds = self.seeds(&upstream);
        let (offsets, edges) = self.graph();
        let n = self.nodes as usize;
        let mut cost = vec![u32::MAX; n];
        let mut frontier: Vec<usize> = Vec::new();
        for (i, &a) in seeds.iter().enumerate() {
            if a {
                cost[i] = 0;
                frontier.push(i);
            }
        }
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &node in &frontier {
                for e in offsets[node]..offsets[node + 1] {
                    let t = edges[e as usize] as usize;
                    if cost[t] == u32::MAX {
                        cost[t] = level;
                        next.push(t);
                    }
                }
            }
            frontier = next;
        }
        cost
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }
}

/// Planning over detection output: the hop-distance map is quantized into
/// a cost grid (`(word & 0xF) + 1`, so unreached cells are merely
/// expensive, never overflowing) and the Rodinia pathfinder DP extends the
/// cheapest path row by row — one dependent launch per row, the paper's
/// many-short-kernels shape. Exact integer output (the final DP row).
#[derive(Debug, Clone)]
pub struct PathfinderPlan {
    /// Grid columns.
    pub cols: u32,
    /// Grid rows.
    pub rows: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl PathfinderPlan {
    fn wall(&self, upstream: &[u32]) -> Vec<u32> {
        (0..(self.cols * self.rows) as usize)
            .map(|i| (cycle_word(upstream, i, 0) & 0xF) + 1)
            .collect()
    }

    fn kernel(&self) -> Arc<Program> {
        Pathfinder {
            cols: self.cols,
            rows: self.rows,
            threads_per_block: self.threads_per_block,
        }
        .kernel()
    }
}

impl StageProgram for PathfinderPlan {
    fn name(&self) -> &'static str {
        "pathfinder_plan"
    }

    fn run(
        &self,
        s: &mut dyn GpuSession,
        inputs: StageInputs<'_>,
    ) -> Result<Vec<u32>, SessionError> {
        let upstream = concat(inputs);
        let wall = self.wall(&upstream);
        let w_b = s.alloc_words(self.cols * self.rows)?;
        let a_b = s.alloc_words(self.cols)?;
        let b_b = s.alloc_words(self.cols)?;
        s.write_u32(w_b, &wall)?;
        s.write_u32(a_b, &wall[..self.cols as usize])?;
        let kernel = self.kernel();
        let grid = Dim3::x(self.cols.div_ceil(self.threads_per_block));
        let block = Dim3::x(self.threads_per_block);
        let mut src = a_b;
        let mut dst = b_b;
        for row in 1..self.rows {
            s.launch(
                &kernel,
                grid,
                block,
                0,
                &[
                    SParam::Buf(w_b),
                    SParam::Buf(src),
                    SParam::Buf(dst),
                    SParam::U32(self.cols),
                    SParam::U32(row),
                ],
            )?;
            s.sync()?;
            std::mem::swap(&mut src, &mut dst);
        }
        s.read_u32(src, self.cols as usize)
    }

    fn reference(&self, inputs: StageInputs<'_>) -> Vec<u32> {
        let upstream = concat(inputs);
        let wall = self.wall(&upstream);
        let c = self.cols as usize;
        let mut cur: Vec<u32> = wall[..c].to_vec();
        let mut next = vec![0u32; c];
        for row in 1..self.rows as usize {
            for j in 0..c {
                let l = cur[j.saturating_sub(1)];
                let m = cur[j];
                let r = cur[(j + 1).min(c - 1)];
                next[j] = wall[row * c + j] + l.min(m).min(r);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }
}

/// Two-source sensor fusion: both upstream streams are cycled to `n`
/// words and fused on the GPU as `out[i] = a[i]·3 + b[i]` (wrapping) — a
/// raw-kernel stage exercising the DAG join. Exact integer output.
#[derive(Debug, Clone)]
pub struct FuseAdd {
    /// Fused elements.
    pub n: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl FuseAdd {
    fn operands(&self, inputs: StageInputs<'_>) -> (Vec<u32>, Vec<u32>) {
        let a = inputs.first().copied().unwrap_or(&[]);
        let b = inputs.get(1).copied().unwrap_or(&[]);
        let n = self.n as usize;
        (
            (0..n).map(|i| cycle_word(a, i, 1)).collect(),
            (0..n).map(|i| cycle_word(b, i, 2)).collect(),
        )
    }

    /// The fusion kernel: `out[i] = a[i]·3 + b[i]`.
    pub fn kernel(&self) -> Arc<Program> {
        let mut b = KernelBuilder::new("fuse_add");
        let pa = b.param(0);
        let pb = b.param(1);
        let out = b.param(2);
        let n = b.param(3);
        let i = b.global_tid_x();
        let in_range = b.isetp(CmpOp::Lt, i, n);
        b.if_(in_range, |b| {
            let aa = b.addr_w(pa, i);
            let ba = b.addr_w(pb, i);
            let av = b.ldg(aa, 0);
            let bv = b.ldg(ba, 0);
            let fused = b.imad(av, 3u32, bv);
            let oa = b.addr_w(out, i);
            b.stg(oa, 0, fused);
        });
        b.build().expect("well-formed").into_shared()
    }
}

impl StageProgram for FuseAdd {
    fn name(&self) -> &'static str {
        "fuse_add"
    }

    fn run(
        &self,
        s: &mut dyn GpuSession,
        inputs: StageInputs<'_>,
    ) -> Result<Vec<u32>, SessionError> {
        let (a, b) = self.operands(inputs);
        let a_b = s.alloc_words(self.n)?;
        let b_b = s.alloc_words(self.n)?;
        let o_b = s.alloc_words(self.n)?;
        s.write_u32(a_b, &a)?;
        s.write_u32(b_b, &b)?;
        s.launch(
            &self.kernel(),
            Dim3::x(self.n.div_ceil(self.threads_per_block)),
            Dim3::x(self.threads_per_block),
            0,
            &[
                SParam::Buf(a_b),
                SParam::Buf(b_b),
                SParam::Buf(o_b),
                SParam::U32(self.n),
            ],
        )?;
        s.read_u32(o_b, self.n as usize)
    }

    fn reference(&self, inputs: StageInputs<'_>) -> Vec<u32> {
        let (a, b) = self.operands(inputs);
        a.iter()
            .zip(&b)
            .map(|(&x, &y)| x.wrapping_mul(3).wrapping_add(y))
            .collect()
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }
}

/// Object tracking over fused data: each fused word is unpacked into an
/// exact integer-derived coordinate pair, and the Rodinia `nn` distance
/// kernel scores every track hypothesis against the fixed ego position.
/// Float output under the standard approximate tolerance (the reference
/// recomputes from the same coordinates).
#[derive(Debug, Clone)]
pub struct NnTrack {
    /// Track hypotheses (records).
    pub records: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Ego latitude.
    pub target_lat: f32,
    /// Ego longitude.
    pub target_lng: f32,
}

impl NnTrack {
    fn coords(&self, upstream: &[u32]) -> (Vec<f32>, Vec<f32>) {
        let n = self.records as usize;
        let mut lat = Vec::with_capacity(n);
        let mut lng = Vec::with_capacity(n);
        for i in 0..n {
            let w = cycle_word(upstream, i, 7);
            // Small integers convert to f32 exactly on host and device.
            lat.push(((w >> 8) & 0x3F) as f32);
            lng.push((w & 0xFF) as f32);
        }
        (lat, lng)
    }

    fn kernel(&self) -> Arc<Program> {
        Nn {
            records: self.records,
            threads_per_block: self.threads_per_block,
            target_lat: self.target_lat,
            target_lng: self.target_lng,
        }
        .kernel()
    }
}

impl StageProgram for NnTrack {
    fn name(&self) -> &'static str {
        "nn_track"
    }

    fn run(
        &self,
        s: &mut dyn GpuSession,
        inputs: StageInputs<'_>,
    ) -> Result<Vec<u32>, SessionError> {
        let upstream = concat(inputs);
        let (lat, lng) = self.coords(&upstream);
        let lat_b = s.alloc_words(self.records)?;
        let lng_b = s.alloc_words(self.records)?;
        let out_b = s.alloc_words(self.records)?;
        s.write_f32(lat_b, &lat)?;
        s.write_f32(lng_b, &lng)?;
        s.launch(
            &self.kernel(),
            Dim3::x(self.records.div_ceil(self.threads_per_block)),
            Dim3::x(self.threads_per_block),
            0,
            &[
                SParam::Buf(lat_b),
                SParam::Buf(lng_b),
                SParam::Buf(out_b),
                SParam::U32(self.records),
                SParam::F32(self.target_lat),
                SParam::F32(self.target_lng),
            ],
        )?;
        s.read_u32(out_b, self.records as usize)
    }

    fn reference(&self, inputs: StageInputs<'_>) -> Vec<u32> {
        let upstream = concat(inputs);
        let (lat, lng) = self.coords(&upstream);
        let out: Vec<f32> = lat
            .iter()
            .zip(&lng)
            .map(|(&la, &lo)| {
                let dlat = la - self.target_lat;
                let dlng = lo - self.target_lng;
                dlng.mul_add(dlng, dlat * dlat).sqrt()
            })
            .collect();
        f32s_to_words(&out)
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::approx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::config::GpuConfig;
    use higpu_sim::gpu::Gpu;
    use higpu_workloads::SoloSession;

    fn solo<S: StageProgram>(stage: &S, inputs: StageInputs<'_>) -> Vec<u32> {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut s = SoloSession::new(&mut gpu);
        stage.run(&mut s, inputs).expect("stage runs")
    }

    #[test]
    fn bfs_detect_matches_reference_and_tracks_inputs() {
        let d = BfsDetect {
            nodes: 128,
            extra_degree: 2,
            threads_per_block: 64,
        };
        let in_a: Vec<u32> = (0..64u32).map(|i| i * 37).collect();
        let out = solo(&d, &[&in_a]);
        assert_eq!(out, d.reference(&[&in_a]));
        // Different upstream data seeds different regions.
        let in_b: Vec<u32> = (0..64u32).map(|i| i * 91 + 5).collect();
        let out_b = solo(&d, &[&in_b]);
        assert_eq!(out_b, d.reference(&[&in_b]));
        assert_ne!(out, out_b, "detection must depend on upstream data");
        // Empty upstream still has a seeded frontier.
        let out_e = solo(&d, &[]);
        assert_eq!(out_e, d.reference(&[]));
        assert!(out_e.contains(&0), "fallback seed exists");
    }

    #[test]
    fn pathfinder_plan_matches_reference_and_tracks_inputs() {
        let p = PathfinderPlan {
            cols: 128,
            rows: 6,
            threads_per_block: 64,
        };
        let in_a: Vec<u32> = (0..100u32).map(|i| i * 13 + 3).collect();
        let out = solo(&p, &[&in_a]);
        assert_eq!(out, p.reference(&[&in_a]));
        let in_b: Vec<u32> = vec![0xFFFF_FFFF; 100];
        assert_ne!(solo(&p, &[&in_b]), out, "plan depends on detection data");
    }

    #[test]
    fn fuse_add_joins_two_streams() {
        let f = FuseAdd {
            n: 96,
            threads_per_block: 32,
        };
        let a: Vec<u32> = (0..50u32).collect();
        let b: Vec<u32> = (0..70u32).map(|i| 1000 - i).collect();
        let out = solo(&f, &[&a, &b]);
        assert_eq!(out, f.reference(&[&a, &b]));
        assert_eq!(out[1], 3 + 999, "a[1]·3 + b[1]");
        assert_eq!(out.len(), 96);
    }

    #[test]
    fn nn_track_scores_within_tolerance() {
        let t = NnTrack {
            records: 128,
            threads_per_block: 64,
            target_lat: 30.0,
            target_lng: 90.0,
        };
        let fused: Vec<u32> = (0..128u32).map(|i| i * 0x0101).collect();
        let out = solo(&t, &[&fused]);
        higpu_workloads::verify_words(&out, &t.reference(&[&fused]), t.tolerance())
            .expect("within tolerance");
    }
}
