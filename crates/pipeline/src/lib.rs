//! # higpu-pipeline — the real-time multi-kernel pipeline subsystem
//!
//! Automotive software is not single kernels but *pipelines* of them —
//! perception → detection → planning under a fault-tolerant time interval.
//! This crate adds that execution layer on top of the NMR protocol:
//!
//! * [`graph`] — [`Pipeline`]: a DAG of named stages
//!   ([`higpu_workloads::StageProgram`]s) with buffers flowing along the
//!   edges, plus the [`PipelineRegistry`] naming them;
//! * [`stages`] — consuming stage programs built from the Rodinia
//!   detection/planning kernels and raw fusion kernels;
//! * [`builtin`] — the registered pipelines: [`builtin::ad_pipeline`]
//!   (SRAD perception → BFS detection → pathfinder planning) and
//!   [`builtin::sensor_fusion`] (camera + radar → fuse → track);
//! * [`exec`] — per-stage deadline budgets and the **critical-path**
//!   end-to-end FTTI ([`higpu_core::ftti::PipelineFtti`]), redundant stage
//!   execution, a per-stage timeline with DCLS byte accounting, and
//!   bounded **in-FTTI re-execution recovery**: a detected stage is
//!   retried with fresh replicas while the path-aware slack allows —
//!   fail-operational ([`exec::StageStatus::Recovered`]) instead of
//!   fail-stop. Two executors ([`exec::ExecMode`]): the default
//!   *overlapped* one runs independent DAG branches concurrently on
//!   disjoint SM partitions (`overlap`, the RTGPU-style model); the
//!   *serial* one-stage-at-a-time executor stays as the reference oracle;
//! * [`limp`] — the multi-frame **limp-home** driver: a fail-stopped
//!   frame escalates to permanent-fault diagnosis (per-SM BIST sweep), SM
//!   quarantine, and degraded-mode re-planning
//!   ([`exec::plan_degraded`]) so subsequent frames stay
//!   fail-operational on the shrunken device
//!   ([`limp::FrameStatus::Degraded`]); the mission fail-stops only when
//!   the re-planned frame is unschedulable;
//! * [`campaign`] — fault campaigns over whole frames, classifying
//!   [`campaign::PipelineTrialOutcome::Recovered`] vs `Detected` (the
//!   fail-operational/fail-stop frontier observable), with end-to-end
//!   deadline-miss accounting; parallel engine bit-identical to the
//!   serial reference.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builtin;
pub mod campaign;
pub mod exec;
pub mod graph;
pub mod limp;
mod overlap;
pub mod stages;
pub mod trace_export;

pub use builtin::{ad_pipeline, full_pipeline_registry, register_all, sensor_fusion};
pub use campaign::{
    run_pipeline_campaign, run_pipeline_campaign_serial, PipelineCampaignReport,
    PipelineCampaignSpec, PipelineTrialOutcome,
};
pub use exec::{
    plan, plan_degraded, plan_on, run_pipeline, ExecMode, FailReason, FrameOptions, PipelinePlan,
    PipelineRun, RecoveryPolicy, StageStatus, StageTiming,
};
pub use graph::{Pipeline, PipelineRegistry, Stage};
pub use limp::{run_limp_home, FrameRecord, FrameStatus, LimpHomeReport};
