//! Figure 3: measurement-based kernel classification
//! (short / heavy / friendly) and the per-kernel policy recommendation of
//! Sec. IV-D.

use higpu_core::classify::{classify, profile, KernelCategory};
use higpu_rodinia::harness::{Benchmark, SessionError, SoloSession};
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;
use std::collections::BTreeMap;

/// Classification of one kernel of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Kernel (program) name.
    pub kernel: String,
    /// Mean per-launch execution (cycles) — the classification input.
    pub mean_exec_cycles: u64,
    /// Longest single execution observed (cycles).
    pub max_exec_cycles: u64,
    /// Fraction of the GPU's concurrent block capacity demanded.
    pub demand_fraction: f64,
    /// Measured category.
    pub category: KernelCategory,
    /// Launches of this kernel observed in the solo run.
    pub launches: u32,
}

/// Profiles every distinct kernel of `bench` from one solo run and
/// classifies it.
///
/// # Errors
///
/// Propagates [`SessionError`] from the run.
pub fn classify_benchmark(
    cfg: &GpuConfig,
    bench: &dyn Benchmark,
) -> Result<Vec<Fig3Row>, SessionError> {
    let mut gpu = Gpu::new(cfg.clone());
    {
        let mut session = SoloSession::new(&mut gpu);
        bench.run(&mut session)?;
    }
    // program name → (total exec, max exec, blocks, footprint, launches)
    let mut per_kernel: BTreeMap<String, (u64, u64, u32, higpu_sim::kernel::BlockFootprint, u32)> =
        BTreeMap::new();
    for k in &gpu.trace().kernels {
        let exec = k.execution_cycles().unwrap_or(0);
        let e = per_kernel
            .entry(k.program.clone())
            .or_insert((0, 0, k.blocks, k.footprint, 0));
        e.0 += exec;
        e.1 = e.1.max(exec);
        e.2 = e.2.max(k.blocks);
        e.4 += 1;
    }
    Ok(per_kernel
        .into_iter()
        .map(|(kernel, (total, max_exec, blocks, fp, launches))| {
            let mean = total / u64::from(launches.max(1));
            let p = profile(cfg, &fp, blocks, mean);
            Fig3Row {
                benchmark: bench.name().to_string(),
                kernel,
                mean_exec_cycles: mean,
                max_exec_cycles: max_exec,
                demand_fraction: p.demand_fraction(),
                category: classify(&p, cfg.dispatch_gap_cycles),
                launches,
            }
        })
        .collect())
}

/// The policy the paper would deploy for this benchmark: SRRS unless every
/// dominant kernel is friendly (Sec. IV-D applies the per-kernel
/// recommendation; for the benchmark granularity we follow the
/// longest-running kernel).
pub fn recommended_policy(rows: &[Fig3Row]) -> higpu_core::policy::PolicyKind {
    rows.iter()
        .max_by_key(|r| r.max_exec_cycles)
        .map(|r| r.category.recommended_policy())
        .unwrap_or(higpu_core::policy::PolicyKind::Srrs)
}

/// Renders classification rows.
pub fn to_table(rows: &[Fig3Row]) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "benchmark".to_string(),
        "kernel".to_string(),
        "category".to_string(),
        "mean_exec_cycles".to_string(),
        "demand".to_string(),
        "launches".to_string(),
        "policy".to_string(),
    ]];
    for r in rows {
        out.push(vec![
            r.benchmark.clone(),
            r.kernel.clone(),
            r.category.to_string(),
            r.mean_exec_cycles.to_string(),
            format!("{:.2}", r.demand_fraction),
            r.launches.to_string(),
            r.category.recommended_policy().label().to_string(),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_rodinia::myocyte::Myocyte;
    use higpu_rodinia::nn::Nn;

    #[test]
    fn nn_is_short() {
        let cfg = GpuConfig::paper_6sm();
        let rows = classify_benchmark(
            &cfg,
            &Nn {
                records: 2048,
                ..Default::default()
            },
        )
        .expect("runs");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].category, KernelCategory::Short, "{rows:?}");
    }

    #[test]
    fn myocyte_is_friendly_and_long() {
        let cfg = GpuConfig::paper_6sm();
        let rows = classify_benchmark(&cfg, &Myocyte::default()).expect("runs");
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].category,
            KernelCategory::Friendly,
            "few long blocks: {rows:?}"
        );
        assert!(rows[0].mean_exec_cycles > cfg.dispatch_gap_cycles);
    }
}
