//! The campaign matrix: fault-injection campaigns swept over
//! {workload × fault model × scheduler policy × replica count}, resolved
//! through the unified workload registry — the paper's coverage argument
//! (Fig. 3/4 territory) extended from one synthetic two-replica workload to
//! the full Rodinia suite at N ∈ {2, 3, …} replicas, with the
//! coverage-vs-cost *frontier* (detected/corrected/undetected vs makespan
//! overhead) summarized per (policy, replicas).

use crate::campaign_perf::ThroughputResult;
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::{
    run_campaign_selected, run_campaign_selected_serial, CampaignConfig, CampaignError,
    CampaignReport, CampaignSpec, FaultSpec,
};
use higpu_pipeline::campaign::{
    run_pipeline_campaign, run_pipeline_campaign_serial, PipelineCampaignError,
    PipelineCampaignReport, PipelineCampaignSpec,
};
use higpu_pipeline::{full_pipeline_registry, ExecMode};
use higpu_sim::gpu::Gpu;
use higpu_workloads::runner::run_solo;
use higpu_workloads::{Scale, WorkloadRegistry};

/// The registry every sweep resolves workloads from: the synthetic
/// workloads plus all Rodinia benchmarks.
pub fn full_registry() -> WorkloadRegistry {
    let mut reg = WorkloadRegistry::new();
    higpu_workloads::synthetic::register(&mut reg);
    higpu_rodinia::register_all(&mut reg);
    reg
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Injection trials per (workload, policy, fault, replicas) cell.
    pub trials: u32,
    /// Campaign seed (each cell is fully reproducible).
    pub seed: u64,
    /// Workload names to sweep; empty = every registered workload.
    pub workloads: Vec<String>,
    /// Scheduler policies to sweep. At each replica count a policy is
    /// realized through [`PolicyKind::for_replicas`]: HALF generalizes to
    /// SLICE above two replicas, the uncontrolled baseline (two-replica
    /// only) is skipped, duplicates are deduplicated.
    pub policies: Vec<PolicyKind>,
    /// Fault families to sweep.
    pub faults: Vec<FaultSpec>,
    /// Pipeline names to sweep over the same {fault × policy × replicas}
    /// axes ([`higpu_pipeline::full_pipeline_registry`] names; empty = no
    /// pipeline cells). Scheduler-misroute faults classify through the
    /// inter-stage BIST + diversity monitor, exactly like workload cells.
    pub pipelines: Vec<String>,
    /// Trials per pipeline cell (`None` = [`MatrixConfig::trials`]).
    /// Transient faults activate in only a fraction of frames (the window
    /// is small against a whole frame), so demonstrating in-FTTI recovery
    /// in the artifact wants a few more trials than the workload cells.
    pub pipeline_trials: Option<u32>,
    /// Frame executors to sweep per pipeline cell. The default runs both,
    /// so every cell pair quantifies the serial-vs-overlapped makespan
    /// speedup ([`MatrixResult::pipeline_speedups`]).
    pub pipeline_exec: Vec<ExecMode>,
    /// Replica counts to sweep (the NMR axis; 2 = the paper's DCLS).
    pub replica_counts: Vec<u8>,
    /// Input scale built per workload.
    pub scale: Scale,
    /// Worker threads per campaign (0 = auto; see
    /// [`CampaignConfig::resolved_workers`]).
    pub workers: usize,
    /// Also run the serial reference engine per cell and assert the
    /// parallel report bit-identical (slower; the determinism fence).
    pub check_serial: bool,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            trials: 6,
            seed: 0x0DD5EED,
            workloads: Vec::new(),
            policies: PolicyKind::all().to_vec(),
            faults: vec![FaultSpec::Transient { duration: 400 }, FaultSpec::Permanent],
            pipelines: Vec::new(),
            pipeline_trials: None,
            pipeline_exec: vec![ExecMode::Overlapped, ExecMode::Serial],
            replica_counts: vec![2, 3],
            scale: Scale::Campaign,
            workers: 0,
            check_serial: false,
        }
    }
}

/// One (policy, replicas) aggregate of the coverage-vs-cost frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Cells aggregated.
    pub cells: u32,
    /// Summed detected trials.
    pub detected: u32,
    /// Summed corrected trials.
    pub corrected: u32,
    /// Summed undetected failures.
    pub undetected: u32,
    /// Mean redundant fault-free makespan over the workloads' solo
    /// makespans (the cost of the redundancy level; ≥ replicas for
    /// serializing policies, < replicas for concurrent ones).
    pub mean_makespan_overhead: f64,
}

/// The serial-vs-overlapped comparison of one pipeline cell pair: what the
/// concurrent frame executor buys at equal redundancy.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpeedup {
    /// Pipeline name.
    pub pipeline: String,
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Fault-free frame makespan under the serial executor.
    pub serial_makespan: u64,
    /// Fault-free frame makespan under the overlapped executor.
    pub overlapped_makespan: u64,
    /// The critical-path end-to-end FTTI.
    pub critical_path_ftti: u64,
    /// The pre-concurrency per-stage-sum FTTI.
    pub serial_sum_ftti: u64,
}

impl PipelineSpeedup {
    /// Serial over overlapped makespan (> 1 when overlap wins).
    pub fn makespan_speedup(&self) -> f64 {
        if self.overlapped_makespan == 0 {
            0.0
        } else {
            self.serial_makespan as f64 / self.overlapped_makespan as f64
        }
    }

    /// Serial-sum over critical-path FTTI (> 1 when the DAG has parallel
    /// branches).
    pub fn ftti_tightening(&self) -> f64 {
        if self.critical_path_ftti == 0 {
            0.0
        } else {
            self.serial_sum_ftti as f64 / self.critical_path_ftti as f64
        }
    }
}

/// One (pipeline, policy, replicas, exec) aggregate of the
/// fail-operational frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineFrontierPoint {
    /// Pipeline name.
    pub pipeline: String,
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Frame executor label.
    pub exec: &'static str,
    /// Cells aggregated.
    pub cells: u32,
    /// Summed trials.
    pub trials: u32,
    /// Summed vote-corrected frames.
    pub corrected: u32,
    /// Summed re-execution-recovered frames (fail-operational).
    pub recovered: u32,
    /// Summed fail-stop frames.
    pub detected: u32,
    /// Summed undetected failures.
    pub undetected: u32,
    /// Summed end-to-end deadline misses.
    pub deadline_miss: u32,
}

impl PipelineFrontierPoint {
    /// Recovered frames over all frames the mechanism acted on.
    pub fn recovery_rate(&self) -> Option<f64> {
        let acted = self.recovered + self.detected;
        if acted == 0 {
            None
        } else {
            Some(f64::from(self.recovered) / f64::from(acted))
        }
    }
}

/// Results of one sweep.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Trials per cell.
    pub trials: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Scale label (`campaign` / `full`).
    pub scale: &'static str,
    /// Replica counts swept.
    pub replica_counts: Vec<u8>,
    /// Fault-free **solo** (non-redundant) makespan per swept workload —
    /// the denominator of every cell's makespan overhead.
    pub solo_makespans: Vec<(String, u64)>,
    /// One report per (workload, replicas, policy, fault) cell, in sweep
    /// order.
    pub reports: Vec<CampaignReport>,
    /// One report per (pipeline, replicas, policy, fault) cell, in sweep
    /// order (empty unless [`MatrixConfig::pipelines`] named any).
    pub pipeline_reports: Vec<PipelineCampaignReport>,
}

impl MatrixResult {
    /// Total undetected failures across cells whose policy guarantees
    /// diversity (the paper's ASIL-D claim requires this to be 0 — at
    /// every replica count).
    pub fn undetected_under_diverse_policies(&self) -> u32 {
        let diverse_labels: Vec<&str> = PolicyKind::all_extended()
            .into_iter()
            .filter(|p| p.guarantees_diversity())
            .map(PolicyKind::label)
            .collect();
        self.reports
            .iter()
            .filter(|r| diverse_labels.contains(&r.policy.as_str()))
            .map(|r| r.undetected)
            .sum()
    }

    /// Total corrected trials across all cells (non-zero only when the
    /// sweep includes N ≥ 3 replica counts).
    pub fn total_corrected(&self) -> u32 {
        self.reports.iter().map(|r| r.corrected).sum()
    }

    /// Total pipeline frames recovered by in-FTTI re-execution.
    pub fn total_recovered(&self) -> u32 {
        self.pipeline_reports.iter().map(|r| r.recovered).sum()
    }

    /// Undetected failures across pipeline cells under diverse policies
    /// (the fail-operational claim also requires 0 here).
    pub fn pipeline_undetected_under_diverse_policies(&self) -> u32 {
        let diverse_labels: Vec<&str> = PolicyKind::all_extended()
            .into_iter()
            .filter(|p| p.guarantees_diversity())
            .map(PolicyKind::label)
            .collect();
        self.pipeline_reports
            .iter()
            .filter(|r| diverse_labels.contains(&r.policy.as_str()))
            .map(|r| r.undetected)
            .sum()
    }

    /// The solo makespan of `workload`, if it was swept.
    fn solo_makespan(&self, workload: &str) -> Option<u64> {
        self.solo_makespans
            .iter()
            .find(|(n, _)| n == workload)
            .map(|&(_, m)| m)
    }

    /// A cell's makespan overhead: redundant fault-free makespan over the
    /// workload's solo makespan.
    pub fn makespan_overhead(&self, r: &CampaignReport) -> Option<f64> {
        let solo = self.solo_makespan(&r.workload)?;
        (solo > 0).then(|| r.fault_free_makespan as f64 / solo as f64)
    }

    /// The coverage-vs-cost frontier: per (policy, replicas), summed
    /// outcome counts and the mean makespan overhead — the quantitative
    /// form of the ASIL-decomposition trade (more replicas buy correction,
    /// at redundant-makespan cost).
    pub fn frontier(&self) -> Vec<FrontierPoint> {
        let mut points: Vec<FrontierPoint> = Vec::new();
        for r in &self.reports {
            let overhead = self.makespan_overhead(r).unwrap_or(0.0);
            match points
                .iter_mut()
                .find(|p| p.policy == r.policy && p.replicas == r.replicas)
            {
                Some(p) => {
                    p.cells += 1;
                    p.detected += r.detected;
                    p.corrected += r.corrected;
                    p.undetected += r.undetected;
                    p.mean_makespan_overhead += overhead;
                }
                None => points.push(FrontierPoint {
                    policy: r.policy.clone(),
                    replicas: r.replicas,
                    cells: 1,
                    detected: r.detected,
                    corrected: r.corrected,
                    undetected: r.undetected,
                    mean_makespan_overhead: overhead,
                }),
            }
        }
        for p in &mut points {
            p.mean_makespan_overhead /= f64::from(p.cells.max(1));
        }
        points
    }

    /// The fail-operational frontier: per (pipeline, policy, replicas,
    /// exec), summed frame outcomes with the recovery rate and end-to-end
    /// deadline-miss rate — the pipeline-axis counterpart of
    /// [`MatrixResult::frontier`].
    pub fn pipeline_frontier(&self) -> Vec<PipelineFrontierPoint> {
        let mut points: Vec<PipelineFrontierPoint> = Vec::new();
        for r in &self.pipeline_reports {
            match points.iter_mut().find(|p| {
                p.pipeline == r.pipeline
                    && p.policy == r.policy
                    && p.replicas == r.replicas
                    && p.exec == r.exec
            }) {
                Some(p) => {
                    p.cells += 1;
                    p.trials += r.trials;
                    p.corrected += r.corrected;
                    p.recovered += r.recovered;
                    p.detected += r.detected;
                    p.undetected += r.undetected;
                    p.deadline_miss += r.deadline_miss;
                }
                None => points.push(PipelineFrontierPoint {
                    pipeline: r.pipeline.clone(),
                    policy: r.policy.clone(),
                    replicas: r.replicas,
                    exec: r.exec,
                    cells: 1,
                    trials: r.trials,
                    corrected: r.corrected,
                    recovered: r.recovered,
                    detected: r.detected,
                    undetected: r.undetected,
                    deadline_miss: r.deadline_miss,
                }),
            }
        }
        points
    }

    /// The serial-vs-overlapped comparison per (pipeline, policy,
    /// replicas) cell pair — what concurrent-branch execution buys: the
    /// fault-free makespan speedup and the critical-path-vs-sum FTTI
    /// tightening. One entry per pair (the fault-free makespans agree
    /// across fault families, so any fault's pair carries the comparison);
    /// empty unless the sweep ran both executors.
    pub fn pipeline_speedups(&self) -> Vec<PipelineSpeedup> {
        let mut out: Vec<PipelineSpeedup> = Vec::new();
        for s in self.pipeline_reports.iter().filter(|r| r.exec == "serial") {
            if out.iter().any(|p| {
                p.pipeline == s.pipeline && p.policy == s.policy && p.replicas == s.replicas
            }) {
                continue;
            }
            let Some(o) = self.pipeline_reports.iter().find(|r| {
                r.exec == "overlapped"
                    && r.pipeline == s.pipeline
                    && r.policy == s.policy
                    && r.replicas == s.replicas
            }) else {
                continue;
            };
            out.push(PipelineSpeedup {
                pipeline: s.pipeline.clone(),
                policy: s.policy.clone(),
                replicas: s.replicas,
                serial_makespan: s.fault_free_makespan,
                overlapped_makespan: o.fault_free_makespan,
                critical_path_ftti: o.e2e_deadline,
                serial_sum_ftti: o.serial_sum_deadline,
            });
        }
        out
    }

    /// Renders the pipeline cells as rows for [`crate::table`].
    pub fn pipeline_table(&self) -> Vec<Vec<String>> {
        let mut out = vec![vec![
            "pipeline".to_string(),
            "policy".to_string(),
            "N".to_string(),
            "exec".to_string(),
            "fault".to_string(),
            "makespan".to_string(),
            "trials".to_string(),
            "inactive".to_string(),
            "masked".to_string(),
            "corrected".to_string(),
            "RECOVERED".to_string(),
            "detected".to_string(),
            "UNDETECTED".to_string(),
            "ddl-miss".to_string(),
            "recovery".to_string(),
        ]];
        for r in &self.pipeline_reports {
            out.push(vec![
                r.pipeline.clone(),
                r.policy.clone(),
                r.replicas.to_string(),
                r.exec.to_string(),
                r.fault.to_string(),
                r.fault_free_makespan.to_string(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.masked.to_string(),
                r.corrected.to_string(),
                r.recovered.to_string(),
                r.detected.to_string(),
                r.undetected.to_string(),
                r.deadline_miss.to_string(),
                r.recovery_rate()
                    .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
            ]);
        }
        out
    }

    /// Renders the matrix as rows for [`crate::table`].
    pub fn to_table(&self) -> Vec<Vec<String>> {
        let mut out = vec![vec![
            "workload".to_string(),
            "policy".to_string(),
            "N".to_string(),
            "fault".to_string(),
            "trials".to_string(),
            "inactive".to_string(),
            "masked".to_string(),
            "detected".to_string(),
            "corrected".to_string(),
            "UNDETECTED".to_string(),
            "coverage".to_string(),
            "overhead".to_string(),
        ]];
        for r in &self.reports {
            out.push(vec![
                r.workload.clone(),
                r.policy.clone(),
                r.replicas.to_string(),
                r.fault.to_string(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.masked.to_string(),
                r.detected.to_string(),
                r.corrected.to_string(),
                r.undetected.to_string(),
                r.coverage()
                    .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
                self.makespan_overhead(r)
                    .map_or("n/a".to_string(), |o| format!("{o:.2}x")),
            ]);
        }
        out
    }

    /// Renders the matrix as a JSON value: sweep metadata, one entry per
    /// cell, and the per-(policy, replicas) coverage-vs-cost frontier.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .reports
            .iter()
            .map(|r| {
                format!(
                    "{{\"workload\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"fault\": \"{}\", \"trials\": {}, \"not_activated\": {}, \
                     \"masked\": {}, \"detected\": {}, \"corrected\": {}, \
                     \"undetected\": {}, \"coverage\": {}, \
                     \"fault_free_makespan\": {}, \"makespan_overhead\": {}}}",
                    r.workload,
                    r.policy,
                    r.replicas,
                    r.fault,
                    r.trials,
                    r.not_activated,
                    r.masked,
                    r.detected,
                    r.corrected,
                    r.undetected,
                    r.coverage()
                        .map_or("null".to_string(), |c| format!("{c:.4}")),
                    r.fault_free_makespan,
                    self.makespan_overhead(r)
                        .map_or("null".to_string(), |o| format!("{o:.3}")),
                )
            })
            .collect();
        let frontier: Vec<String> = self
            .frontier()
            .iter()
            .map(|p| {
                format!(
                    "{{\"policy\": \"{}\", \"replicas\": {}, \"cells\": {}, \
                     \"detected\": {}, \"corrected\": {}, \"undetected\": {}, \
                     \"mean_makespan_overhead\": {:.3}}}",
                    p.policy,
                    p.replicas,
                    p.cells,
                    p.detected,
                    p.corrected,
                    p.undetected,
                    p.mean_makespan_overhead,
                )
            })
            .collect();
        let pipeline_cells: Vec<String> = self
            .pipeline_reports
            .iter()
            .map(|r| {
                format!(
                    "{{\"pipeline\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"exec\": \"{}\", \"fault\": \"{}\", \"stages\": {}, \"trials\": {}, \
                     \"not_activated\": {}, \"masked\": {}, \"corrected\": {}, \
                     \"recovered\": {}, \"detected\": {}, \"undetected\": {}, \
                     \"deadline_miss\": {}, \"retries_attempted\": {}, \
                     \"retries_failed\": {}, \"no_slack\": {}, \
                     \"recovery_rate\": {}, \"deadline_miss_rate\": {:.4}, \
                     \"e2e_makespan\": {}, \"critical_path_ftti\": {}, \
                     \"serial_sum_ftti\": {}, \"bandwidth_bytes\": {}}}",
                    r.pipeline,
                    r.policy,
                    r.replicas,
                    r.exec,
                    r.fault,
                    r.stages,
                    r.trials,
                    r.not_activated,
                    r.masked,
                    r.corrected,
                    r.recovered,
                    r.detected,
                    r.undetected,
                    r.deadline_miss,
                    r.retries_attempted,
                    r.retries_failed,
                    r.no_slack,
                    r.recovery_rate()
                        .map_or("null".to_string(), |c| format!("{c:.4}")),
                    r.deadline_miss_rate(),
                    r.fault_free_makespan,
                    r.e2e_deadline,
                    r.serial_sum_deadline,
                    r.bandwidth_bytes,
                )
            })
            .collect();
        let pipeline_speedups: Vec<String> = self
            .pipeline_speedups()
            .iter()
            .map(|s| {
                format!(
                    "{{\"pipeline\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"serial_makespan\": {}, \
                     \"overlapped_makespan\": {}, \"makespan_speedup\": {:.3}, \
                     \"critical_path_ftti\": {}, \"serial_sum_ftti\": {}, \
                     \"ftti_tightening\": {:.3}}}",
                    s.pipeline,
                    s.policy,
                    s.replicas,
                    s.serial_makespan,
                    s.overlapped_makespan,
                    s.makespan_speedup(),
                    s.critical_path_ftti,
                    s.serial_sum_ftti,
                    s.ftti_tightening(),
                )
            })
            .collect();
        let pipeline_frontier: Vec<String> = self
            .pipeline_frontier()
            .iter()
            .map(|p| {
                format!(
                    "{{\"pipeline\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"exec\": \"{}\", \
                     \"cells\": {}, \"trials\": {}, \"corrected\": {}, \"recovered\": {}, \
                     \"detected\": {}, \"undetected\": {}, \"deadline_miss\": {}, \
                     \"recovery_rate\": {}}}",
                    p.pipeline,
                    p.policy,
                    p.replicas,
                    p.exec,
                    p.cells,
                    p.trials,
                    p.corrected,
                    p.recovered,
                    p.detected,
                    p.undetected,
                    p.deadline_miss,
                    p.recovery_rate()
                        .map_or("null".to_string(), |c| format!("{c:.4}")),
                )
            })
            .collect();
        let replica_counts: Vec<String> = self.replica_counts.iter().map(u8::to_string).collect();
        format!(
            "{{\n    \"trials_per_cell\": {},\n    \"seed\": {},\n    \"scale\": \"{}\",\n    \
             \"replica_counts\": [{}],\n    \
             \"undetected_under_diverse_policies\": {},\n    \
             \"total_corrected\": {},\n    \"cells\": [\n      {}\n    ],\n    \
             \"frontier\": [\n      {}\n    ],\n    \
             \"pipelines\": {{\n      \
             \"total_recovered\": {},\n      \
             \"undetected_under_diverse_policies\": {},\n      \
             \"cells\": [\n        {}\n      ],\n      \
             \"speedups\": [\n        {}\n      ],\n      \
             \"frontier\": [\n        {}\n      ]\n    }}\n  }}",
            self.trials,
            self.seed,
            self.scale,
            replica_counts.join(", "),
            self.undetected_under_diverse_policies(),
            self.total_corrected(),
            cells.join(",\n      "),
            frontier.join(",\n      "),
            self.total_recovered(),
            self.pipeline_undetected_under_diverse_policies(),
            pipeline_cells.join(",\n        "),
            pipeline_speedups.join(",\n        "),
            pipeline_frontier.join(",\n        "),
        )
    }
}

/// Runs the sweep: one parallel campaign per (workload, replicas, policy,
/// fault) cell, all resolved through `reg`. Policies are realized per
/// replica count via [`PolicyKind::for_replicas`] (HALF → SLICE above two
/// replicas; the uncontrolled baseline only at two), then deduplicated.
///
/// # Errors
///
/// [`CampaignError::UnknownWorkload`] when `cfg.workloads` names an
/// unregistered workload; otherwise propagates campaign errors.
///
/// # Panics
///
/// With `cfg.check_serial`, panics if any parallel report differs from the
/// serial reference — a determinism bug, not a measurement.
pub fn run_matrix(
    reg: &WorkloadRegistry,
    cfg: &MatrixConfig,
) -> Result<MatrixResult, CampaignError> {
    let names: Vec<String> = if cfg.workloads.is_empty() {
        reg.names().iter().map(|n| n.to_string()).collect()
    } else {
        cfg.workloads.clone()
    };
    let campaign = CampaignConfig {
        trials: cfg.trials,
        seed: cfg.seed,
        workers: cfg.workers,
        ..CampaignConfig::default()
    };
    // Solo (non-redundant) fault-free makespan per workload: the cost
    // baseline every redundant cell's overhead is measured against.
    let mut solo_makespans = Vec::with_capacity(names.len());
    for name in &names {
        let workload = reg
            .build(name, cfg.scale)
            .ok_or_else(|| CampaignError::UnknownWorkload(name.clone()))?;
        let mut gpu = Gpu::new(campaign.gpu.clone());
        run_solo(&mut gpu, &*workload).map_err(|e| {
            CampaignError::Redundancy(match e {
                higpu_workloads::SessionError::Sim(err) => {
                    higpu_core::redundancy::RedundancyError::Sim(err)
                }
                higpu_workloads::SessionError::Redundancy(err) => err,
                // Solo sessions have one replica; mismatches cannot occur.
                higpu_workloads::SessionError::ReplicaMismatch { .. } => {
                    unreachable!("solo runs cannot mismatch")
                }
            })
        })?;
        solo_makespans.push((name.clone(), gpu.trace().makespan().unwrap_or(0)));
    }
    let mut reports = Vec::with_capacity(
        names.len() * cfg.replica_counts.len() * cfg.policies.len() * cfg.faults.len(),
    );
    for name in &names {
        for &replicas in &cfg.replica_counts {
            let mut realized: Vec<PolicyKind> = Vec::new();
            for policy in &cfg.policies {
                let Some(p) = policy.for_replicas(replicas) else {
                    continue; // e.g. the uncontrolled baseline above N=2
                };
                if !realized.contains(&p) {
                    realized.push(p); // HALF and SLICE may coincide at N>2
                }
            }
            for &policy in &realized {
                for &fault in &cfg.faults {
                    let spec = CampaignSpec {
                        workload: name.clone(),
                        scale: cfg.scale,
                        policy,
                        fault,
                        replicas,
                    };
                    let report = run_campaign_selected(&campaign, reg, &spec)?;
                    if cfg.check_serial {
                        let serial = run_campaign_selected_serial(&campaign, reg, &spec)?;
                        assert_eq!(
                            report, serial,
                            "parallel report must be bit-identical to the serial reference \
                             for {name} under {policy:?}/{fault:?} at {replicas} replicas"
                        );
                    }
                    reports.push(report);
                }
            }
        }
    }
    let mut pipeline_reports = Vec::new();
    if !cfg.pipelines.is_empty() {
        let preg = full_pipeline_registry();
        let campaign = CampaignConfig {
            trials: cfg.pipeline_trials.unwrap_or(cfg.trials),
            ..campaign
        };
        for name in &cfg.pipelines {
            for &replicas in &cfg.replica_counts {
                let mut realized: Vec<PolicyKind> = Vec::new();
                for policy in &cfg.policies {
                    let Some(p) = policy.for_replicas(replicas) else {
                        continue;
                    };
                    if !realized.contains(&p) {
                        realized.push(p);
                    }
                }
                for &policy in &realized {
                    for &exec in &cfg.pipeline_exec {
                        for &fault in &cfg.faults {
                            let spec = PipelineCampaignSpec {
                                pipeline: name.clone(),
                                scale: cfg.scale,
                                policy,
                                fault,
                                replicas,
                                recovery: higpu_pipeline::RecoveryPolicy::default(),
                                exec,
                            };
                            let report = run_pipeline_campaign(&campaign, &preg, &spec)
                                .map_err(pipeline_error_to_campaign)?;
                            if cfg.check_serial {
                                let serial = run_pipeline_campaign_serial(&campaign, &preg, &spec)
                                    .map_err(pipeline_error_to_campaign)?;
                                assert_eq!(
                                    report,
                                    serial,
                                    "parallel pipeline report must be bit-identical to the \
                                     serial reference for {name} under {policy:?}/{fault:?} at \
                                     {replicas} replicas ({})",
                                    exec.label()
                                );
                            }
                            pipeline_reports.push(report);
                        }
                    }
                }
            }
        }
    }
    Ok(MatrixResult {
        trials: cfg.trials,
        seed: cfg.seed,
        scale: cfg.scale.label(),
        replica_counts: cfg.replica_counts.clone(),
        solo_makespans,
        reports,
        pipeline_reports,
    })
}

/// Surfaces a pipeline-campaign error through the matrix's error type
/// (unknown pipelines map onto the unknown-workload variant; device and
/// protocol errors pass through).
fn pipeline_error_to_campaign(e: PipelineCampaignError) -> CampaignError {
    match e {
        PipelineCampaignError::UnknownPipeline(name) => CampaignError::UnknownWorkload(name),
        PipelineCampaignError::Campaign(e) => e,
        PipelineCampaignError::Pipeline(p) => match p {
            higpu_pipeline::exec::PipelineError::Session(higpu_workloads::SessionError::Sim(
                err,
            )) => CampaignError::Redundancy(higpu_core::redundancy::RedundancyError::Sim(err)),
            higpu_pipeline::exec::PipelineError::Session(
                higpu_workloads::SessionError::Redundancy(err),
            ) => CampaignError::Redundancy(err),
            other => CampaignError::Execution(format!("pipeline: {other}")),
        },
    }
}

/// Renders the combined `BENCH_campaign.json` document: engine throughput
/// plus the campaign matrix (cells and coverage-vs-cost frontier).
pub fn bench_document(throughput: &ThroughputResult, matrix: &MatrixResult) -> String {
    throughput.to_json_with_extra(&[("matrix", &matrix.to_json())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_sweeps_replicas_and_renders() {
        let reg = full_registry();
        assert!(reg.len() >= 17, "synthetic + 16 Rodinia");
        let cfg = MatrixConfig {
            trials: 2,
            workloads: vec!["iterated_fma".into(), "nn".into()],
            policies: vec![PolicyKind::Srrs, PolicyKind::Half],
            faults: vec![FaultSpec::Permanent],
            check_serial: true,
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(
            m.reports.len(),
            8,
            "2 workloads x (2 policies @ N=2 + {{SRRS, SLICE}} @ N=3) x 1 fault"
        );
        assert_eq!(m.undetected_under_diverse_policies(), 0);
        assert!(
            m.total_corrected() > 0,
            "TMR cells must outvote some faults: {:?}",
            m.reports
        );
        // Two-replica cells never correct.
        for r in m.reports.iter().filter(|r| r.replicas == 2) {
            assert_eq!(r.corrected, 0, "{r:?}");
        }
        let table = m.to_table();
        assert_eq!(table.len(), 9, "header + 8 rows");
        let json = m.to_json();
        assert!(json.contains("\"workload\": \"nn\""));
        assert!(json.contains("\"replicas\": 3"));
        assert!(json.contains("\"frontier\""));
        assert!(json.contains("\"policy\": \"SLICE\""));
        // Frontier points exist for every realized (policy, replicas).
        let frontier = m.frontier();
        assert!(frontier
            .iter()
            .any(|p| p.policy == "SRRS" && p.replicas == 3 && p.mean_makespan_overhead > 2.0));
        // Costs rise with the replica count under the serializing policy.
        let srrs2 = frontier
            .iter()
            .find(|p| p.policy == "SRRS" && p.replicas == 2)
            .expect("srrs@2");
        let srrs3 = frontier
            .iter()
            .find(|p| p.policy == "SRRS" && p.replicas == 3)
            .expect("srrs@3");
        assert!(
            srrs3.mean_makespan_overhead > srrs2.mean_makespan_overhead,
            "a third serialized replica must cost makespan: {srrs2:?} vs {srrs3:?}"
        );
    }

    #[test]
    fn pipeline_axis_sweeps_exec_modes_and_renders() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 3,
            workloads: vec!["iterated_fma".into()],
            policies: vec![PolicyKind::Srrs],
            faults: vec![
                FaultSpec::Transient { duration: 400 },
                FaultSpec::Misroute, // classified via the inter-stage BIST
            ],
            pipelines: vec!["sensor_fusion".into()],
            replica_counts: vec![2],
            check_serial: true,
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(m.reports.len(), 2, "workload cells keep misroute");
        assert_eq!(
            m.pipeline_reports.len(),
            4,
            "1 pipeline x 1 policy x 1 replica count x 2 faults x 2 executors"
        );
        for r in &m.pipeline_reports {
            assert_eq!(r.pipeline, "sensor_fusion");
            assert_eq!(r.policy, "SRRS");
            assert_eq!(r.stages, 4);
            assert!(r.bandwidth_bytes > 0);
            if r.exec == "overlapped" {
                assert!(
                    r.e2e_deadline < r.serial_sum_deadline,
                    "the DAG join puts the critical path strictly below the sum: {r:?}"
                );
            } else {
                assert_eq!(
                    r.e2e_deadline, r.serial_sum_deadline,
                    "serial cells are enforced against (and report) the sum: {r:?}"
                );
            }
            assert_eq!(
                r.trials,
                r.not_activated + r.masked + r.corrected + r.recovered + r.detected + r.undetected
            );
        }
        assert_eq!(m.pipeline_undetected_under_diverse_policies(), 0);
        let table = m.pipeline_table();
        assert_eq!(table.len(), 5, "header + 4 rows");
        let json = m.to_json();
        assert!(json.contains("\"pipelines\""));
        assert!(json.contains("\"pipeline\": \"sensor_fusion\""));
        assert!(json.contains("\"recovery_rate\""));
        assert!(json.contains("\"deadline_miss_rate\""));
        assert!(json.contains("\"critical_path_ftti\""));
        assert!(json.contains("\"exec\": \"overlapped\""));
        assert!(json.contains("\"makespan_speedup\""));
        let frontier = m.pipeline_frontier();
        assert_eq!(frontier.len(), 2, "one point per executor");
        assert!(frontier.iter().all(|p| p.trials == 6));
        // The serial-vs-overlapped comparison exists per fault and shows
        // overlap strictly winning on makespan and FTTI.
        let speedups = m.pipeline_speedups();
        assert_eq!(speedups.len(), 1, "one pair per (pipeline, policy, N)");
        for s in &speedups {
            assert!(
                s.serial_makespan > s.overlapped_makespan,
                "overlap must strictly shrink the frame: {s:?}"
            );
            assert!(s.makespan_speedup() > 1.0);
            assert!(s.ftti_tightening() > 1.0);
        }
    }

    #[test]
    fn duplicate_realized_policies_are_swept_once() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["iterated_fma".into()],
            policies: vec![PolicyKind::Half, PolicyKind::Slice],
            faults: vec![FaultSpec::Permanent],
            replica_counts: vec![3],
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(
            m.reports.len(),
            1,
            "HALF and SLICE both realize as SLICE at N=3: {:?}",
            m.reports
        );
        assert_eq!(m.reports[0].policy, "SLICE");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["nope".into()],
            policies: vec![PolicyKind::Srrs],
            faults: vec![FaultSpec::Permanent],
            ..MatrixConfig::default()
        };
        assert!(matches!(
            run_matrix(&reg, &cfg),
            Err(CampaignError::UnknownWorkload(_))
        ));
    }
}
