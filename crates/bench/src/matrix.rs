//! The campaign matrix: fault-injection campaigns swept over
//! {workload × fault model × scheduler policy × replica count}, resolved
//! through the unified workload registry — the paper's coverage argument
//! (Fig. 3/4 territory) extended from one synthetic two-replica workload to
//! the full Rodinia suite at N ∈ {2, 3, …} replicas, with the
//! coverage-vs-cost *frontier* (detected/corrected/undetected vs makespan
//! overhead) summarized per (policy, replicas).

use crate::campaign_perf::ThroughputResult;
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::{
    run_campaign_selected_serial, run_campaign_selected_with_telemetry, CampaignConfig,
    CampaignError, CampaignReport, CampaignSpec, CampaignTelemetry, FaultSpec,
};
use higpu_faults::checkpoint::CheckpointConfig;
use higpu_pipeline::campaign::{
    run_pipeline_campaign, run_pipeline_campaign_serial, PipelineCampaignError,
    PipelineCampaignReport, PipelineCampaignSpec,
};
use higpu_pipeline::{full_pipeline_registry, ExecMode};
use higpu_sim::config::{CoreKind, GpuConfig};
use higpu_sim::gpu::Gpu;
use higpu_telemetry::{CycleHistogram, ProgressLine};
use higpu_workloads::runner::run_solo;
use higpu_workloads::{Scale, WorkloadRegistry};
use std::time::Instant;

/// The registry every sweep resolves workloads from: the synthetic
/// workloads plus all Rodinia benchmarks.
pub fn full_registry() -> WorkloadRegistry {
    let mut reg = WorkloadRegistry::new();
    higpu_workloads::synthetic::register(&mut reg);
    higpu_rodinia::register_all(&mut reg);
    reg
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Injection trials per (workload, policy, fault, replicas) cell.
    pub trials: u32,
    /// Campaign seed (each cell is fully reproducible).
    pub seed: u64,
    /// Workload names to sweep; empty = every registered workload.
    pub workloads: Vec<String>,
    /// Scheduler policies to sweep. At each replica count a policy is
    /// realized through [`PolicyKind::for_replicas`]: HALF generalizes to
    /// SLICE above two replicas, the uncontrolled baseline (two-replica
    /// only) is skipped, duplicates are deduplicated.
    pub policies: Vec<PolicyKind>,
    /// Fault families to sweep.
    pub faults: Vec<FaultSpec>,
    /// Pipeline names to sweep over the same {fault × policy × replicas}
    /// axes ([`higpu_pipeline::full_pipeline_registry`] names; empty = no
    /// pipeline cells). Scheduler-misroute faults classify through the
    /// inter-stage BIST + diversity monitor, exactly like workload cells.
    pub pipelines: Vec<String>,
    /// Trials per pipeline cell (`None` = [`MatrixConfig::trials`]).
    /// Transient faults activate in only a fraction of frames (the window
    /// is small against a whole frame), so demonstrating in-FTTI recovery
    /// in the artifact wants a few more trials than the workload cells.
    pub pipeline_trials: Option<u32>,
    /// Frame executors to sweep per pipeline cell. The default runs both,
    /// so every cell pair quantifies the serial-vs-overlapped makespan
    /// speedup ([`MatrixResult::pipeline_speedups`]).
    pub pipeline_exec: Vec<ExecMode>,
    /// Replica counts to sweep (the NMR axis; 2 = the paper's DCLS).
    pub replica_counts: Vec<u8>,
    /// Input scale built per workload.
    pub scale: Scale,
    /// Worker threads per campaign (0 = auto; see
    /// [`CampaignConfig::resolved_workers`]).
    pub workers: usize,
    /// Also run the serial reference engine per cell and assert the
    /// parallel report bit-identical (slower; the determinism fence).
    pub check_serial: bool,
    /// Replica counts swept *additionally* on the wide 10-SM device for
    /// the workload axis (empty = no wide cells). The paper-sized 6-SM
    /// device cannot give five replicas useful slices; the wide device
    /// puts the 5MR frontier row in the artifact. Wide cells carry their
    /// own solo-makespan denominators
    /// ([`MatrixResult::wide_solo_makespans`]).
    pub wide_replica_counts: Vec<u8>,
    /// Trials per wide-device cell (`None` = half of
    /// [`MatrixConfig::trials`], rounded up — the wide rows are frontier
    /// context, not the headline coverage claim).
    pub wide_trials: Option<u32>,
    /// Frames per limp-home mission cell (≤ 1 = no limp cells). With
    /// [`MatrixConfig::pipelines`] non-empty, each pipeline gains one
    /// multi-frame cell per non-misroute fault family on the wide 10-SM
    /// device (SRRS, N = 2, overlapped): a permanent fault is diagnosed
    /// and quarantined mid-mission and the remaining frames re-plan
    /// around the lost SM ([`higpu_pipeline::limp`]).
    pub limp_frames: u32,
    /// Trials per limp-home cell (`None` = half the pipeline trial
    /// count, rounded up — every trial is a whole multi-frame mission).
    pub limp_trials: Option<u32>,
    /// Simulator core every campaign and solo-makespan device runs on.
    /// Both cores are bit-identical by contract; sweeping the matrix once
    /// per core and diffing the reports is the whole-artifact determinism
    /// cross-check (`campaign_matrix --core stepping,event`).
    pub core: CoreKind,
    /// Render a live progress line (cell granularity) to stderr while the
    /// sweep runs. Wall-clock display only — never feeds any report or
    /// the telemetry document.
    pub progress: bool,
    /// Checkpointed suffix-only replay for the workload campaign cells
    /// (standard and wide device; see `higpu_faults::checkpoint`). Like
    /// `core` and `workers`, this must not change any report — sweeping
    /// the matrix with and without and diffing is the checkpointing
    /// determinism cross-check (`campaign_matrix --checkpoint`). Pipeline
    /// and limp-home cells always run from zero (their engines drive
    /// multi-frame missions, not single redundant computations).
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            trials: 6,
            seed: 0x0DD5EED,
            workloads: Vec::new(),
            policies: PolicyKind::all().to_vec(),
            faults: vec![FaultSpec::Transient { duration: 400 }, FaultSpec::Permanent],
            pipelines: Vec::new(),
            pipeline_trials: None,
            pipeline_exec: vec![ExecMode::Overlapped, ExecMode::Serial],
            replica_counts: vec![2, 3],
            scale: Scale::Campaign,
            workers: 0,
            check_serial: false,
            wide_replica_counts: vec![5],
            wide_trials: None,
            limp_frames: 4,
            limp_trials: None,
            core: CoreKind::default(),
            progress: false,
            checkpoint: None,
        }
    }
}

/// Cycle-domain observability of one workload campaign cell — the
/// [`CampaignTelemetry`] the campaign engine aggregated, plus the cell's
/// wall time. Kept **outside** [`MatrixResult`]: reports are the
/// determinism fence, telemetry is observation (wall time is inherently
/// non-deterministic; the cycle-domain histograms are bit-identical at
/// every worker count).
#[derive(Debug, Clone)]
pub struct CellTelemetry {
    /// Workload name.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Fault family label.
    pub fault: String,
    /// `paper` (6-SM) or `wide` (10-SM) device.
    pub device: &'static str,
    /// The campaign engine's aggregated cycle-domain telemetry.
    pub telemetry: CampaignTelemetry,
    /// Wall time the cell took, in seconds.
    pub wall_seconds: f64,
}

/// Observability sidecar of one matrix sweep: per-cell campaign telemetry
/// (detection-latency / makespan / corrupted-but-terminating histograms)
/// and wall times. Produced by [`run_matrix_with_telemetry`].
#[derive(Debug, Clone, Default)]
pub struct MatrixTelemetry {
    /// One entry per workload campaign cell (standard then wide device),
    /// in sweep order.
    pub cells: Vec<CellTelemetry>,
    /// Wall time of the whole sweep, in seconds.
    pub wall_seconds: f64,
}

impl MatrixTelemetry {
    /// The corrupted-but-terminating makespan histogram per workload,
    /// merged over every cell of that workload — the input to FTTI budget
    /// mining (what multiplier would a p99.9 budget need?).
    pub fn corrupted_terminating_by_workload(&self) -> Vec<(String, CycleHistogram)> {
        let mut out: Vec<(String, CycleHistogram)> = Vec::new();
        for c in &self.cells {
            match out.iter_mut().find(|(n, _)| n == &c.workload) {
                Some((_, h)) => h.merge(&c.telemetry.corrupted_terminating),
                None => out.push((
                    c.workload.clone(),
                    c.telemetry.corrupted_terminating.clone(),
                )),
            }
        }
        out
    }

    /// Renders the telemetry sidecar as a JSON value (the `telemetry`
    /// section of `BENCH_campaign.json`): per-cell detection-latency /
    /// makespan / corrupted-terminating summaries with restore counters
    /// and wall times, plus the per-workload merged
    /// corrupted-but-terminating histograms.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"workload\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"fault\": \"{}\", \"device\": \"{}\", \
                     \"detection_latency\": {}, \"trial_makespans\": {}, \
                     \"corrupted_terminating\": {}, \"restores\": {}, \
                     \"restore_skipped_cycles\": {}, \"wall_seconds\": {:.3}}}",
                    c.workload,
                    c.policy,
                    c.replicas,
                    c.fault,
                    c.device,
                    c.telemetry.detection_latency.summary_json(),
                    c.telemetry.makespans.summary_json(),
                    c.telemetry.corrupted_terminating.summary_json(),
                    c.telemetry.restores,
                    c.telemetry.restore_skipped_cycles,
                    c.wall_seconds,
                )
            })
            .collect();
        let by_workload: Vec<String> = self
            .corrupted_terminating_by_workload()
            .iter()
            .map(|(name, h)| {
                format!(
                    "{{\"workload\": \"{name}\", \"corrupted_terminating\": {}}}",
                    h.summary_json()
                )
            })
            .collect();
        format!(
            "{{\n    \"wall_seconds\": {:.3},\n    \"cells\": [\n      {}\n    ],\n    \
             \"corrupted_terminating_by_workload\": [\n      {}\n    ]\n  }}",
            self.wall_seconds,
            cells.join(",\n      "),
            by_workload.join(",\n      "),
        )
    }
}

/// One (policy, replicas) aggregate of the coverage-vs-cost frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Cells aggregated.
    pub cells: u32,
    /// Summed detected trials.
    pub detected: u32,
    /// Summed corrected trials.
    pub corrected: u32,
    /// Summed undetected failures.
    pub undetected: u32,
    /// Mean redundant fault-free makespan over the workloads' solo
    /// makespans (the cost of the redundancy level; ≥ replicas for
    /// serializing policies, < replicas for concurrent ones).
    pub mean_makespan_overhead: f64,
}

/// The serial-vs-overlapped comparison of one pipeline cell pair: what the
/// concurrent frame executor buys at equal redundancy.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpeedup {
    /// Pipeline name.
    pub pipeline: String,
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Fault-free frame makespan under the serial executor.
    pub serial_makespan: u64,
    /// Fault-free frame makespan under the overlapped executor.
    pub overlapped_makespan: u64,
    /// The critical-path end-to-end FTTI.
    pub critical_path_ftti: u64,
    /// The pre-concurrency per-stage-sum FTTI.
    pub serial_sum_ftti: u64,
}

impl PipelineSpeedup {
    /// Serial over overlapped makespan (> 1 when overlap wins).
    pub fn makespan_speedup(&self) -> f64 {
        if self.overlapped_makespan == 0 {
            0.0
        } else {
            self.serial_makespan as f64 / self.overlapped_makespan as f64
        }
    }

    /// Serial-sum over critical-path FTTI (> 1 when the DAG has parallel
    /// branches).
    pub fn ftti_tightening(&self) -> f64 {
        if self.critical_path_ftti == 0 {
            0.0
        } else {
            self.serial_sum_ftti as f64 / self.critical_path_ftti as f64
        }
    }
}

/// One (pipeline, policy, replicas, exec) aggregate of the
/// fail-operational frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineFrontierPoint {
    /// Pipeline name.
    pub pipeline: String,
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Frame executor label.
    pub exec: &'static str,
    /// Cells aggregated.
    pub cells: u32,
    /// Summed trials.
    pub trials: u32,
    /// Summed vote-corrected frames.
    pub corrected: u32,
    /// Summed re-execution-recovered frames (fail-operational).
    pub recovered: u32,
    /// Summed fail-stop frames.
    pub detected: u32,
    /// Summed undetected failures.
    pub undetected: u32,
    /// Summed end-to-end deadline misses.
    pub deadline_miss: u32,
}

impl PipelineFrontierPoint {
    /// Recovered frames over all frames the mechanism acted on.
    pub fn recovery_rate(&self) -> Option<f64> {
        let acted = self.recovered + self.detected;
        if acted == 0 {
            None
        } else {
            Some(f64::from(self.recovered) / f64::from(acted))
        }
    }
}

/// Results of one sweep. `PartialEq` is the whole-artifact determinism
/// cross-check: two sweeps on different simulator cores must compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResult {
    /// Trials per cell.
    pub trials: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Scale label (`campaign` / `full`).
    pub scale: &'static str,
    /// Replica counts swept.
    pub replica_counts: Vec<u8>,
    /// Fault-free **solo** (non-redundant) makespan per swept workload —
    /// the denominator of every cell's makespan overhead.
    pub solo_makespans: Vec<(String, u64)>,
    /// One report per (workload, replicas, policy, fault) cell, in sweep
    /// order.
    pub reports: Vec<CampaignReport>,
    /// One report per (pipeline, replicas, policy, fault) cell, in sweep
    /// order (empty unless [`MatrixConfig::pipelines`] named any).
    pub pipeline_reports: Vec<PipelineCampaignReport>,
    /// Replica counts swept on the wide 10-SM device (the 5MR rows).
    pub wide_replica_counts: Vec<u8>,
    /// Fault-free solo makespans measured on the wide device — the
    /// denominators of the wide cells' overheads (the 10-SM device runs a
    /// solo workload faster, so the 6-SM solos would overstate cost).
    pub wide_solo_makespans: Vec<(String, u64)>,
    /// One report per wide-device (workload, replicas, policy, fault)
    /// cell, in sweep order.
    pub wide_reports: Vec<CampaignReport>,
    /// Frames per limp-home mission cell (1 = none ran).
    pub limp_frames: u32,
    /// One report per limp-home (pipeline, fault) mission cell on the
    /// wide device (SRRS, N = 2, overlapped executor).
    pub limp_reports: Vec<PipelineCampaignReport>,
}

impl MatrixResult {
    /// Total undetected failures across cells whose policy guarantees
    /// diversity (the paper's ASIL-D claim requires this to be 0 — at
    /// every replica count).
    pub fn undetected_under_diverse_policies(&self) -> u32 {
        let diverse_labels: Vec<&str> = PolicyKind::all_extended()
            .into_iter()
            .filter(|p| p.guarantees_diversity())
            .map(PolicyKind::label)
            .collect();
        self.reports
            .iter()
            .chain(&self.wide_reports)
            .filter(|r| diverse_labels.contains(&r.policy.as_str()))
            .map(|r| r.undetected)
            .sum()
    }

    /// Total corrected trials across all cells (non-zero only when the
    /// sweep includes N ≥ 3 replica counts).
    pub fn total_corrected(&self) -> u32 {
        self.reports.iter().map(|r| r.corrected).sum()
    }

    /// Total pipeline frames recovered by in-FTTI re-execution.
    pub fn total_recovered(&self) -> u32 {
        self.pipeline_reports.iter().map(|r| r.recovered).sum()
    }

    /// Undetected failures across pipeline cells under diverse policies
    /// (the fail-operational claim also requires 0 here).
    pub fn pipeline_undetected_under_diverse_policies(&self) -> u32 {
        let diverse_labels: Vec<&str> = PolicyKind::all_extended()
            .into_iter()
            .filter(|p| p.guarantees_diversity())
            .map(PolicyKind::label)
            .collect();
        self.pipeline_reports
            .iter()
            .chain(&self.limp_reports)
            .filter(|r| diverse_labels.contains(&r.policy.as_str()))
            .map(|r| r.undetected)
            .sum()
    }

    /// The solo makespan of `workload`, if it was swept.
    fn solo_makespan(&self, workload: &str) -> Option<u64> {
        self.solo_makespans
            .iter()
            .find(|(n, _)| n == workload)
            .map(|&(_, m)| m)
    }

    /// A cell's makespan overhead: redundant fault-free makespan over the
    /// workload's solo makespan.
    pub fn makespan_overhead(&self, r: &CampaignReport) -> Option<f64> {
        let solo = self.solo_makespan(&r.workload)?;
        (solo > 0).then(|| r.fault_free_makespan as f64 / solo as f64)
    }

    /// A wide-device cell's makespan overhead, against the solo makespan
    /// measured on the *same* (wide) device.
    pub fn wide_makespan_overhead(&self, r: &CampaignReport) -> Option<f64> {
        let solo = self
            .wide_solo_makespans
            .iter()
            .find(|(n, _)| n == &r.workload)
            .map(|&(_, m)| m)?;
        (solo > 0).then(|| r.fault_free_makespan as f64 / solo as f64)
    }

    /// The coverage-vs-cost frontier: per (policy, replicas), summed
    /// outcome counts and the mean makespan overhead — the quantitative
    /// form of the ASIL-decomposition trade (more replicas buy correction,
    /// at redundant-makespan cost).
    pub fn frontier(&self) -> Vec<FrontierPoint> {
        let mut points: Vec<FrontierPoint> = Vec::new();
        // Wide cells fold into the same frontier (each against its own
        // device's solo denominator): the 5MR points sit on the same
        // coverage-vs-cost curve as the paper-device ones.
        for r in &self.reports {
            fold_frontier(&mut points, r, self.makespan_overhead(r).unwrap_or(0.0));
        }
        for r in &self.wide_reports {
            fold_frontier(
                &mut points,
                r,
                self.wide_makespan_overhead(r).unwrap_or(0.0),
            );
        }
        for p in &mut points {
            p.mean_makespan_overhead /= f64::from(p.cells.max(1));
        }
        points
    }

    /// Total missions whose permanent fault was diagnosed, quarantined,
    /// and limped around (limp-home cells only).
    pub fn limp_quarantined(&self) -> u32 {
        self.limp_reports.iter().map(|r| r.quarantined).sum()
    }

    /// Total diagnosed missions that then failed to limp home.
    pub fn limp_home_misses(&self) -> u32 {
        self.limp_reports.iter().map(|r| r.limp_home_miss).sum()
    }

    /// Total degraded frames that overran their *re-planned* end-to-end
    /// budget (the recalibrated-FTTI fence: must stay 0).
    pub fn limp_deadline_misses(&self) -> u32 {
        self.limp_reports.iter().map(|r| r.limp_deadline_miss).sum()
    }

    /// Diagnoses reported by limp cells whose fault family is
    /// transient-class — a quarantine without a persistent fault means the
    /// per-SM BIST convicted a healthy SM (the no-false-quarantine fence:
    /// must stay 0).
    pub fn limp_false_quarantines(&self) -> u32 {
        self.limp_reports
            .iter()
            .filter(|r| !persistent_fault_label(r.fault))
            .map(|r| r.quarantined + r.limp_home_miss)
            .sum()
    }

    /// Mean frames from fault arming to quarantine over every diagnosed
    /// mission (`None` until something was diagnosed).
    pub fn limp_mean_frames_to_diagnosis(&self) -> Option<f64> {
        let diagnosed: u32 = self
            .limp_reports
            .iter()
            .map(|r| r.quarantined + r.limp_home_miss)
            .sum();
        let frames: u32 = self
            .limp_reports
            .iter()
            .map(|r| r.frames_to_diagnosis_sum)
            .sum();
        (diagnosed > 0).then(|| f64::from(frames) / f64::from(diagnosed))
    }

    /// Mean post-quarantine makespan inflation over limp cells that ran
    /// degraded frames (`None` until any did).
    pub fn limp_makespan_inflation(&self) -> Option<f64> {
        let inflations: Vec<f64> = self
            .limp_reports
            .iter()
            .filter_map(PipelineCampaignReport::degraded_makespan_inflation)
            .collect();
        (!inflations.is_empty()).then(|| inflations.iter().sum::<f64>() / inflations.len() as f64)
    }

    /// Diagnosed missions that failed to limp home, as a rate (`None`
    /// until something was diagnosed).
    pub fn limp_home_miss_rate(&self) -> Option<f64> {
        let diagnosed = self.limp_quarantined() + self.limp_home_misses();
        (diagnosed > 0).then(|| f64::from(self.limp_home_misses()) / f64::from(diagnosed))
    }

    /// The fail-operational frontier: per (pipeline, policy, replicas,
    /// exec), summed frame outcomes with the recovery rate and end-to-end
    /// deadline-miss rate — the pipeline-axis counterpart of
    /// [`MatrixResult::frontier`].
    pub fn pipeline_frontier(&self) -> Vec<PipelineFrontierPoint> {
        let mut points: Vec<PipelineFrontierPoint> = Vec::new();
        for r in &self.pipeline_reports {
            match points.iter_mut().find(|p| {
                p.pipeline == r.pipeline
                    && p.policy == r.policy
                    && p.replicas == r.replicas
                    && p.exec == r.exec
            }) {
                Some(p) => {
                    p.cells += 1;
                    p.trials += r.trials;
                    p.corrected += r.corrected;
                    p.recovered += r.recovered;
                    p.detected += r.detected;
                    p.undetected += r.undetected;
                    p.deadline_miss += r.deadline_miss;
                }
                None => points.push(PipelineFrontierPoint {
                    pipeline: r.pipeline.clone(),
                    policy: r.policy.clone(),
                    replicas: r.replicas,
                    exec: r.exec,
                    cells: 1,
                    trials: r.trials,
                    corrected: r.corrected,
                    recovered: r.recovered,
                    detected: r.detected,
                    undetected: r.undetected,
                    deadline_miss: r.deadline_miss,
                }),
            }
        }
        points
    }

    /// The serial-vs-overlapped comparison per (pipeline, policy,
    /// replicas) cell pair — what concurrent-branch execution buys: the
    /// fault-free makespan speedup and the critical-path-vs-sum FTTI
    /// tightening. One entry per pair (the fault-free makespans agree
    /// across fault families, so any fault's pair carries the comparison);
    /// empty unless the sweep ran both executors.
    pub fn pipeline_speedups(&self) -> Vec<PipelineSpeedup> {
        let mut out: Vec<PipelineSpeedup> = Vec::new();
        for s in self.pipeline_reports.iter().filter(|r| r.exec == "serial") {
            if out.iter().any(|p| {
                p.pipeline == s.pipeline && p.policy == s.policy && p.replicas == s.replicas
            }) {
                continue;
            }
            let Some(o) = self.pipeline_reports.iter().find(|r| {
                r.exec == "overlapped"
                    && r.pipeline == s.pipeline
                    && r.policy == s.policy
                    && r.replicas == s.replicas
            }) else {
                continue;
            };
            out.push(PipelineSpeedup {
                pipeline: s.pipeline.clone(),
                policy: s.policy.clone(),
                replicas: s.replicas,
                serial_makespan: s.fault_free_makespan,
                overlapped_makespan: o.fault_free_makespan,
                critical_path_ftti: o.e2e_deadline,
                serial_sum_ftti: o.serial_sum_deadline,
            });
        }
        out
    }

    /// Renders the pipeline cells as rows for [`crate::table`].
    pub fn pipeline_table(&self) -> Vec<Vec<String>> {
        let mut out = vec![vec![
            "pipeline".to_string(),
            "policy".to_string(),
            "N".to_string(),
            "exec".to_string(),
            "fault".to_string(),
            "makespan".to_string(),
            "trials".to_string(),
            "inactive".to_string(),
            "masked".to_string(),
            "corrected".to_string(),
            "RECOVERED".to_string(),
            "detected".to_string(),
            "UNDETECTED".to_string(),
            "ddl-miss".to_string(),
            "recovery".to_string(),
            "frames".to_string(),
            "QUAR".to_string(),
            "limp-miss".to_string(),
            "t-diag".to_string(),
            "infl".to_string(),
        ]];
        for r in self.pipeline_reports.iter().chain(&self.limp_reports) {
            out.push(vec![
                r.pipeline.clone(),
                r.policy.clone(),
                r.replicas.to_string(),
                r.exec.to_string(),
                r.fault.to_string(),
                r.fault_free_makespan.to_string(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.masked.to_string(),
                r.corrected.to_string(),
                r.recovered.to_string(),
                r.detected.to_string(),
                r.undetected.to_string(),
                r.deadline_miss.to_string(),
                r.recovery_rate()
                    .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
                r.frames.to_string(),
                r.quarantined.to_string(),
                r.limp_home_miss.to_string(),
                r.mean_frames_to_diagnosis()
                    .map_or("n/a".to_string(), |v| format!("{v:.1}")),
                r.degraded_makespan_inflation()
                    .map_or("n/a".to_string(), |v| format!("{v:.2}x")),
            ]);
        }
        out
    }

    /// Renders the matrix as rows for [`crate::table`].
    pub fn to_table(&self) -> Vec<Vec<String>> {
        let mut out = vec![vec![
            "workload".to_string(),
            "policy".to_string(),
            "N".to_string(),
            "fault".to_string(),
            "trials".to_string(),
            "inactive".to_string(),
            "masked".to_string(),
            "detected".to_string(),
            "corrected".to_string(),
            "UNDETECTED".to_string(),
            "coverage".to_string(),
            "overhead".to_string(),
        ]];
        for r in &self.reports {
            out.push(vec![
                r.workload.clone(),
                r.policy.clone(),
                r.replicas.to_string(),
                r.fault.to_string(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.masked.to_string(),
                r.detected.to_string(),
                r.corrected.to_string(),
                r.undetected.to_string(),
                r.coverage()
                    .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
                self.makespan_overhead(r)
                    .map_or("n/a".to_string(), |o| format!("{o:.2}x")),
            ]);
        }
        // Wide-device rows (the 5MR frontier input) append after the
        // paper-device sweep; the replica count distinguishes them.
        for r in &self.wide_reports {
            out.push(vec![
                r.workload.clone(),
                r.policy.clone(),
                r.replicas.to_string(),
                r.fault.to_string(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.masked.to_string(),
                r.detected.to_string(),
                r.corrected.to_string(),
                r.undetected.to_string(),
                r.coverage()
                    .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
                self.wide_makespan_overhead(r)
                    .map_or("n/a".to_string(), |o| format!("{o:.2}x")),
            ]);
        }
        out
    }

    /// Renders one workload cell as a JSON object (the overhead is
    /// against the solo makespan on the cell's own device).
    fn workload_cell_json(r: &CampaignReport, overhead: Option<f64>) -> String {
        format!(
            "{{\"workload\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
             \"fault\": \"{}\", \"trials\": {}, \"not_activated\": {}, \
             \"masked\": {}, \"detected\": {}, \"corrected\": {}, \
             \"undetected\": {}, \"coverage\": {}, \
             \"fault_free_makespan\": {}, \"makespan_overhead\": {}}}",
            r.workload,
            r.policy,
            r.replicas,
            r.fault,
            r.trials,
            r.not_activated,
            r.masked,
            r.detected,
            r.corrected,
            r.undetected,
            r.coverage()
                .map_or("null".to_string(), |c| format!("{c:.4}")),
            r.fault_free_makespan,
            overhead.map_or("null".to_string(), |o| format!("{o:.3}")),
        )
    }

    /// Renders the matrix as a JSON value: sweep metadata, one entry per
    /// cell, and the per-(policy, replicas) coverage-vs-cost frontier.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .reports
            .iter()
            .map(|r| Self::workload_cell_json(r, self.makespan_overhead(r)))
            .collect();
        let wide_cells: Vec<String> = self
            .wide_reports
            .iter()
            .map(|r| Self::workload_cell_json(r, self.wide_makespan_overhead(r)))
            .collect();
        let frontier: Vec<String> = self
            .frontier()
            .iter()
            .map(|p| {
                format!(
                    "{{\"policy\": \"{}\", \"replicas\": {}, \"cells\": {}, \
                     \"detected\": {}, \"corrected\": {}, \"undetected\": {}, \
                     \"mean_makespan_overhead\": {:.3}}}",
                    p.policy,
                    p.replicas,
                    p.cells,
                    p.detected,
                    p.corrected,
                    p.undetected,
                    p.mean_makespan_overhead,
                )
            })
            .collect();
        let pipeline_cells: Vec<String> = self
            .pipeline_reports
            .iter()
            .map(pipeline_cell_json)
            .collect();
        let limp_cells: Vec<String> = self.limp_reports.iter().map(pipeline_cell_json).collect();
        let pipeline_speedups: Vec<String> = self
            .pipeline_speedups()
            .iter()
            .map(|s| {
                format!(
                    "{{\"pipeline\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"serial_makespan\": {}, \
                     \"overlapped_makespan\": {}, \"makespan_speedup\": {:.3}, \
                     \"critical_path_ftti\": {}, \"serial_sum_ftti\": {}, \
                     \"ftti_tightening\": {:.3}}}",
                    s.pipeline,
                    s.policy,
                    s.replicas,
                    s.serial_makespan,
                    s.overlapped_makespan,
                    s.makespan_speedup(),
                    s.critical_path_ftti,
                    s.serial_sum_ftti,
                    s.ftti_tightening(),
                )
            })
            .collect();
        let pipeline_frontier: Vec<String> = self
            .pipeline_frontier()
            .iter()
            .map(|p| {
                format!(
                    "{{\"pipeline\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"exec\": \"{}\", \
                     \"cells\": {}, \"trials\": {}, \"corrected\": {}, \"recovered\": {}, \
                     \"detected\": {}, \"undetected\": {}, \"deadline_miss\": {}, \
                     \"recovery_rate\": {}}}",
                    p.pipeline,
                    p.policy,
                    p.replicas,
                    p.exec,
                    p.cells,
                    p.trials,
                    p.corrected,
                    p.recovered,
                    p.detected,
                    p.undetected,
                    p.deadline_miss,
                    p.recovery_rate()
                        .map_or("null".to_string(), |c| format!("{c:.4}")),
                )
            })
            .collect();
        let replica_counts: Vec<String> = self.replica_counts.iter().map(u8::to_string).collect();
        let wide_replica_counts: Vec<String> =
            self.wide_replica_counts.iter().map(u8::to_string).collect();
        let degraded_mode = format!(
            "{{\n        \"frames\": {},\n        \"quarantined\": {},\n        \
             \"limp_home_miss\": {},\n        \"limp_deadline_miss\": {},\n        \
             \"false_quarantines\": {},\n        \
             \"mean_frames_to_diagnosis\": {},\n        \
             \"post_quarantine_makespan_inflation\": {},\n        \
             \"limp_home_miss_rate\": {},\n        \
             \"cells\": [\n          {}\n        ]\n      }}",
            self.limp_frames,
            self.limp_quarantined(),
            self.limp_home_misses(),
            self.limp_deadline_misses(),
            self.limp_false_quarantines(),
            self.limp_mean_frames_to_diagnosis()
                .map_or("null".to_string(), |v| format!("{v:.2}")),
            self.limp_makespan_inflation()
                .map_or("null".to_string(), |v| format!("{v:.3}")),
            self.limp_home_miss_rate()
                .map_or("null".to_string(), |v| format!("{v:.4}")),
            limp_cells.join(",\n          "),
        );
        format!(
            "{{\n    \"trials_per_cell\": {},\n    \"seed\": {},\n    \"scale\": \"{}\",\n    \
             \"replica_counts\": [{}],\n    \
             \"wide_replica_counts\": [{}],\n    \
             \"undetected_under_diverse_policies\": {},\n    \
             \"total_corrected\": {},\n    \"cells\": [\n      {}\n    ],\n    \
             \"wide_cells\": [\n      {}\n    ],\n    \
             \"frontier\": [\n      {}\n    ],\n    \
             \"pipelines\": {{\n      \
             \"total_recovered\": {},\n      \
             \"undetected_under_diverse_policies\": {},\n      \
             \"cells\": [\n        {}\n      ],\n      \
             \"speedups\": [\n        {}\n      ],\n      \
             \"frontier\": [\n        {}\n      ],\n      \
             \"degraded_mode\": {}\n    }}\n  }}",
            self.trials,
            self.seed,
            self.scale,
            replica_counts.join(", "),
            wide_replica_counts.join(", "),
            self.undetected_under_diverse_policies(),
            self.total_corrected(),
            cells.join(",\n      "),
            wide_cells.join(",\n      "),
            frontier.join(",\n      "),
            self.total_recovered(),
            self.pipeline_undetected_under_diverse_policies(),
            pipeline_cells.join(",\n        "),
            pipeline_speedups.join(",\n        "),
            pipeline_frontier.join(",\n        "),
            degraded_mode,
        )
    }
}

/// Folds one cell into the per-(policy, replicas) frontier accumulator
/// (means are normalized by the caller after the fold).
fn fold_frontier(points: &mut Vec<FrontierPoint>, r: &CampaignReport, overhead: f64) {
    match points
        .iter_mut()
        .find(|p| p.policy == r.policy && p.replicas == r.replicas)
    {
        Some(p) => {
            p.cells += 1;
            p.detected += r.detected;
            p.corrected += r.corrected;
            p.undetected += r.undetected;
            p.mean_makespan_overhead += overhead;
        }
        None => points.push(FrontierPoint {
            policy: r.policy.clone(),
            replicas: r.replicas,
            cells: 1,
            detected: r.detected,
            corrected: r.corrected,
            undetected: r.undetected,
            mean_makespan_overhead: overhead,
        }),
    }
}

/// Renders one pipeline cell (single-frame or limp-home mission) as a
/// JSON object. The degraded-mode fields are zero/null on single-frame
/// cells.
fn pipeline_cell_json(r: &PipelineCampaignReport) -> String {
    format!(
        "{{\"pipeline\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
         \"exec\": \"{}\", \"fault\": \"{}\", \"stages\": {}, \"frames\": {}, \
         \"trials\": {}, \
         \"not_activated\": {}, \"masked\": {}, \"corrected\": {}, \
         \"recovered\": {}, \"detected\": {}, \"undetected\": {}, \
         \"quarantined\": {}, \"limp_home_miss\": {}, \"degraded_frames\": {}, \
         \"limp_deadline_miss\": {}, \"frames_to_diagnosis\": {}, \
         \"degraded_makespan_inflation\": {}, \"limp_home_miss_rate\": {}, \
         \"deadline_miss\": {}, \"retries_attempted\": {}, \
         \"retries_failed\": {}, \"no_slack\": {}, \
         \"recovery_rate\": {}, \"deadline_miss_rate\": {:.4}, \
         \"e2e_makespan\": {}, \"critical_path_ftti\": {}, \
         \"serial_sum_ftti\": {}, \"bandwidth_bytes\": {}}}",
        r.pipeline,
        r.policy,
        r.replicas,
        r.exec,
        r.fault,
        r.stages,
        r.frames,
        r.trials,
        r.not_activated,
        r.masked,
        r.corrected,
        r.recovered,
        r.detected,
        r.undetected,
        r.quarantined,
        r.limp_home_miss,
        r.degraded_frames,
        r.limp_deadline_miss,
        r.mean_frames_to_diagnosis()
            .map_or("null".to_string(), |v| format!("{v:.2}")),
        r.degraded_makespan_inflation()
            .map_or("null".to_string(), |v| format!("{v:.3}")),
        r.limp_home_miss_rate()
            .map_or("null".to_string(), |v| format!("{v:.4}")),
        r.deadline_miss,
        r.retries_attempted,
        r.retries_failed,
        r.no_slack,
        r.recovery_rate()
            .map_or("null".to_string(), |c| format!("{c:.4}")),
        r.deadline_miss_rate(),
        r.fault_free_makespan,
        r.e2e_deadline,
        r.serial_sum_deadline,
        r.bandwidth_bytes,
    )
}

/// True when a report's fault label names a family that persists across
/// frames (re-deriving [`FaultSpec::is_persistent`] from the label the
/// report carries).
fn persistent_fault_label(label: &str) -> bool {
    label == FaultSpec::Permanent.label()
}

/// The wide device every 5MR and degraded-mode cell runs on: ten SMs (so
/// five replicas get two-SM slices, and quarantining one SM leaves enough
/// capacity to re-plan) with the campaign-sized memory image.
fn wide_gpu() -> GpuConfig {
    let mut gpu = GpuConfig::wide_10sm();
    gpu.global_mem_bytes = 2 * 1024 * 1024;
    gpu
}

/// Realizes the configured policies at one replica count
/// ([`PolicyKind::for_replicas`]) and deduplicates (HALF and SLICE
/// coincide above two replicas; the uncontrolled baseline drops out).
fn realize_policies(policies: &[PolicyKind], replicas: u8) -> Vec<PolicyKind> {
    let mut realized: Vec<PolicyKind> = Vec::new();
    for policy in policies {
        let Some(p) = policy.for_replicas(replicas) else {
            continue;
        };
        if !realized.contains(&p) {
            realized.push(p);
        }
    }
    realized
}

/// Measures one workload's fault-free **solo** (non-redundant) makespan
/// on the given device — the denominator of a cell's makespan overhead.
fn solo_makespan_on(
    reg: &WorkloadRegistry,
    name: &str,
    scale: Scale,
    gpu_cfg: &GpuConfig,
) -> Result<u64, CampaignError> {
    let workload = reg
        .build(name, scale)
        .ok_or_else(|| CampaignError::UnknownWorkload(name.to_string()))?;
    let mut gpu = Gpu::new(gpu_cfg.clone());
    run_solo(&mut gpu, &*workload).map_err(|e| {
        CampaignError::Redundancy(match e {
            higpu_workloads::SessionError::Sim(err) => {
                higpu_core::redundancy::RedundancyError::Sim(err)
            }
            higpu_workloads::SessionError::Redundancy(err) => err,
            // Solo sessions have one replica; mismatches cannot occur.
            higpu_workloads::SessionError::ReplicaMismatch { .. } => {
                unreachable!("solo runs cannot mismatch")
            }
        })
    })?;
    Ok(gpu.trace().makespan().unwrap_or(0))
}

/// Runs the sweep: one parallel campaign per (workload, replicas, policy,
/// fault) cell, all resolved through `reg`. Policies are realized per
/// replica count via [`PolicyKind::for_replicas`] (HALF → SLICE above two
/// replicas; the uncontrolled baseline only at two), then deduplicated.
///
/// # Errors
///
/// [`CampaignError::UnknownWorkload`] when `cfg.workloads` names an
/// unregistered workload; otherwise propagates campaign errors.
///
/// # Panics
///
/// With `cfg.check_serial`, panics if any parallel report differs from the
/// serial reference — a determinism bug, not a measurement.
pub fn run_matrix(
    reg: &WorkloadRegistry,
    cfg: &MatrixConfig,
) -> Result<MatrixResult, CampaignError> {
    run_matrix_with_telemetry(reg, cfg).map(|(result, _)| result)
}

/// [`run_matrix`] plus the sweep's [`MatrixTelemetry`] sidecar (per-cell
/// detection-latency / makespan histograms and wall times). The
/// [`MatrixResult`] is identical to [`run_matrix`]'s — telemetry is
/// observation, not state.
///
/// # Errors
///
/// As [`run_matrix`].
///
/// # Panics
///
/// As [`run_matrix`] (the `check_serial` determinism fence).
pub fn run_matrix_with_telemetry(
    reg: &WorkloadRegistry,
    cfg: &MatrixConfig,
) -> Result<(MatrixResult, MatrixTelemetry), CampaignError> {
    let sweep_start = Instant::now();
    let names: Vec<String> = if cfg.workloads.is_empty() {
        reg.names().iter().map(|n| n.to_string()).collect()
    } else {
        cfg.workloads.clone()
    };
    let mut progress = matrix_progress(cfg, names.len());
    let mut done = 0usize;
    let mut telemetry = MatrixTelemetry::default();
    let mut campaign = CampaignConfig {
        trials: cfg.trials,
        seed: cfg.seed,
        workers: cfg.workers,
        checkpoint: cfg.checkpoint,
        ..CampaignConfig::default()
    };
    campaign.gpu.core = cfg.core;
    // Solo (non-redundant) fault-free makespan per workload: the cost
    // baseline every redundant cell's overhead is measured against.
    let mut solo_makespans = Vec::with_capacity(names.len());
    for name in &names {
        let makespan = solo_makespan_on(reg, name, cfg.scale, &campaign.gpu)?;
        solo_makespans.push((name.clone(), makespan));
    }
    let mut reports = Vec::with_capacity(
        names.len() * cfg.replica_counts.len() * cfg.policies.len() * cfg.faults.len(),
    );
    for name in &names {
        for &replicas in &cfg.replica_counts {
            for &policy in &realize_policies(&cfg.policies, replicas) {
                for &fault in &cfg.faults {
                    let spec = CampaignSpec {
                        workload: name.clone(),
                        scale: cfg.scale,
                        policy,
                        fault,
                        replicas,
                    };
                    let cell_start = Instant::now();
                    let (report, cell) =
                        run_campaign_selected_with_telemetry(&campaign, reg, &spec)?;
                    if cfg.check_serial {
                        let serial = run_campaign_selected_serial(&campaign, reg, &spec)?;
                        assert_eq!(
                            report, serial,
                            "parallel report must be bit-identical to the serial reference \
                             for {name} under {policy:?}/{fault:?} at {replicas} replicas"
                        );
                    }
                    let wall_seconds = cell_start.elapsed().as_secs_f64();
                    telemetry.cells.push(CellTelemetry {
                        workload: report.workload.clone(),
                        policy: report.policy.clone(),
                        replicas,
                        fault: report.fault.to_string(),
                        device: "paper",
                        telemetry: cell,
                        wall_seconds,
                    });
                    done += 1;
                    progress.update(
                        done as u64,
                        &format!(
                            "{name} {} N={replicas} {} [{wall_seconds:.2}s]",
                            policy.label(),
                            fault.label()
                        ),
                    );
                    reports.push(report);
                }
            }
        }
    }
    let mut pipeline_reports = Vec::new();
    if !cfg.pipelines.is_empty() {
        let preg = full_pipeline_registry();
        let campaign = CampaignConfig {
            trials: cfg.pipeline_trials.unwrap_or(cfg.trials),
            // Pipeline campaigns drive multi-frame missions through their
            // own engine; suffix replay applies to workload cells only.
            checkpoint: None,
            ..campaign
        };
        for name in &cfg.pipelines {
            for &replicas in &cfg.replica_counts {
                for &policy in &realize_policies(&cfg.policies, replicas) {
                    for &exec in &cfg.pipeline_exec {
                        for &fault in &cfg.faults {
                            let spec = PipelineCampaignSpec {
                                pipeline: name.clone(),
                                scale: cfg.scale,
                                policy,
                                fault,
                                replicas,
                                recovery: higpu_pipeline::RecoveryPolicy::default(),
                                exec,
                                frames: 1,
                            };
                            let report = run_pipeline_campaign(&campaign, &preg, &spec)
                                .map_err(pipeline_error_to_campaign)?;
                            if cfg.check_serial {
                                let serial = run_pipeline_campaign_serial(&campaign, &preg, &spec)
                                    .map_err(pipeline_error_to_campaign)?;
                                assert_eq!(
                                    report,
                                    serial,
                                    "parallel pipeline report must be bit-identical to the \
                                     serial reference for {name} under {policy:?}/{fault:?} at \
                                     {replicas} replicas ({})",
                                    exec.label()
                                );
                            }
                            done += 1;
                            progress.update(
                                done as u64,
                                &format!(
                                    "{name} {} N={replicas} {} ({})",
                                    policy.label(),
                                    fault.label(),
                                    exec.label()
                                ),
                            );
                            pipeline_reports.push(report);
                        }
                    }
                }
            }
        }
    }
    // Wide-device rows: the same workload sweep at the extra replica
    // counts on the 10-SM device (five replicas need two-SM slices the
    // paper device cannot give them), at reduced trials.
    let mut wide_solo_makespans = Vec::new();
    let mut wide_reports = Vec::new();
    if !cfg.wide_replica_counts.is_empty() {
        let mut wide = CampaignConfig {
            trials: cfg
                .wide_trials
                .unwrap_or_else(|| cfg.trials.div_ceil(2).max(1)),
            seed: cfg.seed,
            gpu: wide_gpu(),
            workers: cfg.workers,
            checkpoint: cfg.checkpoint,
        };
        wide.gpu.core = cfg.core;
        for name in &names {
            let makespan = solo_makespan_on(reg, name, cfg.scale, &wide.gpu)?;
            wide_solo_makespans.push((name.clone(), makespan));
        }
        for name in &names {
            for &replicas in &cfg.wide_replica_counts {
                for &policy in &realize_policies(&cfg.policies, replicas) {
                    for &fault in &cfg.faults {
                        let spec = CampaignSpec {
                            workload: name.clone(),
                            scale: cfg.scale,
                            policy,
                            fault,
                            replicas,
                        };
                        let cell_start = Instant::now();
                        let (report, cell) =
                            run_campaign_selected_with_telemetry(&wide, reg, &spec)?;
                        if cfg.check_serial {
                            let serial = run_campaign_selected_serial(&wide, reg, &spec)?;
                            assert_eq!(
                                report, serial,
                                "parallel report must be bit-identical to the serial \
                                 reference for {name} under {policy:?}/{fault:?} at \
                                 {replicas} replicas (wide device)"
                            );
                        }
                        let wall_seconds = cell_start.elapsed().as_secs_f64();
                        telemetry.cells.push(CellTelemetry {
                            workload: report.workload.clone(),
                            policy: report.policy.clone(),
                            replicas,
                            fault: report.fault.to_string(),
                            device: "wide",
                            telemetry: cell,
                            wall_seconds,
                        });
                        done += 1;
                        progress.update(
                            done as u64,
                            &format!(
                                "{name} {} N={replicas} {} (wide) [{wall_seconds:.2}s]",
                                policy.label(),
                                fault.label()
                            ),
                        );
                        wide_reports.push(report);
                    }
                }
            }
        }
    }
    // Degraded-mode rows: multi-frame limp-home missions on the wide
    // device. One cell per (pipeline, fault family): a mid-mission
    // permanent fault must be diagnosed, quarantined, and limped around;
    // a transient-class family must *never* cost an SM.
    let mut limp_reports = Vec::new();
    if cfg.limp_frames > 1 && !cfg.pipelines.is_empty() {
        let preg = full_pipeline_registry();
        let mut limp = CampaignConfig {
            trials: cfg
                .limp_trials
                .unwrap_or_else(|| cfg.pipeline_trials.unwrap_or(cfg.trials).div_ceil(2).max(1)),
            seed: cfg.seed,
            gpu: wide_gpu(),
            workers: cfg.workers,
            checkpoint: None,
        };
        limp.gpu.core = cfg.core;
        for name in &cfg.pipelines {
            for &fault in &cfg.faults {
                if matches!(fault, FaultSpec::Misroute) {
                    // Misroute is a scheduler property, not SM damage:
                    // there is nothing to diagnose across frames.
                    continue;
                }
                let spec = PipelineCampaignSpec {
                    pipeline: name.clone(),
                    scale: cfg.scale,
                    policy: PolicyKind::Srrs,
                    fault,
                    replicas: 2,
                    recovery: higpu_pipeline::RecoveryPolicy::default(),
                    exec: ExecMode::Overlapped,
                    frames: cfg.limp_frames,
                };
                let report = run_pipeline_campaign(&limp, &preg, &spec)
                    .map_err(pipeline_error_to_campaign)?;
                if cfg.check_serial {
                    let serial = run_pipeline_campaign_serial(&limp, &preg, &spec)
                        .map_err(pipeline_error_to_campaign)?;
                    assert_eq!(
                        report, serial,
                        "parallel limp-home report must be bit-identical to the serial \
                         reference for {name} under {fault:?} over {} frames",
                        cfg.limp_frames
                    );
                }
                done += 1;
                progress.update(
                    done as u64,
                    &format!(
                        "{name} limp-home {} x{} frames",
                        fault.label(),
                        cfg.limp_frames
                    ),
                );
                limp_reports.push(report);
            }
        }
    }
    progress.finish(done as u64, "");
    telemetry.wall_seconds = sweep_start.elapsed().as_secs_f64();
    let result = MatrixResult {
        trials: cfg.trials,
        seed: cfg.seed,
        scale: cfg.scale.label(),
        replica_counts: cfg.replica_counts.clone(),
        solo_makespans,
        reports,
        pipeline_reports,
        wide_replica_counts: cfg.wide_replica_counts.clone(),
        wide_solo_makespans,
        wide_reports,
        limp_frames: cfg.limp_frames.max(1),
        limp_reports,
    };
    Ok((result, telemetry))
}

/// Builds the sweep's progress line by pre-counting every cell the sweep
/// will run (workload, pipeline, wide-device, and limp-home axes).
fn matrix_progress(cfg: &MatrixConfig, workloads: usize) -> ProgressLine {
    let per_replica: usize = cfg
        .replica_counts
        .iter()
        .map(|&r| realize_policies(&cfg.policies, r).len())
        .sum();
    let wide_per_replica: usize = cfg
        .wide_replica_counts
        .iter()
        .map(|&r| realize_policies(&cfg.policies, r).len())
        .sum();
    let workload_cells = workloads * per_replica * cfg.faults.len();
    let pipeline_cells =
        cfg.pipelines.len() * per_replica * cfg.pipeline_exec.len() * cfg.faults.len();
    let wide_cells = workloads * wide_per_replica * cfg.faults.len();
    let limp_cells = if cfg.limp_frames > 1 && !cfg.pipelines.is_empty() {
        cfg.pipelines.len()
            * cfg
                .faults
                .iter()
                .filter(|f| !matches!(f, FaultSpec::Misroute))
                .count()
    } else {
        0
    };
    ProgressLine::new(
        "matrix",
        (workload_cells + pipeline_cells + wide_cells + limp_cells) as u64,
        cfg.progress,
    )
}

/// Surfaces a pipeline-campaign error through the matrix's error type
/// (unknown pipelines map onto the unknown-workload variant; device and
/// protocol errors pass through).
fn pipeline_error_to_campaign(e: PipelineCampaignError) -> CampaignError {
    match e {
        PipelineCampaignError::UnknownPipeline(name) => CampaignError::UnknownWorkload(name),
        PipelineCampaignError::Campaign(e) => e,
        PipelineCampaignError::Pipeline(p) => match p {
            higpu_pipeline::exec::PipelineError::Session(higpu_workloads::SessionError::Sim(
                err,
            )) => CampaignError::Redundancy(higpu_core::redundancy::RedundancyError::Sim(err)),
            higpu_pipeline::exec::PipelineError::Session(
                higpu_workloads::SessionError::Redundancy(err),
            ) => CampaignError::Redundancy(err),
            other => CampaignError::Execution(format!("pipeline: {other}")),
        },
    }
}

/// Renders the combined `BENCH_campaign.json` document: engine throughput
/// plus the campaign matrix (cells and coverage-vs-cost frontier).
pub fn bench_document(throughput: &ThroughputResult, matrix: &MatrixResult) -> String {
    throughput.to_json_with_extra(&[("matrix", &matrix.to_json())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_sweeps_replicas_and_renders() {
        let reg = full_registry();
        assert!(reg.len() >= 17, "synthetic + 16 Rodinia");
        let cfg = MatrixConfig {
            trials: 2,
            workloads: vec!["iterated_fma".into(), "nn".into()],
            policies: vec![PolicyKind::Srrs, PolicyKind::Half],
            faults: vec![FaultSpec::Permanent],
            check_serial: true,
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(
            m.reports.len(),
            8,
            "2 workloads x (2 policies @ N=2 + {{SRRS, SLICE}} @ N=3) x 1 fault"
        );
        assert_eq!(
            m.wide_reports.len(),
            4,
            "2 workloads x {{SRRS, SLICE}} @ N=5 x 1 fault on the wide device"
        );
        assert!(m.wide_reports.iter().all(|r| r.replicas == 5));
        assert_eq!(m.undetected_under_diverse_policies(), 0);
        assert!(
            m.total_corrected() > 0,
            "TMR cells must outvote some faults: {:?}",
            m.reports
        );
        // Two-replica cells never correct.
        for r in m.reports.iter().filter(|r| r.replicas == 2) {
            assert_eq!(r.corrected, 0, "{r:?}");
        }
        let table = m.to_table();
        assert_eq!(table.len(), 13, "header + 8 paper-device + 4 wide rows");
        let json = m.to_json();
        assert!(json.contains("\"workload\": \"nn\""));
        assert!(json.contains("\"replicas\": 3"));
        assert!(json.contains("\"frontier\""));
        assert!(json.contains("\"policy\": \"SLICE\""));
        assert!(json.contains("\"wide_cells\""));
        assert!(json.contains("\"wide_replica_counts\": [5]"));
        // Frontier points exist for every realized (policy, replicas).
        let frontier = m.frontier();
        assert!(frontier
            .iter()
            .any(|p| p.policy == "SRRS" && p.replicas == 3 && p.mean_makespan_overhead > 2.0));
        // Costs rise with the replica count under the serializing policy.
        let srrs2 = frontier
            .iter()
            .find(|p| p.policy == "SRRS" && p.replicas == 2)
            .expect("srrs@2");
        let srrs3 = frontier
            .iter()
            .find(|p| p.policy == "SRRS" && p.replicas == 3)
            .expect("srrs@3");
        assert!(
            srrs3.mean_makespan_overhead > srrs2.mean_makespan_overhead,
            "a third serialized replica must cost makespan: {srrs2:?} vs {srrs3:?}"
        );
        // The wide device contributes the 5MR frontier point, measured
        // against its own solo baseline.
        let srrs5 = frontier
            .iter()
            .find(|p| p.policy == "SRRS" && p.replicas == 5)
            .expect("srrs@5 from the wide sweep");
        assert!(
            srrs5.mean_makespan_overhead > srrs3.mean_makespan_overhead,
            "five serialized replicas cost more than three: {srrs3:?} vs {srrs5:?}"
        );
        assert_eq!(srrs5.undetected, 0, "5MR keeps the ASIL-D fence");
    }

    #[test]
    fn pipeline_axis_sweeps_exec_modes_and_renders() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 3,
            workloads: vec!["iterated_fma".into()],
            policies: vec![PolicyKind::Srrs],
            faults: vec![
                FaultSpec::Transient { duration: 400 },
                FaultSpec::Misroute, // classified via the inter-stage BIST
            ],
            pipelines: vec!["sensor_fusion".into()],
            replica_counts: vec![2],
            check_serial: true,
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(m.reports.len(), 2, "workload cells keep misroute");
        assert_eq!(
            m.pipeline_reports.len(),
            4,
            "1 pipeline x 1 policy x 1 replica count x 2 faults x 2 executors"
        );
        for r in &m.pipeline_reports {
            assert_eq!(r.pipeline, "sensor_fusion");
            assert_eq!(r.policy, "SRRS");
            assert_eq!(r.stages, 4);
            assert!(r.bandwidth_bytes > 0);
            if r.exec == "overlapped" {
                assert!(
                    r.e2e_deadline < r.serial_sum_deadline,
                    "the DAG join puts the critical path strictly below the sum: {r:?}"
                );
            } else {
                assert_eq!(
                    r.e2e_deadline, r.serial_sum_deadline,
                    "serial cells are enforced against (and report) the sum: {r:?}"
                );
            }
            assert_eq!(
                r.trials,
                r.not_activated + r.masked + r.corrected + r.recovered + r.detected + r.undetected
            );
        }
        assert_eq!(m.pipeline_undetected_under_diverse_policies(), 0);
        // The default limp axis adds one multi-frame mission cell for the
        // transient family (misroute has nothing to diagnose) — and a
        // transient must never cost the device an SM.
        assert_eq!(m.limp_reports.len(), 1, "{:?}", m.limp_reports);
        let limp = &m.limp_reports[0];
        assert_eq!(limp.frames, 4);
        assert_eq!(limp.fault, "transient-sm");
        assert_eq!(limp.undetected, 0);
        assert_eq!(
            m.limp_false_quarantines(),
            0,
            "a transient-class fault must never be convicted as permanent: {limp:?}"
        );
        assert_eq!(m.limp_deadline_misses(), 0);
        let table = m.pipeline_table();
        assert_eq!(table.len(), 6, "header + 4 single-frame + 1 limp row");
        let json = m.to_json();
        assert!(json.contains("\"pipelines\""));
        assert!(json.contains("\"pipeline\": \"sensor_fusion\""));
        assert!(json.contains("\"recovery_rate\""));
        assert!(json.contains("\"deadline_miss_rate\""));
        assert!(json.contains("\"critical_path_ftti\""));
        assert!(json.contains("\"exec\": \"overlapped\""));
        assert!(json.contains("\"makespan_speedup\""));
        assert!(json.contains("\"degraded_mode\""));
        assert!(json.contains("\"post_quarantine_makespan_inflation\""));
        assert!(json.contains("\"false_quarantines\": 0"));
        let frontier = m.pipeline_frontier();
        assert_eq!(frontier.len(), 2, "one point per executor");
        assert!(frontier.iter().all(|p| p.trials == 6));
        // The serial-vs-overlapped comparison exists per fault and shows
        // overlap strictly winning on makespan and FTTI.
        let speedups = m.pipeline_speedups();
        assert_eq!(speedups.len(), 1, "one pair per (pipeline, policy, N)");
        for s in &speedups {
            assert!(
                s.serial_makespan > s.overlapped_makespan,
                "overlap must strictly shrink the frame: {s:?}"
            );
            assert!(s.makespan_speedup() > 1.0);
            assert!(s.ftti_tightening() > 1.0);
        }
    }

    #[test]
    fn permanent_limp_cells_quarantine_and_report_degraded_mode() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["iterated_fma".into()],
            policies: vec![PolicyKind::Srrs],
            faults: vec![FaultSpec::Permanent],
            pipelines: vec!["sensor_fusion".into()],
            pipeline_trials: Some(1),
            pipeline_exec: vec![ExecMode::Overlapped],
            replica_counts: vec![2],
            wide_replica_counts: Vec::new(),
            limp_trials: Some(2),
            check_serial: true,
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert!(m.wide_reports.is_empty(), "wide axis disabled");
        assert_eq!(m.limp_reports.len(), 1);
        let limp = &m.limp_reports[0];
        assert_eq!(limp.fault, "permanent-sm");
        assert_eq!(limp.exec, "overlapped");
        assert_eq!(limp.frames, 4);
        assert_eq!(limp.undetected, 0);
        assert!(
            m.limp_quarantined() >= 1,
            "a mid-mission permanent fault gets diagnosed and quarantined: {limp:?}"
        );
        assert_eq!(m.limp_home_misses(), 0, "{limp:?}");
        assert_eq!(m.limp_deadline_misses(), 0, "{limp:?}");
        assert_eq!(
            m.limp_false_quarantines(),
            0,
            "permanent convictions are attributed, not false"
        );
        assert!(m.limp_mean_frames_to_diagnosis().expect("diagnosed") >= 1.0);
        let json = m.to_json();
        assert!(json.contains("\"degraded_mode\""));
        assert!(json.contains("\"quarantined\""));
    }

    #[test]
    fn duplicate_realized_policies_are_swept_once() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["iterated_fma".into()],
            policies: vec![PolicyKind::Half, PolicyKind::Slice],
            faults: vec![FaultSpec::Permanent],
            replica_counts: vec![3],
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(
            m.reports.len(),
            1,
            "HALF and SLICE both realize as SLICE at N=3: {:?}",
            m.reports
        );
        assert_eq!(m.reports[0].policy, "SLICE");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["nope".into()],
            policies: vec![PolicyKind::Srrs],
            faults: vec![FaultSpec::Permanent],
            ..MatrixConfig::default()
        };
        assert!(matches!(
            run_matrix(&reg, &cfg),
            Err(CampaignError::UnknownWorkload(_))
        ));
    }
}
