//! The campaign matrix: fault-injection campaigns swept over
//! {workload × fault model × scheduler policy}, resolved through the
//! unified workload registry — the paper's coverage argument (Fig. 3/4
//! territory) extended from one synthetic workload to the full Rodinia
//! suite.

use crate::campaign_perf::ThroughputResult;
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::{
    run_campaign_selected, run_campaign_selected_serial, CampaignConfig, CampaignError,
    CampaignReport, CampaignSpec, FaultSpec,
};
use higpu_workloads::{Scale, WorkloadRegistry};

/// The registry every sweep resolves workloads from: the synthetic
/// workloads plus all Rodinia benchmarks.
pub fn full_registry() -> WorkloadRegistry {
    let mut reg = WorkloadRegistry::new();
    higpu_workloads::synthetic::register(&mut reg);
    higpu_rodinia::register_all(&mut reg);
    reg
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Injection trials per (workload, policy, fault) cell.
    pub trials: u32,
    /// Campaign seed (each cell is fully reproducible).
    pub seed: u64,
    /// Workload names to sweep; empty = every registered workload.
    pub workloads: Vec<String>,
    /// Scheduler policies to sweep.
    pub policies: Vec<PolicyKind>,
    /// Fault families to sweep.
    pub faults: Vec<FaultSpec>,
    /// Input scale built per workload.
    pub scale: Scale,
    /// Worker threads per campaign (0 = auto; see
    /// [`CampaignConfig::resolved_workers`]).
    pub workers: usize,
    /// Also run the serial reference engine per cell and assert the
    /// parallel report bit-identical (slower; the determinism fence).
    pub check_serial: bool,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            trials: 6,
            seed: 0x0DD5EED,
            workloads: Vec::new(),
            policies: PolicyKind::all().to_vec(),
            faults: vec![FaultSpec::Transient { duration: 400 }, FaultSpec::Permanent],
            scale: Scale::Campaign,
            workers: 0,
            check_serial: false,
        }
    }
}

/// Results of one sweep.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Trials per cell.
    pub trials: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Scale label (`campaign` / `full`).
    pub scale: &'static str,
    /// One report per (workload, policy, fault) cell, in sweep order.
    pub reports: Vec<CampaignReport>,
}

impl MatrixResult {
    /// Total undetected failures across cells whose policy guarantees
    /// diversity (the paper's ASIL-D claim requires this to be 0).
    pub fn undetected_under_diverse_policies(&self) -> u32 {
        let diverse_labels: Vec<&str> = PolicyKind::all()
            .into_iter()
            .filter(|p| p.guarantees_diversity())
            .map(PolicyKind::label)
            .collect();
        self.reports
            .iter()
            .filter(|r| diverse_labels.contains(&r.policy.as_str()))
            .map(|r| r.undetected)
            .sum()
    }

    /// Renders the matrix as rows for [`crate::table`].
    pub fn to_table(&self) -> Vec<Vec<String>> {
        let mut out = vec![vec![
            "workload".to_string(),
            "policy".to_string(),
            "fault".to_string(),
            "trials".to_string(),
            "inactive".to_string(),
            "masked".to_string(),
            "detected".to_string(),
            "UNDETECTED".to_string(),
            "coverage".to_string(),
        ]];
        for r in &self.reports {
            out.push(vec![
                r.workload.clone(),
                r.policy.clone(),
                r.fault.to_string(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.masked.to_string(),
                r.detected.to_string(),
                r.undetected.to_string(),
                r.coverage()
                    .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
            ]);
        }
        out
    }

    /// Renders the matrix as a JSON value (an object with sweep metadata
    /// and one entry per cell).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .reports
            .iter()
            .map(|r| {
                format!(
                    "{{\"workload\": \"{}\", \"policy\": \"{}\", \"fault\": \"{}\", \
                     \"trials\": {}, \"not_activated\": {}, \"masked\": {}, \
                     \"detected\": {}, \"undetected\": {}, \"coverage\": {}}}",
                    r.workload,
                    r.policy,
                    r.fault,
                    r.trials,
                    r.not_activated,
                    r.masked,
                    r.detected,
                    r.undetected,
                    r.coverage()
                        .map_or("null".to_string(), |c| format!("{c:.4}")),
                )
            })
            .collect();
        format!(
            "{{\n    \"trials_per_cell\": {},\n    \"seed\": {},\n    \"scale\": \"{}\",\n    \
             \"undetected_under_diverse_policies\": {},\n    \"cells\": [\n      {}\n    ]\n  }}",
            self.trials,
            self.seed,
            self.scale,
            self.undetected_under_diverse_policies(),
            cells.join(",\n      "),
        )
    }
}

/// Runs the sweep: one parallel campaign per (workload, policy, fault)
/// cell, all resolved through `reg`.
///
/// # Errors
///
/// [`CampaignError::UnknownWorkload`] when `cfg.workloads` names an
/// unregistered workload; otherwise propagates campaign errors.
///
/// # Panics
///
/// With `cfg.check_serial`, panics if any parallel report differs from the
/// serial reference — a determinism bug, not a measurement.
pub fn run_matrix(
    reg: &WorkloadRegistry,
    cfg: &MatrixConfig,
) -> Result<MatrixResult, CampaignError> {
    let names: Vec<String> = if cfg.workloads.is_empty() {
        reg.names().iter().map(|n| n.to_string()).collect()
    } else {
        cfg.workloads.clone()
    };
    let campaign = CampaignConfig {
        trials: cfg.trials,
        seed: cfg.seed,
        workers: cfg.workers,
        ..CampaignConfig::default()
    };
    let mut reports = Vec::with_capacity(names.len() * cfg.policies.len() * cfg.faults.len());
    for name in &names {
        for &policy in &cfg.policies {
            for &fault in &cfg.faults {
                let spec = CampaignSpec {
                    workload: name.clone(),
                    scale: cfg.scale,
                    policy,
                    fault,
                };
                let report = run_campaign_selected(&campaign, reg, &spec)?;
                if cfg.check_serial {
                    let serial = run_campaign_selected_serial(&campaign, reg, &spec)?;
                    assert_eq!(
                        report, serial,
                        "parallel report must be bit-identical to the serial reference \
                         for {name} under {policy:?}/{fault:?}"
                    );
                }
                reports.push(report);
            }
        }
    }
    Ok(MatrixResult {
        trials: cfg.trials,
        seed: cfg.seed,
        scale: cfg.scale.label(),
        reports,
    })
}

/// Renders the combined `BENCH_campaign.json` document: engine throughput
/// plus the campaign matrix.
pub fn bench_document(throughput: &ThroughputResult, matrix: &MatrixResult) -> String {
    throughput.to_json_with_extra(&[("matrix", &matrix.to_json())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_sweeps_and_renders() {
        let reg = full_registry();
        assert!(reg.len() >= 17, "synthetic + 16 Rodinia");
        let cfg = MatrixConfig {
            trials: 2,
            workloads: vec!["iterated_fma".into(), "nn".into()],
            policies: vec![PolicyKind::Srrs, PolicyKind::Half],
            faults: vec![FaultSpec::Permanent],
            check_serial: true,
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(m.reports.len(), 4, "2 workloads x 2 policies x 1 fault");
        assert_eq!(m.undetected_under_diverse_policies(), 0);
        let table = m.to_table();
        assert_eq!(table.len(), 5, "header + 4 rows");
        let json = m.to_json();
        assert!(json.contains("\"workload\": \"nn\""));
        assert!(json.contains("\"cells\""));
    }

    #[test]
    fn unknown_workload_is_reported() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["nope".into()],
            policies: vec![PolicyKind::Srrs],
            faults: vec![FaultSpec::Permanent],
            ..MatrixConfig::default()
        };
        assert!(matches!(
            run_matrix(&reg, &cfg),
            Err(CampaignError::UnknownWorkload(_))
        ));
    }
}
