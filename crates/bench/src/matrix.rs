//! The campaign matrix: fault-injection campaigns swept over
//! {workload × fault model × scheduler policy × replica count}, resolved
//! through the unified workload registry — the paper's coverage argument
//! (Fig. 3/4 territory) extended from one synthetic two-replica workload to
//! the full Rodinia suite at N ∈ {2, 3, …} replicas, with the
//! coverage-vs-cost *frontier* (detected/corrected/undetected vs makespan
//! overhead) summarized per (policy, replicas).

use crate::campaign_perf::ThroughputResult;
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::{
    run_campaign_selected, run_campaign_selected_serial, CampaignConfig, CampaignError,
    CampaignReport, CampaignSpec, FaultSpec,
};
use higpu_sim::gpu::Gpu;
use higpu_workloads::runner::run_solo;
use higpu_workloads::{Scale, WorkloadRegistry};

/// The registry every sweep resolves workloads from: the synthetic
/// workloads plus all Rodinia benchmarks.
pub fn full_registry() -> WorkloadRegistry {
    let mut reg = WorkloadRegistry::new();
    higpu_workloads::synthetic::register(&mut reg);
    higpu_rodinia::register_all(&mut reg);
    reg
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Injection trials per (workload, policy, fault, replicas) cell.
    pub trials: u32,
    /// Campaign seed (each cell is fully reproducible).
    pub seed: u64,
    /// Workload names to sweep; empty = every registered workload.
    pub workloads: Vec<String>,
    /// Scheduler policies to sweep. At each replica count a policy is
    /// realized through [`PolicyKind::for_replicas`]: HALF generalizes to
    /// SLICE above two replicas, the uncontrolled baseline (two-replica
    /// only) is skipped, duplicates are deduplicated.
    pub policies: Vec<PolicyKind>,
    /// Fault families to sweep.
    pub faults: Vec<FaultSpec>,
    /// Replica counts to sweep (the NMR axis; 2 = the paper's DCLS).
    pub replica_counts: Vec<u8>,
    /// Input scale built per workload.
    pub scale: Scale,
    /// Worker threads per campaign (0 = auto; see
    /// [`CampaignConfig::resolved_workers`]).
    pub workers: usize,
    /// Also run the serial reference engine per cell and assert the
    /// parallel report bit-identical (slower; the determinism fence).
    pub check_serial: bool,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            trials: 6,
            seed: 0x0DD5EED,
            workloads: Vec::new(),
            policies: PolicyKind::all().to_vec(),
            faults: vec![FaultSpec::Transient { duration: 400 }, FaultSpec::Permanent],
            replica_counts: vec![2, 3],
            scale: Scale::Campaign,
            workers: 0,
            check_serial: false,
        }
    }
}

/// One (policy, replicas) aggregate of the coverage-vs-cost frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Policy label.
    pub policy: String,
    /// Replica count.
    pub replicas: u8,
    /// Cells aggregated.
    pub cells: u32,
    /// Summed detected trials.
    pub detected: u32,
    /// Summed corrected trials.
    pub corrected: u32,
    /// Summed undetected failures.
    pub undetected: u32,
    /// Mean redundant fault-free makespan over the workloads' solo
    /// makespans (the cost of the redundancy level; ≥ replicas for
    /// serializing policies, < replicas for concurrent ones).
    pub mean_makespan_overhead: f64,
}

/// Results of one sweep.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Trials per cell.
    pub trials: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Scale label (`campaign` / `full`).
    pub scale: &'static str,
    /// Replica counts swept.
    pub replica_counts: Vec<u8>,
    /// Fault-free **solo** (non-redundant) makespan per swept workload —
    /// the denominator of every cell's makespan overhead.
    pub solo_makespans: Vec<(String, u64)>,
    /// One report per (workload, replicas, policy, fault) cell, in sweep
    /// order.
    pub reports: Vec<CampaignReport>,
}

impl MatrixResult {
    /// Total undetected failures across cells whose policy guarantees
    /// diversity (the paper's ASIL-D claim requires this to be 0 — at
    /// every replica count).
    pub fn undetected_under_diverse_policies(&self) -> u32 {
        let diverse_labels: Vec<&str> = PolicyKind::all_extended()
            .into_iter()
            .filter(|p| p.guarantees_diversity())
            .map(PolicyKind::label)
            .collect();
        self.reports
            .iter()
            .filter(|r| diverse_labels.contains(&r.policy.as_str()))
            .map(|r| r.undetected)
            .sum()
    }

    /// Total corrected trials across all cells (non-zero only when the
    /// sweep includes N ≥ 3 replica counts).
    pub fn total_corrected(&self) -> u32 {
        self.reports.iter().map(|r| r.corrected).sum()
    }

    /// The solo makespan of `workload`, if it was swept.
    fn solo_makespan(&self, workload: &str) -> Option<u64> {
        self.solo_makespans
            .iter()
            .find(|(n, _)| n == workload)
            .map(|&(_, m)| m)
    }

    /// A cell's makespan overhead: redundant fault-free makespan over the
    /// workload's solo makespan.
    pub fn makespan_overhead(&self, r: &CampaignReport) -> Option<f64> {
        let solo = self.solo_makespan(&r.workload)?;
        (solo > 0).then(|| r.fault_free_makespan as f64 / solo as f64)
    }

    /// The coverage-vs-cost frontier: per (policy, replicas), summed
    /// outcome counts and the mean makespan overhead — the quantitative
    /// form of the ASIL-decomposition trade (more replicas buy correction,
    /// at redundant-makespan cost).
    pub fn frontier(&self) -> Vec<FrontierPoint> {
        let mut points: Vec<FrontierPoint> = Vec::new();
        for r in &self.reports {
            let overhead = self.makespan_overhead(r).unwrap_or(0.0);
            match points
                .iter_mut()
                .find(|p| p.policy == r.policy && p.replicas == r.replicas)
            {
                Some(p) => {
                    p.cells += 1;
                    p.detected += r.detected;
                    p.corrected += r.corrected;
                    p.undetected += r.undetected;
                    p.mean_makespan_overhead += overhead;
                }
                None => points.push(FrontierPoint {
                    policy: r.policy.clone(),
                    replicas: r.replicas,
                    cells: 1,
                    detected: r.detected,
                    corrected: r.corrected,
                    undetected: r.undetected,
                    mean_makespan_overhead: overhead,
                }),
            }
        }
        for p in &mut points {
            p.mean_makespan_overhead /= f64::from(p.cells.max(1));
        }
        points
    }

    /// Renders the matrix as rows for [`crate::table`].
    pub fn to_table(&self) -> Vec<Vec<String>> {
        let mut out = vec![vec![
            "workload".to_string(),
            "policy".to_string(),
            "N".to_string(),
            "fault".to_string(),
            "trials".to_string(),
            "inactive".to_string(),
            "masked".to_string(),
            "detected".to_string(),
            "corrected".to_string(),
            "UNDETECTED".to_string(),
            "coverage".to_string(),
            "overhead".to_string(),
        ]];
        for r in &self.reports {
            out.push(vec![
                r.workload.clone(),
                r.policy.clone(),
                r.replicas.to_string(),
                r.fault.to_string(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.masked.to_string(),
                r.detected.to_string(),
                r.corrected.to_string(),
                r.undetected.to_string(),
                r.coverage()
                    .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
                self.makespan_overhead(r)
                    .map_or("n/a".to_string(), |o| format!("{o:.2}x")),
            ]);
        }
        out
    }

    /// Renders the matrix as a JSON value: sweep metadata, one entry per
    /// cell, and the per-(policy, replicas) coverage-vs-cost frontier.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .reports
            .iter()
            .map(|r| {
                format!(
                    "{{\"workload\": \"{}\", \"policy\": \"{}\", \"replicas\": {}, \
                     \"fault\": \"{}\", \"trials\": {}, \"not_activated\": {}, \
                     \"masked\": {}, \"detected\": {}, \"corrected\": {}, \
                     \"undetected\": {}, \"coverage\": {}, \
                     \"fault_free_makespan\": {}, \"makespan_overhead\": {}}}",
                    r.workload,
                    r.policy,
                    r.replicas,
                    r.fault,
                    r.trials,
                    r.not_activated,
                    r.masked,
                    r.detected,
                    r.corrected,
                    r.undetected,
                    r.coverage()
                        .map_or("null".to_string(), |c| format!("{c:.4}")),
                    r.fault_free_makespan,
                    self.makespan_overhead(r)
                        .map_or("null".to_string(), |o| format!("{o:.3}")),
                )
            })
            .collect();
        let frontier: Vec<String> = self
            .frontier()
            .iter()
            .map(|p| {
                format!(
                    "{{\"policy\": \"{}\", \"replicas\": {}, \"cells\": {}, \
                     \"detected\": {}, \"corrected\": {}, \"undetected\": {}, \
                     \"mean_makespan_overhead\": {:.3}}}",
                    p.policy,
                    p.replicas,
                    p.cells,
                    p.detected,
                    p.corrected,
                    p.undetected,
                    p.mean_makespan_overhead,
                )
            })
            .collect();
        let replica_counts: Vec<String> = self.replica_counts.iter().map(u8::to_string).collect();
        format!(
            "{{\n    \"trials_per_cell\": {},\n    \"seed\": {},\n    \"scale\": \"{}\",\n    \
             \"replica_counts\": [{}],\n    \
             \"undetected_under_diverse_policies\": {},\n    \
             \"total_corrected\": {},\n    \"cells\": [\n      {}\n    ],\n    \
             \"frontier\": [\n      {}\n    ]\n  }}",
            self.trials,
            self.seed,
            self.scale,
            replica_counts.join(", "),
            self.undetected_under_diverse_policies(),
            self.total_corrected(),
            cells.join(",\n      "),
            frontier.join(",\n      "),
        )
    }
}

/// Runs the sweep: one parallel campaign per (workload, replicas, policy,
/// fault) cell, all resolved through `reg`. Policies are realized per
/// replica count via [`PolicyKind::for_replicas`] (HALF → SLICE above two
/// replicas; the uncontrolled baseline only at two), then deduplicated.
///
/// # Errors
///
/// [`CampaignError::UnknownWorkload`] when `cfg.workloads` names an
/// unregistered workload; otherwise propagates campaign errors.
///
/// # Panics
///
/// With `cfg.check_serial`, panics if any parallel report differs from the
/// serial reference — a determinism bug, not a measurement.
pub fn run_matrix(
    reg: &WorkloadRegistry,
    cfg: &MatrixConfig,
) -> Result<MatrixResult, CampaignError> {
    let names: Vec<String> = if cfg.workloads.is_empty() {
        reg.names().iter().map(|n| n.to_string()).collect()
    } else {
        cfg.workloads.clone()
    };
    let campaign = CampaignConfig {
        trials: cfg.trials,
        seed: cfg.seed,
        workers: cfg.workers,
        ..CampaignConfig::default()
    };
    // Solo (non-redundant) fault-free makespan per workload: the cost
    // baseline every redundant cell's overhead is measured against.
    let mut solo_makespans = Vec::with_capacity(names.len());
    for name in &names {
        let workload = reg
            .build(name, cfg.scale)
            .ok_or_else(|| CampaignError::UnknownWorkload(name.clone()))?;
        let mut gpu = Gpu::new(campaign.gpu.clone());
        run_solo(&mut gpu, &*workload).map_err(|e| {
            CampaignError::Redundancy(match e {
                higpu_workloads::SessionError::Sim(err) => {
                    higpu_core::redundancy::RedundancyError::Sim(err)
                }
                higpu_workloads::SessionError::Redundancy(err) => err,
                // Solo sessions have one replica; mismatches cannot occur.
                higpu_workloads::SessionError::ReplicaMismatch { .. } => {
                    unreachable!("solo runs cannot mismatch")
                }
            })
        })?;
        solo_makespans.push((name.clone(), gpu.trace().makespan().unwrap_or(0)));
    }
    let mut reports = Vec::with_capacity(
        names.len() * cfg.replica_counts.len() * cfg.policies.len() * cfg.faults.len(),
    );
    for name in &names {
        for &replicas in &cfg.replica_counts {
            let mut realized: Vec<PolicyKind> = Vec::new();
            for policy in &cfg.policies {
                let Some(p) = policy.for_replicas(replicas) else {
                    continue; // e.g. the uncontrolled baseline above N=2
                };
                if !realized.contains(&p) {
                    realized.push(p); // HALF and SLICE may coincide at N>2
                }
            }
            for &policy in &realized {
                for &fault in &cfg.faults {
                    let spec = CampaignSpec {
                        workload: name.clone(),
                        scale: cfg.scale,
                        policy,
                        fault,
                        replicas,
                    };
                    let report = run_campaign_selected(&campaign, reg, &spec)?;
                    if cfg.check_serial {
                        let serial = run_campaign_selected_serial(&campaign, reg, &spec)?;
                        assert_eq!(
                            report, serial,
                            "parallel report must be bit-identical to the serial reference \
                             for {name} under {policy:?}/{fault:?} at {replicas} replicas"
                        );
                    }
                    reports.push(report);
                }
            }
        }
    }
    Ok(MatrixResult {
        trials: cfg.trials,
        seed: cfg.seed,
        scale: cfg.scale.label(),
        replica_counts: cfg.replica_counts.clone(),
        solo_makespans,
        reports,
    })
}

/// Renders the combined `BENCH_campaign.json` document: engine throughput
/// plus the campaign matrix (cells and coverage-vs-cost frontier).
pub fn bench_document(throughput: &ThroughputResult, matrix: &MatrixResult) -> String {
    throughput.to_json_with_extra(&[("matrix", &matrix.to_json())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_sweeps_replicas_and_renders() {
        let reg = full_registry();
        assert!(reg.len() >= 17, "synthetic + 16 Rodinia");
        let cfg = MatrixConfig {
            trials: 2,
            workloads: vec!["iterated_fma".into(), "nn".into()],
            policies: vec![PolicyKind::Srrs, PolicyKind::Half],
            faults: vec![FaultSpec::Permanent],
            check_serial: true,
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(
            m.reports.len(),
            8,
            "2 workloads x (2 policies @ N=2 + {{SRRS, SLICE}} @ N=3) x 1 fault"
        );
        assert_eq!(m.undetected_under_diverse_policies(), 0);
        assert!(
            m.total_corrected() > 0,
            "TMR cells must outvote some faults: {:?}",
            m.reports
        );
        // Two-replica cells never correct.
        for r in m.reports.iter().filter(|r| r.replicas == 2) {
            assert_eq!(r.corrected, 0, "{r:?}");
        }
        let table = m.to_table();
        assert_eq!(table.len(), 9, "header + 8 rows");
        let json = m.to_json();
        assert!(json.contains("\"workload\": \"nn\""));
        assert!(json.contains("\"replicas\": 3"));
        assert!(json.contains("\"frontier\""));
        assert!(json.contains("\"policy\": \"SLICE\""));
        // Frontier points exist for every realized (policy, replicas).
        let frontier = m.frontier();
        assert!(frontier
            .iter()
            .any(|p| p.policy == "SRRS" && p.replicas == 3 && p.mean_makespan_overhead > 2.0));
        // Costs rise with the replica count under the serializing policy.
        let srrs2 = frontier
            .iter()
            .find(|p| p.policy == "SRRS" && p.replicas == 2)
            .expect("srrs@2");
        let srrs3 = frontier
            .iter()
            .find(|p| p.policy == "SRRS" && p.replicas == 3)
            .expect("srrs@3");
        assert!(
            srrs3.mean_makespan_overhead > srrs2.mean_makespan_overhead,
            "a third serialized replica must cost makespan: {srrs2:?} vs {srrs3:?}"
        );
    }

    #[test]
    fn duplicate_realized_policies_are_swept_once() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["iterated_fma".into()],
            policies: vec![PolicyKind::Half, PolicyKind::Slice],
            faults: vec![FaultSpec::Permanent],
            replica_counts: vec![3],
            ..MatrixConfig::default()
        };
        let m = run_matrix(&reg, &cfg).expect("sweep");
        assert_eq!(
            m.reports.len(),
            1,
            "HALF and SLICE both realize as SLICE at N=3: {:?}",
            m.reports
        );
        assert_eq!(m.reports[0].policy, "SLICE");
    }

    #[test]
    fn unknown_workload_is_reported() {
        let reg = full_registry();
        let cfg = MatrixConfig {
            trials: 1,
            workloads: vec!["nope".into()],
            policies: vec![PolicyKind::Srrs],
            faults: vec![FaultSpec::Permanent],
            ..MatrixConfig::default()
        };
        assert!(matches!(
            run_matrix(&reg, &cfg),
            Err(CampaignError::UnknownWorkload(_))
        ));
    }
}
