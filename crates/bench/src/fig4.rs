//! Figure 4: redundant-kernel simulation cycles under the three global
//! kernel schedulers, normalized to the unconstrained default.

use higpu_core::diversity::{analyze, DiversityRequirements};
use higpu_core::metrics::redundant_kernel_cycles;
use higpu_core::redundancy::{RedundancyMode, RedundantExecutor};
use higpu_rodinia::harness::{Benchmark, RedundantSession, SessionError};
use higpu_sim::config::GpuConfig;
use higpu_sim::gpu::Gpu;

/// One benchmark's Figure-4 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles under the default scheduler (redundant, uncontrolled).
    pub default_cycles: u64,
    /// Cycles under HALF.
    pub half_cycles: u64,
    /// Cycles under SRRS.
    pub srrs_cycles: u64,
    /// Diversity verdicts per policy (Default typically violates).
    pub diverse: [bool; 3],
}

impl Fig4Row {
    /// HALF cycles normalized to the default scheduler.
    pub fn half_norm(&self) -> f64 {
        self.half_cycles as f64 / self.default_cycles as f64
    }

    /// SRRS cycles normalized to the default scheduler.
    pub fn srrs_norm(&self) -> f64 {
        self.srrs_cycles as f64 / self.default_cycles as f64
    }
}

/// Runs one benchmark redundantly under `mode`; returns the Fig. 4 metric
/// and the diversity verdict.
///
/// # Errors
///
/// Propagates [`SessionError`] from the benchmark.
pub fn measure(
    cfg: &GpuConfig,
    bench: &dyn Benchmark,
    mode: RedundancyMode,
) -> Result<(u64, bool), SessionError> {
    let mut gpu = Gpu::new(cfg.clone());
    {
        let mut exec = RedundantExecutor::new(&mut gpu, mode).map_err(SessionError::Redundancy)?;
        let mut session = RedundantSession::new(&mut exec);
        bench.run(&mut session)?;
    }
    let cycles = redundant_kernel_cycles(gpu.trace())
        .expect("all redundant kernels completed after a successful run");
    let diverse = analyze(gpu.trace(), DiversityRequirements::default()).is_diverse();
    Ok((cycles, diverse))
}

/// Measures one benchmark under all three policies.
///
/// # Errors
///
/// Propagates [`SessionError`] from any run.
pub fn run_benchmark(cfg: &GpuConfig, bench: &dyn Benchmark) -> Result<Fig4Row, SessionError> {
    let n = cfg.num_sms;
    let (default_cycles, d0) = measure(cfg, bench, RedundancyMode::uncontrolled())?;
    let (half_cycles, d1) = measure(cfg, bench, RedundancyMode::Half)?;
    let (srrs_cycles, d2) = measure(cfg, bench, RedundancyMode::srrs_default(n))?;
    Ok(Fig4Row {
        benchmark: bench.name().to_string(),
        default_cycles,
        half_cycles,
        srrs_cycles,
        diverse: [d0, d1, d2],
    })
}

/// Runs the full Figure-4 experiment over the paper's benchmark subset.
///
/// # Errors
///
/// Propagates [`SessionError`] from any run.
pub fn run_all(cfg: &GpuConfig) -> Result<Vec<Fig4Row>, SessionError> {
    higpu_rodinia::fig4_benchmarks()
        .iter()
        .map(|b| run_benchmark(cfg, b.as_ref()))
        .collect()
}

/// Renders rows in the shape of the paper's figure.
pub fn to_table(rows: &[Fig4Row]) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "benchmark".to_string(),
        "GPGPU-SIM".to_string(),
        "HALF".to_string(),
        "SRRS".to_string(),
        "HALF_cycles".to_string(),
        "SRRS_cycles".to_string(),
        "diverse(HALF)".to_string(),
        "diverse(SRRS)".to_string(),
    ]];
    for r in rows {
        out.push(vec![
            r.benchmark.clone(),
            "1.00".to_string(),
            format!("{:.2}", r.half_norm()),
            format!("{:.2}", r.srrs_norm()),
            r.half_cycles.to_string(),
            r.srrs_cycles.to_string(),
            r.diverse[1].to_string(),
            r.diverse[2].to_string(),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_rodinia::nn::Nn;

    #[test]
    fn policies_measured_and_diverse() {
        let cfg = GpuConfig::paper_6sm();
        let nn = Nn {
            records: 512,
            ..Default::default()
        };
        let row = run_benchmark(&cfg, &nn).expect("runs");
        assert!(row.default_cycles > 0);
        assert!(row.diverse[1], "HALF must be diverse");
        assert!(row.diverse[2], "SRRS must be diverse");
        assert!(row.half_norm() > 0.5 && row.half_norm() < 4.0);
        assert!(row.srrs_norm() > 0.5 && row.srrs_norm() < 4.0);
    }
}
