//! Campaign-engine throughput measurement: serial reference vs. the
//! parallel worker-pool engine, with the determinism contract enforced on
//! every run (the parallel report must be bit-identical to the serial one).
//!
//! Shared by the `campaign_throughput` bench and the `bench_json` binary
//! that records `BENCH_campaign.json` for longitudinal tracking.

use higpu_core::redundancy::{RedundancyError, RedundancyMode};
use higpu_faults::campaign::{
    draw_models, ftti_deadline, run_campaign_serial, run_campaign_with_perf, CampaignConfig,
    CampaignPerf, CampaignReport, CampaignRunner, FaultSpec, TrialOutcome,
};
use higpu_faults::checkpoint::{record_reference, CheckpointConfig, ReferenceRun};
use higpu_faults::model::FaultModel;
use higpu_faults::workload::{CampaignWorkload, IteratedFma, RedundantWorkload};
use higpu_workloads::Scale;
use std::time::Instant;

/// Parameters of one throughput measurement.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Trials per engine run.
    pub trials: u32,
    /// Campaign seed (results are asserted identical across engines).
    pub seed: u64,
    /// Worker counts to sweep for the parallel engine.
    pub worker_counts: Vec<usize>,
    /// Fault family injected.
    pub spec: FaultSpec,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            seed: 0xC0FFEE,
            worker_counts: vec![1, 2, 4, 8],
            spec: FaultSpec::Transient { duration: 400 },
        }
    }
}

/// The standard benchmark workload (matches the coverage experiments).
pub fn bench_workload() -> IteratedFma {
    IteratedFma {
        n: 512,
        threads_per_block: 64,
        iters: 24,
    }
}

/// One timed engine run.
#[derive(Debug, Clone)]
pub struct EngineSample {
    /// Worker threads (0 marks the serial fresh-device reference engine).
    pub workers: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Campaign trials per wall-clock second.
    pub trials_per_sec: f64,
    /// Simulated dynamic instructions per wall-clock microsecond (MIPS).
    pub sim_mips: f64,
    /// Speedup over the serial reference.
    pub speedup_vs_serial: f64,
}

/// A full serial-vs-parallel sweep.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Workload name.
    pub workload: String,
    /// Fault family label.
    pub fault: &'static str,
    /// Trials per engine run.
    pub trials: u32,
    /// Campaign seed.
    pub seed: u64,
    /// CPUs available to this process.
    pub host_cpus: usize,
    /// The serial fresh-device reference engine.
    pub serial: EngineSample,
    /// The pooled engine at each requested worker count.
    pub parallel: Vec<EngineSample>,
    /// The (identical) campaign report, for context.
    pub report: CampaignReport,
    /// Simulation cost per engine run (identical across engines).
    pub perf: CampaignPerf,
}

impl ThroughputResult {
    /// The best parallel sample by speedup.
    pub fn best(&self) -> &EngineSample {
        self.parallel
            .iter()
            .max_by(|a, b| {
                a.speedup_vs_serial
                    .partial_cmp(&b.speedup_vs_serial)
                    .expect("finite speedups")
            })
            .unwrap_or(&self.serial)
    }

    /// Renders the result as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_with_extra(&[])
    }

    /// Renders the JSON document with extra top-level `(key, json-value)`
    /// sections appended — e.g. the campaign matrix
    /// (`higpu_bench::matrix::bench_document`).
    pub fn to_json_with_extra(&self, extra: &[(&str, &str)]) -> String {
        let sample = |s: &EngineSample| {
            format!(
                "{{\"workers\": {}, \"seconds\": {:.4}, \"trials_per_sec\": {:.2}, \
                 \"sim_mips\": {:.2}, \"speedup_vs_serial\": {:.3}}}",
                s.workers, s.seconds, s.trials_per_sec, s.sim_mips, s.speedup_vs_serial
            )
        };
        let parallel: Vec<String> = self.parallel.iter().map(&sample).collect();
        let best = self.best();
        let extra: String = extra
            .iter()
            .map(|(key, value)| format!(",\n  \"{key}\": {value}"))
            .collect();
        format!(
            "{{\n  \"bench\": \"campaign_throughput\",\n  \"workload\": \"{}\",\n  \
             \"fault\": \"{}\",\n  \"trials\": {},\n  \"seed\": {},\n  \"host_cpus\": {},\n  \
             \"sim_instructions_per_run\": {},\n  \"sim_cycles_per_run\": {},\n  \
             \"serial\": {},\n  \"parallel\": [\n    {}\n  ],\n  \
             \"best\": {{\"workers\": {}, \"speedup_vs_serial\": {:.3}}},\n  \
             \"report\": {{\"not_activated\": {}, \"masked\": {}, \"detected\": {}, \
             \"corrected\": {}, \"undetected\": {}}}{}\n}}\n",
            self.workload,
            self.fault,
            self.trials,
            self.seed,
            self.host_cpus,
            self.perf.sim_instructions,
            self.perf.sim_cycles,
            sample(&self.serial),
            parallel.join(",\n    "),
            best.workers,
            best.speedup_vs_serial,
            self.report.not_activated,
            self.report.masked,
            self.report.detected,
            self.report.corrected,
            self.report.undetected,
            extra,
        )
    }

    /// Renders a human-readable summary table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign_throughput: {} trials of {} on {} ({} CPUs)\n",
            self.trials, self.fault, self.workload, self.host_cpus
        ));
        out.push_str(&format!(
            "  serial (fresh device/trial): {:8.2} trials/s  {:8.2} sim-MIPS\n",
            self.serial.trials_per_sec, self.serial.sim_mips
        ));
        for s in &self.parallel {
            out.push_str(&format!(
                "  pooled  {:2} worker(s):        {:8.2} trials/s  {:8.2} sim-MIPS  {:5.2}x\n",
                s.workers, s.trials_per_sec, s.sim_mips, s.speedup_vs_serial
            ));
        }
        out
    }
}

/// Runs the sweep: one serial reference run, then the pooled engine per
/// worker count, asserting all reports bit-identical.
///
/// # Errors
///
/// Propagates campaign errors.
///
/// # Panics
///
/// Panics if any engine run produces a report differing from the serial
/// reference — that would be a determinism bug, not a measurement.
pub fn measure(cfg: &ThroughputConfig) -> Result<ThroughputResult, RedundancyError> {
    let workload = bench_workload();
    let mode = RedundancyMode::srrs_default(6);
    let campaign = CampaignConfig {
        trials: cfg.trials,
        seed: cfg.seed,
        ..CampaignConfig::default()
    };

    let t0 = Instant::now();
    let serial_report = run_campaign_serial(&campaign, &mode, cfg.spec, &workload)?;
    let serial_secs = t0.elapsed().as_secs_f64();

    let mut perf = CampaignPerf::default();
    let mut parallel = Vec::new();
    for &workers in &cfg.worker_counts {
        let mut c = campaign.clone();
        c.workers = workers;
        let t0 = Instant::now();
        let (report, p) = run_campaign_with_perf(&c, &mode, cfg.spec, &workload)?;
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            report, serial_report,
            "determinism violation at {workers} workers"
        );
        perf = p;
        parallel.push(EngineSample {
            workers,
            seconds: secs,
            trials_per_sec: f64::from(cfg.trials) / secs,
            sim_mips: p.sim_instructions as f64 / secs / 1e6,
            speedup_vs_serial: serial_secs / secs,
        });
    }

    let serial = EngineSample {
        workers: 0,
        seconds: serial_secs,
        trials_per_sec: f64::from(cfg.trials) / serial_secs,
        sim_mips: perf.sim_instructions as f64 / serial_secs / 1e6,
        speedup_vs_serial: 1.0,
    };
    Ok(ThroughputResult {
        workload: workload.name().to_string(),
        fault: cfg.spec.label(),
        trials: cfg.trials,
        seed: cfg.seed,
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        serial,
        parallel,
        report: serial_report,
        perf,
    })
}

/// One (workload, arm-cycle distribution) checkpointing measurement: the
/// same trials run from zero and checkpointed, outcomes asserted equal
/// trial by trial.
#[derive(Debug, Clone)]
pub struct CheckpointSample {
    /// Workload name.
    pub workload: String,
    /// Arm-cycle distribution label (`uniform` is the campaign engines'
    /// draw; `late-window` arms every fault in the last 1/16 of the run —
    /// the distribution suffix replay exists for).
    pub distribution: &'static str,
    /// Reference segments recorded for this workload.
    pub reference_segments: usize,
    /// Approximate checkpoint-store footprint in bytes.
    pub reference_bytes: usize,
    /// From-zero trials per wall-clock second.
    pub from_zero_trials_per_sec: f64,
    /// Checkpointed trials per wall-clock second, *including* the one-off
    /// reference recording pass.
    pub checkpointed_trials_per_sec: f64,
    /// `checkpointed / from-zero` throughput ratio.
    pub speedup: f64,
}

/// The checkpointed-campaign throughput sweep recorded under the
/// `checkpointing` key of `BENCH_campaign.json`.
#[derive(Debug, Clone)]
pub struct CheckpointingResult {
    /// Trials per sample.
    pub trials: u32,
    /// Snapshot stride in cycles.
    pub stride: u64,
    /// One sample per (workload, distribution).
    pub samples: Vec<CheckpointSample>,
}

impl CheckpointingResult {
    /// The largest measured speedup across samples.
    pub fn best_speedup(&self) -> f64 {
        self.samples.iter().map(|s| s.speedup).fold(0.0, f64::max)
    }

    /// Renders the JSON value for the `checkpointing` section.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"workload\": \"{}\", \"distribution\": \"{}\", \
                     \"reference_segments\": {}, \"reference_bytes\": {}, \
                     \"from_zero_trials_per_sec\": {:.2}, \
                     \"checkpointed_trials_per_sec\": {:.2}, \"speedup\": {:.2}}}",
                    s.workload,
                    s.distribution,
                    s.reference_segments,
                    s.reference_bytes,
                    s.from_zero_trials_per_sec,
                    s.checkpointed_trials_per_sec,
                    s.speedup,
                )
            })
            .collect();
        format!(
            "{{\"trials\": {}, \"stride\": {}, \"best_speedup\": {:.2}, \
             \"samples\": [\n    {}\n  ]}}",
            self.trials,
            self.stride,
            self.best_speedup(),
            rows.join(",\n    ")
        )
    }

    /// Renders the human-readable speedup table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "checkpointed campaigns ({} trials, stride {}): workload/distribution  \
             from-zero -> checkpointed trials/s (speedup)\n",
            self.trials, self.stride
        ));
        for s in &self.samples {
            out.push_str(&format!(
                "  {:>14}/{:11}: {:8.2} -> {:8.2} ({:.2}x, {} segments, {} KiB)\n",
                s.workload,
                s.distribution,
                s.from_zero_trials_per_sec,
                s.checkpointed_trials_per_sec,
                s.speedup,
                s.reference_segments,
                s.reference_bytes / 1024,
            ));
        }
        out
    }
}

/// Arm-cycle distribution of a checkpointing sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArmDistribution {
    /// The campaign engines' own uniform-in-window draw.
    Uniform,
    /// Every fault arms in the last 1/16 of the fault-free run.
    LateWindow,
}

impl ArmDistribution {
    fn label(self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::LateWindow => "late-window",
        }
    }

    fn models(self, campaign: &CampaignConfig, window_end: u64) -> Vec<FaultModel> {
        match self {
            Self::Uniform => {
                draw_models(campaign, FaultSpec::Transient { duration: 400 }, window_end)
            }
            Self::LateWindow => {
                let lo = window_end.saturating_sub(window_end / 16).max(1);
                (0..campaign.trials)
                    .map(|i| FaultModel::TransientSm {
                        sm: i as usize % campaign.gpu.num_sms,
                        start: lo + u64::from(i) % (window_end.saturating_sub(lo)).max(1),
                        duration: 400,
                        bit: (i % 32) as u8,
                    })
                    .collect()
            }
        }
    }
}

/// Runs `models` through one reusable runner; checkpointed iff `reference`
/// is given. Returns per-trial outcomes and wall-clock seconds.
fn time_trials(
    campaign: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
    models: &[FaultModel],
    deadline: Option<u64>,
    reference: Option<&ReferenceRun>,
) -> Result<(Vec<TrialOutcome>, f64), RedundancyError> {
    let mut runner = CampaignRunner::new(campaign);
    let t0 = Instant::now();
    let mut outcomes = Vec::with_capacity(models.len());
    for &model in models {
        outcomes.push(match reference {
            Some(r) => runner.run_trial_checkpointed(mode, workload, model, deadline, r)?,
            None => runner.run_trial_with_deadline(mode, workload, model, deadline)?,
        });
    }
    Ok((outcomes, t0.elapsed().as_secs_f64()))
}

fn measure_checkpoint_sample(
    campaign: &CampaignConfig,
    mode: &RedundancyMode,
    workload: &dyn RedundantWorkload,
    distribution: ArmDistribution,
    stride: u64,
) -> Result<CheckpointSample, RedundancyError> {
    // Record once outside the timed regions to derive the window; the
    // checkpointed timing below re-records so the one-off reference cost is
    // charged to the checkpointed engine, not hidden.
    let window_end = record_reference(campaign, mode, workload, stride)?.makespan();
    let deadline = Some(ftti_deadline(window_end, workload.ftti_multiplier()));
    let models = distribution.models(campaign, window_end);

    let (from_zero, zero_secs) = time_trials(campaign, mode, workload, &models, deadline, None)?;
    let t0 = Instant::now();
    let reference = record_reference(campaign, mode, workload, stride)?;
    let (checkpointed, _) = time_trials(
        campaign,
        mode,
        workload,
        &models,
        deadline,
        Some(&reference),
    )?;
    let ck_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        from_zero,
        checkpointed,
        "checkpointed outcomes diverged from from-zero on {} ({})",
        workload.name(),
        distribution.label()
    );

    let trials = models.len() as f64;
    Ok(CheckpointSample {
        workload: workload.name().to_string(),
        distribution: distribution.label(),
        reference_segments: reference.segments(),
        reference_bytes: reference.approx_bytes(),
        from_zero_trials_per_sec: trials / zero_secs,
        checkpointed_trials_per_sec: trials / ck_secs,
        speedup: zero_secs / ck_secs,
    })
}

/// Measures checkpointed-campaign throughput against from-zero execution on
/// the benchmark workload and a long Rodinia workload (`srad`), each under
/// the uniform campaign draw and a late-window arm distribution. Every
/// sample asserts the two engines' per-trial outcomes identical.
///
/// # Errors
///
/// Propagates campaign errors.
///
/// # Panics
///
/// Panics if any checkpointed trial's outcome differs from its from-zero
/// twin — that would be a determinism bug, not a measurement.
pub fn measure_checkpointing(
    trials: u32,
    seed: u64,
) -> Result<CheckpointingResult, RedundancyError> {
    let stride = CheckpointConfig::default().stride;
    let mode = RedundancyMode::srrs_default(6);
    let campaign = CampaignConfig {
        trials,
        seed,
        ..CampaignConfig::default()
    };
    let registry = crate::matrix::full_registry();
    let fma = bench_workload();
    let srad = CampaignWorkload::from_registry(&registry, "srad", Scale::Campaign)
        .expect("srad registered");
    let workloads: [&dyn RedundantWorkload; 2] = [&fma, &srad];

    let mut samples = Vec::new();
    for workload in workloads {
        for distribution in [ArmDistribution::Uniform, ArmDistribution::LateWindow] {
            samples.push(measure_checkpoint_sample(
                &campaign,
                &mode,
                workload,
                distribution,
                stride,
            )?);
        }
    }
    Ok(CheckpointingResult {
        trials,
        stride,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_renders() {
        let cfg = ThroughputConfig {
            trials: 4,
            worker_counts: vec![1, 2],
            ..ThroughputConfig::default()
        };
        let r = measure(&cfg).expect("sweep");
        assert_eq!(r.parallel.len(), 2);
        assert!(r.serial.trials_per_sec > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"campaign_throughput\""));
        assert!(json.contains("\"trials\": 4"));
        assert!(r.to_table().contains("trials/s"));
        assert!(r.best().workers >= 1);
    }

    #[test]
    fn checkpointing_sweep_runs_and_renders() {
        let r = measure_checkpointing(3, 0xC0FFEE).expect("checkpointing sweep");
        assert_eq!(r.samples.len(), 4, "2 workloads x 2 distributions");
        for s in &r.samples {
            assert!(s.reference_segments > 0 && s.reference_bytes > 0);
            assert!(s.from_zero_trials_per_sec > 0.0);
            assert!(s.checkpointed_trials_per_sec > 0.0);
        }
        assert!(r.best_speedup() > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"distribution\": \"late-window\""));
        assert!(json.contains("\"workload\": \"srad\""));
        assert!(r.to_table().contains("checkpointed campaigns"));
    }
}
