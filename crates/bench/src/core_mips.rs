//! Per-workload simulator throughput (sim-MIPS): how many simulated warp
//! instructions the simulator retires per wall-clock second, measured for
//! the stepping oracle and the event-queue core side by side.
//!
//! Feeds the `core_mips` section of `BENCH_campaign.json` so core-loop
//! performance is tracked PR over PR next to the campaign-engine
//! throughput. Each sample also carries the seed-commit baseline measured
//! with this same meter before the event-queue rework, making the
//! before/after speedup a recorded artifact instead of a claim.

use higpu_sim::config::{CoreKind, GpuConfig};
use higpu_sim::gpu::Gpu;
use higpu_workloads::session::SoloSession;
use higpu_workloads::{Scale, WorkloadRegistry};
use std::time::Instant;

/// Campaign-scale sim-MIPS of the stepping-core seed baseline (commit
/// `002524e`, pre-event-queue), measured with this meter on the reference
/// host: `(workload, sim_mips)`. The absolute numbers are host-dependent;
/// the *ratio* against a fresh measurement on the same host is the
/// tracked speedup.
pub const SEED_BASELINE_MIPS: &[(&str, f64)] =
    &[("iterated_fma", 8.09), ("pathfinder", 5.18), ("srad", 5.79)];

/// Campaign-scale sim-MIPS of the **event core before the pre-decoded
/// interpreter rework** (the PR that added the event-queue core and
/// telemetry, commit `ff172ad`), measured with this meter on the reference
/// host: `(workload, event_sim_mips)`. As with [`SEED_BASELINE_MIPS`], only
/// the ratio against a fresh same-host measurement is meaningful; it is the
/// recorded before/after for the decode + uniform-scalarization + fast-path
/// work in the interpreter.
pub const EVENT_BASELINE_MIPS: &[(&str, f64)] = &[
    ("iterated_fma", 14.02),
    ("backprop", 8.77),
    ("bfs", 7.68),
    ("cfd", 10.57),
    ("dwt2d", 10.24),
    ("gaussian", 7.71),
    ("hotspot", 10.82),
    ("hotspot3D", 10.23),
    ("kmeans", 13.54),
    ("leukocyte", 12.14),
    ("lud", 9.12),
    ("myocyte", 17.26),
    ("nn", 8.71),
    ("nw", 9.18),
    ("pathfinder", 9.63),
    ("srad", 10.22),
    ("streamcluster", 13.46),
];

/// One workload's throughput under both cores.
#[derive(Debug, Clone)]
pub struct CoreMipsSample {
    /// Workload name (campaign scale).
    pub workload: String,
    /// Simulated warp instructions per run.
    pub instrs_per_run: u64,
    /// Stepping-oracle throughput, best of the repeats.
    pub stepping_mips: f64,
    /// Event-core throughput, best of the repeats.
    pub event_mips: f64,
    /// Seed-commit baseline on the reference host (stepping core), if
    /// recorded in [`SEED_BASELINE_MIPS`].
    pub seed_mips: Option<f64>,
    /// Pre-decode event-core baseline on the reference host, if recorded in
    /// [`EVENT_BASELINE_MIPS`].
    pub event_baseline_mips: Option<f64>,
}

impl CoreMipsSample {
    /// Event-core speedup over the recorded seed baseline.
    pub fn speedup_vs_seed(&self) -> Option<f64> {
        self.seed_mips.map(|s| self.event_mips / s)
    }

    /// Event-core speedup over the recorded pre-decode event baseline.
    pub fn speedup_vs_event_baseline(&self) -> Option<f64> {
        self.event_baseline_mips.map(|s| self.event_mips / s)
    }

    /// Wall-clock nanoseconds the event core spends per simulated warp
    /// instruction — the interpreter-floor figure ROADMAP item 1 tracks
    /// (1 sim-MIPS ≡ 1000 ns per warp instruction).
    pub fn ns_per_warp_instr(&self) -> f64 {
        1000.0 / self.event_mips
    }
}

/// A full two-core throughput sweep.
#[derive(Debug, Clone)]
pub struct CoreMipsResult {
    /// Timed runs per (workload, core) repeat.
    pub runs: u32,
    /// Best-of repeats per (workload, core).
    pub repeats: u32,
    /// One sample per measured workload.
    pub samples: Vec<CoreMipsSample>,
}

/// One prepared (device, workload) timing rig.
struct Rig {
    gpu: Gpu,
    workload: Box<dyn higpu_workloads::Workload>,
    instrs_per_run: u64,
}

impl Rig {
    fn new(reg: &WorkloadRegistry, name: &str, core: CoreKind) -> Self {
        let cfg = GpuConfig {
            core,
            ..GpuConfig::default()
        };
        let mut gpu = Gpu::new(cfg);
        let workload = reg
            .build(name, Scale::Campaign)
            .unwrap_or_else(|| panic!("workload '{name}' not in registry"));
        // Warm run: faults caches and yields the per-run instruction count.
        {
            let mut s = SoloSession::new(&mut gpu);
            workload.run(&mut s).expect("warm run");
        }
        let instrs_per_run: u64 = gpu.stats().per_sm.iter().map(|s| s.instrs_issued).sum();
        Self {
            gpu,
            workload,
            instrs_per_run,
        }
    }

    /// Times one solo run (reset + run) and returns its wall-clock seconds.
    fn time_one_run(&mut self) -> f64 {
        let t0 = Instant::now();
        self.gpu.reset().expect("device idle between runs");
        let mut s = SoloSession::new(&mut self.gpu);
        self.workload.run(&mut s).expect("timed run");
        t0.elapsed().as_secs_f64()
    }
}

/// Measures `name` on both cores: `(instructions per run, stepping
/// sim-MIPS, event sim-MIPS)`. The cores are interleaved at *run*
/// granularity in ABBA order — stepping/event, event/stepping, … — so
/// both accumulate time over adjacent millisecond slices of the same
/// host-load window *and* neither core systematically inherits the
/// other's cache wake (running second in a pair measurably flatters a
/// core; strict alternation bakes that bias in, ABBA cancels it along
/// with linear drift). A load burst then taxes both accumulators almost
/// equally and cancels out of the ratio, where repeat-level interleaving
/// still let a burst land entirely inside one core's timing window and
/// flip the comparison. Of the `repeats` paired windows, the quietest
/// (minimum total wall time) is reported — both cores from the *same*
/// window, so best-of never un-pairs the numbers by crediting each core
/// its own lucky repeat. The instruction count is exact and identical
/// across cores (the bit-identical contract).
fn measure_pair(reg: &WorkloadRegistry, name: &str, runs: u32, repeats: u32) -> (u64, f64, f64) {
    let mut stepping = Rig::new(reg, name, CoreKind::Stepping);
    let mut event = Rig::new(reg, name, CoreKind::Event);
    assert_eq!(
        stepping.instrs_per_run, event.instrs_per_run,
        "{name}: cores disagree on instructions per run — bit-identity broken"
    );
    let instrs = (stepping.instrs_per_run * u64::from(runs)) as f64;
    let mut best = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats.max(1) {
        let mut secs_stepping = 0.0f64;
        let mut secs_event = 0.0f64;
        for run in 0..runs {
            if run % 2 == 0 {
                secs_stepping += stepping.time_one_run();
                secs_event += event.time_one_run();
            } else {
                secs_event += event.time_one_run();
                secs_stepping += stepping.time_one_run();
            }
        }
        let total = secs_stepping + secs_event;
        if total < best.0 {
            best = (total, secs_stepping, secs_event);
        }
    }
    (
        stepping.instrs_per_run,
        instrs / best.1 / 1e6,
        instrs / best.2 / 1e6,
    )
}

/// Measures every registered workload on both cores. Workloads in the
/// [`SEED_BASELINE_MIPS`] set additionally carry their seed-commit
/// baseline; the rest entered the registry after the seed and have none.
pub fn measure_core_mips(reg: &WorkloadRegistry, runs: u32, repeats: u32) -> CoreMipsResult {
    let samples = reg
        .names()
        .iter()
        .map(|&name| {
            let seed_mips = SEED_BASELINE_MIPS
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, v)| v);
            let event_baseline_mips = EVENT_BASELINE_MIPS
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, v)| v);
            let (instrs, stepping, event) = measure_pair(reg, name, runs, repeats);
            CoreMipsSample {
                workload: name.to_string(),
                instrs_per_run: instrs,
                stepping_mips: stepping,
                event_mips: event,
                seed_mips,
                event_baseline_mips,
            }
        })
        .collect();
    CoreMipsResult {
        runs,
        repeats,
        samples,
    }
}

impl CoreMipsResult {
    /// Workloads where the default (event) core measured slower than the
    /// stepping oracle — the short-kernel regression the adaptive flat/wheel
    /// dispatch exists to prevent. Timing-noise tolerant callers should
    /// treat a persistent non-empty result as a core-selection bug.
    pub fn event_regressions(&self) -> Vec<&str> {
        self.samples
            .iter()
            .filter(|s| s.event_mips < s.stepping_mips)
            .map(|s| s.workload.as_str())
            .collect()
    }

    /// Geometric-mean event-core speedup over the recorded pre-decode
    /// baseline, across the workloads that have one ([`EVENT_BASELINE_MIPS`]).
    /// `None` when no sample carries a baseline.
    pub fn geomean_event_speedup(&self) -> Option<f64> {
        let ratios: Vec<f64> = self
            .samples
            .iter()
            .filter_map(CoreMipsSample::speedup_vs_event_baseline)
            .collect();
        if ratios.is_empty() {
            return None;
        }
        let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
        Some((log_sum / ratios.len() as f64).exp())
    }

    /// Renders the JSON value for the `core_mips` section.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"workload\": \"{}\", \"instrs_per_run\": {}, \
                     \"stepping_sim_mips\": {:.2}, \"event_sim_mips\": {:.2}, \
                     \"ns_per_warp_instr\": {:.1}, \
                     \"seed_sim_mips\": {}, \"event_speedup_vs_seed\": {}, \
                     \"pre_decode_event_sim_mips\": {}, \"event_speedup_vs_pre_decode\": {}}}",
                    s.workload,
                    s.instrs_per_run,
                    s.stepping_mips,
                    s.event_mips,
                    s.ns_per_warp_instr(),
                    s.seed_mips
                        .map_or("null".to_string(), |v| format!("{v:.2}")),
                    s.speedup_vs_seed()
                        .map_or("null".to_string(), |v| format!("{v:.2}")),
                    s.event_baseline_mips
                        .map_or("null".to_string(), |v| format!("{v:.2}")),
                    s.speedup_vs_event_baseline()
                        .map_or("null".to_string(), |v| format!("{v:.2}")),
                )
            })
            .collect();
        format!(
            "{{\"runs\": {}, \"repeats\": {}, \"scale\": \"campaign\", \
             \"seed_baseline\": \"stepping core @ seed commit, same meter and host class\", \
             \"pre_decode_baseline\": \"event core before the pre-decoded interpreter, \
             same meter and host class\", \
             \"geomean_event_speedup_vs_pre_decode\": {}, \
             \"workloads\": [\n    {}\n  ]}}",
            self.runs,
            self.repeats,
            self.geomean_event_speedup()
                .map_or("null".to_string(), |v| format!("{v:.2}")),
            rows.join(",\n    ")
        )
    }

    /// Renders the human-readable before/after table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "core sim-MIPS ({} runs, best of {}): workload  pre-decode -> stepping / event \
             (speedup, ns/warp-instr)\n",
            self.runs, self.repeats
        ));
        for s in &self.samples {
            out.push_str(&format!(
                "  {:>14}: {} -> {:.2} / {:.2} ({}, {:.1} ns)\n",
                s.workload,
                s.event_baseline_mips
                    .map_or("n/a".to_string(), |v| format!("{v:.2}")),
                s.stepping_mips,
                s.event_mips,
                s.speedup_vs_event_baseline()
                    .map_or("n/a".to_string(), |v| format!("{v:.2}x")),
                s.ns_per_warp_instr(),
            ));
        }
        if let Some(g) = self.geomean_event_speedup() {
            out.push_str(&format!(
                "  geomean event speedup vs pre-decode baseline: {g:.2}x\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::full_registry;

    #[test]
    fn sweep_measures_and_renders() {
        let reg = full_registry();
        let r = measure_core_mips(&reg, 2, 1);
        assert_eq!(
            r.samples.len(),
            reg.len(),
            "one sample per registry workload"
        );
        let mut baselines = 0;
        let mut event_baselines = 0;
        for s in &r.samples {
            assert!(s.instrs_per_run > 0, "{}: no instructions", s.workload);
            assert!(s.stepping_mips > 0.0 && s.event_mips > 0.0);
            assert!(s.ns_per_warp_instr() > 0.0);
            if let Some(speedup) = s.speedup_vs_seed() {
                assert!(speedup > 0.0);
                baselines += 1;
            }
            if let Some(speedup) = s.speedup_vs_event_baseline() {
                assert!(speedup > 0.0);
                event_baselines += 1;
            }
        }
        assert_eq!(
            baselines,
            SEED_BASELINE_MIPS.len(),
            "every baseline measured"
        );
        assert_eq!(
            event_baselines,
            EVENT_BASELINE_MIPS.len(),
            "every pre-decode baseline measured"
        );
        assert!(
            r.geomean_event_speedup().expect("baselines present") > 0.0,
            "geomean over recorded baselines"
        );
        let json = r.to_json();
        assert!(json.contains("\"workload\": \"pathfinder\""));
        assert!(json.contains("\"workload\": \"srad\""));
        assert!(json.contains("event_speedup_vs_seed"));
        assert!(json.contains("ns_per_warp_instr"));
        assert!(json.contains("geomean_event_speedup_vs_pre_decode"));
        assert!(r.to_table().contains("sim-MIPS"));
    }
}
