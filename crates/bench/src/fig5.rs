//! Figure 5: end-to-end execution time on the COTS platform model,
//! baseline vs redundant-serialized.

use higpu_cots::{run_baseline, run_redundant, CotsPlatform};
use higpu_rodinia::harness::{Benchmark, SessionError};

/// One benchmark's Figure-5 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline end-to-end milliseconds.
    pub baseline_ms: f64,
    /// Redundant-serialized end-to-end milliseconds.
    pub redundant_ms: f64,
    /// GPU fraction of the baseline (identifies kernel-dominated
    /// benchmarks — the paper's cfd/streamcluster effect).
    pub baseline_gpu_fraction: f64,
}

impl Fig5Row {
    /// Redundant / baseline ratio.
    pub fn ratio(&self) -> f64 {
        self.redundant_ms / self.baseline_ms
    }
}

/// Measures one benchmark end-to-end under both variants.
///
/// # Errors
///
/// Propagates [`SessionError`] from either run.
pub fn run_benchmark(
    platform: &CotsPlatform,
    bench: &dyn Benchmark,
) -> Result<Fig5Row, SessionError> {
    let base = run_baseline(platform, bench)?;
    let red = run_redundant(platform, bench)?;
    Ok(Fig5Row {
        benchmark: bench.name().to_string(),
        baseline_ms: base.total_ms(),
        redundant_ms: red.total_ms(),
        baseline_gpu_fraction: base.breakdown.gpu_ms / base.total_ms(),
    })
}

/// Runs the full Figure-5 experiment over every implemented benchmark.
///
/// # Errors
///
/// Propagates [`SessionError`] from any run.
pub fn run_all(platform: &CotsPlatform) -> Result<Vec<Fig5Row>, SessionError> {
    higpu_rodinia::all_benchmarks()
        .iter()
        .map(|b| run_benchmark(platform, b.as_ref()))
        .collect()
}

/// Renders rows in the shape of the paper's figure.
pub fn to_table(rows: &[Fig5Row]) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "benchmark".to_string(),
        "baseline_ms".to_string(),
        "redundant_ms".to_string(),
        "ratio".to_string(),
        "gpu_fraction".to_string(),
    ]];
    for r in rows {
        out.push(vec![
            r.benchmark.clone(),
            format!("{:.3}", r.baseline_ms),
            format!("{:.3}", r.redundant_ms),
            format!("{:.2}", r.ratio()),
            format!("{:.2}", r.baseline_gpu_fraction),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_rodinia::nn::Nn;

    #[test]
    fn ratio_is_reasonable_for_short_kernels() {
        let platform = CotsPlatform::gtx1050ti();
        let nn = Nn {
            records: 512,
            ..Default::default()
        };
        let row = run_benchmark(&platform, &nn).expect("runs");
        assert!(row.ratio() > 1.0, "redundancy always costs something");
        assert!(row.ratio() < 2.5, "nn is not kernel-dominated");
    }
}
