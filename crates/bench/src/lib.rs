//! # higpu-bench — the evaluation harness
//!
//! Regenerates every figure of the paper's evaluation:
//!
//! * [`fig4`] — simulator experiment: redundant-kernel cycles under the
//!   Default / HALF / SRRS schedulers, normalized to Default;
//! * [`fig5`] — COTS experiment: end-to-end milliseconds, Baseline vs
//!   Redundant-Serialized;
//! * [`fig3`] — kernel classification (short / heavy / friendly) and the
//!   per-kernel policy recommendation;
//! * [`coverage`] — fault-injection detection coverage per policy (the
//!   quantified safety argument);
//! * [`matrix`] — the campaign matrix: coverage campaigns swept over
//!   {workload × fault model × scheduler policy} through the unified
//!   workload registry (full Rodinia suite included);
//! * [`campaign_perf`] — campaign-engine throughput tracking (serial vs
//!   parallel, recorded in `BENCH_campaign.json` together with the matrix);
//! * [`core_mips`] — per-workload simulator throughput under the stepping
//!   and event-queue cores, with the recorded seed baseline;
//! * [`table`] — plain-text/CSV rendering helpers shared by the binaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign_perf;
pub mod core_mips;
pub mod coverage;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod matrix;
pub mod table;
