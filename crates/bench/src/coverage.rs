//! Fault-injection detection coverage per policy — the quantified form of
//! the paper's safety argument (extension table; not a paper figure).

use higpu_core::redundancy::{RedundancyError, RedundancyMode};
use higpu_faults::campaign::{run_campaign, CampaignConfig, CampaignReport, FaultSpec};
use higpu_faults::workload::IteratedFma;

/// The policy × fault matrix of one coverage experiment.
#[derive(Debug, Clone)]
pub struct CoverageMatrix {
    /// One report per (policy, fault) combination.
    pub reports: Vec<CampaignReport>,
}

/// Default workload for coverage campaigns: long enough for transient
/// windows to hit, small enough for thousands of trials.
pub fn default_workload() -> IteratedFma {
    IteratedFma {
        n: 512,
        threads_per_block: 64,
        iters: 24,
    }
}

/// Runs the full coverage matrix: {Uncontrolled, HALF, SRRS} ×
/// {transient, droop, permanent, misroute}.
///
/// # Errors
///
/// Propagates [`RedundancyError`] from any trial.
pub fn run_matrix(trials: u32, seed: u64) -> Result<CoverageMatrix, RedundancyError> {
    let cfg = CampaignConfig {
        trials,
        seed,
        ..CampaignConfig::default()
    };
    let workload = default_workload();
    let modes = [
        RedundancyMode::uncontrolled(),
        RedundancyMode::Half,
        RedundancyMode::srrs_default(cfg.gpu.num_sms),
    ];
    let faults = [
        FaultSpec::Transient { duration: 400 },
        FaultSpec::Droop { duration: 400 },
        FaultSpec::Permanent,
        FaultSpec::Misroute,
    ];
    let mut reports = Vec::new();
    for mode in &modes {
        for fault in &faults {
            reports.push(run_campaign(&cfg, mode, *fault, &workload)?);
        }
    }
    // Ablation: with a zero dispatch gap the two uncontrolled replicas run
    // in lockstep on the same SMs — a voltage droop then corrupts the same
    // computation in both copies identically, the failure mode the paper's
    // diversity requirement exists to prevent.
    let mut aligned = cfg.clone();
    aligned.gpu.dispatch_gap_cycles = 0;
    let mut r = run_campaign(
        &aligned,
        &RedundancyMode::uncontrolled(),
        FaultSpec::Droop { duration: 400 },
        &workload,
    )?;
    r.policy = "GPGPU-SIM (aligned)".to_string();
    reports.push(r);
    Ok(CoverageMatrix { reports })
}

/// Renders the coverage matrix.
pub fn to_table(m: &CoverageMatrix) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "policy".to_string(),
        "fault".to_string(),
        "trials".to_string(),
        "inactive".to_string(),
        "masked".to_string(),
        "detected".to_string(),
        "UNDETECTED".to_string(),
        "coverage".to_string(),
    ]];
    for r in &m.reports {
        out.push(vec![
            r.policy.clone(),
            r.fault.to_string(),
            r.trials.to_string(),
            r.not_activated.to_string(),
            r.masked.to_string(),
            r.detected.to_string(),
            r.undetected.to_string(),
            r.coverage()
                .map_or("n/a".to_string(), |c| format!("{:.0}%", c * 100.0)),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_headline_result() {
        let m = run_matrix(4, 7).expect("runs");
        assert_eq!(
            m.reports.len(),
            13,
            "3 policies x 4 faults + aligned-droop ablation"
        );
        for r in &m.reports {
            if !r.policy.starts_with("GPGPU-SIM") {
                assert_eq!(
                    r.undetected, 0,
                    "diverse policies never fail undetected: {r:?}"
                );
            }
        }
    }
}
