//! Sweeps fault campaigns over {workload × fault model × scheduler policy ×
//! replica count} through the unified workload registry and prints the
//! coverage/detection matrix (the paper's safety argument over the full
//! Rodinia suite, extended along the NMR replica axis).
//!
//! ```text
//! campaign_matrix [--trials N] [--seed S] [--workloads a,b,c]
//!                 [--policies srrs,half,slice,default]
//!                 [--faults transient,droop,permanent,misroute]
//!                 [--replicas 2,3] [--assert-srrs-clean]
//!                 [--full-scale] [--check-serial] [--csv] [--json PATH]
//! ```
//!
//! `--assert-srrs-clean` exits non-zero unless every SRRS cell — at every
//! swept replica count — reports zero undetected failures (the CI fence for
//! the paper's ASIL-D claim).

use higpu_bench::matrix::{full_registry, run_matrix, MatrixConfig};
use higpu_bench::table;
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::FaultSpec;
use higpu_workloads::Scale;
use std::process::ExitCode;

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "default" | "gpgpu-sim" => Ok(PolicyKind::Default),
        "srrs" => Ok(PolicyKind::Srrs),
        "half" => Ok(PolicyKind::Half),
        "slice" => Ok(PolicyKind::Slice),
        other => Err(format!(
            "unknown policy '{other}' (default|srrs|half|slice)"
        )),
    }
}

fn parse_fault(s: &str) -> Result<FaultSpec, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "transient" => Ok(FaultSpec::Transient { duration: 400 }),
        "droop" => Ok(FaultSpec::Droop { duration: 400 }),
        "permanent" => Ok(FaultSpec::Permanent),
        "misroute" => Ok(FaultSpec::Misroute),
        other => Err(format!(
            "unknown fault '{other}' (transient|droop|permanent|misroute)"
        )),
    }
}

struct Options {
    cfg: MatrixConfig,
    csv: bool,
    json: Option<String>,
    assert_srrs_clean: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        cfg: MatrixConfig::default(),
        csv: false,
        json: None,
        assert_srrs_clean: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--trials" => {
                opts.cfg.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                opts.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workloads" => {
                opts.cfg.workloads = value("--workloads")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--policies" => {
                opts.cfg.policies = value("--policies")?
                    .split(',')
                    .map(parse_policy)
                    .collect::<Result<_, _>>()?;
            }
            "--faults" => {
                opts.cfg.faults = value("--faults")?
                    .split(',')
                    .map(parse_fault)
                    .collect::<Result<_, _>>()?;
            }
            "--replicas" => {
                opts.cfg.replica_counts = value("--replicas")?
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<u8>()
                            .map_err(|e| format!("--replicas: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--assert-srrs-clean" => opts.assert_srrs_clean = true,
            "--full-scale" => opts.cfg.scale = Scale::Full,
            "--check-serial" => opts.cfg.check_serial = true,
            "--csv" => opts.csv = true,
            "--json" => opts.json = Some(value("--json")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign_matrix: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reg = full_registry();
    eprintln!(
        "Campaign matrix — {} workload(s) x {} policies x {} faults x replicas {:?}, {} trials/cell\n",
        if opts.cfg.workloads.is_empty() {
            reg.len()
        } else {
            opts.cfg.workloads.len()
        },
        opts.cfg.policies.len(),
        opts.cfg.faults.len(),
        opts.cfg.replica_counts,
        opts.cfg.trials
    );
    let m = match run_matrix(&reg, &opts.cfg) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("campaign_matrix: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t = m.to_table();
    if opts.csv {
        println!("{}", table::render_csv(&t));
    } else {
        println!("{}", table::render(&t));
        println!(
            "undetected failures under SRRS/HALF/SLICE: {} (the paper's ASIL-D claim requires 0); \
             corrected by N>=3 majority voting: {}",
            m.undetected_under_diverse_policies(),
            m.total_corrected()
        );
        for p in m.frontier() {
            println!(
                "frontier: {:9} N={}  detected={:3}  corrected={:3}  undetected={:3}  \
                 mean makespan overhead {:.2}x",
                p.policy,
                p.replicas,
                p.detected,
                p.corrected,
                p.undetected,
                p.mean_makespan_overhead
            );
        }
    }
    if let Some(path) = opts.json {
        if let Err(e) = std::fs::write(&path, m.to_json() + "\n") {
            eprintln!("campaign_matrix: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if opts.assert_srrs_clean {
        for replicas in &m.replica_counts {
            let srrs: Vec<_> = m
                .reports
                .iter()
                .filter(|r| r.policy == "SRRS" && r.replicas == *replicas)
                .collect();
            if srrs.is_empty() {
                // A fence that measured nothing must not report success.
                eprintln!(
                    "campaign_matrix: --assert-srrs-clean but no SRRS cell was swept at \
                     {replicas} replicas (check --policies/--replicas) — fence vacuous"
                );
                return ExitCode::FAILURE;
            }
            let undetected: u32 = srrs.iter().map(|r| r.undetected).sum();
            if undetected != 0 {
                eprintln!(
                    "campaign_matrix: SRRS at {replicas} replicas shows {undetected} \
                     undetected failure(s) — ASIL-D fence violated"
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "campaign_matrix: SRRS clean at {replicas} replicas ({} cells, undetected == 0)",
                srrs.len()
            );
        }
    }
    ExitCode::SUCCESS
}
