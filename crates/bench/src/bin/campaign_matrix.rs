//! Sweeps fault campaigns over {workload × fault model × scheduler policy ×
//! replica count} through the unified workload registry and prints the
//! coverage/detection matrix (the paper's safety argument over the full
//! Rodinia suite, extended along the NMR replica axis).
//!
//! ```text
//! campaign_matrix [--trials N] [--seed S] [--workloads a,b,c]
//!                 [--policies srrs,half,slice,slice-skewed,default]
//!                 [--faults transient,droop,permanent,misroute]
//!                 [--replicas 2,3] [--pipelines ad_pipeline,sensor_fusion]
//!                 [--pipeline-trials N] [--exec overlapped,serial]
//!                 [--frames N] [--limp-trials N]
//!                 [--wide-replicas 5] [--wide-trials N]
//!                 [--core event|stepping|stepping,event]
//!                 [--checkpoint] [--assert-srrs-clean]
//!                 [--full-scale] [--check-serial] [--csv] [--json PATH]
//!                 [--progress] [--quiet] [--trace-out PATH]
//! ```
//!
//! `--progress` renders a live cell-granularity progress line (with each
//! completed cell's wall time) to stderr and prints a per-cell wall-time
//! summary on completion. `--quiet` suppresses the stdout tables; with
//! `--json -` the JSON document streams to stdout (implying `--quiet`),
//! so stdout is machine-consumable as piped.
//!
//! `--trace-out PATH` additionally records a Chrome-trace-event JSON
//! timeline (open in `chrome://tracing` or Perfetto; timestamps are
//! simulated cycles): one overlapped `sensor_fusion` frame with a
//! transient fault — per-stage spans, per-SM block tracks, fault
//! instants — plus one checkpointed campaign trial showing fault-arm,
//! suffix-replay restores, and detection.
//!
//! `--core` selects the simulator core(s). Naming more than one core runs
//! the whole sweep once per core and asserts the results bit-identical —
//! the stepping-vs-event determinism cross-check over every campaign cell
//! (the printed matrix comes from the first core named).
//!
//! `--checkpoint` runs the workload campaign cells checkpointed (one
//! fault-free reference pass with periodic device snapshots per cell, then
//! suffix-only replay per trial), then re-runs the whole sweep from zero
//! and asserts the two results bit-identical — the checkpointing
//! determinism cross-check. Pipeline and limp-home cells always run from
//! zero.
//!
//! `--assert-srrs-clean` exits non-zero unless every SRRS cell — at every
//! swept replica count, on the paper device and the wide one — reports zero
//! undetected failures (the CI fence for the paper's ASIL-D claim). When
//! `--pipelines` names any pipeline the fence extends to the pipeline
//! cells: any undetected failure under a diverse policy, or any
//! *unrecovered in-slack retry* on a transient-class fault (a re-execution
//! that was funded by the FTTI but still failed), fails the run. With limp
//! cells swept (`--frames` > 1), the fence also covers degraded-mode
//! missions: a permanent fault must actually be diagnosed and quarantined,
//! every diagnosed mission must limp home, no degraded frame may overrun
//! its *re-planned* end-to-end budget, and a transient-class fault must
//! never cost the device an SM (no quarantine without attributable
//! permanent evidence).

use higpu_bench::matrix::{full_registry, run_matrix, run_matrix_with_telemetry, MatrixConfig};
use higpu_bench::table;
use higpu_core::policy::PolicyKind;
use higpu_faults::campaign::{
    ftti_deadline, policy_mode, CampaignConfig, CampaignRunner, CampaignSpec, FaultSpec,
};
use higpu_faults::checkpoint::{record_reference, CheckpointConfig};
use higpu_faults::injector::{FaultInjector, InjectionCounters};
use higpu_faults::model::FaultModel;
use higpu_faults::workload::RedundantWorkload;
use higpu_pipeline::trace_export;
use higpu_pipeline::{full_pipeline_registry, plan, run_pipeline, ExecMode, FrameOptions};
use higpu_sim::config::{CoreKind, GpuConfig};
use higpu_sim::gpu::Gpu;
use higpu_telemetry::{ChromeTrace, EventKind};
use higpu_workloads::Scale;
use std::process::ExitCode;

fn parse_core(s: &str) -> Result<CoreKind, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "event" => Ok(CoreKind::Event),
        "stepping" => Ok(CoreKind::Stepping),
        other => Err(format!("unknown core '{other}' (event|stepping)")),
    }
}

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "default" | "gpgpu-sim" => Ok(PolicyKind::Default),
        "srrs" => Ok(PolicyKind::Srrs),
        "half" => Ok(PolicyKind::Half),
        "slice" => Ok(PolicyKind::Slice),
        "slice-skewed" | "sliceskew" => Ok(PolicyKind::SliceSkewed),
        other => Err(format!(
            "unknown policy '{other}' (default|srrs|half|slice|slice-skewed)"
        )),
    }
}

fn parse_fault(s: &str) -> Result<FaultSpec, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "transient" => Ok(FaultSpec::Transient { duration: 400 }),
        "droop" => Ok(FaultSpec::Droop { duration: 400 }),
        "permanent" => Ok(FaultSpec::Permanent),
        "misroute" => Ok(FaultSpec::Misroute),
        other => Err(format!(
            "unknown fault '{other}' (transient|droop|permanent|misroute)"
        )),
    }
}

struct Options {
    cfg: MatrixConfig,
    /// Cores to sweep; beyond the first, each re-runs the matrix and must
    /// reproduce the first core's result bit-for-bit.
    cores: Vec<CoreKind>,
    csv: bool,
    json: Option<String>,
    assert_srrs_clean: bool,
    quiet: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        cfg: MatrixConfig::default(),
        cores: vec![CoreKind::default()],
        csv: false,
        json: None,
        assert_srrs_clean: false,
        quiet: false,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--trials" => {
                opts.cfg.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                opts.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workloads" => {
                opts.cfg.workloads = value("--workloads")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--policies" => {
                opts.cfg.policies = value("--policies")?
                    .split(',')
                    .map(parse_policy)
                    .collect::<Result<_, _>>()?;
            }
            "--faults" => {
                opts.cfg.faults = value("--faults")?
                    .split(',')
                    .map(parse_fault)
                    .collect::<Result<_, _>>()?;
            }
            "--replicas" => {
                opts.cfg.replica_counts = value("--replicas")?
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<u8>()
                            .map_err(|e| format!("--replicas: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--pipelines" => {
                opts.cfg.pipelines = value("--pipelines")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--pipeline-trials" => {
                opts.cfg.pipeline_trials = Some(
                    value("--pipeline-trials")?
                        .parse()
                        .map_err(|e| format!("--pipeline-trials: {e}"))?,
                );
            }
            "--exec" => {
                opts.cfg.pipeline_exec = value("--exec")?
                    .split(',')
                    .map(|s| {
                        ExecMode::parse(s)
                            .ok_or_else(|| format!("unknown executor '{s}' (overlapped|serial)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--frames" => {
                opts.cfg.limp_frames = value("--frames")?
                    .parse()
                    .map_err(|e| format!("--frames: {e}"))?;
            }
            "--limp-trials" => {
                opts.cfg.limp_trials = Some(
                    value("--limp-trials")?
                        .parse()
                        .map_err(|e| format!("--limp-trials: {e}"))?,
                );
            }
            "--wide-replicas" => {
                opts.cfg.wide_replica_counts = value("--wide-replicas")?
                    .split(',')
                    .filter(|r| !r.trim().is_empty())
                    .map(|r| {
                        r.trim()
                            .parse::<u8>()
                            .map_err(|e| format!("--wide-replicas: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--wide-trials" => {
                opts.cfg.wide_trials = Some(
                    value("--wide-trials")?
                        .parse()
                        .map_err(|e| format!("--wide-trials: {e}"))?,
                );
            }
            "--core" => {
                opts.cores = value("--core")?
                    .split(',')
                    .map(parse_core)
                    .collect::<Result<_, _>>()?;
                if opts.cores.is_empty() {
                    return Err("--core: expected at least one core".to_string());
                }
            }
            "--checkpoint" => opts.cfg.checkpoint = Some(CheckpointConfig::default()),
            "--assert-srrs-clean" => opts.assert_srrs_clean = true,
            "--full-scale" => opts.cfg.scale = Scale::Full,
            "--check-serial" => opts.cfg.check_serial = true,
            "--csv" => opts.csv = true,
            "--json" => opts.json = Some(value("--json")?),
            "--progress" => opts.cfg.progress = true,
            "--quiet" => opts.quiet = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(opts)
}

/// Records the `--trace-out` Chrome-trace timeline: process 1 is one
/// overlapped `sensor_fusion` frame with an armed transient fault (stage
/// spans + SM block tracks + fault instants), process 2 is one checkpointed
/// campaign trial (fault-arm, suffix-replay restores, detection). Both run
/// on telemetry-enabled devices; everything in the file is simulated state,
/// so the trace is a pure function of `seed`.
fn record_trace(path: &str, seed: u64) -> Result<(), String> {
    let mut trace = ChromeTrace::new();
    let bit = 4 + (seed % 20) as u8;

    // Process 1: one overlapped sensor_fusion frame under SRRS/DCLS with a
    // transient SM fault armed inside the first stage's window.
    let preg = full_pipeline_registry();
    let pipeline = preg
        .build("sensor_fusion", Scale::Campaign)
        .ok_or_else(|| "pipeline 'sensor_fusion' not registered".to_string())?;
    let mut gpu_cfg = GpuConfig::paper_6sm();
    gpu_cfg.telemetry_capacity = Some(1 << 16);
    let mode = policy_mode(PolicyKind::Srrs, 2, gpu_cfg.num_sms).map_err(|e| e.to_string())?;
    let frame_plan =
        plan(&gpu_cfg, &pipeline, &mode).map_err(|e| format!("frame calibration: {e}"))?;
    // A 400-cycle window over one SM only activates if that SM produces
    // values then; scan a small deterministic grid of arm points and keep
    // the first frame whose fault bites (fall back to the last otherwise).
    let mut recorded = None;
    'frame_scan: for numer in [2u64, 1, 3] {
        for sm in 0..gpu_cfg.num_sms {
            let model = FaultModel::TransientSm {
                sm,
                start: (frame_plan.stage_makespans[0] * numer) / 4,
                duration: 400,
                bit,
            };
            let counters = InjectionCounters::shared();
            let mut gpu = Gpu::new(gpu_cfg.clone());
            gpu.set_fault_hook(Box::new(FaultInjector::new(model, counters.clone())));
            gpu.record_event(
                EventKind::FaultArmed,
                model.arm_cycle(),
                sm as u32,
                0,
                u64::from(bit),
            );
            let run = run_pipeline(
                &mut gpu,
                &pipeline,
                &mode,
                &frame_plan,
                FrameOptions::overlapped(),
            )
            .map_err(|e| format!("frame execution: {e}"))?;
            let activated = counters.activated();
            recorded = Some((gpu, run));
            if activated {
                break 'frame_scan;
            }
        }
    }
    let (mut gpu, run) = recorded.expect("frame scan ran at least once");
    trace_export::export_frame(
        &mut trace,
        1,
        "sensor_fusion frame (overlapped, transient fault)",
        &mut gpu,
        &run,
    );

    // Process 2: one checkpointed campaign trial — the reference pass's
    // snapshots let the trial fast-forward to the fault, so the SM tracks
    // open with Restore instants before the corrupted suffix runs live.
    let reg = full_registry();
    let mut ccfg = CampaignConfig::default();
    ccfg.gpu.telemetry_capacity = Some(1 << 16);
    let spec = CampaignSpec::new(
        "hotspot",
        PolicyKind::Srrs,
        FaultSpec::Transient { duration: 400 },
    );
    let workload = spec.build_workload(&reg).map_err(|e| e.to_string())?;
    let trial_mode = spec.mode(ccfg.gpu.num_sms).map_err(|e| e.to_string())?;
    let reference = record_reference(
        &ccfg,
        &trial_mode,
        &workload,
        CheckpointConfig::default().stride,
    )
    .map_err(|e| format!("reference pass: {e}"))?;
    let makespan = reference.makespan();
    let deadline = ftti_deadline(makespan, workload.ftti_multiplier());
    let mut runner = CampaignRunner::new(&ccfg);
    // Scan a small deterministic grid of arm points and keep the first
    // trial whose fault actually activates (a window over an idle SM shows
    // no detection — a dull trace); fall back to the last trial otherwise.
    let mut outcome = higpu_faults::campaign::TrialOutcome::NotActivated;
    let mut events = Vec::new();
    'scan: for numer in [1u64, 2, 3] {
        for sm in 0..ccfg.gpu.num_sms {
            let trial_model = FaultModel::TransientSm {
                sm,
                start: (makespan * numer) / 4,
                duration: 400,
                bit,
            };
            let (o, _obs) = runner
                .run_trial_observed(
                    &trial_mode,
                    &workload,
                    trial_model,
                    Some(deadline),
                    Some(&reference),
                )
                .map_err(|e| format!("campaign trial: {e}"))?;
            outcome = o;
            events = runner.gpu_mut().drain_telemetry();
            if outcome != higpu_faults::campaign::TrialOutcome::NotActivated {
                break 'scan;
            }
        }
    }
    trace.process_name(
        2,
        &format!(
            "campaign trial: {} (checkpointed, outcome {outcome:?})",
            spec.workload
        ),
    );
    higpu_telemetry::chrome::add_device_events(&mut trace, 2, &events);

    std::fs::write(path, trace.to_json()).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let mut opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign_matrix: {e}");
            return ExitCode::FAILURE;
        }
    };
    opts.cfg.core = opts.cores[0];
    // `--json -` makes stdout the JSON document: silence every table.
    let quiet = opts.quiet || opts.json.as_deref() == Some("-");
    let reg = full_registry();
    eprintln!(
        "Campaign matrix — {} workload(s) + {} pipeline(s) x {} policies x {} faults x replicas {:?}, {} trials/cell\n",
        if opts.cfg.workloads.is_empty() {
            reg.len()
        } else {
            opts.cfg.workloads.len()
        },
        opts.cfg.pipelines.len(),
        opts.cfg.policies.len(),
        opts.cfg.faults.len(),
        opts.cfg.replica_counts,
        opts.cfg.trials
    );
    let (m, telemetry) = match run_matrix_with_telemetry(&reg, &opts.cfg) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("campaign_matrix: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.cfg.progress {
        // The post-sweep wall-time record: one line per workload campaign
        // cell, on stderr so `--json -` stdout stays pure.
        for c in &telemetry.cells {
            eprintln!(
                "cell {:>12} {:>11} N={} {:<12} [{}] {:>7.2}s",
                c.workload, c.policy, c.replicas, c.fault, c.device, c.wall_seconds
            );
        }
        eprintln!("sweep wall time: {:.2}s", telemetry.wall_seconds);
    }
    // Determinism cross-check: every additional core re-runs the whole
    // sweep and must reproduce the first core's result bit-for-bit.
    for &core in &opts.cores[1..] {
        let mut cross = opts.cfg.clone();
        cross.core = core;
        let other = match run_matrix(&reg, &cross) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("campaign_matrix: {core:?}-core sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if other != m {
            eprintln!(
                "campaign_matrix: {core:?} core diverged from the {:?} core — the \
                 bit-identical-cores contract is broken (run the cross_core test \
                 for the first-divergence site)",
                opts.cores[0]
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "campaign_matrix: {core:?} core reproduced the {:?}-core sweep bit-for-bit \
             ({} workload cells, {} pipeline cells, {} wide cells, {} limp cells)",
            opts.cores[0],
            m.reports.len(),
            m.pipeline_reports.len(),
            m.wide_reports.len(),
            m.limp_reports.len()
        );
    }
    // Checkpointing cross-check: the suffix-replay engine must be
    // observationally invisible — re-run the whole sweep from zero and
    // require the same result bit-for-bit.
    if opts.cfg.checkpoint.is_some() {
        let mut from_zero = opts.cfg.clone();
        from_zero.checkpoint = None;
        let other = match run_matrix(&reg, &from_zero) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("campaign_matrix: from-zero cross sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if other != m {
            eprintln!(
                "campaign_matrix: checkpointed sweep diverged from from-zero execution — \
                 the suffix-replay determinism contract is broken (run the faults crate's \
                 checkpoint fences for the first-divergence site)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "campaign_matrix: checkpointed sweep reproduced from-zero execution bit-for-bit \
             ({} workload cells, {} wide cells)",
            m.reports.len(),
            m.wide_reports.len()
        );
    }
    let t = m.to_table();
    if quiet {
        // Tables silenced; the JSON/trace writers below still run.
    } else if opts.csv {
        println!("{}", table::render_csv(&t));
    } else {
        println!("{}", table::render(&t));
        println!(
            "undetected failures under SRRS/HALF/SLICE: {} (the paper's ASIL-D claim requires 0); \
             corrected by N>=3 majority voting: {}",
            m.undetected_under_diverse_policies(),
            m.total_corrected()
        );
        for p in m.frontier() {
            println!(
                "frontier: {:9} N={}  detected={:3}  corrected={:3}  undetected={:3}  \
                 mean makespan overhead {:.2}x",
                p.policy,
                p.replicas,
                p.detected,
                p.corrected,
                p.undetected,
                p.mean_makespan_overhead
            );
        }
        if !m.pipeline_reports.is_empty() {
            println!("\npipeline cells (fail-operational vs fail-stop):");
            println!("{}", table::render(&m.pipeline_table()));
            println!(
                "pipeline frames recovered by in-FTTI re-execution: {}; \
                 undetected under diverse policies: {}",
                m.total_recovered(),
                m.pipeline_undetected_under_diverse_policies()
            );
            for p in m.pipeline_frontier() {
                println!(
                    "pipeline frontier: {:13} {:9} N={} {:10}  corrected={:3}  recovered={:3}  \
                     detected={:3}  undetected={:3}  deadline-miss={:3}  recovery {}",
                    p.pipeline,
                    p.policy,
                    p.replicas,
                    p.exec,
                    p.corrected,
                    p.recovered,
                    p.detected,
                    p.undetected,
                    p.deadline_miss,
                    p.recovery_rate()
                        .map_or("n/a".to_string(), |r| format!("{:.0}%", r * 100.0)),
                );
            }
            for s in m.pipeline_speedups() {
                println!(
                    "overlap speedup:   {:13} {:9} N={}  e2e makespan {} -> {} ({:.2}x)  \
                     FTTI {} -> {} ({:.2}x tighter)",
                    s.pipeline,
                    s.policy,
                    s.replicas,
                    s.serial_makespan,
                    s.overlapped_makespan,
                    s.makespan_speedup(),
                    s.serial_sum_ftti,
                    s.critical_path_ftti,
                    s.ftti_tightening(),
                );
            }
        }
        if !m.limp_reports.is_empty() {
            println!(
                "\ndegraded mode ({} frames/mission): quarantined={}  limp-home-miss={}  \
                 re-planned-ddl-miss={}  false-quarantines={}  frames-to-diagnosis={}  \
                 post-quarantine inflation={}  limp miss rate={}",
                m.limp_frames,
                m.limp_quarantined(),
                m.limp_home_misses(),
                m.limp_deadline_misses(),
                m.limp_false_quarantines(),
                m.limp_mean_frames_to_diagnosis()
                    .map_or("n/a".to_string(), |v| format!("{v:.2}")),
                m.limp_makespan_inflation()
                    .map_or("n/a".to_string(), |v| format!("{v:.3}x")),
                m.limp_home_miss_rate()
                    .map_or("n/a".to_string(), |v| format!("{:.0}%", v * 100.0)),
            );
        }
    }
    if let Some(path) = &opts.json {
        let doc = format!(
            "{{\"matrix\": {}, \"telemetry\": {}}}\n",
            m.to_json(),
            telemetry.to_json()
        );
        if path == "-" {
            print!("{doc}");
        } else {
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("campaign_matrix: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            if !quiet {
                println!("wrote {path}");
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = record_trace(path, opts.cfg.seed) {
            eprintln!("campaign_matrix: trace recording failed: {e}");
            return ExitCode::FAILURE;
        }
        if !quiet {
            println!("wrote {path}");
        }
    }
    if opts.assert_srrs_clean {
        for replicas in &m.replica_counts {
            let srrs: Vec<_> = m
                .reports
                .iter()
                .filter(|r| r.policy == "SRRS" && r.replicas == *replicas)
                .collect();
            if srrs.is_empty() {
                // A fence that measured nothing must not report success.
                eprintln!(
                    "campaign_matrix: --assert-srrs-clean but no SRRS cell was swept at \
                     {replicas} replicas (check --policies/--replicas) — fence vacuous"
                );
                return ExitCode::FAILURE;
            }
            let undetected: u32 = srrs.iter().map(|r| r.undetected).sum();
            if undetected != 0 {
                eprintln!(
                    "campaign_matrix: SRRS at {replicas} replicas shows {undetected} \
                     undetected failure(s) — ASIL-D fence violated"
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "campaign_matrix: SRRS clean at {replicas} replicas ({} cells, undetected == 0)",
                srrs.len()
            );
        }
        // Pipeline fence: no undetected failure under any diverse policy,
        // and no unrecovered in-slack retry on transient-class faults (a
        // funded re-execution of a non-persistent fault must succeed).
        if m.pipeline_undetected_under_diverse_policies() != 0 {
            eprintln!(
                "campaign_matrix: pipeline cells show {} undetected failure(s) under \
                 diverse policies — fail-operational fence violated",
                m.pipeline_undetected_under_diverse_policies()
            );
            return ExitCode::FAILURE;
        }
        let diverse: Vec<&str> = PolicyKind::all_extended()
            .into_iter()
            .filter(|p| p.guarantees_diversity())
            .map(PolicyKind::label)
            .collect();
        // Persistence is a property of the swept FaultSpec, not of a label
        // literal — derive the exempt set from the spec so new or renamed
        // persistent families stay exempt.
        let persistent: Vec<&str> = opts
            .cfg
            .faults
            .iter()
            .filter(|f| f.is_persistent())
            .map(|f| f.label())
            .collect();
        for r in &m.pipeline_reports {
            let transient_class = !persistent.contains(&r.fault);
            if transient_class && diverse.contains(&r.policy.as_str()) && r.retries_failed > 0 {
                eprintln!(
                    "campaign_matrix: {}/{}/N={} x {}: {} in-slack retr{} failed on a \
                     transient-class fault — recovery fence violated",
                    r.pipeline,
                    r.policy,
                    r.replicas,
                    r.fault,
                    r.retries_failed,
                    if r.retries_failed == 1 { "y" } else { "ies" }
                );
                return ExitCode::FAILURE;
            }
        }
        if !m.pipeline_reports.is_empty() {
            eprintln!(
                "campaign_matrix: pipeline fence clean ({} cells, {} frames recovered)",
                m.pipeline_reports.len(),
                m.total_recovered()
            );
        }
        // Wide-device fence: the extra replica counts keep the ASIL-D
        // claim too (the wide cells fold into
        // undetected_under_diverse_policies, checked per-cell here for an
        // attributable message).
        if !m.wide_replica_counts.is_empty() && m.wide_reports.is_empty() {
            eprintln!(
                "campaign_matrix: --assert-srrs-clean with wide replicas {:?} but no wide \
                 cell was swept (check --policies) — fence vacuous",
                m.wide_replica_counts
            );
            return ExitCode::FAILURE;
        }
        let wide_undetected: u32 = m
            .wide_reports
            .iter()
            .filter(|r| diverse.contains(&r.policy.as_str()))
            .map(|r| r.undetected)
            .sum();
        if wide_undetected != 0 {
            eprintln!(
                "campaign_matrix: wide-device cells show {wide_undetected} undetected \
                 failure(s) under diverse policies — ASIL-D fence violated"
            );
            return ExitCode::FAILURE;
        }
        if !m.wide_reports.is_empty() {
            eprintln!(
                "campaign_matrix: wide device clean at {:?} replicas ({} cells)",
                m.wide_replica_counts,
                m.wide_reports.len()
            );
        }
        // Limp-home fence: permanent faults must be diagnosed and limped
        // around, degraded frames must hold their *re-planned* budgets,
        // and no quarantine may ever rest on unattributable (transient or
        // tie-only) evidence.
        if !m.limp_reports.is_empty() {
            let swept_persistent = m.limp_reports.iter().any(|r| persistent.contains(&r.fault));
            if swept_persistent && m.limp_quarantined() == 0 {
                eprintln!(
                    "campaign_matrix: permanent-fault limp cells never diagnosed a \
                     quarantine — degraded-mode fence vacuous"
                );
                return ExitCode::FAILURE;
            }
            if m.limp_home_misses() != 0 {
                eprintln!(
                    "campaign_matrix: {} diagnosed mission(s) failed to limp home — \
                     fail-operational fence violated",
                    m.limp_home_misses()
                );
                return ExitCode::FAILURE;
            }
            if m.limp_deadline_misses() != 0 {
                eprintln!(
                    "campaign_matrix: {} degraded frame(s) overran the re-planned \
                     end-to-end budget — recalibrated-FTTI fence violated",
                    m.limp_deadline_misses()
                );
                return ExitCode::FAILURE;
            }
            if m.limp_false_quarantines() != 0 {
                eprintln!(
                    "campaign_matrix: {} quarantine(s) on transient-class faults — an SM \
                     was convicted without attributable permanent evidence",
                    m.limp_false_quarantines()
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "campaign_matrix: degraded-mode fence clean ({} mission cells, {} \
                 quarantined, 0 limp-home misses)",
                m.limp_reports.len(),
                m.limp_quarantined()
            );
        }
    }
    ExitCode::SUCCESS
}
