//! Regenerates Figure 5: end-to-end execution time on the COTS platform
//! model (GTX-1050-Ti-class, 6 SMs), Baseline vs Redundant-Serialized.
//!
//! Usage: `cargo run --release -p higpu-bench --bin fig5 [--csv]`

use higpu_bench::{fig5, table};
use higpu_cots::CotsPlatform;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let platform = CotsPlatform::gtx1050ti();
    eprintln!("Figure 5 — end-to-end execution time, baseline vs redundant serialized");
    eprintln!(
        "platform: {} SMs @ {} GHz, PCIe {} GiB/s, {} us/API call\n",
        platform.gpu.num_sms, platform.gpu.clock_ghz, platform.pcie_gibps, platform.api_call_us
    );
    let rows = fig5::run_all(&platform).unwrap_or_else(|e| {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    });
    let t = fig5::to_table(&rows);
    if csv {
        println!("{}", table::render_csv(&t));
    } else {
        println!("{}", table::render(&t));
        let worst = rows
            .iter()
            .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
            .expect("rows");
        println!(
            "worst redundancy ratio: {} at {:.2}x (gpu fraction {:.2})",
            worst.benchmark,
            worst.ratio(),
            worst.baseline_gpu_fraction
        );
        println!("paper: negligible for all but cfd and streamcluster (kernel-dominated)");
    }
}
