//! Regenerates Figure 3's taxonomy as a measurement: classifies every
//! kernel of every benchmark (short / heavy / friendly) from a solo
//! profiling run and prints the per-kernel policy recommendation
//! (paper Sec. IV-D).
//!
//! Usage: `cargo run --release -p higpu-bench --bin fig3_classify [--csv]`

use higpu_bench::{fig3, table};
use higpu_sim::config::GpuConfig;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = GpuConfig::paper_6sm();
    eprintln!("Figure 3 — kernel categories and per-kernel policy selection\n");
    let mut rows = Vec::new();
    for bench in higpu_rodinia::all_benchmarks() {
        match fig3::classify_benchmark(&cfg, bench.as_ref()) {
            Ok(mut r) => rows.append(&mut r),
            Err(e) => {
                eprintln!("{}: classification failed: {e}", bench.name());
                std::process::exit(1);
            }
        }
    }
    let t = fig3::to_table(&rows);
    if csv {
        println!("{}", table::render_csv(&t));
    } else {
        println!("{}", table::render(&t));
    }
}
