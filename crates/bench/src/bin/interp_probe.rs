//! Raw interpreter-floor probe: times a bare `step_warp` loop (no SM, no
//! event core, no memory timing model) on a dense synthetic kernel and
//! reports ns per warp instruction — the number ROADMAP item 1 calls the
//! interpreter floor. Compare against `core_mips` (whole-device) to see how
//! much of the per-instruction cost is interpreter vs machinery around it.

use higpu_sim::block::BlockDims;
use higpu_sim::builder::KernelBuilder;
use higpu_sim::exec::{step_warp, ExecCtx, LaneAddrs, StepEffect};
use higpu_sim::fault::NoFaults;
use higpu_sim::isa::{CmpOp, SpecialReg};
use higpu_sim::kernel::{Dim3, KernelId};
use higpu_sim::mem::coalesce::TxBuf;
use higpu_sim::program::Program;
use higpu_sim::warp::{Warp, WarpState};
use std::sync::Arc;
use std::time::Instant;

/// Dense compute kernel: per-lane ALU/FMA with a long loop, one stride-1
/// load/store per iteration.
fn kernel(iters: u32) -> Arc<Program> {
    let mut b = KernelBuilder::new("probe");
    let base = b.param(0);
    let tid = b.special(SpecialReg::TidX);
    let addr = b.addr_w(base, tid);
    let acc0 = b.ldg(addr, 0);
    let facc = b.i2f(acc0);
    let acc = b.reg();
    b.mov_to(acc, facc);
    b.for_range(0u32, iters, 1u32, |b, _i| {
        let t = b.ffma(acc, 1.0001f32, 0.5f32);
        let t2 = b.fmul(t, 0.9999f32);
        b.mov_to(acc, t2);
    });
    let back = b.f2i(acc);
    b.stg(addr, 0, back);
    b.build().expect("valid").into_shared()
}

/// Uniform variant: the whole loop body operates on uniform registers.
fn uniform_kernel(iters: u32) -> Arc<Program> {
    let mut b = KernelBuilder::new("probe_uniform");
    let x = b.mov(1.25f32);
    let acc = b.reg();
    b.mov_to(acc, x);
    b.for_range(0u32, iters, 1u32, |b, _i| {
        let t = b.ffma(acc, 1.0001f32, 0.5f32);
        let t2 = b.fmul(t, 0.9999f32);
        b.mov_to(acc, t2);
    });
    let p = b.fsetp(CmpOp::Gt, acc, 0.0f32);
    let keep = b.selp(p, 1u32, 0u32);
    let sink = b.reg();
    b.mov_to(sink, keep);
    b.build().expect("valid").into_shared()
}

fn run(name: &str, prog: &Program) {
    let mut global = vec![0u32; 4096];
    let mut shared = vec![0u32; 256];
    let mut oob = 0u64;
    let mut dirty = 0u32;
    let mut hook = NoFaults;
    let dims = BlockDims {
        ctaid: (0, 0, 0),
        ntid: Dim3::x(32),
        nctaid: Dim3::x(1),
    };
    let mut txs = TxBuf::new();
    let mut atom_addrs = LaneAddrs::new();
    let mut total_instrs = 0u64;
    let t0 = Instant::now();
    for _ in 0..50 {
        let mut warp = Warp::new(0, u32::MAX, prog.regs_per_thread(), 0);
        while warp.state == WarpState::Ready {
            let mut ctx = ExecCtx {
                global_mem: &mut global,
                shared_mem: &mut shared,
                params: &[0],
                dims,
                sm_id: 0,
                cycle: 0,
                kernel: KernelId(0),
                block: 0,
                fault: &mut hook,
                fault_enabled: false,
                oob_accesses: &mut oob,
                global_dirty: &mut dirty,
                txs: &mut txs,
                atom_addrs: &mut atom_addrs,
            };
            if step_warp(&mut warp, prog.decoded(), &mut ctx) == StepEffect::Finished {
                break;
            }
        }
        total_instrs += warp.instrs;
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{name:>16}: {total_instrs} warp instrs in {:.3}s = {:.1} ns/warp-instr ({:.2} sim-MIPS)",
        secs,
        secs * 1e9 / total_instrs as f64,
        total_instrs as f64 / secs / 1e6,
    );
}

fn main() {
    run("dense", &kernel(20_000));
    run("uniform", &uniform_kernel(20_000));
}
