//! Records campaign-engine throughput in `BENCH_campaign.json`.
//!
//! Runs the acceptance measurement of the parallel fault-campaign engine —
//! a 1000-trial transient campaign on `IteratedFma` — through the serial
//! reference engine and the worker pool at several widths, plus a campaign
//! matrix sweep over the unified workload registry (workload × policy ×
//! fault), then writes one JSON document so both the perf trajectory and
//! the coverage matrix are tracked PR over PR.
//!
//! The matrix section sweeps every registered workload **and** every
//! registered pipeline (`ad_pipeline`, `sensor_fusion`), so
//! `BENCH_campaign.json` carries the per-(pipeline, policy, replicas)
//! fail-operational frontier — end-to-end deadline misses and in-FTTI
//! recovery rates — next to the workload coverage frontier.
//!
//! The `core_mips` section records per-workload simulator throughput under
//! the stepping and event-queue cores next to the seed-commit baseline —
//! the before/after record for core-loop performance work.
//!
//! The `checkpointing` section records checkpointed-campaign throughput
//! (one reference pass with periodic device snapshots, then suffix-only
//! replay per trial) against from-zero execution, under both the uniform
//! campaign arm draw and a late-window distribution — with every trial's
//! outcome asserted bit-identical between the two engines.
//!
//! ```text
//! bench_json [--trials N] [--seed S] [--workers 1,2,4,8]
//!            [--matrix-trials N] [--no-matrix] [--core-runs N]
//!            [--checkpoint-trials N] [--out PATH] [--progress] [--quiet]
//!            [--assert-no-core-regression]
//! ```
//!
//! `--assert-no-core-regression` turns the "default (event) core slower
//! than the stepping oracle" warning into a nonzero exit (the JSON artifact
//! is still written first), so CI can fence core-selection regressions.
//!
//! `--out -` streams the JSON document to stdout instead of a file and
//! implies `--quiet`, so stdout is pure JSON (tables and progress go to
//! stderr or nowhere — the document is machine-consumable as piped).

use higpu_bench::campaign_perf::{measure, measure_checkpointing, ThroughputConfig};
use higpu_bench::core_mips::measure_core_mips;
use higpu_bench::matrix::{full_registry, run_matrix_with_telemetry, MatrixConfig};
use higpu_pipeline::full_pipeline_registry;
use std::process::ExitCode;

struct Options {
    cfg: ThroughputConfig,
    matrix_trials: Option<u32>,
    no_matrix: bool,
    core_runs: u32,
    checkpoint_trials: u32,
    out: String,
    progress: bool,
    quiet: bool,
    assert_no_core_regression: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cfg: ThroughputConfig::default(),
            matrix_trials: None,
            no_matrix: false,
            core_runs: 60,
            checkpoint_trials: 120,
            out: "BENCH_campaign.json".to_string(),
            progress: false,
            quiet: false,
            assert_no_core_regression: false,
        }
    }
}

fn parse_args(opts: &mut Options) -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--trials" => {
                opts.cfg.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                opts.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => {
                opts.cfg.worker_counts = value("--workers")?
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--workers: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--matrix-trials" => {
                opts.matrix_trials = Some(
                    value("--matrix-trials")?
                        .parse()
                        .map_err(|e| format!("--matrix-trials: {e}"))?,
                );
            }
            "--no-matrix" => opts.no_matrix = true,
            "--core-runs" => {
                opts.core_runs = value("--core-runs")?
                    .parse()
                    .map_err(|e| format!("--core-runs: {e}"))?;
            }
            "--checkpoint-trials" => {
                opts.checkpoint_trials = value("--checkpoint-trials")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-trials: {e}"))?;
            }
            "--out" => opts.out = value("--out")?,
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            "--assert-no-core-regression" => opts.assert_no_core_regression = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    if let Err(e) = parse_args(&mut opts) {
        eprintln!("bench_json: {e}");
        return ExitCode::FAILURE;
    }
    let Options {
        cfg,
        matrix_trials,
        no_matrix,
        core_runs,
        checkpoint_trials,
        out,
        progress,
        quiet,
        assert_no_core_regression,
    } = opts;
    // `--out -` makes stdout the JSON document; every table print below
    // must therefore be silenced so nothing interleaves with it.
    let quiet = quiet || out == "-";
    if no_matrix && matrix_trials.is_some() {
        eprintln!("bench_json: --no-matrix contradicts --matrix-trials");
        return ExitCode::FAILURE;
    }
    let matrix_cfg = (!no_matrix).then(|| {
        let mut mc = MatrixConfig::default();
        if let Some(trials) = matrix_trials {
            mc.trials = trials;
        }
        mc.pipelines = full_pipeline_registry()
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect();
        // Enough frames per pipeline cell that transient activations (and
        // with them the Recovered demonstration) land in the artifact.
        mc.pipeline_trials = Some(mc.trials.max(6));
        mc.progress = progress;
        mc
    });
    let result = match measure(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_json: campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        print!("{}", result.to_table());
    }
    // Core-loop throughput: the before/after record for the event-queue
    // rework, printed and persisted next to the engine throughput. Runs
    // are interleaved core-by-core and the quietest of 7 paired windows is
    // reported — the cores differ by single-digit percents on dense
    // workloads, which host-load drift would otherwise swamp.
    let core = measure_core_mips(&full_registry(), core_runs, 7);
    if !quiet {
        print!("{}", core.to_table());
    }
    // Under --assert-no-core-regression a non-empty list fails the run
    // (after the JSON artifact is written, so the evidence survives) —
    // the CI smoke wiring for core-selection regressions.
    let core_regressed = {
        let regressions = core.event_regressions();
        if !regressions.is_empty() {
            eprintln!(
                "bench_json: {}: default (event) core slower than stepping on {}",
                if assert_no_core_regression {
                    "ERROR"
                } else {
                    "WARNING"
                },
                regressions.join(", ")
            );
        }
        !regressions.is_empty()
    };
    // Checkpointed-campaign throughput: suffix-only replay vs from-zero,
    // with per-trial outcomes asserted identical inside the measurement.
    let checkpointing = match measure_checkpointing(checkpoint_trials, cfg.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_json: checkpointing sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        print!("{}", checkpointing.to_table());
    }
    let matrix = match matrix_cfg {
        Some(mc) => match run_matrix_with_telemetry(&full_registry(), &mc) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("bench_json: matrix sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Some((m, _)) = matrix.as_ref().filter(|_| !quiet) {
        println!(
            "campaign matrix: {} workload cells + {} wide cells + {} pipeline cells, \
             undetected under diverse policies: {} + {}, frames recovered in-FTTI: {}",
            m.reports.len(),
            m.wide_reports.len(),
            m.pipeline_reports.len(),
            m.undetected_under_diverse_policies(),
            m.pipeline_undetected_under_diverse_policies(),
            m.total_recovered()
        );
        if !m.limp_reports.is_empty() {
            println!(
                "degraded mode: {} mission cells over {} frames — quarantined: {}, \
                 limp-home misses: {}, re-planned deadline misses: {}, \
                 frames to diagnosis: {}, post-quarantine inflation: {}",
                m.limp_reports.len(),
                m.limp_frames,
                m.limp_quarantined(),
                m.limp_home_misses(),
                m.limp_deadline_misses(),
                m.limp_mean_frames_to_diagnosis()
                    .map_or("n/a".to_string(), |v| format!("{v:.2}")),
                m.limp_makespan_inflation()
                    .map_or("n/a".to_string(), |v| format!("{v:.3}x")),
            );
        }
    }
    let core_json = core.to_json();
    let ck_json = checkpointing.to_json();
    let json = match &matrix {
        Some((m, mt)) => result.to_json_with_extra(&[
            ("core_mips", &core_json),
            ("checkpointing", &ck_json),
            ("matrix", &m.to_json()),
            ("telemetry", &mt.to_json()),
        ]),
        None => {
            result.to_json_with_extra(&[("core_mips", &core_json), ("checkpointing", &ck_json)])
        }
    };
    if out == "-" {
        println!("{json}");
        return finish(assert_no_core_regression, core_regressed);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_json: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    if !quiet {
        println!("wrote {out}");
    }
    finish(assert_no_core_regression, core_regressed)
}

/// Exit status once the artifact is out: a core regression only fails the
/// run when the caller opted into the assertion.
fn finish(assert_no_core_regression: bool, core_regressed: bool) -> ExitCode {
    if assert_no_core_regression && core_regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
