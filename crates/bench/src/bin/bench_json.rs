//! Records campaign-engine throughput in `BENCH_campaign.json`.
//!
//! Runs the acceptance measurement of the parallel fault-campaign engine —
//! a 1000-trial transient campaign on `IteratedFma` — through the serial
//! reference engine and the worker pool at several widths, then writes a
//! JSON document so the perf trajectory is tracked PR over PR.
//!
//! ```text
//! bench_json [--trials N] [--seed S] [--workers 1,2,4,8] [--out PATH]
//! ```

use higpu_bench::campaign_perf::{measure, ThroughputConfig};
use std::process::ExitCode;

fn parse_args(cfg: &mut ThroughputConfig, out: &mut String) -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--trials" => {
                cfg.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => {
                cfg.worker_counts = value("--workers")?
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--workers: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--out" => *out = value("--out")?,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut cfg = ThroughputConfig::default();
    let mut out = "BENCH_campaign.json".to_string();
    if let Err(e) = parse_args(&mut cfg, &mut out) {
        eprintln!("bench_json: {e}");
        return ExitCode::FAILURE;
    }
    let result = match measure(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_json: campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", result.to_table());
    let json = result.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_json: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
