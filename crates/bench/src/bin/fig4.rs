//! Regenerates Figure 4: redundant-kernel simulation cycles (GPGPU-Sim-class
//! simulator, 6 SMs) under Default / HALF / SRRS, normalized to Default.
//!
//! Usage: `cargo run --release -p higpu-bench --bin fig4 [--csv]`

use higpu_bench::{fig4, table};
use higpu_sim::config::GpuConfig;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = GpuConfig::paper_6sm();
    eprintln!(
        "Figure 4 — redundant kernel simulation cycles (normalized to the default scheduler)"
    );
    eprintln!(
        "GPU: {} SMs, dispatch gap {} cycles\n",
        cfg.num_sms, cfg.dispatch_gap_cycles
    );
    let rows = fig4::run_all(&cfg).unwrap_or_else(|e| {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    });
    let t = fig4::to_table(&rows);
    if csv {
        println!("{}", table::render_csv(&t));
    } else {
        println!("{}", table::render(&t));
        let max_srrs = rows.iter().map(|r| r.srrs_norm()).fold(0.0f64, f64::max);
        let max_half = rows.iter().map(|r| r.half_norm()).fold(0.0f64, f64::max);
        println!(
            "worst-case SRRS overhead: {max_srrs:.2}x; worst-case HALF overhead: {max_half:.2}x"
        );
        println!(
            "paper: HALF negligible for 9/11 (worst ~1.10x, lud); SRRS up to ~1.99x (myocyte)"
        );
    }
}
