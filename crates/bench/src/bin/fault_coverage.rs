//! Fault-injection coverage table (extension of the paper's safety
//! argument): detection coverage per scheduling policy and fault class.
//!
//! Usage: `cargo run --release -p higpu-bench --bin fault_coverage [trials] [--csv]`

use higpu_bench::{coverage, table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let trials: u32 = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse().ok())
        .unwrap_or(50);
    eprintln!("Fault-injection coverage — {trials} trials per (policy, fault) cell\n");
    let m = coverage::run_matrix(trials, 0xD1CE).unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        std::process::exit(1);
    });
    let t = coverage::to_table(&m);
    if csv {
        println!("{}", table::render_csv(&t));
    } else {
        println!("{}", table::render(&t));
        let undetected: u32 = m
            .reports
            .iter()
            .filter(|r| !r.policy.starts_with("GPGPU-SIM"))
            .map(|r| r.undetected)
            .sum();
        println!(
            "undetected failures under SRRS/HALF: {undetected} (the paper's ASIL-D claim requires 0)"
        );
    }
}
