//! Minimal aligned-table / CSV rendering for the figure binaries.

/// Renders rows as an aligned text table. The first row is the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders rows as CSV (no quoting — cells must not contain commas).
pub fn render_csv(rows: &[Vec<String>]) -> String {
    rows.iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<String>> {
        vec![
            vec!["name".into(), "value".into()],
            vec!["alpha".into(), "1".into()],
            vec!["b".into(), "22".into()],
        ]
    }

    #[test]
    fn table_is_aligned() {
        let t = render(&rows());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // Columns align: "value" starts at the same offset everywhere.
        let col = lines[0].find("value").expect("header col");
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    fn csv_joins_with_commas() {
        let c = render_csv(&rows());
        assert_eq!(c.lines().next(), Some("name,value"));
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(render(&[]), "");
    }
}
