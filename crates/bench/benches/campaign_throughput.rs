//! Quick campaign-engine throughput check (`cargo bench -p higpu_bench`).
//!
//! A trimmed version of the `bench_json` acceptance run: times the serial
//! fresh-device reference engine against the pooled parallel engine and
//! prints a comparison table. Use the `bench_json` binary for the full
//! 1000-trial measurement recorded in `BENCH_campaign.json`.

use higpu_bench::campaign_perf::{measure, ThroughputConfig};

fn main() {
    let cfg = ThroughputConfig {
        trials: 200,
        worker_counts: vec![1, 2, 4, 8],
        ..ThroughputConfig::default()
    };
    match measure(&cfg) {
        Ok(r) => print!("{}", r.to_table()),
        Err(e) => {
            eprintln!("campaign_throughput: {e}");
            std::process::exit(1);
        }
    }
}
