//! Ablation: sensitivity of the SRRS overhead to the host dispatch gap.
//!
//! The gap is what makes *short* kernels serialize naturally (paper
//! Sec. IV-B): with a large gap the redundant copies never overlap and SRRS
//! is free; with a zero gap SRRS pays full serialization. This bench sweeps
//! the gap and prints the SRRS/default cycle ratio at each point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higpu_bench::fig4;
use higpu_core::redundancy::RedundancyMode;
use higpu_rodinia::nn::Nn;
use higpu_sim::config::GpuConfig;

fn bench_gap_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dispatch_gap");
    group.sample_size(10);
    let bench = Nn {
        records: 2048,
        ..Default::default()
    };
    for gap in [0u64, 1_750, 3_500, 7_000, 14_000] {
        let mut cfg = GpuConfig::paper_6sm();
        cfg.dispatch_gap_cycles = gap;
        let (default_cycles, _) =
            fig4::measure(&cfg, &bench, RedundancyMode::uncontrolled()).expect("default");
        let (srrs_cycles, diverse) =
            fig4::measure(&cfg, &bench, RedundancyMode::srrs_default(6)).expect("srrs");
        eprintln!(
            "gap {gap:>6}: SRRS/default = {:.2}x (diverse: {diverse})",
            srrs_cycles as f64 / default_cycles as f64
        );
        group.bench_with_input(BenchmarkId::from_parameter(gap), &cfg, |b, cfg| {
            b.iter(|| fig4::measure(cfg, &bench, RedundancyMode::srrs_default(6)).expect("srrs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gap_sweep);
criterion_main!(benches);
