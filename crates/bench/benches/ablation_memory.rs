//! Ablation: shared-memory-system interference under HALF.
//!
//! HALF's replicas run concurrently and contend in the L2/DRAM (paper
//! Sec. IV-B2 argues the contention can delay but never align them). This
//! bench sweeps the DRAM service time (inverse bandwidth) and reports the
//! HALF/default ratio for a memory-bound kernel — contention grows, the
//! diversity guarantee never breaks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higpu_bench::fig4;
use higpu_core::redundancy::RedundancyMode;
use higpu_rodinia::pathfinder::Pathfinder;
use higpu_sim::config::GpuConfig;

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memory");
    group.sample_size(10);
    let bench = Pathfinder {
        cols: 2048,
        rows: 8,
        threads_per_block: 128,
    };
    for service in [1u32, 2, 4, 8] {
        let mut cfg = GpuConfig::paper_6sm();
        cfg.timing.dram_service_cycles = service;
        let (default_cycles, _) =
            fig4::measure(&cfg, &bench, RedundancyMode::uncontrolled()).expect("default");
        let (half_cycles, diverse) =
            fig4::measure(&cfg, &bench, RedundancyMode::Half).expect("half");
        eprintln!(
            "dram service {service}: HALF/default = {:.2}x (diverse: {diverse})",
            half_cycles as f64 / default_cycles as f64
        );
        assert!(diverse, "contention must not break diversity");
        group.bench_with_input(BenchmarkId::from_parameter(service), &cfg, |b, cfg| {
            b.iter(|| fig4::measure(cfg, &bench, RedundancyMode::Half).expect("half"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
