//! Ablation: SRRS start-SM separation.
//!
//! SRRS needs the two replicas' start SMs to differ (mod the SM count); the
//! amount of separation does not change performance (placement is
//! round-robin either way) but determines which SM pairs host redundant
//! blocks. This bench sweeps the offset, verifies diversity holds for every
//! choice, and times the runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higpu_bench::fig4;
use higpu_core::redundancy::RedundancyMode;
use higpu_rodinia::hotspot::Hotspot;
use higpu_sim::config::GpuConfig;

fn bench_start_sm(c: &mut Criterion) {
    let cfg = GpuConfig::paper_6sm();
    let mut group = c.benchmark_group("ablation_start_sm");
    group.sample_size(10);
    let bench = Hotspot {
        size: 64,
        steps: 2,
        ..Default::default()
    };
    for offset in 1usize..6 {
        let mode = RedundancyMode::Srrs {
            start_sms: vec![0, offset],
        };
        let (cycles, diverse) = fig4::measure(&cfg, &bench, mode.clone()).expect("srrs");
        eprintln!("offset {offset}: {cycles} cycles, diverse: {diverse}");
        assert!(diverse, "every non-zero offset must preserve diversity");
        group.bench_with_input(BenchmarkId::from_parameter(offset), &mode, |b, mode| {
            b.iter(|| fig4::measure(&cfg, &bench, mode.clone()).expect("srrs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_start_sm);
criterion_main!(benches);
