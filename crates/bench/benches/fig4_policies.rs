//! Criterion bench behind Figure 4: times the redundant-execution
//! simulation of representative kernels (one per paper category) under each
//! scheduling policy, and prints the cycle ratios the figure reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higpu_bench::fig4;
use higpu_core::redundancy::RedundancyMode;
use higpu_rodinia::harness::Benchmark;
use higpu_rodinia::hotspot::Hotspot;
use higpu_rodinia::myocyte::Myocyte;
use higpu_rodinia::nn::Nn;
use higpu_sim::config::GpuConfig;

fn representatives() -> Vec<(&'static str, Box<dyn Benchmark>)> {
    vec![
        (
            "short/nn",
            Box::new(Nn {
                records: 1024,
                ..Default::default()
            }) as Box<dyn Benchmark>,
        ),
        (
            "friendly/hotspot",
            Box::new(Hotspot {
                size: 64,
                steps: 2,
                ..Default::default()
            }),
        ),
        (
            "friendly-long/myocyte",
            Box::new(Myocyte {
                cells: 64,
                threads_per_block: 32,
                steps: 400,
                dt: 0.02,
            }),
        ),
    ]
}

fn bench_policies(c: &mut Criterion) {
    let cfg = GpuConfig::paper_6sm();
    let mut group = c.benchmark_group("fig4_policies");
    group.sample_size(10);
    for (label, bench) in representatives() {
        // Print the figure's data point once per benchmark.
        if let Ok(row) = fig4::run_benchmark(&cfg, bench.as_ref()) {
            eprintln!(
                "fig4[{label}]: HALF {:.2}x, SRRS {:.2}x (vs default)",
                row.half_norm(),
                row.srrs_norm()
            );
        }
        for (policy, mode) in [
            ("default", RedundancyMode::uncontrolled()),
            ("half", RedundancyMode::Half),
            ("srrs", RedundancyMode::srrs_default(cfg.num_sms)),
        ] {
            group.bench_with_input(BenchmarkId::new(policy, label), &mode, |b, mode| {
                b.iter(|| fig4::measure(&cfg, bench.as_ref(), mode.clone()).expect("measure"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
