//! Criterion bench behind Figure 5: times the end-to-end COTS model for a
//! launch-dominated benchmark (nn) and a kernel-dominated one (cfd), and
//! prints the baseline/redundant ratios the figure reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higpu_bench::fig5;
use higpu_cots::{run_baseline, run_redundant, CotsPlatform};
use higpu_rodinia::cfd::Cfd;
use higpu_rodinia::harness::Benchmark;
use higpu_rodinia::nn::Nn;

fn representatives() -> Vec<(&'static str, Box<dyn Benchmark>)> {
    vec![
        (
            "launch-dominated/nn",
            Box::new(Nn {
                records: 1024,
                ..Default::default()
            }) as Box<dyn Benchmark>,
        ),
        (
            "kernel-dominated/cfd",
            Box::new(Cfd {
                cells: 1024,
                steps: 20,
                dtdx: 0.1,
                threads_per_block: 64,
            }),
        ),
    ]
}

fn bench_endtoend(c: &mut Criterion) {
    let platform = CotsPlatform::gtx1050ti();
    let mut group = c.benchmark_group("fig5_endtoend");
    group.sample_size(10);
    for (label, bench) in representatives() {
        if let Ok(row) = fig5::run_benchmark(&platform, bench.as_ref()) {
            eprintln!(
                "fig5[{label}]: baseline {:.3} ms, redundant {:.3} ms ({:.2}x)",
                row.baseline_ms,
                row.redundant_ms,
                row.ratio()
            );
        }
        group.bench_with_input(BenchmarkId::new("baseline", label), &(), |b, ()| {
            b.iter(|| run_baseline(&platform, bench.as_ref()).expect("baseline"))
        });
        group.bench_with_input(BenchmarkId::new("redundant", label), &(), |b, ()| {
            b.iter(|| run_redundant(&platform, bench.as_ref()).expect("redundant"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
