//! Re-validation fence for the mined per-workload FTTI budgets.
//!
//! PR 9 mined the corrupted-but-terminating makespan histograms out of the
//! campaign telemetry: p99.9 stays ≤ 2.9× the fault-free makespan for 14 of
//! the 17 registry workloads, while `lud` (7.28×), `myocyte` (4.99×) and
//! `nw` (4.59×) are long-tailed. These fences pin the feedback of that
//! mining into [`higpu_workloads::Workload::ftti_multiplier`]:
//!
//! * the registry declares exactly the mined assignment (14 ×
//!   [`MINED_FTTI_MULTIPLIER`], the three outliers keep
//!   [`DEFAULT_FTTI_MULTIPLIER`]);
//! * for mined workloads, a full campaign under the tightened budget is
//!   **report-identical** to the same campaign under the old flat budget —
//!   the tighter watchdog cuts no legitimate corrupted-but-terminating run,
//!   so detection rates are unchanged.

use higpu_bench::matrix::full_registry;
use higpu_core::redundancy::{RedundancyError, RedundancyMode, RedundantExecutor};
use higpu_faults::campaign::{run_campaign, CampaignConfig, FaultSpec};
use higpu_faults::workload::{CampaignWorkload, RedundantWorkload, WorkloadVerdict};
use higpu_workloads::{Scale, DEFAULT_FTTI_MULTIPLIER, MINED_FTTI_MULTIPLIER};

/// The three long-tailed workloads that keep the flat default budget.
const LONG_TAILED: [&str; 3] = ["lud", "myocyte", "nw"];

/// Wraps a campaign workload with an explicit FTTI budget so the same
/// computation can be campaigned under both the mined and the flat budget.
struct WithBudget<'a> {
    inner: &'a CampaignWorkload,
    multiplier: u64,
}

impl RedundantWorkload for WithBudget<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn run(&self, exec: &mut RedundantExecutor<'_>) -> Result<WorkloadVerdict, RedundancyError> {
        self.inner.run(exec)
    }

    fn ftti_multiplier(&self) -> u64 {
        self.multiplier
    }
}

#[test]
fn registry_declares_exactly_the_mined_budget_assignment() {
    let reg = full_registry();
    let mut mined = 0usize;
    let mut names = reg.names();
    names.sort_unstable();
    assert_eq!(names.len(), 17, "registry size drifted: {names:?}");
    for name in &names {
        let wl = reg.build(name, Scale::Campaign).expect("registered");
        let mult = wl.ftti_multiplier();
        if LONG_TAILED.contains(name) {
            assert_eq!(
                mult, DEFAULT_FTTI_MULTIPLIER,
                "{name} is long-tailed (mined p99.9 > 3×) and must keep the flat budget"
            );
        } else {
            assert_eq!(
                mult, MINED_FTTI_MULTIPLIER,
                "{name} is short-tailed (mined p99.9 ≤ 2.9×) and must declare the mined budget"
            );
            mined += 1;
        }
    }
    assert_eq!(mined, 14, "mined-budget workload count drifted");
}

#[test]
fn mined_budgets_leave_detection_rates_unchanged() {
    let reg = full_registry();
    let cfg = CampaignConfig {
        trials: 24,
        ..CampaignConfig::default()
    };
    let mode = RedundancyMode::srrs_default(6);
    // A cheap mined workload from each structural class: synthetic FMA,
    // grid sweep, single short kernel.
    for name in ["iterated_fma", "pathfinder", "nn"] {
        let wl = CampaignWorkload::from_registry(&reg, name, Scale::Campaign).expect("registered");
        assert_eq!(
            RedundantWorkload::ftti_multiplier(&wl),
            MINED_FTTI_MULTIPLIER
        );
        for spec in [
            FaultSpec::Transient { duration: 4000 },
            FaultSpec::Droop { duration: 4000 },
        ] {
            let mined = run_campaign(
                &cfg,
                &mode,
                spec,
                &WithBudget {
                    inner: &wl,
                    multiplier: MINED_FTTI_MULTIPLIER,
                },
            )
            .expect("mined-budget campaign");
            let flat = run_campaign(
                &cfg,
                &mode,
                spec,
                &WithBudget {
                    inner: &wl,
                    multiplier: DEFAULT_FTTI_MULTIPLIER,
                },
            )
            .expect("flat-budget campaign");
            assert_eq!(
                mined, flat,
                "{name}/{spec:?}: tightening the watchdog to the mined budget must not \
                 reclassify any trial"
            );
            assert!(
                mined.trials > mined.not_activated,
                "{name}/{spec:?}: the sweep must activate faults to validate anything"
            );
        }
    }
}
