//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, and this project's only
//! randomness needs are *seeded, reproducible* draws for fault-injection
//! campaigns and benchmark input generation. This crate provides the small
//! API subset the workspace uses — [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and `f32` ranges, and [`rngs::StdRng`] —
//! with a deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! **Streams are not bit-compatible with the real `rand` crate.** They are,
//! however, stable across platforms and releases of this shim: campaign
//! seeds recorded in experiment artifacts stay reproducible.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::Range;

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open `lo..hi` range.
pub trait UniformSample: Copy + PartialOrd {
    /// Draws one value in `[lo, hi)` from `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty (`lo >= hi`), as the real crate does.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Object-safe core of a generator: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Draws a value uniformly from the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a `bool` that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, exactly like rand's standard uniform.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Maps 64 uniform bits into `[0, n)` without modulo bias (Lemire's
/// widening-multiply rejection method).
fn bounded_u64(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(n);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected sample: retry with fresh bits (rare for small n).
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl UniformSample for f32 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        // Clamp: lo + (hi-lo)*u can round up to hi for u just below 1.
        let v = lo + (hi - lo) * u;
        if v >= hi {
            hi - (hi - lo) * f32::EPSILON
        } else {
            v
        }
    }
}

impl UniformSample for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + (hi - lo) * u;
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, 256-bit state, passes BigCrush; **not** the
    /// ChaCha12-based `StdRng` of the real `rand` crate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0..1u64);
            assert_eq!(u, 0, "single-element range");
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
