//! # higpu-core — diverse redundant GPU execution for ISO 26262 ASIL-D
//!
//! The primary contribution of *High-Integrity GPU Designs for Critical
//! Real-Time Automotive Systems* (DATE 2019), reproduced in Rust on the
//! [`higpu_sim`] substrate:
//!
//! * [`policy`] — the two lightweight kernel-scheduler modifications:
//!   **SRRS** (start / round-robin / serial) and **HALF** (static SM
//!   halving), which guarantee that redundant thread blocks execute on
//!   different SMs at different times — defeating both permanent SM faults
//!   and transient common-cause faults (voltage droops, crosstalk);
//! * [`redundancy`] — the five-step DCLS host protocol (allocate ×N,
//!   copy ×N, launch ×N, collect ×N, compare/vote) generalized to
//!   N-modular redundancy: SRRS start-SM vectors and SLICE SM slicing for
//!   N ≥ 2 replicas;
//! * [`vote`] — the bitwise per-word majority voter that turns N ≥ 3
//!   replicas into forward recovery (corrected, not merely detected);
//! * [`diversity`] — the trace analyzer that turns executions into
//!   independence *evidence*;
//! * [`classify`] — the short / heavy / friendly kernel taxonomy (Fig. 3)
//!   and per-kernel policy selection;
//! * [`asil`] — ISO 26262 ASIL decomposition algebra (Fig. 1);
//! * [`ftti`] — fault-tolerant time interval accounting for
//!   re-execution-based recovery;
//! * [`health`] — permanent-fault diagnosis: vote-outcome attribution,
//!   per-SM suspicion with quarantine thresholds, and targeted per-SM
//!   BIST sweeps for evidence a DCLS tie cannot attribute;
//! * [`hw_metrics`] — the ISO 26262-5 hardware architectural metrics
//!   (SPFM/LFM) with per-ASIL targets;
//! * [`bist`] — the periodic kernel-scheduler self-test that keeps
//!   scheduler faults from becoming latent (Sec. IV-C);
//! * [`safety_case`] — assembly of all evidence into the ASIL-D argument.
//!
//! # Examples
//!
//! Run a computation redundantly under SRRS and verify diversity:
//!
//! ```
//! use higpu_core::prelude::*;
//! use higpu_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gpu = Gpu::new(GpuConfig::paper_6sm());
//! let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6))?;
//!
//! let mut b = KernelBuilder::new("square");
//! let buf = b.param(0);
//! let i = b.global_tid_x();
//! let addr = b.addr_w(buf, i);
//! let v = b.ldg(addr, 0);
//! let sq = b.imul(v, v);
//! b.stg(addr, 0, sq);
//! let prog = b.build()?.into_shared();
//!
//! let data = exec.alloc_words(64)?;
//! exec.write_u32(&data, &(0..64).collect::<Vec<u32>>())?;
//! exec.launch(&prog, 2u32, 32u32, 0, &[RParam::Buf(&data)])?;
//! exec.sync()?;
//! let out = exec.read_compare_u32(&data, 64)?.into_match().expect("agree");
//! assert_eq!(out[7], 49);
//!
//! drop(exec);
//! let report = higpu_core::diversity::analyze(
//!     gpu.trace(),
//!     higpu_core::diversity::DiversityRequirements::default(),
//! );
//! assert!(report.is_diverse());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asil;
pub mod bist;
pub mod classify;
pub mod diversity;
pub mod ftti;
pub mod health;
pub mod hw_metrics;
pub mod metrics;
pub mod policy;
pub mod redundancy;
pub mod safety_case;
pub mod vote;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::asil::{Architecture, Asil, Element, Independence};
    pub use crate::bist::{scheduler_bist, BistReport};
    pub use crate::classify::{classify, profile, KernelCategory, KernelProfile};
    pub use crate::diversity::{analyze, DiversityReport, DiversityRequirements};
    pub use crate::ftti::{FttiBudget, RecoveryAnalysis};
    pub use crate::health::{minority_replicas, sm_bist_sweep, Evidence, HealthMonitor};
    pub use crate::hw_metrics::{FaultRates, HardwareMetrics};
    pub use crate::metrics::{redundant_kernel_cycles, solo_kernel_cycles};
    pub use crate::policy::{HalfScheduler, PolicyKind, SliceScheduler, SrrsScheduler};
    pub use crate::redundancy::{
        Comparison, RBuf, RParam, RedundancyError, RedundancyMode, RedundantExecutor,
    };
    pub use crate::safety_case::{DetectionEvidence, SafetyCase};
    pub use crate::vote::{majority_vote, VoteOutcome, VotedWords};
}
