//! The PARTITIONED kernel scheduling policy: the frame-level composition of
//! the paper's diversity policies over **reserved SM partitions**.
//!
//! A concurrent frame executor runs independent DAG branches of one frame
//! at the same time, each branch confined to a disjoint SM range it
//! reserved ([`higpu_sim::partition::SmPartitionTable`]) and carried on
//! every launch as the [`higpu_sim::kernel::LaunchAttrs::reserve`]
//! attribute. Inside each reserve, the branch's replica-diversity scheme is
//! re-applied *relative to the partition*:
//!
//! * kernels carrying a `serialize_group` follow **SRRS scoped to the
//!   reserve** — a kernel starts only when its partition is idle, blocks
//!   round-robin from the (absolute) `start_sm` over the partition's SMs,
//!   and kernels execute one at a time in arrival order *within the
//!   partition* while sibling partitions run concurrently;
//! * kernels carrying an [`higpu_sim::kernel::SmSlice`] are confined to
//!   that **sub-slice of the reserve** ([`SmSlice::range_in`]), all
//!   replicas concurrent — SLICE scoped to the partition;
//! * kernels with neither hint fill their reserve breadth-first — the
//!   uncontrolled baseline scoped to the partition.
//!
//! Kernels without a reserve (e.g. a scheduler self-test canary launched
//! between frames) fall back to the same rules over the whole device, so
//! the policy degenerates to SRRS/SLICE/default behaviour when nothing is
//! partitioned.

use higpu_sim::partition::SmRange;
use higpu_sim::scheduler::{KernelSchedulerPolicy, KernelSnapshot, SchedulerView};

/// The PARTITIONED policy (stateless across rounds; all scheduling facts
/// are carried by the launch attributes).
#[derive(Debug, Clone, Default)]
pub struct PartitionedScheduler {
    _private: (),
}

impl PartitionedScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The absolute SM range a kernel may use: its sub-slice of the reserve
/// when both are present, the reserve itself, a global slice, or the whole
/// device — clamped to the device's SM count.
fn allowed_range(k: &KernelSnapshot, num_sms: usize) -> std::ops::Range<usize> {
    let r = match (k.attrs.reserve, k.attrs.slice) {
        (Some(reserve), Some(slice)) => slice.range_in(reserve),
        (Some(reserve), None) => reserve.range(),
        (None, Some(slice)) => slice.range(num_sms),
        (None, None) => 0..num_sms,
    };
    r.start.min(num_sms)..r.end.min(num_sms)
}

/// True when no blocks are resident (or committed this round) on any SM of
/// `range` — the partition-scoped SRRS idle-start condition.
fn range_idle(view: &SchedulerView, range: &std::ops::Range<usize>) -> bool {
    view.sms()[range.clone()]
        .iter()
        .all(|s| s.resident_blocks == 0)
}

impl KernelSchedulerPolicy for PartitionedScheduler {
    fn name(&self) -> &str {
        "partitioned"
    }

    fn assign(&mut self, view: &mut SchedulerView) {
        let n = view.num_sms();
        if n == 0 {
            return;
        }
        // Distinct reserves, in first-kernel arrival order (`None` = the
        // unreserved remainder, treated as one more partition).
        let mut reserves: Vec<Option<SmRange>> = Vec::new();
        for k in view.kernels() {
            if !reserves.contains(&k.attrs.reserve) {
                reserves.push(k.attrs.reserve);
            }
        }
        for reserve in reserves {
            assign_in_reserve(view, reserve, n);
        }
    }
}

fn assign_in_reserve(view: &mut SchedulerView, reserve: Option<SmRange>, n: usize) {
    let base = match reserve {
        Some(r) => r.range().start.min(n)..r.range().end.min(n),
        None => 0..n,
    };
    if base.is_empty() {
        return;
    }
    // The reserve's kernels, in arrival order. All kernels of one reserve
    // come from one branch attempt, so they share a diversity scheme; the
    // head kernel's attributes select it.
    let ids: Vec<_> = view
        .kernels()
        .iter()
        .filter(|k| k.attrs.reserve == reserve)
        .map(|k| k.id)
        .collect();
    let Some(&head_id) = ids.first() else {
        return;
    };
    let head = view
        .kernels()
        .iter()
        .find(|k| k.id == head_id)
        .expect("head id from this view");

    if head.attrs.serialize_group.is_some() {
        // SRRS scoped to the partition: head-of-line, idle-start, strict
        // round-robin from the start SM over the partition's *healthy* SMs
        // (reserved partitions exclude quarantined SMs by construction, but
        // the whole-device fallback — e.g. an inter-frame BIST canary — must
        // still place around dead hardware).
        if head.blocks_issued == 0 && !range_idle(view, &base) {
            return;
        }
        // Materialized only when something in the reserve is actually
        // quarantined — steady-state frame scheduling stays allocation-free.
        let healthy: Option<Vec<usize>> = if base.clone().any(|sm| view.sms()[sm].quarantined) {
            let h: Vec<usize> = base
                .clone()
                .filter(|&sm| !view.sms()[sm].quarantined)
                .collect();
            if h.is_empty() {
                return;
            }
            Some(h)
        } else {
            None
        };
        let h = healthy.as_ref().map_or(base.len(), |v| v.len());
        let off = head
            .attrs
            .start_sm
            .map(|s| match &healthy {
                Some(v) if base.contains(&s) => crate::policy::srrs::healthy_start_pos(v, s),
                None if base.contains(&s) => s - base.start,
                _ => s % h,
            })
            .unwrap_or(0);
        loop {
            let Some(k) = view.kernels().iter().find(|k| k.id == head_id) else {
                return;
            };
            if k.pending() == 0 {
                return;
            }
            let i = k.blocks_issued as usize;
            let sm = match &healthy {
                Some(v) => v[(off + i) % h],
                None => base.start + (off + i) % h,
            };
            if !view.try_assign(sm, head_id) {
                return; // head-of-line: wait for the designated SM
            }
        }
    } else {
        // Concurrent (SLICE / uncontrolled) scoped to the partition: each
        // kernel fills its allowed sub-range breadth-first.
        for id in ids {
            let allowed = {
                let Some(k) = view.kernels().iter().find(|k| k.id == id) else {
                    continue;
                };
                allowed_range(k, n)
            };
            if allowed.is_empty() {
                continue; // unplaceable (over-sliced): never spin
            }
            loop {
                let mut any = false;
                for sm in allowed.clone() {
                    any |= view.try_assign(sm, id);
                }
                if !any {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::kernel::{BlockFootprint, KernelId, LaunchAttrs, SmSlice};
    use higpu_sim::scheduler::SmSnapshot;
    use higpu_sim::sm::ResourceUsage;

    fn fp() -> BlockFootprint {
        BlockFootprint {
            threads: 64,
            warps: 2,
            registers: 64,
            shared_mem: 0,
        }
    }

    fn sm_free() -> SmSnapshot {
        SmSnapshot {
            free: ResourceUsage {
                threads: 1536,
                warps: 48,
                registers: 32 * 1024,
                shared_mem: 48 * 1024,
                blocks: 8,
            },
            resident_blocks: 0,
            quarantined: false,
        }
    }

    fn kernel(id: u64, blocks: u32, attrs: LaunchAttrs) -> KernelSnapshot {
        KernelSnapshot {
            id: KernelId(id),
            attrs: std::sync::Arc::new(attrs),
            arrival: 0,
            blocks_total: blocks,
            blocks_issued: 0,
            blocks_done: 0,
            footprint: fp(),
        }
    }

    fn reserve(start: usize, len: usize) -> Option<SmRange> {
        Some(SmRange { start, len })
    }

    #[test]
    fn srrs_in_partition_round_robins_within_the_reserve_only() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(
                0,
                5,
                LaunchAttrs {
                    reserve: reserve(3, 3),
                    start_sm: Some(4),
                    serialize_group: Some(0),
                    ..Default::default()
                },
            )],
            (0..6).map(|_| sm_free()).collect(),
        );
        PartitionedScheduler::new().assign(&mut view);
        let sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        assert_eq!(sms, vec![4, 5, 3, 4, 5], "round-robin over SMs 3..6 only");
    }

    #[test]
    fn srrs_in_partition_serializes_against_its_own_partition_not_the_device() {
        // Partition [0..3) is busy with a resident block; partition [3..6)
        // is idle. The [3..6) kernel must start regardless of the sibling's
        // residency, while a second [3..6) kernel waits for the first.
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free()).collect();
        sms[1].resident_blocks = 1; // sibling branch's block
        let srrs = |id, start| {
            kernel(
                id,
                2,
                LaunchAttrs {
                    reserve: reserve(3, 3),
                    start_sm: Some(start),
                    serialize_group: Some(id as u32),
                    ..Default::default()
                },
            )
        };
        let mut view = SchedulerView::new(0, vec![srrs(0, 3), srrs(1, 4)], sms);
        PartitionedScheduler::new().assign(&mut view);
        assert!(
            view.assignments().iter().all(|a| a.kernel == KernelId(0)),
            "only the head kernel of the partition dispatches"
        );
        assert_eq!(view.assignments().len(), 2, "head fully placed: {view:?}");
        assert!(view.assignments().iter().all(|a| (3..6).contains(&a.sm)));
    }

    #[test]
    fn sliced_replicas_stay_in_their_sub_slice_of_the_reserve() {
        // A 3-SM partition at [3..6) cut into 2 sub-slices: replica 0 on
        // SM 3, replica 1 on SMs 4..6 — concurrent, disjoint.
        let sliced = |id, index| {
            kernel(
                id,
                3,
                LaunchAttrs {
                    reserve: reserve(3, 3),
                    slice: Some(SmSlice { index, of: 2 }),
                    ..Default::default()
                },
            )
        };
        let mut view = SchedulerView::new(
            0,
            vec![sliced(0, 0), sliced(1, 1)],
            (0..6).map(|_| sm_free()).collect(),
        );
        PartitionedScheduler::new().assign(&mut view);
        assert_eq!(view.assignments().len(), 6, "both replicas fully placed");
        for a in view.assignments() {
            if a.kernel == KernelId(0) {
                assert_eq!(a.sm, 3, "sub-slice 0 of [3..6) is SM 3");
            } else {
                assert!((4..6).contains(&a.sm), "sub-slice 1 of [3..6)");
            }
        }
    }

    #[test]
    fn disjoint_partitions_dispatch_concurrently() {
        let srrs = |id, start, lo, len| {
            kernel(
                id,
                2,
                LaunchAttrs {
                    reserve: reserve(lo, len),
                    start_sm: Some(start),
                    serialize_group: Some(id as u32),
                    ..Default::default()
                },
            )
        };
        let mut view = SchedulerView::new(
            0,
            vec![srrs(0, 0, 0, 3), srrs(1, 3, 3, 3)],
            (0..6).map(|_| sm_free()).collect(),
        );
        PartitionedScheduler::new().assign(&mut view);
        assert_eq!(
            view.assignments().len(),
            4,
            "both partitions' heads dispatch in the same round"
        );
        for a in view.assignments() {
            if a.kernel == KernelId(0) {
                assert!(a.sm < 3);
            } else {
                assert!(a.sm >= 3, "no partition escape");
            }
        }
    }

    #[test]
    fn whole_device_srrs_fallback_places_around_quarantined_sms() {
        // No reserve (the inter-frame BIST canary case) on a device with a
        // quarantined SM: the round-robin rotates over the healthy SMs.
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free()).collect();
        sms[2].quarantined = true;
        let mut view = SchedulerView::new(
            0,
            vec![kernel(
                0,
                5,
                LaunchAttrs {
                    start_sm: Some(0),
                    serialize_group: Some(0),
                    ..Default::default()
                },
            )],
            sms,
        );
        PartitionedScheduler::new().assign(&mut view);
        let placed: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        assert_eq!(placed, vec![0, 1, 3, 4, 5], "rotation skips the dead SM");
    }

    #[test]
    fn unreserved_kernels_fall_back_to_whole_device_rules() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 6, LaunchAttrs::default())],
            (0..6).map(|_| sm_free()).collect(),
        );
        PartitionedScheduler::new().assign(&mut view);
        let mut sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        sms.sort_unstable();
        assert_eq!(sms, vec![0, 1, 2, 3, 4, 5]);
    }
}
