//! The SLICE kernel scheduling policy — the N-replica generalization of
//! HALF (paper Sec. IV-B2).
//!
//! SLICE statically partitions the SMs into N balanced contiguous slices
//! and confines replica *r* to slice *r* (the `slice` launch attribute):
//!
//! * **spatial diversity** is structural — slices are disjoint, so no two
//!   replicas can ever share an SM;
//! * **temporal diversity** follows from the serial dispatch of kernels
//!   from the CPU, exactly as HALF's argument: replica *r* always starts
//!   at least one dispatch gap before replica *r+1*, and shared-resource
//!   contention preserves (never inverts) that slack.
//!
//! Like HALF — and unlike SRRS — all N replicas execute **concurrently**,
//! each on `num_sms / N` SMs. HALF is exactly SLICE with N = 2 (up to the
//! odd-SM-count convention, see [`higpu_sim::kernel::SmSlice`]); the
//! separate [`crate::policy::HalfScheduler`] is retained so the paper's
//! two-replica experiments stay bit-identical.

use higpu_sim::scheduler::{KernelSchedulerPolicy, SchedulerView};

/// The SLICE policy.
///
/// Kernels carrying an [`higpu_sim::kernel::SmSlice`] attribute are
/// confined to that slice; kernels without the attribute (non-redundant
/// work) may use the whole GPU.
#[derive(Debug, Clone, Default)]
pub struct SliceScheduler {
    _private: (),
}

impl SliceScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KernelSchedulerPolicy for SliceScheduler {
    fn name(&self) -> &str {
        "slice"
    }

    fn assign(&mut self, view: &mut SchedulerView) {
        let n = view.num_sms();
        if n == 0 {
            return;
        }
        // Slices are carved over the *healthy* SM index space: on a fully
        // healthy device this is the identity (slice r owns slice.range(n)),
        // while after a quarantine the N slices re-balance over the
        // remaining SMs — every replica keeps a disjoint share instead of
        // the slice containing the dead SM silently shrinking (or vanishing).
        let healthy = crate::policy::srrs::healthy_sms(view.sms());
        if healthy.is_empty() {
            return;
        }
        let h = healthy.len();
        // Kernels in arrival order; each fills its allowed SM range
        // breadth-first (same dispatch shape as HALF).
        let ids: Vec<_> = view.kernels().iter().map(|k| k.id).collect();
        for id in ids {
            let range = {
                let Some(k) = view.kernels().iter().find(|k| k.id == id) else {
                    continue;
                };
                match k.attrs.slice {
                    Some(slice) => slice.range(h),
                    None => 0..h,
                }
            };
            if range.is_empty() {
                continue; // more slices than healthy SMs: unplaceable, never spin
            }
            loop {
                let mut any = false;
                for hi in range.clone() {
                    any |= view.try_assign(healthy[hi], id);
                }
                if !any {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::kernel::{BlockFootprint, KernelId, LaunchAttrs, SmSlice};
    use higpu_sim::scheduler::{KernelSnapshot, SmSnapshot};
    use higpu_sim::sm::ResourceUsage;

    fn fp() -> BlockFootprint {
        BlockFootprint {
            threads: 64,
            warps: 2,
            registers: 64,
            shared_mem: 0,
        }
    }

    fn sm_free(block_slots: u32) -> SmSnapshot {
        SmSnapshot {
            free: ResourceUsage {
                threads: 1536,
                warps: 48,
                registers: 32 * 1024,
                shared_mem: 48 * 1024,
                blocks: block_slots,
            },
            resident_blocks: 0,
            quarantined: false,
        }
    }

    fn kernel(id: u64, blocks: u32, slice: Option<SmSlice>) -> KernelSnapshot {
        KernelSnapshot {
            id: KernelId(id),
            attrs: std::sync::Arc::new(LaunchAttrs {
                slice,
                ..Default::default()
            }),
            arrival: 0,
            blocks_total: blocks,
            blocks_issued: 0,
            blocks_done: 0,
            footprint: fp(),
        }
    }

    fn slice(index: u8, of: u8) -> Option<SmSlice> {
        Some(SmSlice { index, of })
    }

    #[test]
    fn three_slices_are_respected_and_concurrent() {
        let mut view = SchedulerView::new(
            0,
            vec![
                kernel(0, 4, slice(0, 3)),
                kernel(1, 4, slice(1, 3)),
                kernel(2, 4, slice(2, 3)),
            ],
            (0..6).map(|_| sm_free(8)).collect(),
        );
        SliceScheduler::new().assign(&mut view);
        for a in view.assignments() {
            let expected = SmSlice {
                index: a.kernel.0 as u8,
                of: 3,
            };
            assert!(
                expected.contains(a.sm, 6),
                "kernel {:?} escaped its slice onto SM {}",
                a.kernel,
                a.sm
            );
        }
        assert_eq!(view.assignments().len(), 12, "all replicas fully placed");
    }

    #[test]
    fn unsliced_kernels_use_whole_gpu() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 6, None)],
            (0..6).map(|_| sm_free(1)).collect(),
        );
        SliceScheduler::new().assign(&mut view);
        let mut sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        sms.sort_unstable();
        assert_eq!(sms, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn slice_capacity_limits_each_replica() {
        // One block slot per SM, 3 slices of 2 SMs: each replica gets at
        // most 2 blocks resident.
        let mut view = SchedulerView::new(
            0,
            vec![
                kernel(0, 8, slice(0, 3)),
                kernel(1, 8, slice(1, 3)),
                kernel(2, 8, slice(2, 3)),
            ],
            (0..6).map(|_| sm_free(1)).collect(),
        );
        SliceScheduler::new().assign(&mut view);
        for id in 0..3u64 {
            let placed = view
                .assignments()
                .iter()
                .filter(|a| a.kernel == KernelId(id))
                .count();
            assert_eq!(placed, 2, "kernel {id}");
        }
    }

    #[test]
    fn empty_slice_never_spins() {
        // 7 slices on 6 SMs: slice 0 of 7 owns no SM (0*6/7..1*6/7 = 0..0).
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 2, slice(0, 7))],
            (0..6).map(|_| sm_free(8)).collect(),
        );
        SliceScheduler::new().assign(&mut view);
        assert!(view.assignments().is_empty(), "nothing placeable");
    }

    #[test]
    fn slices_rebalance_over_healthy_sms_after_quarantine() {
        // SM 1 quarantined on a 6-SM device: slices are carved over the 5
        // healthy SMs [0,2,3,4,5] — slice 0 of 2 owns healthy indices 0..2
        // (SMs 0,2), slice 1 of 2 owns 2..5 (SMs 3,4,5). Disjoint, no block
        // on the dead SM, and both replicas keep a non-empty share.
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free(8)).collect();
        sms[1].quarantined = true;
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 4, slice(0, 2)), kernel(1, 4, slice(1, 2))],
            sms,
        );
        SliceScheduler::new().assign(&mut view);
        assert_eq!(view.assignments().len(), 8, "both replicas fully placed");
        for a in view.assignments() {
            assert_ne!(a.sm, 1, "no block on the quarantined SM");
            if a.kernel == KernelId(0) {
                assert!([0, 2].contains(&a.sm), "slice 0 over healthy SMs");
            } else {
                assert!([3, 4, 5].contains(&a.sm), "slice 1 over healthy SMs");
            }
        }
    }

    #[test]
    fn two_slices_match_half_on_even_sm_counts() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 6, slice(0, 2)), kernel(1, 6, slice(1, 2))],
            (0..6).map(|_| sm_free(8)).collect(),
        );
        SliceScheduler::new().assign(&mut view);
        for a in view.assignments() {
            if a.kernel == KernelId(0) {
                assert!(a.sm < 3, "slice 0 of 2 on SMs 0..3");
            } else {
                assert!(a.sm >= 3, "slice 1 of 2 on SMs 3..6");
            }
        }
    }
}
