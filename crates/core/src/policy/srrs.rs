//! The SRRS (*Start, Round-Robin, Serial*) kernel scheduling policy
//! (paper Sec. IV-B1).
//!
//! SRRS enforces, by construction:
//!
//! 1. a kernel starts only when the GPU is **idle**;
//! 2. the SM receiving the **first** thread block is software-selected
//!    (the `start_sm` launch attribute);
//! 3. subsequent blocks are placed **round-robin** from the start SM —
//!    block *i* executes on SM `(start + i) mod n`, strictly in order;
//! 4. kernel execution is fully **serialized**: the next kernel (redundant
//!    copy or any other) starts only after the current one completes.
//!
//! With different start SMs for the two replicas, every redundant block pair
//! executes on different SMs at disjoint times, so neither a permanent SM
//! fault nor a transient common-cause fault (e.g. a voltage droop) can
//! corrupt both copies identically.

use higpu_sim::scheduler::{KernelSchedulerPolicy, SchedulerView, SmSnapshot};

/// The SRRS policy. Stateless across rounds apart from the serialization
/// order, which it derives from kernel arrival order.
#[derive(Debug, Clone, Default)]
pub struct SrrsScheduler {
    /// Fallback start SM for kernels that do not carry a `start_sm` hint.
    pub default_start_sm: usize,
}

impl SrrsScheduler {
    /// Creates the policy with a default start SM of 0.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Ids of the SMs still in service (not quarantined), ascending.
pub fn healthy_sms(sms: &[SmSnapshot]) -> Vec<usize> {
    sms.iter()
        .enumerate()
        .filter(|(_, s)| !s.quarantined)
        .map(|(i, _)| i)
        .collect()
}

/// Rotation offset of an SRRS start SM within the healthy-SM list: the
/// index of `start` among `healthy`, or of the first healthy SM after it
/// (wrapping to 0) when `start` itself is quarantined. Identity
/// (`start` itself) on a fully healthy device.
pub fn healthy_start_pos(healthy: &[usize], start: usize) -> usize {
    healthy.iter().position(|&sm| sm >= start).unwrap_or(0)
}

/// The SM that receives block `i` of an SRRS kernel starting at `start`,
/// round-robining over the healthy SMs only: the `(pos(start) + i) mod h`-th
/// healthy SM. Degenerates to the classic `(start + i) mod n` on a fully
/// healthy device. This single definition is shared by the SRRS scheduler,
/// the partition-scoped SRRS path, and the scheduler BIST's expected
/// placement — the self-test must mandate exactly what the policy does, or
/// quarantine would turn every BIST round into a false alarm.
///
/// # Panics
///
/// Panics when `healthy` is empty (nothing is placeable; callers gate on
/// effective capacity first).
pub fn srrs_healthy_target(healthy: &[usize], start: usize, i: usize) -> usize {
    healthy[(healthy_start_pos(healthy, start) + i) % healthy.len()]
}

impl KernelSchedulerPolicy for SrrsScheduler {
    fn name(&self) -> &str {
        "srrs"
    }

    fn assign(&mut self, view: &mut SchedulerView) {
        let n = view.num_sms();
        if n == 0 {
            return;
        }
        // Serialization: only the oldest unfinished kernel may execute.
        let Some(head) = view.kernels().first() else {
            return;
        };
        let head_id = head.id;
        // Start condition: a kernel may only *begin* on an idle GPU. Once it
        // has started it owns the GPU (no other kernel can have resident
        // blocks, by induction).
        if head.blocks_issued == 0 && !view.gpu_idle() {
            return;
        }
        let start = head.attrs.start_sm.unwrap_or(self.default_start_sm) % n;
        // Strict in-order round-robin placement over the SMs still in
        // service: block i → the (pos(start)+i)-th healthy SM (the classic
        // (start+i) % n when nothing is quarantined). If the designated SM
        // is full we wait (head-of-line), preserving the deterministic
        // block→SM mapping the diversity argument relies on.
        // The healthy-SM list is only materialized once an SM has actually
        // been quarantined: steady-state scheduling on a healthy device must
        // stay allocation-free (the session-launch allocation fence counts).
        let healthy = if view.sms().iter().any(|s| s.quarantined) {
            let h = healthy_sms(view.sms());
            if h.is_empty() {
                return;
            }
            Some(h)
        } else {
            None
        };
        loop {
            let Some(k) = view.kernels().iter().find(|k| k.id == head_id) else {
                return;
            };
            if k.pending() == 0 {
                return;
            }
            let i = k.blocks_issued as usize;
            let sm = match &healthy {
                Some(h) => srrs_healthy_target(h, start, i),
                None => (start + i) % n,
            };
            if !view.try_assign(sm, head_id) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::kernel::{BlockFootprint, KernelId, LaunchAttrs};
    use higpu_sim::scheduler::{KernelSnapshot, SmSnapshot};
    use higpu_sim::sm::ResourceUsage;

    fn fp() -> BlockFootprint {
        BlockFootprint {
            threads: 64,
            warps: 2,
            registers: 64,
            shared_mem: 0,
        }
    }

    fn sm_free() -> SmSnapshot {
        SmSnapshot {
            free: ResourceUsage {
                threads: 1536,
                warps: 48,
                registers: 32 * 1024,
                shared_mem: 48 * 1024,
                blocks: 8,
            },
            resident_blocks: 0,
            quarantined: false,
        }
    }

    fn kernel(id: u64, blocks: u32, start_sm: Option<usize>) -> KernelSnapshot {
        KernelSnapshot {
            id: KernelId(id),
            attrs: std::sync::Arc::new(LaunchAttrs {
                start_sm,
                ..Default::default()
            }),
            arrival: 0,
            blocks_total: blocks,
            blocks_issued: 0,
            blocks_done: 0,
            footprint: fp(),
        }
    }

    #[test]
    fn blocks_follow_round_robin_from_start_sm() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 8, Some(2))],
            (0..6).map(|_| sm_free()).collect(),
        );
        SrrsScheduler::new().assign(&mut view);
        let sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        assert_eq!(sms, vec![2, 3, 4, 5, 0, 1, 2, 3]);
    }

    #[test]
    fn second_kernel_waits_for_first() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 2, Some(0)), kernel(1, 2, Some(3))],
            (0..6).map(|_| sm_free()).collect(),
        );
        SrrsScheduler::new().assign(&mut view);
        assert!(
            view.assignments().iter().all(|a| a.kernel == KernelId(0)),
            "only the head kernel is dispatched"
        );
        assert_eq!(view.assignments().len(), 2);
    }

    #[test]
    fn kernel_does_not_start_on_busy_gpu() {
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free()).collect();
        sms[4].resident_blocks = 1; // someone else's block still resident
        let mut view = SchedulerView::new(0, vec![kernel(0, 2, Some(0))], sms);
        SrrsScheduler::new().assign(&mut view);
        assert!(view.assignments().is_empty(), "idle-start condition");
    }

    #[test]
    fn started_kernel_keeps_dispatching_even_while_gpu_busy() {
        let mut k = kernel(0, 4, Some(0));
        k.blocks_issued = 2; // already started: blocks 0,1 are resident
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free()).collect();
        sms[0].resident_blocks = 1;
        sms[1].resident_blocks = 1;
        let mut view = SchedulerView::new(0, vec![k], sms);
        SrrsScheduler::new().assign(&mut view);
        let sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        assert_eq!(sms, vec![2, 3], "continues the round-robin sequence");
    }

    #[test]
    fn head_of_line_blocks_when_target_sm_full() {
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free()).collect();
        sms[1].free.blocks = 0; // SM1 has no block slot
        let mut view = SchedulerView::new(0, vec![kernel(0, 6, Some(0))], sms);
        SrrsScheduler::new().assign(&mut view);
        let sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        assert_eq!(
            sms,
            vec![0],
            "block 1 must go to SM1; placement stalls rather than reorder"
        );
    }

    #[test]
    fn round_robin_skips_quarantined_sms() {
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free()).collect();
        sms[3].quarantined = true;
        let mut view = SchedulerView::new(0, vec![kernel(0, 8, Some(2))], sms);
        SrrsScheduler::new().assign(&mut view);
        let placed: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        // Healthy rotation [0,1,2,4,5] from SM 2: 2,4,5,0,1,2,4,5.
        assert_eq!(placed, vec![2, 4, 5, 0, 1, 2, 4, 5]);
        assert!(!placed.contains(&3), "no block on the quarantined SM");
    }

    #[test]
    fn quarantined_start_sm_falls_through_to_next_healthy() {
        let mut sms: Vec<SmSnapshot> = (0..6).map(|_| sm_free()).collect();
        sms[2].quarantined = true;
        let mut view = SchedulerView::new(0, vec![kernel(0, 5, Some(2))], sms);
        SrrsScheduler::new().assign(&mut view);
        let placed: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        // Healthy [0,1,3,4,5]; start 2 resolves to SM 3.
        assert_eq!(placed, vec![3, 4, 5, 0, 1]);
    }

    #[test]
    fn healthy_target_is_identity_on_a_healthy_device() {
        let healthy: Vec<usize> = (0..6).collect();
        for start in 0..6 {
            for i in 0..12 {
                assert_eq!(srrs_healthy_target(&healthy, start, i), (start + i) % 6);
            }
        }
    }

    #[test]
    fn default_start_sm_applies_without_hint() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 3, None)],
            (0..6).map(|_| sm_free()).collect(),
        );
        let mut pol = SrrsScheduler {
            default_start_sm: 5,
        };
        pol.assign(&mut view);
        let sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        assert_eq!(sms, vec![5, 0, 1]);
    }
}
