//! The HALF kernel scheduling policy (paper Sec. IV-B2).
//!
//! HALF statically partitions the SMs in two halves and confines each
//! redundant kernel to one half (the `partition` launch attribute):
//!
//! * **spatial diversity** is structural — the replicas can never share an
//!   SM;
//! * **temporal diversity** follows from the serial dispatch of kernels from
//!   the CPU: any given computation starts earlier in the first replica, and
//!   shared-resource contention can only preserve (never invert) that slack
//!   (paper's argument in Sec. IV-B2).
//!
//! Unlike SRRS, HALF lets both replicas execute concurrently, which is why
//! it suits *friendly* kernels that cannot profitably use more than half of
//! the SMs anyway.

use higpu_sim::kernel::SmPartition;
use higpu_sim::scheduler::{KernelSchedulerPolicy, SchedulerView};

/// The HALF policy.
///
/// Kernels carrying a [`SmPartition`] attribute are confined to that half;
/// kernels without the attribute (non-redundant work) may use the whole GPU.
#[derive(Debug, Clone, Default)]
pub struct HalfScheduler {
    _private: (),
}

impl HalfScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KernelSchedulerPolicy for HalfScheduler {
    fn name(&self) -> &str {
        "half"
    }

    fn assign(&mut self, view: &mut SchedulerView) {
        let n = view.num_sms();
        if n == 0 {
            return;
        }
        // Kernels in arrival order; each fills its allowed SM range
        // breadth-first.
        let ids: Vec<_> = view.kernels().iter().map(|k| k.id).collect();
        for id in ids {
            let range = {
                let Some(k) = view.kernels().iter().find(|k| k.id == id) else {
                    continue;
                };
                match k.attrs.partition {
                    Some(SmPartition::Lower) => SmPartition::Lower.range(n),
                    Some(SmPartition::Upper) => SmPartition::Upper.range(n),
                    None => 0..n,
                }
            };
            loop {
                let mut any = false;
                for sm in range.clone() {
                    any |= view.try_assign(sm, id);
                }
                if !any {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::kernel::{BlockFootprint, KernelId, LaunchAttrs};
    use higpu_sim::scheduler::{KernelSnapshot, SmSnapshot};
    use higpu_sim::sm::ResourceUsage;

    fn fp() -> BlockFootprint {
        BlockFootprint {
            threads: 64,
            warps: 2,
            registers: 64,
            shared_mem: 0,
        }
    }

    fn sm_free(block_slots: u32) -> SmSnapshot {
        SmSnapshot {
            free: ResourceUsage {
                threads: 1536,
                warps: 48,
                registers: 32 * 1024,
                shared_mem: 48 * 1024,
                blocks: block_slots,
            },
            resident_blocks: 0,
            quarantined: false,
        }
    }

    fn kernel(id: u64, blocks: u32, partition: Option<SmPartition>) -> KernelSnapshot {
        KernelSnapshot {
            id: KernelId(id),
            attrs: std::sync::Arc::new(LaunchAttrs {
                partition,
                ..Default::default()
            }),
            arrival: 0,
            blocks_total: blocks,
            blocks_issued: 0,
            blocks_done: 0,
            footprint: fp(),
        }
    }

    #[test]
    fn partitions_are_respected() {
        let mut view = SchedulerView::new(
            0,
            vec![
                kernel(0, 6, Some(SmPartition::Lower)),
                kernel(1, 6, Some(SmPartition::Upper)),
            ],
            (0..6).map(|_| sm_free(8)).collect(),
        );
        HalfScheduler::new().assign(&mut view);
        for a in view.assignments() {
            if a.kernel == KernelId(0) {
                assert!(a.sm < 3, "lower replica on SMs 0..3");
            } else {
                assert!(a.sm >= 3, "upper replica on SMs 3..6");
            }
        }
        assert_eq!(view.assignments().len(), 12, "both kernels fully placed");
    }

    #[test]
    fn both_replicas_run_concurrently() {
        let mut view = SchedulerView::new(
            0,
            vec![
                kernel(0, 3, Some(SmPartition::Lower)),
                kernel(1, 3, Some(SmPartition::Upper)),
            ],
            (0..6).map(|_| sm_free(8)).collect(),
        );
        HalfScheduler::new().assign(&mut view);
        let k0: Vec<_> = view
            .assignments()
            .iter()
            .filter(|a| a.kernel == KernelId(0))
            .collect();
        let k1: Vec<_> = view
            .assignments()
            .iter()
            .filter(|a| a.kernel == KernelId(1))
            .collect();
        assert_eq!(k0.len(), 3);
        assert_eq!(k1.len(), 3, "no serialization under HALF");
    }

    #[test]
    fn unpartitioned_kernels_use_whole_gpu() {
        let mut view = SchedulerView::new(
            0,
            vec![kernel(0, 6, None)],
            (0..6).map(|_| sm_free(1)).collect(),
        );
        HalfScheduler::new().assign(&mut view);
        let mut sms: Vec<usize> = view.assignments().iter().map(|a| a.sm).collect();
        sms.sort_unstable();
        assert_eq!(sms, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn half_capacity_limits_each_replica() {
        // One block slot per SM: each replica gets at most 3 blocks resident.
        let mut view = SchedulerView::new(
            0,
            vec![
                kernel(0, 8, Some(SmPartition::Lower)),
                kernel(1, 8, Some(SmPartition::Upper)),
            ],
            (0..6).map(|_| sm_free(1)).collect(),
        );
        HalfScheduler::new().assign(&mut view);
        let k0 = view
            .assignments()
            .iter()
            .filter(|a| a.kernel == KernelId(0))
            .count();
        let k1 = view
            .assignments()
            .iter()
            .filter(|a| a.kernel == KernelId(1))
            .count();
        assert_eq!(k0, 3);
        assert_eq!(k1, 3);
    }

    #[test]
    fn odd_sm_count_gives_lower_partition_the_extra_sm() {
        let mut view = SchedulerView::new(
            0,
            vec![
                kernel(0, 5, Some(SmPartition::Lower)),
                kernel(1, 5, Some(SmPartition::Upper)),
            ],
            (0..5).map(|_| sm_free(1)).collect(),
        );
        HalfScheduler::new().assign(&mut view);
        let k0 = view
            .assignments()
            .iter()
            .filter(|a| a.kernel == KernelId(0))
            .count();
        let k1 = view
            .assignments()
            .iter()
            .filter(|a| a.kernel == KernelId(1))
            .count();
        assert_eq!(k0, 3, "lower half is SMs 0..3 of 5");
        assert_eq!(k1, 2);
    }
}
