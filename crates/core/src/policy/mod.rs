//! The paper's global kernel-scheduler policies and policy selection.
//!
//! Kernel classification (see [`crate::classify`]) happens at system analysis
//! time; the most convenient policy is then selected per kernel before
//! deployment (paper Sec. IV-D): SRRS for *short* and *heavy* kernels, HALF
//! for *friendly* kernels.

pub mod half;
pub mod srrs;

pub use half::HalfScheduler;
pub use srrs::SrrsScheduler;

use higpu_sim::scheduler::{DefaultScheduler, KernelSchedulerPolicy};

/// The scheduling policies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Unconstrained COTS baseline (GPGPU-Sim default).
    Default,
    /// Start / Round-Robin / Serial.
    Srrs,
    /// Static SM halving.
    Half,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn KernelSchedulerPolicy> {
        match self {
            PolicyKind::Default => Box::new(DefaultScheduler::new()),
            PolicyKind::Srrs => Box::new(SrrsScheduler::new()),
            PolicyKind::Half => Box::new(HalfScheduler::new()),
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Default => "GPGPU-SIM",
            PolicyKind::Srrs => "SRRS",
            PolicyKind::Half => "HALF",
        }
    }

    /// All three policies, in the order the paper plots them.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Default, PolicyKind::Half, PolicyKind::Srrs]
    }

    /// True for the policies that guarantee diverse redundancy.
    pub fn guarantees_diversity(self) -> bool {
        matches!(self, PolicyKind::Srrs | PolicyKind::Half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        assert_eq!(PolicyKind::Default.build().name(), "default");
        assert_eq!(PolicyKind::Srrs.build().name(), "srrs");
        assert_eq!(PolicyKind::Half.build().name(), "half");
    }

    #[test]
    fn diversity_guarantees() {
        assert!(!PolicyKind::Default.guarantees_diversity());
        assert!(PolicyKind::Srrs.guarantees_diversity());
        assert!(PolicyKind::Half.guarantees_diversity());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::Default.label(), "GPGPU-SIM");
        assert_eq!(PolicyKind::Half.label(), "HALF");
        assert_eq!(PolicyKind::Srrs.label(), "SRRS");
    }
}
