//! The paper's global kernel-scheduler policies and policy selection.
//!
//! Kernel classification (see [`crate::classify`]) happens at system analysis
//! time; the most convenient policy is then selected per kernel before
//! deployment (paper Sec. IV-D): SRRS for *short* and *heavy* kernels, HALF
//! for *friendly* kernels.

pub mod half;
pub mod partitioned;
pub mod slice;
pub mod srrs;

pub use half::HalfScheduler;
pub use partitioned::PartitionedScheduler;
pub use slice::SliceScheduler;
pub use srrs::SrrsScheduler;

use higpu_sim::scheduler::{DefaultScheduler, KernelSchedulerPolicy};

/// The scheduling policies evaluated in the paper, plus the SLICE
/// N-replica generalization of HALF used for N-modular redundancy sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Unconstrained COTS baseline (GPGPU-Sim default).
    Default,
    /// Start / Round-Robin / Serial.
    Srrs,
    /// Static SM halving.
    Half,
    /// Static N-way SM slicing (HALF generalized to N replicas).
    Slice,
    /// SLICE with a droop-aware per-replica start skew: the same static
    /// N-way slicing, but replica *r*'s launch is held back `r × skew`
    /// cycles (skew > the worst-case common-cause-fault duration), so a
    /// voltage droop can never strike the same computation point in two
    /// concurrent replicas — the fix for the `nw × droop` vulnerability of
    /// plain SLICE. The skew is applied at launch time (see
    /// [`crate::redundancy::RedundancyMode::slice_skewed_default`]);
    /// the scheduler itself is the SLICE scheduler.
    SliceSkewed,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn KernelSchedulerPolicy> {
        match self {
            PolicyKind::Default => Box::new(DefaultScheduler::new()),
            PolicyKind::Srrs => Box::new(SrrsScheduler::new()),
            PolicyKind::Half => Box::new(HalfScheduler::new()),
            PolicyKind::Slice | PolicyKind::SliceSkewed => Box::new(SliceScheduler::new()),
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Default => "GPGPU-SIM",
            PolicyKind::Srrs => "SRRS",
            PolicyKind::Half => "HALF",
            PolicyKind::Slice => "SLICE",
            PolicyKind::SliceSkewed => "SLICE+SKEW",
        }
    }

    /// The paper's three policies, in the order the paper plots them
    /// (SLICE, being a post-paper NMR generalization, is not included —
    /// see [`PolicyKind::all_extended`]).
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Default, PolicyKind::Half, PolicyKind::Srrs]
    }

    /// Every policy: the paper's three plus SLICE and its droop-aware
    /// skewed variant.
    pub fn all_extended() -> [PolicyKind; 5] {
        [
            PolicyKind::Default,
            PolicyKind::Half,
            PolicyKind::Srrs,
            PolicyKind::Slice,
            PolicyKind::SliceSkewed,
        ]
    }

    /// True for the policies that guarantee diverse redundancy.
    pub fn guarantees_diversity(self) -> bool {
        matches!(
            self,
            PolicyKind::Srrs | PolicyKind::Half | PolicyKind::Slice | PolicyKind::SliceSkewed
        )
    }

    /// The policy that realizes this one at `replicas` replicas, or `None`
    /// when no generalization exists:
    ///
    /// * `Default` — the unconstrained GPGPU-SIM baseline, modelled at any
    ///   replica count (the frontier's baseline column);
    /// * `Half` — exactly two replicas by construction; at N > 2 it
    ///   generalizes to `Slice`;
    /// * `Srrs` / `Slice` / `SliceSkewed` — N-replica-capable as-is.
    ///
    /// Replica sweeps (`higpu_bench::matrix`) use this to map the paper's
    /// policy axis onto each replica count.
    pub fn for_replicas(self, replicas: u8) -> Option<PolicyKind> {
        match self {
            PolicyKind::Default => Some(PolicyKind::Default),
            PolicyKind::Half => Some(if replicas == 2 {
                PolicyKind::Half
            } else {
                PolicyKind::Slice
            }),
            PolicyKind::Srrs => Some(PolicyKind::Srrs),
            PolicyKind::Slice => Some(PolicyKind::Slice),
            PolicyKind::SliceSkewed => Some(PolicyKind::SliceSkewed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        assert_eq!(PolicyKind::Default.build().name(), "default");
        assert_eq!(PolicyKind::Srrs.build().name(), "srrs");
        assert_eq!(PolicyKind::Half.build().name(), "half");
        assert_eq!(PolicyKind::Slice.build().name(), "slice");
    }

    #[test]
    fn diversity_guarantees() {
        assert!(!PolicyKind::Default.guarantees_diversity());
        assert!(PolicyKind::Srrs.guarantees_diversity());
        assert!(PolicyKind::Half.guarantees_diversity());
        assert!(PolicyKind::Slice.guarantees_diversity());
        assert!(PolicyKind::SliceSkewed.guarantees_diversity());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::Default.label(), "GPGPU-SIM");
        assert_eq!(PolicyKind::Half.label(), "HALF");
        assert_eq!(PolicyKind::Srrs.label(), "SRRS");
        assert_eq!(PolicyKind::Slice.label(), "SLICE");
        assert_eq!(PolicyKind::SliceSkewed.label(), "SLICE+SKEW");
    }

    #[test]
    fn replica_mapping_keeps_paper_policies_at_two_and_generalizes_above() {
        for p in PolicyKind::all() {
            assert_eq!(p.for_replicas(2), Some(p), "{p:?} unchanged at N=2");
        }
        assert_eq!(
            PolicyKind::Default.for_replicas(3),
            Some(PolicyKind::Default),
            "the uncontrolled baseline column exists at every N"
        );
        assert_eq!(PolicyKind::Half.for_replicas(3), Some(PolicyKind::Slice));
        assert_eq!(PolicyKind::Srrs.for_replicas(3), Some(PolicyKind::Srrs));
        assert_eq!(PolicyKind::Slice.for_replicas(5), Some(PolicyKind::Slice));
        assert_eq!(
            PolicyKind::SliceSkewed.for_replicas(3),
            Some(PolicyKind::SliceSkewed)
        );
        assert!(PolicyKind::all_extended().contains(&PolicyKind::Slice));
        assert!(PolicyKind::all_extended().contains(&PolicyKind::SliceSkewed));
    }
}
