//! ISO 26262-5 hardware architectural metrics: the Single-Point Fault
//! Metric (SPFM) and the Latent-Fault Metric (LFM).
//!
//! The paper's Sec. II notes that each ASIL prescribes diagnostic-coverage
//! levels and acceptable residual failure rates; this module computes the
//! two standard metrics from a fault-rate decomposition and checks them
//! against the per-ASIL targets of ISO 26262-5 Table 4/5:
//!
//! | metric | ASIL B | ASIL C | ASIL D |
//! |--------|--------|--------|--------|
//! | SPFM   | ≥ 90%  | ≥ 97%  | ≥ 99%  |
//! | LFM    | ≥ 60%  | ≥ 80%  | ≥ 90%  |
//!
//! Fault-injection campaigns ([`crate::safety_case::DetectionEvidence`])
//! estimate the decomposition empirically: *detected* faults are covered by
//! the DCLS comparison, *masked* faults are safe, and *undetected failures*
//! are residual. Diversity-reducing scheduler faults caught by the periodic
//! self-test ([`crate::bist`]) count against the latent-fault metric.

use crate::asil::Asil;

/// Decomposition of the safety-related fault rate λ (any consistent unit —
/// FIT, or plain counts from a campaign).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Safe faults: no effect on the safety goal (masked corruptions).
    pub safe: f64,
    /// Faults detected/controlled by a safety mechanism (the redundant
    /// comparison, the scheduler self-test).
    pub detected: f64,
    /// Residual / single-point faults: violate the safety goal undetected.
    pub residual: f64,
    /// Multiple-point faults that would stay latent (not detected by any
    /// mechanism nor perceived by the driver).
    pub latent: f64,
}

impl FaultRates {
    /// Total safety-related fault rate.
    pub fn total(&self) -> f64 {
        self.safe + self.detected + self.residual + self.latent
    }

    /// Builds rates from campaign evidence, treating undetected failures as
    /// residual faults. Corrected trials (N ≥ 3 majority votes) count as
    /// detected: the safety mechanism observed and handled them. `latent`
    /// counts diversity-reducing faults that escaped the periodic self-test
    /// (0 when the BIST catches them all).
    pub fn from_campaign(evidence: &crate::safety_case::DetectionEvidence, latent: u64) -> Self {
        FaultRates {
            safe: evidence.masked as f64,
            detected: (evidence.detected + evidence.corrected + evidence.recovered) as f64,
            residual: evidence.undetected_failures as f64,
            latent: latent as f64,
        }
    }
}

/// The two ISO 26262-5 hardware architectural metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareMetrics {
    /// Single-Point Fault Metric: `1 − λ_residual / λ_total`.
    pub spfm: f64,
    /// Latent-Fault Metric: `1 − λ_latent / (λ_total − λ_residual)`.
    pub lfm: f64,
}

impl HardwareMetrics {
    /// Computes both metrics; a zero denominator yields a metric of 1
    /// (no faults in the class at all).
    pub fn from_rates(r: &FaultRates) -> Self {
        let total = r.total();
        let spfm = if total > 0.0 {
            1.0 - r.residual / total
        } else {
            1.0
        };
        let non_residual = total - r.residual;
        let lfm = if non_residual > 0.0 {
            1.0 - r.latent / non_residual
        } else {
            1.0
        };
        HardwareMetrics { spfm, lfm }
    }

    /// The SPFM target for `asil` (`None` below ASIL B — the standard sets
    /// no quantitative target).
    pub fn spfm_target(asil: Asil) -> Option<f64> {
        match asil {
            Asil::B => Some(0.90),
            Asil::C => Some(0.97),
            Asil::D => Some(0.99),
            _ => None,
        }
    }

    /// The LFM target for `asil`.
    pub fn lfm_target(asil: Asil) -> Option<f64> {
        match asil {
            Asil::B => Some(0.60),
            Asil::C => Some(0.80),
            Asil::D => Some(0.90),
            _ => None,
        }
    }

    /// True when both metrics meet the targets for `asil` (trivially true
    /// for QM/A, which have no quantitative targets).
    pub fn meets(&self, asil: Asil) -> bool {
        let spfm_ok = Self::spfm_target(asil).is_none_or(|t| self.spfm >= t);
        let lfm_ok = Self::lfm_target(asil).is_none_or(|t| self.lfm >= t);
        spfm_ok && lfm_ok
    }

    /// The highest ASIL whose quantitative targets these metrics satisfy.
    pub fn highest_supported_asil(&self) -> Asil {
        for asil in [Asil::D, Asil::C, Asil::B] {
            if self.meets(asil) {
                return asil;
            }
        }
        Asil::A
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety_case::DetectionEvidence;

    #[test]
    fn perfect_coverage_meets_asil_d() {
        let r = FaultRates {
            safe: 10.0,
            detected: 90.0,
            residual: 0.0,
            latent: 0.0,
        };
        let m = HardwareMetrics::from_rates(&r);
        assert_eq!(m.spfm, 1.0);
        assert_eq!(m.lfm, 1.0);
        assert!(m.meets(Asil::D));
        assert_eq!(m.highest_supported_asil(), Asil::D);
    }

    #[test]
    fn residual_faults_degrade_spfm() {
        // 2 residual out of 100 total → SPFM 98%: ASIL-C but not ASIL-D.
        let r = FaultRates {
            safe: 8.0,
            detected: 90.0,
            residual: 2.0,
            latent: 0.0,
        };
        let m = HardwareMetrics::from_rates(&r);
        assert!((m.spfm - 0.98).abs() < 1e-12);
        assert!(!m.meets(Asil::D));
        assert!(m.meets(Asil::C));
        assert_eq!(m.highest_supported_asil(), Asil::C);
    }

    #[test]
    fn latent_faults_degrade_lfm() {
        // 15 latent out of 100 non-residual → LFM 85%: fails ASIL-D's 90%.
        let r = FaultRates {
            safe: 10.0,
            detected: 75.0,
            residual: 0.0,
            latent: 15.0,
        };
        let m = HardwareMetrics::from_rates(&r);
        assert_eq!(m.spfm, 1.0);
        assert!((m.lfm - 0.85).abs() < 1e-12);
        assert!(!m.meets(Asil::D));
        assert!(m.meets(Asil::C));
    }

    #[test]
    fn qm_and_a_have_no_quantitative_targets() {
        let m = HardwareMetrics {
            spfm: 0.5,
            lfm: 0.5,
        };
        assert!(m.meets(Asil::QM));
        assert!(m.meets(Asil::A));
        assert!(!m.meets(Asil::B));
        assert_eq!(m.highest_supported_asil(), Asil::A);
    }

    #[test]
    fn no_faults_at_all_is_perfect() {
        let m = HardwareMetrics::from_rates(&FaultRates::default());
        assert_eq!(m.spfm, 1.0);
        assert_eq!(m.lfm, 1.0);
    }

    #[test]
    fn campaign_evidence_converts() {
        // An SRRS campaign: everything effective was detected.
        let e = DetectionEvidence {
            activated: 100,
            masked: 20,
            detected: 75,
            corrected: 5,
            recovered: 0,
            undetected_failures: 0,
        };
        let m = HardwareMetrics::from_rates(&FaultRates::from_campaign(&e, 0));
        assert!(m.meets(Asil::D), "corrected trials count as detected");

        // An uncontrolled campaign with undetected failures.
        let bad = DetectionEvidence {
            activated: 100,
            masked: 0,
            detected: 67,
            corrected: 0,
            recovered: 0,
            undetected_failures: 33,
        };
        let m = HardwareMetrics::from_rates(&FaultRates::from_campaign(&bad, 0));
        assert!(m.spfm < 0.90, "33% residual cannot even reach ASIL B");
        assert_eq!(m.highest_supported_asil(), Asil::A);
    }

    #[test]
    fn targets_are_monotone_in_asil() {
        assert!(HardwareMetrics::spfm_target(Asil::D) > HardwareMetrics::spfm_target(Asil::C));
        assert!(HardwareMetrics::spfm_target(Asil::C) > HardwareMetrics::spfm_target(Asil::B));
        assert!(HardwareMetrics::lfm_target(Asil::D) > HardwareMetrics::lfm_target(Asil::C));
    }
}
