//! Safety-case assembly: turns the artifacts produced elsewhere in this
//! crate (diversity reports, scheduler self-tests, fault-injection
//! summaries) into an ISO 26262 decomposition argument for the GPU item.

use crate::asil::{Architecture, Asil, Element};
use crate::bist::BistReport;
use crate::diversity::DiversityReport;
use std::fmt;

/// Summary of a fault-injection campaign, in the shape produced by the
/// `higpu-faults` crate (duplicated here to keep the dependency direction
/// core ← faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionEvidence {
    /// Trials in which a fault was activated (corrupted at least one value).
    pub activated: u64,
    /// Activated trials whose corruption was masked (outputs still correct).
    pub masked: u64,
    /// Activated trials detected by the redundant comparison.
    pub detected: u64,
    /// Activated trials in which an N ≥ 3 replica majority vote outvoted the
    /// corruption and delivered a verified-correct result — forward
    /// recovery, no re-execution (always 0 for two-replica DCLS).
    pub corrected: u64,
    /// Activated trials in which a *detected* fault was repaired by
    /// **in-FTTI re-execution**: the computation (e.g. a pipeline stage)
    /// was retried within the remaining deadline slack and the retry
    /// verified correct — fail-operational backward recovery, as opposed
    /// to the fail-stop `detected` count. Only produced by executors with
    /// a re-execution budget (pipeline campaigns); 0 for plain trials.
    pub recovered: u64,
    /// Activated trials that produced wrong outputs in *all* replicas
    /// identically — undetected failures (must be 0 for the safety case).
    pub undetected_failures: u64,
}

impl DetectionEvidence {
    /// Detection coverage over the effective (non-masked) faults — a
    /// corrected trial counts as detected (the voter observed the dissent
    /// *and* recovered); `None` when no effective fault was observed.
    pub fn coverage(&self) -> Option<f64> {
        let effective = self.detected + self.corrected + self.recovered + self.undetected_failures;
        if effective == 0 {
            None
        } else {
            Some((self.detected + self.corrected + self.recovered) as f64 / effective as f64)
        }
    }

    /// The fail-operational rate among covered faults: recovered (by
    /// re-execution) and corrected (by majority vote) trials over all
    /// covered trials — how often the mechanism kept the item *operating*
    /// instead of merely stopping it safely. `None` when nothing was
    /// covered.
    pub fn fail_operational_rate(&self) -> Option<f64> {
        let covered = self.detected + self.corrected + self.recovered;
        if covered == 0 {
            None
        } else {
            Some((self.corrected + self.recovered) as f64 / covered as f64)
        }
    }
}

/// The assembled safety case for diverse redundant GPU execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyCase {
    /// Scheduling policy under which the evidence was produced.
    pub policy: String,
    /// ASIL capability of each individual GPU execution channel (the paper
    /// assumes ASIL-B capable GPUs).
    pub channel_asil: Asil,
    /// Diversity evidence from trace analysis.
    pub diversity: DiversityReport,
    /// Scheduler self-test result, if run.
    pub bist: Option<BistReport>,
    /// Fault-injection evidence, if a campaign was run.
    pub campaign: Option<DetectionEvidence>,
}

impl SafetyCase {
    /// The integrity level the redundant GPU item achieves given the
    /// collected evidence.
    pub fn achieved_asil(&self) -> Asil {
        let mut ok = self.diversity.is_diverse();
        if let Some(b) = &self.bist {
            ok &= b.passed();
        }
        if let Some(c) = &self.campaign {
            ok &= c.undetected_failures == 0;
        }
        let independence = if ok {
            self.diversity.independence()
        } else {
            crate::asil::Independence::None
        };
        Architecture::Redundant {
            a: Box::new(Architecture::Single(Element::new(
                "GPU channel A",
                self.channel_asil,
            ))),
            b: Box::new(Architecture::Single(Element::new(
                "GPU channel B",
                self.channel_asil,
            ))),
            independence,
        }
        .achieved_asil()
    }

    /// True when the case supports the paper's ASIL-D claim.
    pub fn supports_asil_d(&self) -> bool {
        self.achieved_asil() == Asil::D
    }
}

impl fmt::Display for SafetyCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Safety case — diverse redundant GPU execution")?;
        writeln!(f, "  policy:          {}", self.policy)?;
        writeln!(f, "  channel ASIL:    {}", self.channel_asil)?;
        writeln!(
            f,
            "  diversity:       {} pairs checked, {} spatial / {} temporal violations, {} unmatched",
            self.diversity.pairs_checked,
            self.diversity.spatial_violations,
            self.diversity.temporal_violations,
            self.diversity.unmatched_blocks
        )?;
        if let Some(slack) = self.diversity.min_slack_observed {
            writeln!(f, "  min slack:       {slack} cycles")?;
        }
        match &self.bist {
            Some(b) => writeln!(
                f,
                "  scheduler BIST:  {} ({} placements checked)",
                if b.passed() { "PASS" } else { "FAIL" },
                b.checked
            )?,
            None => writeln!(f, "  scheduler BIST:  not run")?,
        }
        match &self.campaign {
            Some(c) => writeln!(
                f,
                "  fault campaign:  {} activated, {} detected, {} corrected, {} recovered, {} masked, {} undetected failures",
                c.activated, c.detected, c.corrected, c.recovered, c.masked, c.undetected_failures
            )?,
            None => writeln!(f, "  fault campaign:  not run")?,
        }
        writeln!(f, "  achieved ASIL:   {}", self.achieved_asil())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_diversity() -> DiversityReport {
        DiversityReport {
            groups: 1,
            pairs_checked: 64,
            min_slack_observed: Some(1200),
            ..Default::default()
        }
    }

    #[test]
    fn clean_evidence_reaches_asil_d() {
        let case = SafetyCase {
            policy: "srrs".into(),
            channel_asil: Asil::B,
            diversity: clean_diversity(),
            bist: None,
            campaign: None,
        };
        assert_eq!(case.achieved_asil(), Asil::D);
        assert!(case.supports_asil_d());
    }

    #[test]
    fn diversity_violation_caps_at_channel_level() {
        let mut div = clean_diversity();
        div.spatial_violations = 1;
        let case = SafetyCase {
            policy: "default".into(),
            channel_asil: Asil::B,
            diversity: div,
            bist: None,
            campaign: None,
        };
        assert_eq!(case.achieved_asil(), Asil::B);
    }

    #[test]
    fn undetected_failure_voids_the_case() {
        let case = SafetyCase {
            policy: "default".into(),
            channel_asil: Asil::B,
            diversity: clean_diversity(),
            bist: None,
            campaign: Some(DetectionEvidence {
                activated: 100,
                masked: 10,
                detected: 89,
                corrected: 0,
                recovered: 0,
                undetected_failures: 1,
            }),
        };
        assert_eq!(case.achieved_asil(), Asil::B);
    }

    #[test]
    fn coverage_computation() {
        let c = DetectionEvidence {
            activated: 100,
            masked: 20,
            detected: 80,
            corrected: 0,
            recovered: 0,
            undetected_failures: 0,
        };
        assert_eq!(c.coverage(), Some(1.0));
        assert_eq!(c.fail_operational_rate(), Some(0.0), "fail-stop only");
        let none = DetectionEvidence::default();
        assert_eq!(none.coverage(), None);
        // Corrected trials count toward coverage (detected and recovered).
        let tmr = DetectionEvidence {
            activated: 10,
            masked: 2,
            detected: 3,
            corrected: 5,
            recovered: 0,
            undetected_failures: 2,
        };
        assert_eq!(tmr.coverage(), Some(0.8));
        // Recovered trials count as covered and as fail-operational.
        let pipe = DetectionEvidence {
            activated: 10,
            masked: 0,
            detected: 2,
            corrected: 1,
            recovered: 7,
            undetected_failures: 0,
        };
        assert_eq!(pipe.coverage(), Some(1.0));
        assert_eq!(pipe.fail_operational_rate(), Some(0.8));
    }

    #[test]
    fn renders_human_readable() {
        let case = SafetyCase {
            policy: "half".into(),
            channel_asil: Asil::B,
            diversity: clean_diversity(),
            bist: None,
            campaign: None,
        };
        let s = case.to_string();
        assert!(s.contains("ASIL-D"));
        assert!(s.contains("half"));
    }
}
