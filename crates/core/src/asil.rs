//! ISO 26262 ASIL levels and ASIL decomposition (paper Sec. II-A, Fig. 1).
//!
//! Under ISO 26262-9, a safety requirement at a given ASIL may be decomposed
//! onto *independent* redundant elements of lower ASILs. The admissible
//! single-step schemes are exactly rank addition capped at ASIL D
//! (QM=0, A=1, B=2, C=3, D=4):
//!
//! * ASIL D ← C(D)+A(D), B(D)+B(D), D(D)+QM(D)
//! * ASIL C ← B(C)+A(C), C(C)+QM(C)
//! * ASIL B ← A(B)+A(B), B(B)+QM(B)
//! * ASIL A ← A(A)+QM(A)
//!
//! Decomposition credit requires **independence** — freedom from common
//! cause faults. For GPUs this is precisely what the SRRS/HALF scheduling
//! policies establish (see [`crate::diversity`]).

use std::fmt;

/// An Automotive Safety Integrity Level, ordered QM < A < B < C < D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Asil {
    /// Quality Managed — no safety requirements.
    QM,
    /// ASIL A (lowest integrity level).
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D (highest integrity level).
    D,
}

impl Asil {
    /// Numeric rank used by the decomposition algebra (QM=0 … D=4).
    pub fn rank(self) -> u8 {
        match self {
            Asil::QM => 0,
            Asil::A => 1,
            Asil::B => 2,
            Asil::C => 3,
            Asil::D => 4,
        }
    }

    /// The level with the given rank (values > 4 saturate to D).
    pub fn from_rank(rank: u8) -> Asil {
        match rank {
            0 => Asil::QM,
            1 => Asil::A,
            2 => Asil::B,
            3 => Asil::C,
            _ => Asil::D,
        }
    }

    /// The integrity level achieved by two **independent** redundant
    /// elements of levels `self` and `other` (one decomposition step).
    pub fn compose_independent(self, other: Asil) -> Asil {
        Asil::from_rank(self.rank().saturating_add(other.rank()).min(4))
    }

    /// All `(left, right)` pairs that decompose `self` in one step,
    /// with `left >= right`, excluding the trivial `self + QM` only when
    /// `self` is QM.
    pub fn decompositions(self) -> Vec<(Asil, Asil)> {
        let target = self.rank();
        let mut out = Vec::new();
        for l in (0..=4u8).rev() {
            for r in 0..=l {
                if l + r == target {
                    out.push((Asil::from_rank(l), Asil::from_rank(r)));
                }
            }
        }
        out
    }
}

impl fmt::Display for Asil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asil::QM => write!(f, "QM"),
            Asil::A => write!(f, "ASIL-A"),
            Asil::B => write!(f, "ASIL-B"),
            Asil::C => write!(f, "ASIL-C"),
            Asil::D => write!(f, "ASIL-D"),
        }
    }
}

/// Evidence that redundant elements are free of common-cause faults.
#[derive(Debug, Clone, PartialEq)]
pub enum Independence {
    /// No independence argument — CCFs may defeat the redundancy, so no
    /// decomposition credit is taken.
    None,
    /// Diverse lockstep (e.g. staggered DCLS cores, as in AURIX / Cortex-R).
    DiverseLockstep,
    /// Heterogeneous implementations (different hardware and/or software) —
    /// the costly approach the paper wants to avoid.
    Heterogeneous,
    /// Diverse redundant GPU scheduling (SRRS/HALF): every redundant
    /// computation runs on a different SM at a different time. The fields
    /// summarize the diversity evidence.
    DiverseGpuScheduling {
        /// Redundant block pairs whose executions were checked.
        pairs_checked: usize,
        /// Pairs violating spatial or temporal diversity (must be 0).
        violations: usize,
    },
}

impl Independence {
    /// True when the evidence supports decomposition credit.
    pub fn is_sufficient(&self) -> bool {
        match self {
            Independence::None => false,
            Independence::DiverseLockstep | Independence::Heterogeneous => true,
            Independence::DiverseGpuScheduling {
                pairs_checked,
                violations,
            } => *pairs_checked > 0 && *violations == 0,
        }
    }
}

/// A safety element (component or channel) with a claimed ASIL capability.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Human-readable name.
    pub name: String,
    /// ASIL the element is developed/verified to.
    pub asil: Asil,
}

impl Element {
    /// Creates an element.
    pub fn new(name: impl Into<String>, asil: Asil) -> Self {
        Self {
            name: name.into(),
            asil,
        }
    }
}

/// A safety architecture whose achieved integrity can be evaluated
/// (models the three patterns of paper Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Architecture {
    /// A single element: achieves its own ASIL.
    Single(Element),
    /// Two redundant channels; achieves the composed level only with
    /// sufficient independence, otherwise the better channel's level.
    Redundant {
        /// First channel.
        a: Box<Architecture>,
        /// Second channel.
        b: Box<Architecture>,
        /// Common-cause-fault freedom evidence.
        independence: Independence,
    },
    /// Monitor/actuator split: the operation part may be QM as long as the
    /// monitor holds the target ASIL and a safe state exists
    /// (Fig. 1, rightmost example).
    MonitorActuator {
        /// The monitoring element (carries the integrity requirement).
        monitor: Box<Architecture>,
        /// The operational element (no decomposition requirement).
        operation: Box<Architecture>,
    },
}

impl Architecture {
    /// The integrity level this architecture achieves.
    pub fn achieved_asil(&self) -> Asil {
        match self {
            Architecture::Single(e) => e.asil,
            Architecture::Redundant { a, b, independence } => {
                let (la, lb) = (a.achieved_asil(), b.achieved_asil());
                if independence.is_sufficient() {
                    la.compose_independent(lb)
                } else {
                    la.max(lb)
                }
            }
            Architecture::MonitorActuator { monitor, .. } => monitor.achieved_asil(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(asil: Asil) -> Architecture {
        Architecture::Single(Element::new("e", asil))
    }

    #[test]
    fn ranks_roundtrip() {
        for a in [Asil::QM, Asil::A, Asil::B, Asil::C, Asil::D] {
            assert_eq!(Asil::from_rank(a.rank()), a);
        }
        assert_eq!(Asil::from_rank(9), Asil::D, "saturates");
    }

    #[test]
    fn ordering_matches_integrity() {
        assert!(Asil::QM < Asil::A);
        assert!(Asil::A < Asil::B);
        assert!(Asil::B < Asil::C);
        assert!(Asil::C < Asil::D);
    }

    #[test]
    fn figure1_example_a_plus_b_reaches_c() {
        assert_eq!(Asil::A.compose_independent(Asil::B), Asil::C);
    }

    #[test]
    fn figure1_example_b_plus_b_reaches_d() {
        // The DCLS case: two ASIL-B cores in diverse lockstep → ASIL-D.
        assert_eq!(Asil::B.compose_independent(Asil::B), Asil::D);
    }

    #[test]
    fn composition_saturates_at_d() {
        assert_eq!(Asil::D.compose_independent(Asil::D), Asil::D);
        assert_eq!(Asil::C.compose_independent(Asil::C), Asil::D);
    }

    #[test]
    fn decompositions_of_d_match_iso_schemes() {
        let d = Asil::D.decompositions();
        assert!(d.contains(&(Asil::C, Asil::A)));
        assert!(d.contains(&(Asil::B, Asil::B)));
        assert!(d.contains(&(Asil::D, Asil::QM)));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn decompositions_of_lower_levels() {
        assert_eq!(
            Asil::C.decompositions(),
            vec![(Asil::C, Asil::QM), (Asil::B, Asil::A)]
        );
        assert_eq!(
            Asil::B.decompositions(),
            vec![(Asil::B, Asil::QM), (Asil::A, Asil::A)]
        );
        assert_eq!(Asil::A.decompositions(), vec![(Asil::A, Asil::QM)]);
    }

    #[test]
    fn redundant_without_independence_gets_no_credit() {
        let arch = Architecture::Redundant {
            a: Box::new(single(Asil::B)),
            b: Box::new(single(Asil::B)),
            independence: Independence::None,
        };
        assert_eq!(arch.achieved_asil(), Asil::B);
    }

    #[test]
    fn redundant_gpu_channels_reach_d_with_diversity_evidence() {
        // The paper's headline claim: two ASIL-B GPU executions with diverse
        // scheduling evidence compose to ASIL-D.
        let arch = Architecture::Redundant {
            a: Box::new(single(Asil::B)),
            b: Box::new(single(Asil::B)),
            independence: Independence::DiverseGpuScheduling {
                pairs_checked: 128,
                violations: 0,
            },
        };
        assert_eq!(arch.achieved_asil(), Asil::D);
    }

    #[test]
    fn diversity_violations_void_the_credit() {
        let arch = Architecture::Redundant {
            a: Box::new(single(Asil::B)),
            b: Box::new(single(Asil::B)),
            independence: Independence::DiverseGpuScheduling {
                pairs_checked: 128,
                violations: 1,
            },
        };
        assert_eq!(arch.achieved_asil(), Asil::B);
    }

    #[test]
    fn monitor_actuator_carries_monitor_level() {
        let arch = Architecture::MonitorActuator {
            monitor: Box::new(single(Asil::D)),
            operation: Box::new(single(Asil::QM)),
        };
        assert_eq!(arch.achieved_asil(), Asil::D);
    }

    #[test]
    fn nested_architectures_compose() {
        // Two (B+B independent) GPU channels are not boosted again without
        // a further independence argument at the outer level.
        let inner = Architecture::Redundant {
            a: Box::new(single(Asil::A)),
            b: Box::new(single(Asil::A)),
            independence: Independence::DiverseLockstep,
        };
        assert_eq!(inner.achieved_asil(), Asil::B);
        let outer = Architecture::Redundant {
            a: Box::new(inner.clone()),
            b: Box::new(inner),
            independence: Independence::DiverseLockstep,
        };
        assert_eq!(outer.achieved_asil(), Asil::D);
    }

    #[test]
    fn display_names() {
        assert_eq!(Asil::D.to_string(), "ASIL-D");
        assert_eq!(Asil::QM.to_string(), "QM");
    }
}
