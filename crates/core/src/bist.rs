//! Periodic built-in self-test of the global kernel scheduler
//! (paper Sec. IV-C).
//!
//! A fault in the kernel scheduler that merely *reduces diversity* (blocks
//! functionally correct but placed on unintended SMs) has no functional
//! effect and would become **latent** — a later core fault could then defeat
//! the redundancy undetected. The paper therefore requires the scheduler to
//! undergo periodic tests.
//!
//! [`scheduler_bist`] launches a redundant *canary* kernel in which every
//! block records the SM it actually ran on (via the `SmId` special
//! register), then cross-checks three sources: the policy's *expected*
//! placement, the execution *trace*, and the *memory* contents written by
//! the canary. Any disagreement reveals a scheduler (or trace) fault before
//! it can become latent.

use crate::redundancy::{RParam, RedundancyError, RedundancyMode, RedundantExecutor};
use higpu_sim::builder::KernelBuilder;
use higpu_sim::gpu::Gpu;
use higpu_sim::isa::SpecialReg;
use higpu_sim::kernel::SmPartition;
use higpu_sim::program::Program;
use std::sync::Arc;

/// One placement disagreement found by the self-test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistMismatch {
    /// Replica index.
    pub replica: u8,
    /// Block index.
    pub block: u32,
    /// SM the policy mandated (`None` when the policy only constrains a
    /// set, e.g. HALF partitions).
    pub expected_sm: Option<usize>,
    /// SM recorded in the execution trace.
    pub trace_sm: usize,
    /// SM the canary kernel itself observed.
    pub observed_sm: usize,
}

/// Result of one scheduler self-test round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistReport {
    /// Block placements checked (blocks × replicas).
    pub checked: usize,
    /// Placement disagreements.
    pub mismatches: Vec<BistMismatch>,
}

impl BistReport {
    /// True when every placement matched the policy's mandate.
    pub fn passed(&self) -> bool {
        self.checked > 0 && self.mismatches.is_empty()
    }
}

/// Builds the canary program: each block stores the executing SM id at
/// `out[ctaid.x]`.
pub fn canary_program() -> Arc<Program> {
    let mut b = KernelBuilder::new("sched_bist_canary");
    let out = b.param(0);
    let ctaid = b.special(SpecialReg::CtaidX);
    let smid = b.special(SpecialReg::SmId);
    let addr = b.addr_w(out, ctaid);
    b.stg(addr, 0, smid);
    b.build().expect("canary is well-formed").into_shared()
}

/// Runs one scheduler self-test round under `mode`.
///
/// `blocks` canary blocks are launched per replica (use at least
/// `2 × num_sms` to exercise the round-robin wrap of SRRS).
///
/// # Errors
///
/// Propagates [`RedundancyError`] from the underlying protocol (the GPU must
/// be idle).
pub fn scheduler_bist(
    gpu: &mut Gpu,
    mode: RedundancyMode,
    blocks: u32,
) -> Result<BistReport, RedundancyError> {
    let num_sms = gpu.config().num_sms;
    // The expected placement mandates exactly what the (quarantine-aware)
    // policies do: SRRS rotates over the healthy SMs, SLICE carves its
    // slices over the healthy index space. On a fully healthy device this
    // is the classic whole-device mapping.
    let healthy: Vec<usize> = (0..num_sms).filter(|&i| !gpu.is_quarantined(i)).collect();
    let mut exec = RedundantExecutor::new(gpu, mode.clone())?;
    let prog = canary_program();
    let out = exec.alloc_words(blocks)?;
    exec.launch(&prog, blocks, 32u32, 0, &[RParam::Buf(&out)])?;
    exec.sync()?;

    let replicas = exec.replicas() as usize;
    // Canary-observed SM per (replica, block).
    let observed: Vec<Vec<u32>> = (0..replicas)
        .map(|r| exec.gpu().read_u32(out.ptr(r), blocks as usize))
        .collect();

    let mut report = BistReport {
        checked: 0,
        mismatches: Vec::new(),
    };
    drop(exec);
    let trace = gpu.trace();
    // The BIST launch is the most recent redundancy group in the trace.
    let group = trace
        .kernels
        .iter()
        .filter_map(|k| k.attrs.redundant.map(|t| t.group))
        .max()
        .unwrap_or(0);
    for k in &trace.kernels {
        let Some(tag) = k.attrs.redundant else {
            continue;
        };
        if tag.group != group {
            continue;
        }
        let r = tag.replica as usize;
        for b in trace.blocks_of(k.id) {
            report.checked += 1;
            let expected = match &mode {
                RedundancyMode::Srrs { start_sms } => {
                    Some(crate::policy::srrs::srrs_healthy_target(
                        &healthy,
                        start_sms[r] % num_sms,
                        b.block as usize,
                    ))
                }
                RedundancyMode::Half => {
                    let part = if r == 0 {
                        SmPartition::Lower
                    } else {
                        SmPartition::Upper
                    };
                    if part.contains(b.sm, num_sms) {
                        None // constrained to a set; containment holds
                    } else {
                        Some(part.range(num_sms).start) // any SM in range; report
                    }
                }
                RedundancyMode::Slice { replicas, .. } => {
                    // Slices are carved over the healthy index space (see
                    // `SliceScheduler`): the block's SM must be a healthy SM
                    // whose healthy-index lies in the replica's slice.
                    let slice = higpu_sim::kernel::SmSlice {
                        index: tag.replica,
                        of: *replicas,
                    };
                    let range = slice.range(healthy.len());
                    match healthy.iter().position(|&sm| sm == b.sm) {
                        Some(hi) if range.contains(&hi) => None, // containment holds
                        _ => Some(
                            // any SM in range; report the first
                            healthy.get(range.start).copied().unwrap_or(num_sms),
                        ),
                    }
                }
                RedundancyMode::Uncontrolled { .. } => None,
            };
            let observed_sm = observed[r][b.block as usize] as usize;
            let placement_ok = expected.is_none_or(|e| e == b.sm);
            let sources_agree = observed_sm == b.sm;
            if !placement_ok || !sources_agree {
                report.mismatches.push(BistMismatch {
                    replica: tag.replica,
                    block: b.block,
                    expected_sm: expected,
                    trace_sm: b.sm,
                    observed_sm,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::config::GpuConfig;

    #[test]
    fn bist_passes_on_healthy_srrs_scheduler() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let report =
            scheduler_bist(&mut gpu, RedundancyMode::srrs_default(6), 12).expect("bist runs");
        assert!(report.passed(), "healthy scheduler: {report:?}");
        assert_eq!(report.checked, 24, "12 blocks x 2 replicas");
    }

    #[test]
    fn bist_passes_on_healthy_half_scheduler() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let report = scheduler_bist(&mut gpu, RedundancyMode::Half, 12).expect("bist runs");
        assert!(report.passed(), "healthy scheduler: {report:?}");
    }

    #[test]
    fn bist_passes_on_healthy_slice_scheduler_at_three_replicas() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let report = scheduler_bist(&mut gpu, RedundancyMode::slice(3), 6).expect("bist runs");
        assert!(report.passed(), "healthy scheduler: {report:?}");
        assert_eq!(report.checked, 18, "6 blocks x 3 replicas");
    }

    #[test]
    fn bist_passes_on_a_quarantined_device() {
        // The self-test's expected placement must track the quarantine-aware
        // rotation, or limp-home operation would flood every BIST round with
        // false alarms.
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        gpu.quarantine_sm(2);
        let report =
            scheduler_bist(&mut gpu, RedundancyMode::srrs_default(6), 12).expect("bist runs");
        assert!(report.passed(), "degraded SRRS placement: {report:?}");

        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        gpu.quarantine_sm(1);
        let report = scheduler_bist(&mut gpu, RedundancyMode::slice(3), 6).expect("bist runs");
        assert!(report.passed(), "degraded SLICE placement: {report:?}");
    }

    #[test]
    fn canary_blocks_report_their_sm() {
        // Indirect check: a passing BIST implies the canary's SmId readings
        // agreed with the trace for every block.
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let report =
            scheduler_bist(&mut gpu, RedundancyMode::srrs_default(6), 6).expect("bist runs");
        assert!(report.mismatches.is_empty());
    }

    #[test]
    fn empty_report_does_not_pass() {
        let r = BistReport {
            checked: 0,
            mismatches: Vec::new(),
        };
        assert!(!r.passed());
    }
}
