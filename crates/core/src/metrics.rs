//! Trace metrics used by the evaluation harness.

use higpu_sim::trace::ExecutionTrace;
use std::collections::BTreeMap;

/// The paper's Fig. 4 metric: simulated cycles attributable to redundant
/// kernel execution.
///
/// For every redundancy group (one logical kernel executed as N replicas),
/// the group's cost is `max(completion over replicas) − min(arrival over
/// replicas)`; the benchmark's total is the sum over groups. Serialization
/// (SRRS) lengthens the interval between first arrival and last completion;
/// SM restriction (HALF) lengthens each replica — both are captured, while
/// host-side time between dependent launches is not double-counted.
///
/// Returns `None` if any redundant kernel has not completed.
pub fn redundant_kernel_cycles(trace: &ExecutionTrace) -> Option<u64> {
    let mut groups: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for k in &trace.kernels {
        let Some(tag) = k.attrs.redundant else {
            continue;
        };
        let completion = k.completion?;
        let entry = groups.entry(tag.group).or_insert((u64::MAX, 0));
        entry.0 = entry.0.min(k.arrival);
        entry.1 = entry.1.max(completion);
    }
    if groups.is_empty() {
        return None;
    }
    Some(groups.values().map(|(a, c)| c - a).sum())
}

/// Like [`redundant_kernel_cycles`] but for non-redundant (solo) traces:
/// sums `completion − arrival` over every kernel.
pub fn solo_kernel_cycles(trace: &ExecutionTrace) -> Option<u64> {
    if trace.kernels.is_empty() {
        return None;
    }
    let mut total = 0;
    for k in &trace.kernels {
        total += k.completion? - k.arrival;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::kernel::{BlockFootprint, KernelId, LaunchAttrs, RedundantTag};
    use higpu_sim::trace::KernelRecord;

    fn rec(
        id: u64,
        group: Option<(u32, u8)>,
        arrival: u64,
        completion: Option<u64>,
    ) -> KernelRecord {
        KernelRecord {
            id: KernelId(id),
            program: "k".into(),
            attrs: LaunchAttrs {
                redundant: group.map(|(g, r)| RedundantTag {
                    group: g,
                    replica: r,
                }),
                ..Default::default()
            },
            launched: 0,
            arrival,
            first_dispatch: Some(arrival),
            completion,
            blocks: 1,
            footprint: BlockFootprint::default(),
        }
    }

    #[test]
    fn groups_are_summed() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(rec(0, Some((0, 0)), 100, Some(200)));
        t.kernels.push(rec(1, Some((0, 1)), 150, Some(300)));
        t.kernels.push(rec(2, Some((1, 0)), 400, Some(450)));
        t.kernels.push(rec(3, Some((1, 1)), 420, Some(500)));
        // group 0: 300-100 = 200 ; group 1: 500-400 = 100
        assert_eq!(redundant_kernel_cycles(&t), Some(300));
    }

    #[test]
    fn incomplete_kernels_yield_none() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(rec(0, Some((0, 0)), 100, None));
        assert_eq!(redundant_kernel_cycles(&t), None);
    }

    #[test]
    fn non_redundant_traces_yield_none() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(rec(0, None, 100, Some(300)));
        assert_eq!(redundant_kernel_cycles(&t), None);
        assert_eq!(solo_kernel_cycles(&t), Some(200));
    }

    #[test]
    fn solo_metric_sums_all_kernels() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(rec(0, None, 0, Some(100)));
        t.kernels.push(rec(1, None, 200, Some(260)));
        assert_eq!(solo_kernel_cycles(&t), Some(160));
    }
}
