//! Fault-Tolerant Time Interval (FTTI) accounting.
//!
//! ISO 26262 requires that a fault is detected and the item brought back to
//! a safe/operational state within the FTTI. With dual redundant execution
//! the paper's recovery strategy is *re-execution upon mismatch*
//! (Sec. IV-A, footnote 1): detection happens at the host-side compare, and
//! recovery re-runs the redundant computation. This module checks that the
//! worst-case fault handling path fits a given FTTI budget.

/// An FTTI budget in GPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FttiBudget {
    /// Budget in cycles.
    pub cycles: u64,
}

impl FttiBudget {
    /// Builds a budget from milliseconds at a given core clock.
    pub fn from_ms(ms: f64, clock_ghz: f64) -> Self {
        Self {
            cycles: (ms * clock_ghz * 1.0e6) as u64,
        }
    }

    /// The budget expressed in milliseconds at a given core clock.
    pub fn to_ms(self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1.0e6)
    }
}

/// Timing of one redundant execution round and its recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryAnalysis {
    /// Cycles for one full redundant round (copies + both kernels + copy
    /// back), i.e. the detection latency from offload to compare.
    pub round_cycles: u64,
    /// Cycles for the host-side output comparison.
    pub compare_cycles: u64,
    /// Re-execution rounds budgeted for recovery (1 for the paper's
    /// single-fault assumption: one detected error, one re-execution).
    pub recovery_rounds: u32,
}

impl RecoveryAnalysis {
    /// Worst-case fault handling time: the faulty round runs to completion,
    /// is detected at compare, and every budgeted recovery round re-executes
    /// and re-compares.
    pub fn worst_case_cycles(&self) -> u64 {
        let one = self.round_cycles + self.compare_cycles;
        one + u64::from(self.recovery_rounds) * one
    }

    /// True when the worst case fits the budget.
    pub fn fits(&self, budget: FttiBudget) -> bool {
        self.worst_case_cycles() <= budget.cycles
    }

    /// The largest budget slack (cycles left in the FTTI), if it fits.
    pub fn slack(&self, budget: FttiBudget) -> Option<u64> {
        budget.cycles.checked_sub(self.worst_case_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_conversion_roundtrips() {
        let b = FttiBudget::from_ms(10.0, 1.4);
        assert_eq!(b.cycles, 14_000_000);
        assert!((b.to_ms(1.4) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn worst_case_includes_detection_and_recovery() {
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 1,
        };
        assert_eq!(r.worst_case_cycles(), 2200);
    }

    #[test]
    fn fits_and_slack() {
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 1,
        };
        assert!(r.fits(FttiBudget { cycles: 2200 }));
        assert!(!r.fits(FttiBudget { cycles: 2199 }));
        assert_eq!(r.slack(FttiBudget { cycles: 3000 }), Some(800));
        assert_eq!(r.slack(FttiBudget { cycles: 2000 }), None);
    }

    #[test]
    fn tmr_style_zero_recovery() {
        // With forward recovery (e.g. TMR voting) no re-execution is needed.
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 0,
        };
        assert_eq!(r.worst_case_cycles(), 1100);
    }
}
