//! Fault-Tolerant Time Interval (FTTI) accounting.
//!
//! ISO 26262 requires that a fault is detected and the item brought back to
//! a safe/operational state within the FTTI. With dual redundant execution
//! the paper's recovery strategy is *re-execution upon mismatch*
//! (Sec. IV-A, footnote 1): detection happens at the host-side compare, and
//! recovery re-runs the redundant computation. This module checks that the
//! worst-case fault handling path fits a given FTTI budget.

/// An FTTI budget in GPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FttiBudget {
    /// Budget in cycles.
    pub cycles: u64,
}

impl FttiBudget {
    /// Builds a budget from milliseconds at a given core clock.
    pub fn from_ms(ms: f64, clock_ghz: f64) -> Self {
        Self {
            cycles: (ms * clock_ghz * 1.0e6) as u64,
        }
    }

    /// The budget expressed in milliseconds at a given core clock.
    pub fn to_ms(self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1.0e6)
    }
}

/// Fixed per-computation slack added to every derived deadline, covering
/// the host-side compare/vote and dispatch latencies regardless of how
/// short the offloaded kernel is.
pub const DEADLINE_FIXED_SLACK: u64 = 10_000;

/// The watchdog deadline of one offloaded computation: its declared FTTI
/// budget multiplier times its fault-free makespan, plus
/// [`DEADLINE_FIXED_SLACK`]. Legitimate corrupted-but-terminating runs
/// (extra divergence, a few perturbed loop trips) stay below it; a runaway
/// loop (counter sign-flip → ~2³¹ iterations) blows it promptly and is
/// classified as *detected* by the deadline monitor. Saturating, so a
/// degenerate multiplier can never wrap.
pub fn deadline(fault_free_makespan: u64, ftti_multiplier: u64) -> u64 {
    fault_free_makespan
        .saturating_mul(ftti_multiplier)
        .saturating_add(DEADLINE_FIXED_SLACK)
}

/// The deadline budget of a multi-stage real-time pipeline: one watchdog
/// budget per stage ([`deadline`] of the stage's fault-free makespan and
/// declared multiplier), and an end-to-end FTTI that is their sum — stages
/// execute serially on one GPU, so the end-to-end worst case is the sum of
/// the per-stage worst cases.
///
/// The end-to-end slack this derivation leaves above the fault-free
/// makespan is exactly what funds **in-FTTI re-execution recovery**: a
/// detected stage may be retried as long as the remaining slack still
/// covers the retry ([`PipelineFtti::allows_retry`]) — fail-operational
/// behaviour instead of fail-stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineFtti {
    /// Per-stage watchdog budgets, in cycles, in stage order.
    pub stage_budgets: Vec<u64>,
}

impl PipelineFtti {
    /// Derives the budget set from per-stage `(fault_free_makespan,
    /// ftti_multiplier)` pairs.
    pub fn from_stage_makespans(stages: impl IntoIterator<Item = (u64, u64)>) -> Self {
        Self {
            stage_budgets: stages
                .into_iter()
                .map(|(makespan, mult)| deadline(makespan, mult))
                .collect(),
        }
    }

    /// The end-to-end FTTI: the sum of the stage budgets.
    pub fn end_to_end(&self) -> u64 {
        self.stage_budgets
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The absolute watchdog limit for an attempt of stage `stage`
    /// starting at cycle `start`, in a frame whose clock-zero is
    /// `frame_zero`: the stage budget, capped by the frame's absolute
    /// end-to-end FTTI (a stage may never spend cycles the pipeline no
    /// longer has). Frames may begin at any device cycle — a periodic
    /// host re-enters with the clock running — so the cap is
    /// `frame_zero + end_to_end()`, not the bare FTTI.
    pub fn stage_limit(&self, stage: usize, frame_zero: u64, start: u64) -> u64 {
        start
            .saturating_add(self.stage_budgets[stage])
            .min(frame_zero.saturating_add(self.end_to_end()))
    }

    /// True when, `elapsed` cycles into the frame, the remaining
    /// end-to-end slack still covers a retry costing `retry_cycles` (plus
    /// the fixed compare slack) — the gate of in-FTTI re-execution
    /// recovery.
    pub fn allows_retry(&self, elapsed: u64, retry_cycles: u64) -> bool {
        self.end_to_end().saturating_sub(elapsed)
            >= retry_cycles.saturating_add(DEADLINE_FIXED_SLACK)
    }
}

/// Timing of one redundant execution round and its recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryAnalysis {
    /// Cycles for one full redundant round (copies + both kernels + copy
    /// back), i.e. the detection latency from offload to compare.
    pub round_cycles: u64,
    /// Cycles for the host-side output comparison.
    pub compare_cycles: u64,
    /// Re-execution rounds budgeted for recovery (1 for the paper's
    /// single-fault assumption: one detected error, one re-execution).
    pub recovery_rounds: u32,
}

impl RecoveryAnalysis {
    /// Worst-case fault handling time: the faulty round runs to completion,
    /// is detected at compare, and every budgeted recovery round re-executes
    /// and re-compares.
    pub fn worst_case_cycles(&self) -> u64 {
        let one = self.round_cycles + self.compare_cycles;
        one + u64::from(self.recovery_rounds) * one
    }

    /// True when the worst case fits the budget.
    pub fn fits(&self, budget: FttiBudget) -> bool {
        self.worst_case_cycles() <= budget.cycles
    }

    /// The largest budget slack (cycles left in the FTTI), if it fits.
    pub fn slack(&self, budget: FttiBudget) -> Option<u64> {
        budget.cycles.checked_sub(self.worst_case_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_conversion_roundtrips() {
        let b = FttiBudget::from_ms(10.0, 1.4);
        assert_eq!(b.cycles, 14_000_000);
        assert!((b.to_ms(1.4) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn worst_case_includes_detection_and_recovery() {
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 1,
        };
        assert_eq!(r.worst_case_cycles(), 2200);
    }

    #[test]
    fn fits_and_slack() {
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 1,
        };
        assert!(r.fits(FttiBudget { cycles: 2200 }));
        assert!(!r.fits(FttiBudget { cycles: 2199 }));
        assert_eq!(r.slack(FttiBudget { cycles: 3000 }), Some(800));
        assert_eq!(r.slack(FttiBudget { cycles: 2000 }), None);
    }

    #[test]
    fn deadline_scales_and_saturates() {
        assert_eq!(deadline(0, 8), DEADLINE_FIXED_SLACK);
        assert_eq!(deadline(1_000, 8), 18_000);
        assert_eq!(deadline(1_000, 2), 12_000);
        assert_eq!(deadline(u64::MAX, 3), u64::MAX, "saturates");
    }

    #[test]
    fn pipeline_ftti_sums_stage_budgets_and_gates_retries() {
        let p = PipelineFtti::from_stage_makespans([(1_000, 8), (2_000, 4), (500, 8)]);
        assert_eq!(p.stage_budgets, vec![18_000, 18_000, 14_000]);
        assert_eq!(p.end_to_end(), 50_000);
        // Stage limits are absolute cycles, capped by the frame's
        // absolute end-to-end FTTI.
        assert_eq!(p.stage_limit(0, 0, 0), 18_000);
        assert_eq!(p.stage_limit(1, 0, 3_000), 21_000);
        assert_eq!(p.stage_limit(2, 0, 45_000), 50_000, "capped at end-to-end");
        // A frame starting mid-clock caps at frame_zero + FTTI, never at
        // the bare (relative) FTTI.
        assert_eq!(p.stage_limit(0, 100_000, 100_000), 118_000);
        assert_eq!(
            p.stage_limit(2, 100_000, 145_000),
            150_000,
            "capped at the frame's absolute deadline"
        );
        // Retry gate: early in the pipeline there is slack for a full
        // stage re-execution; at the very end there is not.
        assert!(p.allows_retry(5_000, 2_000));
        assert!(!p.allows_retry(49_000, 2_000));
        // Exactly-fitting retry is allowed.
        assert!(p.allows_retry(50_000 - 2_000 - DEADLINE_FIXED_SLACK, 2_000));
        assert!(!p.allows_retry(50_000 - 2_000 - DEADLINE_FIXED_SLACK + 1, 2_000));
    }

    #[test]
    fn tmr_style_zero_recovery() {
        // With forward recovery (e.g. TMR voting) no re-execution is needed.
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 0,
        };
        assert_eq!(r.worst_case_cycles(), 1100);
    }
}
