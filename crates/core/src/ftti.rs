//! Fault-Tolerant Time Interval (FTTI) accounting.
//!
//! ISO 26262 requires that a fault is detected and the item brought back to
//! a safe/operational state within the FTTI. With dual redundant execution
//! the paper's recovery strategy is *re-execution upon mismatch*
//! (Sec. IV-A, footnote 1): detection happens at the host-side compare, and
//! recovery re-runs the redundant computation. This module checks that the
//! worst-case fault handling path fits a given FTTI budget.

/// An FTTI budget in GPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FttiBudget {
    /// Budget in cycles.
    pub cycles: u64,
}

impl FttiBudget {
    /// Builds a budget from milliseconds at a given core clock.
    pub fn from_ms(ms: f64, clock_ghz: f64) -> Self {
        Self {
            cycles: (ms * clock_ghz * 1.0e6) as u64,
        }
    }

    /// The budget expressed in milliseconds at a given core clock.
    pub fn to_ms(self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1.0e6)
    }
}

/// Fixed per-computation slack added to every derived deadline, covering
/// the host-side compare/vote and dispatch latencies regardless of how
/// short the offloaded kernel is.
pub const DEADLINE_FIXED_SLACK: u64 = 10_000;

/// The watchdog deadline of one offloaded computation: its declared FTTI
/// budget multiplier times its fault-free makespan, plus
/// [`DEADLINE_FIXED_SLACK`]. Legitimate corrupted-but-terminating runs
/// (extra divergence, a few perturbed loop trips) stay below it; a runaway
/// loop (counter sign-flip → ~2³¹ iterations) blows it promptly and is
/// classified as *detected* by the deadline monitor. Saturating, so a
/// degenerate multiplier can never wrap.
pub fn deadline(fault_free_makespan: u64, ftti_multiplier: u64) -> u64 {
    fault_free_makespan
        .saturating_mul(ftti_multiplier)
        .saturating_add(DEADLINE_FIXED_SLACK)
}

/// Extra slack budgeted once per *join* stage (a stage consuming two or
/// more upstream outputs): the host-side cost of voting and re-uploading
/// multiple input streams before the join may launch.
pub const JOIN_SLACK: u64 = DEADLINE_FIXED_SLACK;

/// The deadline budget of a multi-stage real-time pipeline: one watchdog
/// budget per stage ([`deadline`] of the stage's fault-free makespan and
/// declared multiplier), and an end-to-end FTTI that is the **critical
/// path** of the stage DAG — the longest dependency chain of stage
/// budgets, plus [`JOIN_SLACK`] at every join on the chain. Independent
/// branches of a frame execute concurrently on disjoint SM partitions, so
/// the end-to-end worst case is governed by the longest chain, not the sum
/// of all stages (the pre-concurrency model, still available as
/// [`PipelineFtti::serial_sum`] for comparison — the critical path is
/// strictly below it for any pipeline with parallel branches).
///
/// The end-to-end slack this derivation leaves above the fault-free
/// makespan is exactly what funds **in-FTTI re-execution recovery**, and
/// the accounting is *path-aware* ([`PipelineFtti::allows_retry`]): a
/// retry on stage *s* must fit the remaining FTTI *minus the longest
/// budget-chain still downstream of s* — so a retry on a non-critical
/// branch may consume only that branch's float, never cycles the critical
/// path still needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineFtti {
    /// Per-stage watchdog budgets, in cycles, in stage order.
    pub stage_budgets: Vec<u64>,
    /// `deps[s]` = the (topologically earlier) stages whose outputs stage
    /// `s` consumes. An empty inner list marks a source stage; a chain
    /// (`deps[s] == [s-1]`) reproduces the serial model exactly.
    pub deps: Vec<Vec<usize>>,
    /// Slack added once per join stage on any path through it.
    pub join_slack: u64,
}

impl PipelineFtti {
    /// Derives the budget set of a DAG-structured pipeline from per-stage
    /// `(fault_free_makespan, ftti_multiplier)` pairs and the stage
    /// dependency lists.
    ///
    /// # Panics
    ///
    /// Panics when `deps` is not topological over the stage count (a
    /// dependency index at or past its own stage) — a wiring bug, not a
    /// runtime condition.
    pub fn from_dag(stages: impl IntoIterator<Item = (u64, u64)>, deps: Vec<Vec<usize>>) -> Self {
        let stage_budgets: Vec<u64> = stages
            .into_iter()
            .map(|(makespan, mult)| deadline(makespan, mult))
            .collect();
        assert_eq!(
            stage_budgets.len(),
            deps.len(),
            "one dependency list per stage"
        );
        for (s, d) in deps.iter().enumerate() {
            assert!(
                d.iter().all(|&i| i < s),
                "stage {s} depends on a non-earlier stage: {d:?}"
            );
        }
        Self {
            stage_budgets,
            deps,
            join_slack: JOIN_SLACK,
        }
    }

    /// Derives the budget set of a serial *chain* (every stage depends on
    /// its predecessor) — the pre-concurrency constructor, for which the
    /// critical path degenerates to the historical sum of stage budgets.
    pub fn from_stage_makespans(stages: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let stage_budgets: Vec<u64> = stages
            .into_iter()
            .map(|(makespan, mult)| deadline(makespan, mult))
            .collect();
        let deps = (0..stage_budgets.len())
            .map(|s| if s == 0 { vec![] } else { vec![s - 1] })
            .collect();
        Self {
            stage_budgets,
            deps,
            join_slack: JOIN_SLACK,
        }
    }

    /// The slack charged at stage `s` itself (join stages only).
    fn join(&self, s: usize) -> u64 {
        if self.deps.get(s).is_some_and(|d| d.len() > 1) {
            self.join_slack
        } else {
            0
        }
    }

    /// The critical-path length *through* each stage's completion: the
    /// longest budget-chain from any source up to and including stage `s`.
    fn heads(&self) -> Vec<u64> {
        let mut head = vec![0u64; self.stage_budgets.len()];
        for s in 0..self.stage_budgets.len() {
            let upstream = self.deps[s].iter().map(|&d| head[d]).max().unwrap_or(0);
            head[s] = upstream
                .saturating_add(self.join(s))
                .saturating_add(self.stage_budgets[s]);
        }
        head
    }

    /// The longest budget-chain strictly *downstream* of each stage: the
    /// cycles the frame still needs after `s` delivers, in the worst case.
    /// Zero for sinks; on a chain, the sum of all later budgets.
    pub fn downstream(&self) -> Vec<u64> {
        let mut tail = vec![0u64; self.stage_budgets.len()];
        for s in (0..self.stage_budgets.len()).rev() {
            let own = tail[s]
                .saturating_add(self.join(s))
                .saturating_add(self.stage_budgets[s]);
            for &d in &self.deps[s] {
                tail[d] = tail[d].max(own);
            }
        }
        tail
    }

    /// The end-to-end FTTI: the critical path of the budget DAG (longest
    /// chain of stage budgets, plus [`PipelineFtti::join_slack`] per join
    /// on the chain).
    pub fn end_to_end(&self) -> u64 {
        self.heads().into_iter().max().unwrap_or(0)
    }

    /// The pre-concurrency end-to-end FTTI: the plain sum of the stage
    /// budgets (what a one-stage-at-a-time executor must budget). Kept as
    /// the comparison baseline — for any pipeline with parallel branches
    /// the critical path is strictly below this.
    pub fn serial_sum(&self) -> u64 {
        self.stage_budgets
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The absolute watchdog limit for an attempt of stage `stage`
    /// starting at cycle `start`, in a frame whose clock-zero is
    /// `frame_zero`: the stage budget, capped by the frame's absolute
    /// end-to-end FTTI (a stage may never spend cycles the pipeline no
    /// longer has). Frames may begin at any device cycle — a periodic
    /// host re-enters with the clock running — so the cap is
    /// `frame_zero + end_to_end()`, not the bare FTTI.
    pub fn stage_limit(&self, stage: usize, frame_zero: u64, start: u64) -> u64 {
        start
            .saturating_add(self.stage_budgets[stage])
            .min(frame_zero.saturating_add(self.end_to_end()))
    }

    /// True when, `elapsed` cycles into the frame, re-executing stage
    /// `stage` at a cost of `retry_cycles` (plus the fixed compare slack)
    /// still fits the end-to-end FTTI **with the longest budget-chain
    /// downstream of the stage reserved** — the path-aware gate of in-FTTI
    /// re-execution recovery. A non-critical branch may spend its own
    /// float on retries; cycles the critical path still needs are never
    /// granted.
    pub fn allows_retry(&self, stage: usize, elapsed: u64, retry_cycles: u64) -> bool {
        let reserved = self.downstream()[stage];
        self.end_to_end()
            .saturating_sub(elapsed)
            .saturating_sub(reserved)
            >= retry_cycles.saturating_add(DEADLINE_FIXED_SLACK)
    }

    /// The serial executor's form of [`PipelineFtti::allows_retry`]: the
    /// budget is [`PipelineFtti::serial_sum`] and the reservation is the
    /// **sum** of every later stage's budget — a one-stage-at-a-time
    /// executor still owes all of them, not just the longest chain. On a
    /// chain the two gates coincide (sum of later budgets == longest
    /// downstream chain), so chain pipelines recover identically under
    /// either executor.
    pub fn allows_retry_serial(&self, stage: usize, elapsed: u64, retry_cycles: u64) -> bool {
        let reserved = self.stage_budgets[stage + 1..]
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b));
        self.serial_sum()
            .saturating_sub(elapsed)
            .saturating_sub(reserved)
            >= retry_cycles.saturating_add(DEADLINE_FIXED_SLACK)
    }
}

/// Timing of one redundant execution round and its recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryAnalysis {
    /// Cycles for one full redundant round (copies + both kernels + copy
    /// back), i.e. the detection latency from offload to compare.
    pub round_cycles: u64,
    /// Cycles for the host-side output comparison.
    pub compare_cycles: u64,
    /// Re-execution rounds budgeted for recovery (1 for the paper's
    /// single-fault assumption: one detected error, one re-execution).
    pub recovery_rounds: u32,
}

impl RecoveryAnalysis {
    /// Worst-case fault handling time: the faulty round runs to completion,
    /// is detected at compare, and every budgeted recovery round re-executes
    /// and re-compares.
    pub fn worst_case_cycles(&self) -> u64 {
        let one = self.round_cycles + self.compare_cycles;
        one + u64::from(self.recovery_rounds) * one
    }

    /// True when the worst case fits the budget.
    pub fn fits(&self, budget: FttiBudget) -> bool {
        self.worst_case_cycles() <= budget.cycles
    }

    /// The largest budget slack (cycles left in the FTTI), if it fits.
    pub fn slack(&self, budget: FttiBudget) -> Option<u64> {
        budget.cycles.checked_sub(self.worst_case_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_conversion_roundtrips() {
        let b = FttiBudget::from_ms(10.0, 1.4);
        assert_eq!(b.cycles, 14_000_000);
        assert!((b.to_ms(1.4) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn worst_case_includes_detection_and_recovery() {
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 1,
        };
        assert_eq!(r.worst_case_cycles(), 2200);
    }

    #[test]
    fn fits_and_slack() {
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 1,
        };
        assert!(r.fits(FttiBudget { cycles: 2200 }));
        assert!(!r.fits(FttiBudget { cycles: 2199 }));
        assert_eq!(r.slack(FttiBudget { cycles: 3000 }), Some(800));
        assert_eq!(r.slack(FttiBudget { cycles: 2000 }), None);
    }

    #[test]
    fn deadline_scales_and_saturates() {
        assert_eq!(deadline(0, 8), DEADLINE_FIXED_SLACK);
        assert_eq!(deadline(1_000, 8), 18_000);
        assert_eq!(deadline(1_000, 2), 12_000);
        assert_eq!(deadline(u64::MAX, 3), u64::MAX, "saturates");
    }

    #[test]
    fn chain_pipeline_ftti_degenerates_to_the_stage_budget_sum() {
        let p = PipelineFtti::from_stage_makespans([(1_000, 8), (2_000, 4), (500, 8)]);
        assert_eq!(p.stage_budgets, vec![18_000, 18_000, 14_000]);
        assert_eq!(p.deps, vec![vec![], vec![0], vec![1]]);
        assert_eq!(p.end_to_end(), 50_000, "a chain's critical path is the sum");
        assert_eq!(p.serial_sum(), 50_000);
        assert_eq!(p.downstream(), vec![32_000, 14_000, 0]);
        // Stage limits are absolute cycles, capped by the frame's
        // absolute end-to-end FTTI.
        assert_eq!(p.stage_limit(0, 0, 0), 18_000);
        assert_eq!(p.stage_limit(1, 0, 3_000), 21_000);
        assert_eq!(p.stage_limit(2, 0, 45_000), 50_000, "capped at end-to-end");
        // A frame starting mid-clock caps at frame_zero + FTTI, never at
        // the bare (relative) FTTI.
        assert_eq!(p.stage_limit(0, 100_000, 100_000), 118_000);
        assert_eq!(
            p.stage_limit(2, 100_000, 145_000),
            150_000,
            "capped at the frame's absolute deadline"
        );
        // Retry gate on the sink: no downstream chain to reserve, so the
        // whole remaining FTTI is spendable.
        assert!(p.allows_retry(2, 5_000, 2_000));
        assert!(!p.allows_retry(2, 49_000, 2_000));
        // Exactly-fitting retry is allowed.
        assert!(p.allows_retry(2, 50_000 - 2_000 - DEADLINE_FIXED_SLACK, 2_000));
        assert!(!p.allows_retry(2, 50_000 - 2_000 - DEADLINE_FIXED_SLACK + 1, 2_000));
        // On a chain, earlier stages must additionally reserve the whole
        // downstream budget chain.
        assert!(p.allows_retry(0, 0, 2_000));
        assert!(!p.allows_retry(0, 50_000 - 32_000 - 2_000 - DEADLINE_FIXED_SLACK + 1, 2_000));
        // On a chain the serial gate coincides with the path-aware one.
        assert!(p.allows_retry_serial(0, 0, 2_000));
        for (stage, elapsed) in [(0, 15_999), (0, 16_001), (1, 17_999), (2, 37_999)] {
            assert_eq!(
                p.allows_retry(stage, elapsed, 2_000),
                p.allows_retry_serial(stage, elapsed, 2_000),
                "stage {stage} at {elapsed}"
            );
        }
    }

    #[test]
    fn dag_pipeline_ftti_is_the_critical_path_with_join_slack() {
        // camera ─┐
        //         ├─ fuse ── track        (the sensor_fusion shape)
        // radar ──┘
        let p = PipelineFtti::from_dag(
            [(10_000, 8), (4_000, 8), (1_000, 8), (2_000, 8)],
            vec![vec![], vec![], vec![0, 1], vec![2]],
        );
        // budgets: [90_000, 42_000, 18_000, 26_000] (8x + 10k fixed slack)
        assert_eq!(p.stage_budgets, vec![90_000, 42_000, 18_000, 26_000]);
        // Critical path: camera → fuse → track, plus one JOIN_SLACK at the
        // fuse join = 90_000 + 18_000 + 26_000 + 10_000.
        assert_eq!(p.end_to_end(), 144_000);
        assert!(
            p.end_to_end() < p.serial_sum(),
            "parallel branches put the critical path strictly below the \
             serial sum ({} vs {})",
            p.end_to_end(),
            p.serial_sum()
        );
        assert_eq!(p.serial_sum(), 176_000);
        // Downstream reservations: both sources must reserve the
        // join-slacked fuse→track chain; fuse reserves track; track nothing.
        assert_eq!(p.downstream(), vec![54_000, 54_000, 26_000, 0]);
        // Path-aware retry float: at the same elapsed point, the
        // non-critical radar branch has more spendable float than camera
        // only through its smaller retry cost — but a retry that fits
        // radar's float while respecting the downstream reservation is
        // granted even when the same cycles could not be granted to a
        // retry as large as camera's.
        let elapsed = 40_000;
        assert!(p.allows_retry(1, elapsed, 4_000), "radar refits its float");
        assert!(
            !p.allows_retry(
                0,
                144_000 - 54_000 - 10_000 - DEADLINE_FIXED_SLACK + 1,
                10_000
            ),
            "camera cannot spend cycles the downstream chain still needs"
        );
        // The serial gate budgets against the sum and reserves every later
        // stage's budget: at the elapsed point where the concurrent gate
        // just closed for camera (69_001 elapsed, 10_000 retry), the
        // serial one still has float (176_000 − 69_001 − 86_000 =
        // 20_999 ≥ 20_000) — and it closes exactly 1_000 cycles later.
        assert!(p.allows_retry_serial(0, 70_000 - DEADLINE_FIXED_SLACK + 1, 10_000));
        assert!(p.allows_retry_serial(0, 176_000 - 86_000 - 10_000 - DEADLINE_FIXED_SLACK, 10_000));
        assert!(
            !p.allows_retry_serial(
                0,
                176_000 - 86_000 - 10_000 - DEADLINE_FIXED_SLACK + 1,
                10_000
            ),
            "the serial gate reserves radar's budget too, not just the longest chain"
        );
    }

    #[test]
    #[should_panic(expected = "non-earlier stage")]
    fn non_topological_deps_are_rejected() {
        let _ = PipelineFtti::from_dag([(1_000, 8), (1_000, 8)], vec![vec![1], vec![]]);
    }

    #[test]
    fn tmr_style_zero_recovery() {
        // With forward recovery (e.g. TMR voting) no re-execution is needed.
        let r = RecoveryAnalysis {
            round_cycles: 1000,
            compare_cycles: 100,
            recovery_rounds: 0,
        };
        assert_eq!(r.worst_case_cycles(), 1100);
    }
}
