//! Diversity verification: the evidence side of the safety argument.
//!
//! [`analyze`] consumes an execution trace and checks, for every pair of
//! redundant thread blocks (same block index, same redundancy group,
//! different replicas), that:
//!
//! * **spatial diversity** — the two executions used different SMs, so a
//!   permanent fault in one SM cannot corrupt both copies; and
//! * **temporal diversity** — the two execution intervals are disjoint
//!   (optionally separated by a minimum slack), so a transient common-cause
//!   fault (e.g. a voltage droop striking all SMs at one instant) cannot hit
//!   the same computation in both copies.
//!
//! A clean [`DiversityReport`] is exactly the independence evidence ISO 26262
//! ASIL decomposition requires ([`crate::asil::Independence`]).

use crate::asil::Independence;
use higpu_sim::kernel::KernelId;
use higpu_sim::trace::{BlockRecord, ExecutionTrace};
use std::collections::BTreeMap;

/// Requirements the analyzer checks.
///
/// Temporal diversity is satisfied by **either** of two mechanisms, matching
/// the two policies' arguments:
///
/// * *disjoint execution* (SRRS): the block intervals do not overlap, with
///   at least `min_slack` cycles between them; or
/// * *staggered execution* (HALF): the intervals overlap, but the start
///   times differ by at least `min_start_skew` cycles. Because the replicas
///   progress through identical instruction sequences and shared-resource
///   arbitration preserves arrival order (paper Sec. IV-B2), a start skew ≥
///   the longest transient-CCF duration guarantees the *same computation*
///   never executes in both replicas simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiversityRequirements {
    /// Minimum cycles required between disjoint executions (0 = mere
    /// disjointness).
    pub min_slack: u64,
    /// Minimum start-time stagger accepted for overlapping executions.
    pub min_start_skew: u64,
}

impl Default for DiversityRequirements {
    fn default() -> Self {
        Self {
            min_slack: 0,
            min_start_skew: 1,
        }
    }
}

impl DiversityRequirements {
    /// Requirements sized to a worst-case transient CCF of `droop` cycles:
    /// disjoint executions need no extra slack; overlapping executions must
    /// be staggered by more than the droop duration.
    pub fn for_droop_duration(droop: u64) -> Self {
        Self {
            min_slack: 0,
            min_start_skew: droop + 1,
        }
    }
}

/// Diversity verdict for one redundant block pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDiversity {
    /// Redundancy group the pair belongs to.
    pub group: u32,
    /// Block index within the grid.
    pub block: u32,
    /// (replica, SM, start, end) of the first execution.
    pub a: (u8, usize, u64, u64),
    /// (replica, SM, start, end) of the second execution.
    pub b: (u8, usize, u64, u64),
    /// Different SMs?
    pub spatial_ok: bool,
    /// Disjoint in time with the required slack?
    pub temporal_ok: bool,
    /// Temporal gap between the executions (0 when overlapping).
    pub slack: u64,
}

/// Aggregate diversity analysis of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiversityReport {
    /// Per-pair verdicts (only pairs with violations are retained verbatim;
    /// clean pairs are summarized by the counters).
    pub violations: Vec<PairDiversity>,
    /// Redundancy groups analyzed.
    pub groups: usize,
    /// Redundant block pairs checked.
    pub pairs_checked: usize,
    /// Pairs executing on the same SM.
    pub spatial_violations: usize,
    /// Pairs with overlapping execution or insufficient slack.
    pub temporal_violations: usize,
    /// Blocks that appeared in one replica but not its peer (incomplete
    /// redundancy — always a violation).
    pub unmatched_blocks: usize,
    /// Smallest observed inter-replica slack across clean pairs.
    pub min_slack_observed: Option<u64>,
}

impl DiversityReport {
    /// True when every redundant computation was spatially and temporally
    /// diverse — the property SRRS and HALF guarantee by construction.
    pub fn is_diverse(&self) -> bool {
        self.pairs_checked > 0
            && self.spatial_violations == 0
            && self.temporal_violations == 0
            && self.unmatched_blocks == 0
    }

    /// Converts the report into ASIL-decomposition independence evidence.
    pub fn independence(&self) -> Independence {
        Independence::DiverseGpuScheduling {
            pairs_checked: self.pairs_checked,
            violations: self.spatial_violations + self.temporal_violations + self.unmatched_blocks,
        }
    }
}

fn pair_key(r: &BlockRecord) -> (u32, u64, u64) {
    (r.block, r.start, r.end)
}

/// Analyzes `trace` for redundant-execution diversity.
///
/// Kernels are matched through their [`higpu_sim::kernel::RedundantTag`]:
/// kernels sharing a `group` are replicas of one logical computation, and
/// block *i* of each replica must be pairwise diverse. Replica groups with
/// more than two members (e.g. TMR) are checked pairwise.
pub fn analyze(trace: &ExecutionTrace, req: DiversityRequirements) -> DiversityReport {
    // group → replica → kernel id
    let mut groups: BTreeMap<u32, Vec<(u8, KernelId)>> = BTreeMap::new();
    for k in &trace.kernels {
        if let Some(tag) = k.attrs.redundant {
            groups
                .entry(tag.group)
                .or_default()
                .push((tag.replica, k.id));
        }
    }

    let mut report = DiversityReport {
        groups: groups.len(),
        ..Default::default()
    };

    for (group, members) in groups {
        // block index → records per replica
        let mut by_replica: Vec<(u8, BTreeMap<u32, &BlockRecord>)> = Vec::new();
        for (replica, kid) in &members {
            let mut blocks = BTreeMap::new();
            for b in trace.blocks_of(*kid) {
                blocks.insert(b.block, b);
            }
            by_replica.push((*replica, blocks));
        }
        // pairwise across replicas
        for i in 0..by_replica.len() {
            for j in i + 1..by_replica.len() {
                let (ra, blocks_a) = (&by_replica[i].0, &by_replica[i].1);
                let (rb, blocks_b) = (&by_replica[j].0, &by_replica[j].1);
                for (block, rec_a) in blocks_a {
                    let Some(rec_b) = blocks_b.get(block) else {
                        report.unmatched_blocks += 1;
                        continue;
                    };
                    report.pairs_checked += 1;
                    let spatial_ok = rec_a.sm != rec_b.sm;
                    let overlap = rec_a.overlaps(rec_b);
                    let slack = if overlap {
                        rec_a.start.abs_diff(rec_b.start)
                    } else if rec_a.end <= rec_b.start {
                        rec_b.start - rec_a.end
                    } else {
                        rec_a.start - rec_b.end
                    };
                    let temporal_ok = if overlap {
                        slack >= req.min_start_skew
                    } else {
                        slack >= req.min_slack
                    };
                    if !spatial_ok {
                        report.spatial_violations += 1;
                    }
                    if !temporal_ok {
                        report.temporal_violations += 1;
                    }
                    if spatial_ok && temporal_ok {
                        report.min_slack_observed =
                            Some(report.min_slack_observed.map_or(slack, |m| m.min(slack)));
                    } else {
                        let (ka, kb) = (pair_key(rec_a), pair_key(rec_b));
                        report.violations.push(PairDiversity {
                            group,
                            block: *block,
                            a: (*ra, rec_a.sm, ka.1, ka.2),
                            b: (*rb, rec_b.sm, kb.1, kb.2),
                            spatial_ok,
                            temporal_ok,
                            slack,
                        });
                    }
                }
                // Blocks present only in replica j.
                for block in blocks_b.keys() {
                    if !blocks_a.contains_key(block) {
                        report.unmatched_blocks += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use higpu_sim::kernel::{KernelId, LaunchAttrs, RedundantTag};
    use higpu_sim::trace::{ExecutionTrace, KernelRecord};

    fn kernel_rec(id: u64, group: u32, replica: u8) -> KernelRecord {
        KernelRecord {
            id: KernelId(id),
            program: "k".into(),
            attrs: LaunchAttrs {
                redundant: Some(RedundantTag { group, replica }),
                ..Default::default()
            },
            launched: 0,
            arrival: 0,
            first_dispatch: Some(0),
            completion: Some(100),
            blocks: 1,
            footprint: higpu_sim::kernel::BlockFootprint::default(),
        }
    }

    fn block_rec(kernel: u64, block: u32, sm: usize, start: u64, end: u64) -> BlockRecord {
        BlockRecord {
            kernel: KernelId(kernel),
            block,
            sm,
            start,
            end,
        }
    }

    #[test]
    fn clean_dual_redundancy_is_diverse() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(kernel_rec(0, 1, 0));
        t.kernels.push(kernel_rec(1, 1, 1));
        t.blocks.push(block_rec(0, 0, 0, 0, 50));
        t.blocks.push(block_rec(1, 0, 3, 60, 110));
        let r = analyze(&t, DiversityRequirements::default());
        assert!(r.is_diverse());
        assert_eq!(r.pairs_checked, 1);
        assert_eq!(r.min_slack_observed, Some(10));
        assert!(r.independence().is_sufficient());
    }

    #[test]
    fn same_sm_is_spatial_violation() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(kernel_rec(0, 1, 0));
        t.kernels.push(kernel_rec(1, 1, 1));
        t.blocks.push(block_rec(0, 0, 2, 0, 50));
        t.blocks.push(block_rec(1, 0, 2, 60, 110));
        let r = analyze(&t, DiversityRequirements::default());
        assert!(!r.is_diverse());
        assert_eq!(r.spatial_violations, 1);
        assert_eq!(r.temporal_violations, 0);
        assert_eq!(r.violations.len(), 1);
        assert!(!r.independence().is_sufficient());
    }

    #[test]
    fn simultaneous_start_is_temporal_violation() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(kernel_rec(0, 1, 0));
        t.kernels.push(kernel_rec(1, 1, 1));
        t.blocks.push(block_rec(0, 0, 0, 0, 50));
        t.blocks.push(block_rec(1, 0, 3, 0, 50));
        let r = analyze(&t, DiversityRequirements::default());
        assert_eq!(r.temporal_violations, 1);
        assert_eq!(r.spatial_violations, 0);
        assert!(!r.is_diverse());
    }

    #[test]
    fn staggered_overlap_satisfies_half_style_diversity() {
        // HALF: replicas overlap but start a dispatch gap apart.
        let mut t = ExecutionTrace::new();
        t.kernels.push(kernel_rec(0, 1, 0));
        t.kernels.push(kernel_rec(1, 1, 1));
        t.blocks.push(block_rec(0, 0, 0, 0, 100));
        t.blocks.push(block_rec(1, 0, 3, 40, 140));
        let r = analyze(&t, DiversityRequirements::default());
        assert!(r.is_diverse(), "{r:?}");
        // A droop longer than the 40-cycle skew defeats the stagger.
        let strict = analyze(&t, DiversityRequirements::for_droop_duration(50));
        assert_eq!(strict.temporal_violations, 1);
        // A droop shorter than the skew is tolerated.
        let ok = analyze(&t, DiversityRequirements::for_droop_duration(30));
        assert!(ok.is_diverse());
    }

    #[test]
    fn min_slack_requirement_is_enforced() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(kernel_rec(0, 1, 0));
        t.kernels.push(kernel_rec(1, 1, 1));
        t.blocks.push(block_rec(0, 0, 0, 0, 50));
        t.blocks.push(block_rec(1, 0, 3, 55, 100));
        let strict = analyze(
            &t,
            DiversityRequirements {
                min_slack: 10,
                ..Default::default()
            },
        );
        assert_eq!(strict.temporal_violations, 1, "5 cycles < 10 required");
        let loose = analyze(
            &t,
            DiversityRequirements {
                min_slack: 5,
                ..Default::default()
            },
        );
        assert!(loose.is_diverse());
    }

    #[test]
    fn missing_replica_block_is_flagged() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(kernel_rec(0, 1, 0));
        t.kernels.push(kernel_rec(1, 1, 1));
        t.blocks.push(block_rec(0, 0, 0, 0, 50));
        t.blocks.push(block_rec(0, 1, 1, 0, 50));
        t.blocks.push(block_rec(1, 0, 3, 60, 110));
        let r = analyze(&t, DiversityRequirements::default());
        assert_eq!(r.unmatched_blocks, 1);
        assert!(!r.is_diverse());
    }

    #[test]
    fn triple_redundancy_checked_pairwise() {
        let mut t = ExecutionTrace::new();
        for replica in 0..3u8 {
            t.kernels.push(kernel_rec(replica as u64, 1, replica));
            t.blocks.push(block_rec(
                replica as u64,
                0,
                replica as usize * 2,
                replica as u64 * 100,
                replica as u64 * 100 + 50,
            ));
        }
        let r = analyze(&t, DiversityRequirements::default());
        assert_eq!(r.pairs_checked, 3, "3 choose 2 pairs");
        assert!(r.is_diverse());
    }

    #[test]
    fn non_redundant_kernels_are_ignored() {
        let mut t = ExecutionTrace::new();
        t.kernels.push(KernelRecord {
            id: KernelId(0),
            program: "solo".into(),
            attrs: LaunchAttrs::default(),
            launched: 0,
            arrival: 0,
            first_dispatch: Some(0),
            completion: Some(10),
            blocks: 1,
            footprint: higpu_sim::kernel::BlockFootprint::default(),
        });
        t.blocks.push(block_rec(0, 0, 0, 0, 10));
        let r = analyze(&t, DiversityRequirements::default());
        assert_eq!(r.groups, 0);
        assert_eq!(r.pairs_checked, 0);
        assert!(!r.is_diverse(), "no evidence without redundant pairs");
    }

    #[test]
    fn empty_report_is_not_evidence() {
        let r = DiversityReport::default();
        assert!(!r.is_diverse());
        assert!(!r.independence().is_sufficient());
    }
}
