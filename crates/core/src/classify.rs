//! Kernel categorization (paper Sec. IV-B, Fig. 3) and per-kernel policy
//! selection (Sec. IV-D).
//!
//! Kernels fall in three categories with respect to redundant execution:
//!
//! * **Short** — finished before the second (redundant) copy even arrives at
//!   the GPU (execution time below the serial host dispatch gap). No
//!   overlap is possible; SRRS serialization costs nothing.
//! * **Heavy** — its blocks monopolize whole SMs (occupancy of one block
//!   per SM) while the grid demands more than half the GPU, so two copies
//!   cannot make progress together anyway. SRRS costs little; HALF would
//!   starve each copy.
//! * **Friendly** — blocks are small enough that both copies' blocks
//!   coexist. HALF gives each copy the half it would effectively use; SRRS
//!   would serialize two kernels that could have overlapped, up to doubling
//!   time.
//!
//! Classification is performed during the system analysis phase, from a solo
//! profiling run, and the chosen policy is fixed before deployment.

use crate::policy::PolicyKind;
use higpu_sim::config::GpuConfig;
use higpu_sim::kernel::BlockFootprint;

/// The three kernel categories of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelCategory {
    /// Too fast to overlap with its redundant copy.
    Short,
    /// Uses too many resources for copies to overlap.
    Heavy,
    /// Copies can progress concurrently.
    Friendly,
}

impl KernelCategory {
    /// The most convenient diversity policy for this category
    /// (paper Sec. IV-D).
    pub fn recommended_policy(self) -> PolicyKind {
        match self {
            KernelCategory::Short | KernelCategory::Heavy => PolicyKind::Srrs,
            KernelCategory::Friendly => PolicyKind::Half,
        }
    }
}

impl std::fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelCategory::Short => write!(f, "short"),
            KernelCategory::Heavy => write!(f, "heavy"),
            KernelCategory::Friendly => write!(f, "friendly"),
        }
    }
}

/// Occupancy and timing profile of one kernel, measured on a solo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Cycles from first block dispatch to kernel completion, solo.
    pub solo_cycles: u64,
    /// Blocks in the grid.
    pub grid_blocks: u32,
    /// Maximum blocks of this kernel resident per SM (occupancy limit).
    pub blocks_per_sm: u32,
    /// Maximum blocks resident on the whole GPU.
    pub gpu_capacity: u32,
    /// Blocks the kernel would keep resident concurrently
    /// (`min(grid_blocks, gpu_capacity)`).
    pub concurrent_demand: u32,
}

impl KernelProfile {
    /// Fraction of the GPU's block capacity this kernel demands (0..=1).
    pub fn demand_fraction(&self) -> f64 {
        if self.gpu_capacity == 0 {
            return 1.0;
        }
        f64::from(self.concurrent_demand) / f64::from(self.gpu_capacity)
    }
}

/// Maximum resident blocks per SM for a block footprint `fp` under `cfg`
/// (the standard CUDA occupancy computation).
pub fn max_blocks_per_sm(cfg: &GpuConfig, fp: &BlockFootprint) -> u32 {
    let mut m = cfg.max_blocks_per_sm as u32;
    if let Some(limit) = (cfg.max_threads_per_sm as u32).checked_div(fp.threads) {
        m = m.min(limit);
    }
    if let Some(limit) = (cfg.max_warps_per_sm as u32).checked_div(fp.warps) {
        m = m.min(limit);
    }
    if let Some(limit) = (cfg.registers_per_sm as u32).checked_div(fp.registers) {
        m = m.min(limit);
    }
    if let Some(limit) = (cfg.shared_mem_per_sm as u32).checked_div(fp.shared_mem) {
        m = m.min(limit);
    }
    m
}

/// Builds a [`KernelProfile`] from the solo execution time and the launch
/// geometry.
pub fn profile(
    cfg: &GpuConfig,
    fp: &BlockFootprint,
    grid_blocks: u32,
    solo_cycles: u64,
) -> KernelProfile {
    let blocks_per_sm = max_blocks_per_sm(cfg, fp);
    let gpu_capacity = blocks_per_sm * cfg.num_sms as u32;
    KernelProfile {
        solo_cycles,
        grid_blocks,
        blocks_per_sm,
        gpu_capacity,
        concurrent_demand: grid_blocks.min(gpu_capacity),
    }
}

/// Classifies a kernel per Fig. 3.
///
/// `dispatch_gap` is the serial host dispatch latency: a kernel whose solo
/// execution finishes within it can never overlap its redundant copy
/// (*short*). A kernel is *heavy* when a single thread block monopolizes an
/// SM (occupancy limit of one block per SM) while the grid demands more
/// than half the GPU — then no second kernel can make progress beside it,
/// and halving the SM set starves it. Everything else is *friendly*: blocks
/// are small enough that two kernels' blocks coexist on the same SMs.
pub fn classify(profile: &KernelProfile, dispatch_gap: u64) -> KernelCategory {
    if profile.solo_cycles < dispatch_gap {
        KernelCategory::Short
    } else if profile.blocks_per_sm <= 1 && profile.demand_fraction() > 0.5 {
        KernelCategory::Heavy
    } else {
        KernelCategory::Friendly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::paper_6sm()
    }

    fn fp(threads: u32, regs_per_thread: u32, shared: u32) -> BlockFootprint {
        BlockFootprint {
            threads,
            warps: threads.div_ceil(32),
            registers: threads * regs_per_thread,
            shared_mem: shared,
        }
    }

    #[test]
    fn occupancy_limited_by_block_slots() {
        let m = max_blocks_per_sm(&cfg(), &fp(32, 8, 0));
        assert_eq!(m, 8, "tiny blocks hit the block-slot limit");
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let m = max_blocks_per_sm(&cfg(), &fp(512, 8, 0));
        assert_eq!(m, 3, "1536 / 512");
    }

    #[test]
    fn occupancy_limited_by_shared_mem() {
        let m = max_blocks_per_sm(&cfg(), &fp(64, 8, 20 * 1024));
        assert_eq!(m, 2, "48 KiB / 20 KiB");
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let m = max_blocks_per_sm(&cfg(), &fp(256, 64, 0));
        // 32768 regs / (256*64) = 2
        assert_eq!(m, 2);
    }

    #[test]
    fn short_kernel_classified_by_duration() {
        let p = profile(&cfg(), &fp(256, 16, 0), 48, 1000);
        assert_eq!(classify(&p, 7000), KernelCategory::Short);
        // Same kernel with a tiny dispatch gap would not be short.
        assert_ne!(classify(&p, 500), KernelCategory::Short);
    }

    #[test]
    fn heavy_kernel_monopolizes_sms() {
        // 1024-thread blocks: 1/SM → capacity 6; grid of 6 demands 100%.
        let p = profile(&cfg(), &fp(1024, 16, 0), 6, 1_000_000);
        assert_eq!(p.blocks_per_sm, 1);
        assert!(p.demand_fraction() > 0.5);
        assert_eq!(classify(&p, 7000), KernelCategory::Heavy);
    }

    #[test]
    fn large_grids_of_small_blocks_are_friendly_not_heavy() {
        // Many small blocks saturate the GPU but interleave with a second
        // kernel — the hotspot/srad case.
        let p = profile(&cfg(), &fp(256, 16, 0), 1000, 1_000_000);
        assert!(p.demand_fraction() > 0.99);
        assert!(p.blocks_per_sm > 1);
        assert_eq!(classify(&p, 7000), KernelCategory::Friendly);
    }

    #[test]
    fn friendly_kernel_fits_in_half() {
        // 256-thread blocks: 6/SM → capacity 36; grid of 12 demands 1/3.
        let p = profile(&cfg(), &fp(256, 16, 0), 12, 1_000_000);
        assert!(p.demand_fraction() <= 0.5);
        assert_eq!(classify(&p, 7000), KernelCategory::Friendly);
    }

    #[test]
    fn policy_recommendations_follow_paper() {
        assert_eq!(KernelCategory::Short.recommended_policy(), PolicyKind::Srrs);
        assert_eq!(KernelCategory::Heavy.recommended_policy(), PolicyKind::Srrs);
        assert_eq!(
            KernelCategory::Friendly.recommended_policy(),
            PolicyKind::Half
        );
    }

    #[test]
    fn demand_fraction_bounds() {
        let p = profile(&cfg(), &fp(32, 8, 0), 1_000_000, 10);
        assert!(p.demand_fraction() <= 1.0);
        assert_eq!(p.concurrent_demand, p.gpu_capacity);
    }
}
