//! The N-modular redundant-execution protocol (paper Sec. IV-A,
//! generalized from the paper's two-replica DCLS scheme).
//!
//! An ASIL-D capable lockstep host CPU offloads a computation to the GPU by
//! (1) allocating device memory for **every** redundant kernel,
//! (2) transferring the input data N times, (3) launching the N redundant
//! kernels (under a diversity-enforcing scheduling policy),
//! (4) collecting all results, and (5) comparing — or, for N ≥ 3,
//! **majority-voting** ([`crate::vote`]) — them on the DCLS core.
//! With two replicas a mismatch means a fault corrupted one copy and the
//! computation is re-executed within the fault-tolerant time interval (see
//! [`crate::ftti`]); with three or more, a minority corruption is outvoted
//! and execution continues — detection becomes *correction*.
//!
//! [`RedundantExecutor`] drives this protocol over a [`higpu_sim::gpu::Gpu`].
//! Multi-kernel host programs (iterative solvers, wavefront algorithms)
//! naturally express as multiple `launch`/`sync` rounds; every launch is
//! replicated and tagged so the diversity analyzer can match block pairs.

use crate::policy::PolicyKind;
use crate::vote::{majority_vote, VotedWords};

/// Per-replica parameter materializer used by
/// [`RedundantExecutor::launch_with`]: writes replica `r`'s raw parameter
/// words into the executor's reusable scratch vector.
pub type ParamFill<'a> = dyn FnMut(usize, &mut Vec<u32>) -> Result<(), RedundancyError> + 'a;
use higpu_sim::gpu::{DevPtr, Gpu, SimError};
use higpu_sim::kernel::{Dim3, KernelId, KernelLaunch, LaunchConfig, SmPartition};
use higpu_sim::program::Program;
use std::sync::Arc;

/// Host-side interception point for [`RedundantExecutor::sync`].
///
/// The executor numbers its sync points (`segment` starts at 0 and
/// increments per call) and hands the hook exclusive device access; the
/// hook decides *how* the segment reaches its synchronization — running it
/// to idle, pausing at checkpoints along the way, or skipping it entirely
/// by restoring a previously recorded [`higpu_sim::gpu::DeviceSnapshot`].
/// Returns the device cycle at which the segment is considered
/// synchronized, exactly as [`higpu_sim::gpu::Gpu::run_to_idle`] would.
///
/// This is the seam the fault-campaign checkpointing machinery plugs into:
/// a recorder hook snapshots the fault-free reference pass at a fixed
/// stride, and a replayer hook fast-forwards each trial to the snapshot
/// nearest before its fault arm cycle, simulating only the corrupted
/// suffix.
pub trait SyncHook {
    /// Called in place of `run_to_idle` at sync point `segment`.
    ///
    /// # Errors
    ///
    /// Propagates device errors ([`SimError::Stalled`],
    /// [`SimError::DeadlineExceeded`]) exactly as a plain
    /// `run_to_idle` would, so callers classify failures identically
    /// whether or not a hook is installed.
    fn on_sync(&mut self, gpu: &mut Gpu, segment: usize) -> Result<u64, SimError>;
}

/// Worst-case duration, in cycles, of a transient common-cause fault (a
/// voltage droop striking every SM at once) assumed by the droop-aware
/// start skew. The campaign fault families inject droops up to this long;
/// a skew sized by [`crate::diversity::DiversityRequirements::for_droop_duration`]
/// of this constant guarantees no droop can hit the same computation point
/// in two concurrently executing replicas.
pub const WORST_CASE_CCF_CYCLES: u64 = 500;

/// How the redundant replicas are scheduled.
#[derive(Debug, Clone, PartialEq)]
pub enum RedundancyMode {
    /// Launch replicas back-to-back under the unconstrained COTS scheduler —
    /// redundancy without any diversity guarantee (the paper's baseline,
    /// generalized to N replicas so the frontier's baseline column exists
    /// at every replica count).
    Uncontrolled {
        /// Number of replicas (2 = the paper's configuration).
        replicas: u8,
    },
    /// SRRS: serialized execution, round-robin placement from per-replica
    /// start SMs (must be distinct modulo the SM count). N-replica-capable:
    /// one start SM per replica.
    Srrs {
        /// Start SM per replica.
        start_sms: Vec<usize>,
    },
    /// HALF: replica 0 on the lower SM half, replica 1 on the upper half.
    /// Only defined for two replicas; see [`RedundancyMode::Slice`] for the
    /// N-replica generalization.
    Half,
    /// SLICE: the N-replica generalization of HALF — replica *r* confined
    /// to the *r*-th of `replicas` balanced SM slices, all replicas
    /// concurrent. Requires `2 ≤ replicas ≤ num_sms` so every slice owns at
    /// least one SM.
    ///
    /// `start_skew` is the droop-aware dispatch stagger: replica *r* is
    /// held back `r × start_skew` cycles before becoming schedulable. With
    /// `start_skew = 0` (the paper's plain SLICE) concurrent replicas start
    /// one dispatch gap apart, which a long droop can bridge — corrupting
    /// two replicas identically and outvoting the clean one (the `nw ×
    /// droop` finding of the NMR campaigns). A skew larger than the
    /// worst-case CCF duration closes that window; see
    /// [`RedundancyMode::slice_skewed`].
    Slice {
        /// Number of replicas (= SM slices).
        replicas: u8,
        /// Per-replica dispatch stagger in cycles (0 = plain SLICE).
        start_skew: u64,
    },
}

impl RedundancyMode {
    /// The scheduler policy this mode requires on the GPU.
    pub fn policy_kind(&self) -> PolicyKind {
        match self {
            RedundancyMode::Uncontrolled { .. } => PolicyKind::Default,
            RedundancyMode::Srrs { .. } => PolicyKind::Srrs,
            RedundancyMode::Half => PolicyKind::Half,
            RedundancyMode::Slice { start_skew: 0, .. } => PolicyKind::Slice,
            RedundancyMode::Slice { .. } => PolicyKind::SliceSkewed,
        }
    }

    /// Number of replicas this mode executes.
    pub fn replicas(&self) -> u8 {
        match self {
            RedundancyMode::Uncontrolled { replicas } => *replicas,
            RedundancyMode::Srrs { start_sms } => start_sms.len() as u8,
            RedundancyMode::Slice { replicas, .. } => *replicas,
            RedundancyMode::Half => 2,
        }
    }

    /// The paper's two-replica uncontrolled COTS baseline.
    pub fn uncontrolled() -> Self {
        RedundancyMode::Uncontrolled { replicas: 2 }
    }

    /// Plain (unskewed) SLICE at `replicas` replicas — the paper-era
    /// configuration whose behaviour is frozen by the golden tests.
    pub fn slice(replicas: u8) -> Self {
        RedundancyMode::Slice {
            replicas,
            start_skew: 0,
        }
    }

    /// Droop-aware SLICE: concurrent slices with replica *r* held back
    /// `r × skew` cycles. Use [`RedundancyMode::slice_skewed_default`] for a
    /// skew sized to the campaign's worst-case CCF.
    pub fn slice_skewed(replicas: u8, start_skew: u64) -> Self {
        RedundancyMode::Slice {
            replicas,
            start_skew,
        }
    }

    /// Droop-aware SLICE with the default skew: one cycle more than
    /// [`WORST_CASE_CCF_CYCLES`] (cf.
    /// [`crate::diversity::DiversityRequirements::for_droop_duration`]), so
    /// no modelled droop can overlap the same computation point in two
    /// replicas.
    pub fn slice_skewed_default(replicas: u8) -> Self {
        Self::slice_skewed(
            replicas,
            crate::diversity::DiversityRequirements::for_droop_duration(WORST_CASE_CCF_CYCLES)
                .min_start_skew,
        )
    }

    /// Default SRRS mode for a GPU with `num_sms` SMs: two replicas with
    /// maximally separated start SMs (0 and n/2). Equal to
    /// [`RedundancyMode::srrs_spread`] at 2 replicas.
    pub fn srrs_default(num_sms: usize) -> Self {
        RedundancyMode::Srrs {
            start_sms: vec![0, num_sms / 2],
        }
    }

    /// SRRS mode with `replicas` evenly spread start SMs on a GPU with
    /// `num_sms` SMs: replica *r* starts at SM `r·num_sms/replicas`. For
    /// 6 SMs this yields `[0, 3]` at N = 2 (the paper's configuration) and
    /// `[0, 2, 4]` at N = 3 (TMR).
    pub fn srrs_spread(num_sms: usize, replicas: u8) -> Self {
        RedundancyMode::Srrs {
            start_sms: (0..usize::from(replicas))
                .map(|r| r * num_sms / usize::from(replicas).max(1))
                .collect(),
        }
    }

    /// [`RedundancyMode::srrs_spread`] on a degraded device: start SMs are
    /// spread over the `healthy` SMs only (ascending ids, e.g. the
    /// complement of `Gpu::quarantined_sms`), so no replica starts its
    /// rotation on quarantined hardware. Replica *r* starts at
    /// `healthy[r·h/replicas]`; equal to `srrs_spread` when every SM is
    /// healthy. `None` when fewer healthy SMs remain than replicas (the
    /// start SMs could no longer be pairwise distinct — the mode is
    /// unschedulable on the remaining capacity).
    pub fn srrs_spread_healthy(healthy: &[usize], replicas: u8) -> Option<Self> {
        let h = healthy.len();
        if h < usize::from(replicas) {
            return None;
        }
        Some(RedundancyMode::Srrs {
            start_sms: (0..usize::from(replicas))
                .map(|r| healthy[r * h / usize::from(replicas).max(1)])
                .collect(),
        })
    }
}

/// Errors of the redundant-execution protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum RedundancyError {
    /// Underlying device error.
    Sim(SimError),
    /// The mode is mis-parameterized (e.g. SRRS replicas sharing a start SM,
    /// HALF with ≠ 2 replicas).
    InvalidMode(String),
    /// A parameter referenced a logical buffer with the wrong replica count.
    BufferArity {
        /// Replicas the buffer was allocated for.
        buffer: usize,
        /// Replicas the executor runs.
        executor: usize,
    },
}

impl std::fmt::Display for RedundancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedundancyError::Sim(e) => write!(f, "device error: {e}"),
            RedundancyError::InvalidMode(m) => write!(f, "invalid redundancy mode: {m}"),
            RedundancyError::BufferArity { buffer, executor } => write!(
                f,
                "buffer allocated for {buffer} replicas used with {executor} replicas"
            ),
        }
    }
}

impl std::error::Error for RedundancyError {}

impl From<SimError> for RedundancyError {
    fn from(e: SimError) -> Self {
        RedundancyError::Sim(e)
    }
}

/// A logical device buffer with one physical allocation per replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RBuf {
    ptrs: Vec<DevPtr>,
    words: u32,
}

impl RBuf {
    /// The physical pointer for `replica`.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn ptr(&self, replica: usize) -> DevPtr {
        self.ptrs[replica]
    }

    /// Buffer length in 32-bit words.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.ptrs.len()
    }
}

/// A kernel parameter in replica-generic form.
#[derive(Debug, Clone, Copy)]
pub enum RParam<'a> {
    /// The replica-local address of a logical buffer.
    Buf(&'a RBuf),
    /// The replica-local address of a buffer plus a word offset.
    BufOffset(&'a RBuf, u32),
    /// A raw word, identical across replicas.
    U32(u32),
    /// A signed integer, identical across replicas.
    I32(i32),
    /// A float (raw bits), identical across replicas.
    F32(f32),
}

/// Outcome of collecting and comparing redundant results on the DCLS host.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparison<T> {
    /// Replicas agree bitwise; the value is safe to consume.
    Match(T),
    /// Replicas disagree: a fault corrupted at least one copy. The
    /// computation must be re-executed (fail-operational recovery).
    Mismatch {
        /// Word index of the first disagreement.
        first_word: usize,
        /// Number of disagreeing words.
        diff_words: usize,
        /// The replica outputs, for diagnosis.
        outputs: Vec<T>,
    },
}

impl<T> Comparison<T> {
    /// True when all replicas agreed.
    pub fn is_match(&self) -> bool {
        matches!(self, Comparison::Match(_))
    }

    /// The agreed value, if any.
    pub fn into_match(self) -> Option<T> {
        match self {
            Comparison::Match(v) => Some(v),
            Comparison::Mismatch { .. } => None,
        }
    }
}

/// Drives the five-step DCLS redundant offload protocol on a GPU.
///
/// # Examples
///
/// ```
/// use higpu_core::redundancy::{RedundancyMode, RedundantExecutor, RParam};
/// use higpu_sim::builder::KernelBuilder;
/// use higpu_sim::config::GpuConfig;
/// use higpu_sim::gpu::Gpu;
/// use higpu_sim::kernel::Dim3;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut gpu = Gpu::new(GpuConfig::paper_6sm());
/// let mode = RedundancyMode::srrs_default(6);
/// let mut exec = RedundantExecutor::new(&mut gpu, mode)?;
///
/// // out[i] = i * 3
/// let mut b = KernelBuilder::new("triple");
/// let out = b.param(0);
/// let i = b.global_tid_x();
/// let addr = b.addr_w(out, i);
/// let v = b.imul(i, 3u32);
/// b.stg(addr, 0, v);
/// let prog = b.build()?.into_shared();
///
/// let out_buf = exec.alloc_words(64)?;
/// exec.launch(&prog, Dim3::x(2), Dim3::x(32), 0, &[RParam::Buf(&out_buf)])?;
/// exec.sync()?;
/// let result = exec.read_compare_u32(&out_buf, 64)?;
/// assert!(result.is_match());
/// # Ok(())
/// # }
/// ```
pub struct RedundantExecutor<'g> {
    gpu: &'g mut Gpu,
    mode: RedundancyMode,
    replicas: u8,
    next_group: u32,
    launches: Vec<Vec<KernelId>>,
    /// Reusable parameter-word scratch for [`RedundantExecutor::launch_with`]
    /// (steady-state launches materialize replica parameters in place
    /// instead of allocating a fresh vector per replica).
    param_scratch: Vec<u32>,
    /// Optional interception of [`RedundantExecutor::sync`]; see [`SyncHook`].
    sync_hook: Option<Box<dyn SyncHook + 'g>>,
    /// Zero-based index of the next sync point, fed to the hook.
    segment: usize,
}

impl std::fmt::Debug for RedundantExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RedundantExecutor")
            .field("mode", &self.mode)
            .field("replicas", &self.replicas)
            .field("next_group", &self.next_group)
            .field("launches", &self.launches)
            .field("segment", &self.segment)
            .field("sync_hook", &self.sync_hook.as_ref().map(|_| "installed"))
            .finish_non_exhaustive()
    }
}

impl<'g> RedundantExecutor<'g> {
    /// Creates an executor and installs the scheduling policy `mode`
    /// requires on the GPU.
    ///
    /// # Errors
    ///
    /// * [`RedundancyError::InvalidMode`] for fewer than two replicas,
    ///   duplicate SRRS start SMs (modulo the SM count), or HALF with ≠ 2
    ///   replicas.
    /// * [`RedundancyError::Sim`] if the GPU is not idle.
    pub fn new(gpu: &'g mut Gpu, mode: RedundancyMode) -> Result<Self, RedundancyError> {
        let replicas = mode.replicas();
        if replicas < 2 {
            return Err(RedundancyError::InvalidMode(
                "at least two replicas required".into(),
            ));
        }
        let n = gpu.config().num_sms;
        if let RedundancyMode::Srrs { start_sms } = &mode {
            for (i, a) in start_sms.iter().enumerate() {
                for b in &start_sms[i + 1..] {
                    if a % n == b % n {
                        return Err(RedundancyError::InvalidMode(format!(
                            "SRRS start SMs must differ modulo {n}: {a} vs {b}"
                        )));
                    }
                }
            }
        }
        if matches!(mode, RedundancyMode::Half) && replicas != 2 {
            return Err(RedundancyError::InvalidMode(
                "HALF partitions support exactly two replicas".into(),
            ));
        }
        if matches!(mode, RedundancyMode::Slice { .. }) && usize::from(replicas) > n {
            return Err(RedundancyError::InvalidMode(format!(
                "SLICE needs at least one SM per replica: {replicas} replicas on {n} SMs"
            )));
        }
        gpu.set_policy(mode.policy_kind().build())?;
        // Group identifiers must stay unique across executors sharing one
        // GPU (e.g. per-kernel policy phases), or the diversity analyzer
        // would cross-match unrelated launches.
        let next_group = gpu
            .trace()
            .kernels
            .iter()
            .filter_map(|k| k.attrs.redundant.map(|t| t.group + 1))
            .max()
            .unwrap_or(0);
        Ok(Self {
            gpu,
            mode,
            replicas,
            next_group,
            launches: Vec::new(),
            param_scratch: Vec::new(),
            sync_hook: None,
            segment: 0,
        })
    }

    /// Installs a [`SyncHook`] that intercepts every subsequent
    /// [`RedundantExecutor::sync`]. Replaces any previously installed hook;
    /// the segment counter keeps running (sync points are numbered per
    /// executor, not per hook).
    pub fn set_sync_hook(&mut self, hook: Box<dyn SyncHook + 'g>) {
        self.sync_hook = Some(hook);
    }

    /// The executing GPU (e.g. for trace inspection).
    pub fn gpu(&self) -> &Gpu {
        self.gpu
    }

    /// Mutable access to the executing GPU — for fault injection and
    /// diagnosis. Writes that bypass the replication protocol void the
    /// executor's comparison guarantees; production code never needs this.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        self.gpu
    }

    /// Number of replicas per logical computation.
    pub fn replicas(&self) -> u8 {
        self.replicas
    }

    /// The redundancy mode in use.
    pub fn mode(&self) -> &RedundancyMode {
        &self.mode
    }

    /// Kernel ids launched so far, one `Vec` (of all replicas) per logical
    /// launch.
    pub fn launch_groups(&self) -> &[Vec<KernelId>] {
        &self.launches
    }

    /// Step (1): allocates a logical buffer — one physical allocation per
    /// replica.
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::Sim`] when device memory is exhausted.
    pub fn alloc_words(&mut self, words: u32) -> Result<RBuf, RedundancyError> {
        let mut ptrs = Vec::with_capacity(self.replicas as usize);
        for _ in 0..self.replicas {
            ptrs.push(self.gpu.alloc_words(words)?);
        }
        Ok(RBuf { ptrs, words })
    }

    fn check_arity(&self, buf: &RBuf) -> Result<(), RedundancyError> {
        if buf.replicas() != self.replicas as usize {
            return Err(RedundancyError::BufferArity {
                buffer: buf.replicas(),
                executor: self.replicas as usize,
            });
        }
        Ok(())
    }

    /// Step (2): transfers host data into every replica of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::BufferArity`] on replica-count mismatch.
    pub fn write_u32(&mut self, buf: &RBuf, data: &[u32]) -> Result<(), RedundancyError> {
        self.check_arity(buf)?;
        for r in 0..self.replicas as usize {
            self.gpu.write_u32(buf.ptr(r), data);
        }
        Ok(())
    }

    /// Step (2): transfers host `f32` data into every replica of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::BufferArity`] on replica-count mismatch.
    pub fn write_f32(&mut self, buf: &RBuf, data: &[f32]) -> Result<(), RedundancyError> {
        self.check_arity(buf)?;
        for r in 0..self.replicas as usize {
            self.gpu.write_f32(buf.ptr(r), data);
        }
        Ok(())
    }

    /// Step (3): launches all replicas of one logical kernel.
    ///
    /// Replica `r` receives the replica-local buffer addresses from
    /// `params`, the diversity attributes of the executor's mode (start SM /
    /// partition / slice), and a fresh redundancy-group tag for trace
    /// matching.
    ///
    /// # Errors
    ///
    /// Propagates launch errors (unschedulable geometry, buffer arity).
    pub fn launch(
        &mut self,
        program: &Arc<Program>,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
        shared_mem_bytes: u32,
        params: &[RParam<'_>],
    ) -> Result<u32, RedundancyError> {
        for p in params {
            if let RParam::Buf(b) | RParam::BufOffset(b, _) = p {
                self.check_arity(b)?;
            }
        }
        self.launch_with(
            program,
            grid,
            block,
            shared_mem_bytes,
            &mut |replica, out| {
                for p in params {
                    match p {
                        RParam::Buf(b) => out.push(b.ptr(replica).0),
                        RParam::BufOffset(b, w) => out.push(b.ptr(replica).offset_words(*w).0),
                        RParam::U32(v) => out.push(*v),
                        RParam::I32(v) => out.push(*v as u32),
                        RParam::F32(v) => out.push(v.to_bits()),
                    }
                }
                Ok(())
            },
        )
    }

    /// Allocation-light form of [`RedundantExecutor::launch`]: instead of a
    /// replica-generic parameter slice, `fill` writes replica `r`'s raw
    /// parameter words into a scratch vector the executor reuses across
    /// launches. [`higpu_workloads`]' redundant sessions use this to keep
    /// steady-state launches free of per-launch buffer-table clones.
    ///
    /// One exact-size parameter vector per replica is still allocated —
    /// that is the [`higpu_sim::gpu::Gpu::launch`] interface (the launch
    /// consumes its `LaunchConfig::params`). The scratch buys exactly two
    /// things: `fill` never grows a cold vector (so no per-call growth
    /// reallocations), and the caller needs no allocation of its own to
    /// assemble parameters. The per-launch allocation count is therefore
    /// small and independent of caller state (test-enforced in
    /// `higpu_workloads`' counting-allocator fence).
    ///
    /// # Errors
    ///
    /// Propagates errors from `fill` (e.g. buffer arity) and launch errors
    /// (unschedulable geometry).
    pub fn launch_with(
        &mut self,
        program: &Arc<Program>,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
        shared_mem_bytes: u32,
        fill: &mut ParamFill<'_>,
    ) -> Result<u32, RedundancyError> {
        let grid = grid.into();
        let block = block.into();
        let group = self.next_group;
        self.next_group += 1;
        let mut ids = Vec::with_capacity(self.replicas as usize);
        for r in 0..self.replicas as usize {
            let mut scratch = std::mem::take(&mut self.param_scratch);
            scratch.clear();
            if let Err(e) = fill(r, &mut scratch) {
                self.param_scratch = scratch;
                return Err(e);
            }
            let mut cfg = LaunchConfig::new(grid, block).shared_mem(shared_mem_bytes);
            cfg.params.clone_from(&scratch);
            self.param_scratch = scratch;
            let mut launch = KernelLaunch::new(program.clone(), cfg)
                .tag(format!("{}#g{}r{}", program.name(), group, r))
                .redundant(group, r as u8)
                .serialize_group(group);
            match &self.mode {
                RedundancyMode::Uncontrolled { .. } => {}
                RedundancyMode::Srrs { start_sms } => {
                    launch = launch.start_sm(start_sms[r]);
                }
                RedundancyMode::Half => {
                    launch = launch.partition(if r == 0 {
                        SmPartition::Lower
                    } else {
                        SmPartition::Upper
                    });
                }
                RedundancyMode::Slice {
                    replicas,
                    start_skew,
                } => {
                    launch = launch
                        .slice(r as u8, *replicas)
                        .dispatch_delay(r as u64 * start_skew);
                }
            }
            ids.push(self.gpu.launch(launch)?);
        }
        self.launches.push(ids);
        Ok(group)
    }

    /// Waits for all launched replicas to complete (the host-side
    /// synchronization point between dependent kernels).
    ///
    /// With a [`SyncHook`] installed the hook runs the segment instead
    /// (recording checkpoints, or skipping it via snapshot restore); either
    /// way the returned cycle is the device clock at synchronization.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Stalled`] from the device.
    pub fn sync(&mut self) -> Result<u64, RedundancyError> {
        let segment = self.segment;
        self.segment += 1;
        match &mut self.sync_hook {
            Some(hook) => Ok(hook.on_sync(self.gpu, segment)?),
            None => Ok(self.gpu.run_to_idle()?),
        }
    }

    /// Steps (4)+(5): reads `words` words from every replica of `buf` and
    /// compares them bitwise on the (assumed fault-free, DCLS-protected)
    /// host.
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::BufferArity`] on replica-count mismatch.
    pub fn read_compare_u32(
        &mut self,
        buf: &RBuf,
        words: usize,
    ) -> Result<Comparison<Vec<u32>>, RedundancyError> {
        self.check_arity(buf)?;
        let outputs: Vec<Vec<u32>> = (0..self.replicas as usize)
            .map(|r| self.gpu.read_u32(buf.ptr(r), words))
            .collect();
        let reference = &outputs[0];
        let mut first = None;
        let mut diffs = 0usize;
        for w in 0..words {
            if outputs.iter().any(|o| o[w] != reference[w]) {
                diffs += 1;
                if first.is_none() {
                    first = Some(w);
                }
            }
        }
        Ok(match first {
            None => Comparison::Match(outputs.into_iter().next().expect("replica 0")),
            Some(first_word) => Comparison::Mismatch {
                first_word,
                diff_words: diffs,
                outputs,
            },
        })
    }

    /// Like [`RedundantExecutor::read_compare_u32`] but reinterprets the
    /// agreed words as `f32` (comparison itself stays bitwise, as the DCLS
    /// host compares raw words).
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::BufferArity`] on replica-count mismatch.
    pub fn read_compare_f32(
        &mut self,
        buf: &RBuf,
        words: usize,
    ) -> Result<Comparison<Vec<f32>>, RedundancyError> {
        Ok(match self.read_compare_u32(buf, words)? {
            Comparison::Match(v) => Comparison::Match(v.into_iter().map(f32::from_bits).collect()),
            Comparison::Mismatch {
                first_word,
                diff_words,
                outputs,
            } => Comparison::Mismatch {
                first_word,
                diff_words,
                outputs: outputs
                    .into_iter()
                    .map(|o| o.into_iter().map(f32::from_bits).collect())
                    .collect(),
            },
        })
    }

    /// Steps (4)+(5), NMR form: reads `words` words from every replica of
    /// `buf` and **majority-votes** them bitwise per word on the (assumed
    /// fault-free, DCLS-protected) host — see [`crate::vote`].
    ///
    /// With two replicas this is equivalent to
    /// [`RedundantExecutor::read_compare_u32`]: any disagreement is a
    /// [`crate::vote::VoteOutcome::Tied`] and the surviving value is
    /// replica 0's. With three or more, a minority corruption yields
    /// [`crate::vote::VoteOutcome::Corrected`] and the voted value masks it.
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::BufferArity`] on replica-count mismatch.
    pub fn read_vote_u32(
        &mut self,
        buf: &RBuf,
        words: usize,
    ) -> Result<VotedWords, RedundancyError> {
        self.check_arity(buf)?;
        let outputs: Vec<Vec<u32>> = (0..self.replicas as usize)
            .map(|r| self.gpu.read_u32(buf.ptr(r), words))
            .collect();
        let refs: Vec<&[u32]> = outputs.iter().map(Vec::as_slice).collect();
        Ok(majority_vote(&refs, words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::{analyze, DiversityRequirements};
    use higpu_sim::builder::KernelBuilder;
    use higpu_sim::config::GpuConfig;

    fn triple_kernel() -> Arc<Program> {
        let mut b = KernelBuilder::new("triple");
        let out = b.param(0);
        let i = b.global_tid_x();
        let addr = b.addr_w(out, i);
        let v = b.imul(i, 3u32);
        b.stg(addr, 0, v);
        b.build().expect("valid").into_shared()
    }

    #[test]
    fn srrs_redundant_run_matches_and_is_diverse() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let prog = triple_kernel();
        let out = exec.alloc_words(128).expect("alloc");
        exec.launch(&prog, 4u32, 32u32, 0, &[RParam::Buf(&out)])
            .expect("launch");
        exec.sync().expect("run");
        let cmp = exec.read_compare_u32(&out, 128).expect("compare");
        let data = cmp.into_match().expect("replicas agree");
        assert_eq!(data[5], 15);
        drop(exec);
        let report = analyze(gpu.trace(), DiversityRequirements::default());
        assert!(report.is_diverse(), "SRRS guarantees diversity: {report:?}");
        assert_eq!(report.pairs_checked, 4);
    }

    #[test]
    fn half_redundant_run_matches_and_is_diverse() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::Half).expect("mode");
        let prog = triple_kernel();
        let out = exec.alloc_words(128).expect("alloc");
        exec.launch(&prog, 4u32, 32u32, 0, &[RParam::Buf(&out)])
            .expect("launch");
        exec.sync().expect("run");
        assert!(exec.read_compare_u32(&out, 128).expect("cmp").is_match());
        drop(exec);
        let report = analyze(gpu.trace(), DiversityRequirements::default());
        assert!(report.is_diverse(), "HALF guarantees diversity: {report:?}");
    }

    #[test]
    fn srrs_rejects_equal_start_sms() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let err = RedundantExecutor::new(
            &mut gpu,
            RedundancyMode::Srrs {
                start_sms: vec![1, 7], // 7 % 6 == 1
            },
        )
        .expect_err("must reject");
        assert!(matches!(err, RedundancyError::InvalidMode(_)));
    }

    #[test]
    fn single_replica_rejected() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let err = RedundantExecutor::new(&mut gpu, RedundancyMode::Srrs { start_sms: vec![0] })
            .expect_err("must reject");
        assert!(matches!(err, RedundancyError::InvalidMode(_)));
    }

    #[test]
    fn triple_modular_redundancy_runs() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec = RedundantExecutor::new(
            &mut gpu,
            RedundancyMode::Srrs {
                start_sms: vec![0, 2, 4],
            },
        )
        .expect("TMR mode");
        assert_eq!(exec.replicas(), 3);
        let prog = triple_kernel();
        let out = exec.alloc_words(64).expect("alloc");
        exec.launch(&prog, 2u32, 32u32, 0, &[RParam::Buf(&out)])
            .expect("launch");
        exec.sync().expect("run");
        assert!(exec.read_compare_u32(&out, 64).expect("cmp").is_match());
        drop(exec);
        let report = analyze(gpu.trace(), DiversityRequirements::default());
        assert!(report.is_diverse());
        assert_eq!(report.pairs_checked, 2 * 3, "2 blocks x 3 pairs");
    }

    #[test]
    fn slice_tmr_runs_diverse_and_unanimous() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec = RedundantExecutor::new(&mut gpu, RedundancyMode::slice(3)).expect("mode");
        assert_eq!(exec.replicas(), 3);
        let prog = triple_kernel();
        let out = exec.alloc_words(64).expect("alloc");
        exec.launch(&prog, 2u32, 32u32, 0, &[RParam::Buf(&out)])
            .expect("launch");
        exec.sync().expect("run");
        let vote = exec.read_vote_u32(&out, 64).expect("vote");
        assert!(vote.outcome.is_unanimous());
        assert_eq!(vote.value[5], 15);
        drop(exec);
        let report = analyze(gpu.trace(), DiversityRequirements::default());
        assert!(
            report.is_diverse(),
            "SLICE guarantees diversity: {report:?}"
        );
        // Every block ran in its replica's slice.
        for rec in &gpu.trace().blocks {
            let k = gpu.trace().kernel(rec.kernel).expect("kernel");
            let replica = k.attrs.redundant.expect("tag").replica;
            let slice = k.attrs.slice.expect("slice hint");
            assert_eq!(slice.index, replica);
            assert!(slice.contains(rec.sm, 6), "replica escaped its slice");
        }
    }

    #[test]
    fn slice_rejects_more_replicas_than_sms() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let err =
            RedundantExecutor::new(&mut gpu, RedundancyMode::slice(7)).expect_err("must reject");
        assert!(matches!(err, RedundancyError::InvalidMode(_)));
    }

    #[test]
    fn srrs_spread_matches_default_at_two_and_roadmap_tmr_at_three() {
        assert_eq!(
            RedundancyMode::srrs_spread(6, 2),
            RedundancyMode::srrs_default(6)
        );
        assert_eq!(
            RedundancyMode::srrs_spread(6, 3),
            RedundancyMode::Srrs {
                start_sms: vec![0, 2, 4]
            }
        );
        assert_eq!(RedundancyMode::srrs_spread(6, 3).replicas(), 3);
        // Spread start SMs stay pairwise distinct modulo n up to n replicas.
        for n in [2usize, 5, 6, 8] {
            for replicas in 2..=n as u8 {
                let mut gpu = Gpu::new(GpuConfig::paper_6sm());
                if n == 6 {
                    RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_spread(n, replicas))
                        .expect("valid spread");
                }
            }
        }
    }

    #[test]
    fn srrs_spread_healthy_avoids_quarantined_sms() {
        // Fully healthy device: identical to the classic spread.
        let healthy: Vec<usize> = (0..6).collect();
        assert_eq!(
            RedundancyMode::srrs_spread_healthy(&healthy, 2),
            Some(RedundancyMode::srrs_spread(6, 2))
        );
        // SM 3 quarantined on a 6-SM device: replica 1 would classically
        // start at SM 3; the healthy spread moves it to a live SM.
        let healthy = vec![0, 1, 2, 4, 5];
        let mode = RedundancyMode::srrs_spread_healthy(&healthy, 2).expect("schedulable");
        assert_eq!(
            mode,
            RedundancyMode::Srrs {
                start_sms: vec![0, 2]
            }
        );
        // More replicas than healthy SMs: unschedulable, not a panic.
        assert_eq!(RedundancyMode::srrs_spread_healthy(&[0, 4], 3), None);
    }

    #[test]
    fn tmr_vote_corrects_a_single_corrupted_replica() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec = RedundantExecutor::new(
            &mut gpu,
            RedundancyMode::Srrs {
                start_sms: vec![0, 2, 4],
            },
        )
        .expect("mode");
        let buf = exec.alloc_words(8).expect("alloc");
        exec.write_u32(&buf, &[1, 2, 3, 4, 5, 6, 7, 8])
            .expect("write");
        // Corrupt replica 1 behind the executor's back (simulating a fault).
        let p1 = buf.ptr(1);
        exec.gpu.write_u32(DevPtr(p1.0 + 8), &[99, 98]);
        let vote = exec.read_vote_u32(&buf, 8).expect("vote");
        assert_eq!(
            vote.outcome,
            crate::vote::VoteOutcome::Corrected {
                first_word: 2,
                corrected_words: 2
            }
        );
        assert_eq!(
            vote.value,
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            "2-of-3 majority restores the clean data"
        );
        // The pairwise compare still reports the same corruption as a
        // mismatch (detection without correction).
        assert!(!exec.read_compare_u32(&buf, 8).expect("cmp").is_match());
    }

    #[test]
    fn two_replica_vote_equals_pairwise_compare() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let buf = exec.alloc_words(8).expect("alloc");
        exec.write_u32(&buf, &[1, 2, 3, 4, 5, 6, 7, 8])
            .expect("write");
        let p1 = buf.ptr(1);
        exec.gpu.write_u32(DevPtr(p1.0 + 8), &[99, 98]);
        let vote = exec.read_vote_u32(&buf, 8).expect("vote");
        assert_eq!(
            vote.outcome,
            crate::vote::VoteOutcome::Tied {
                first_word: 2,
                tied_words: 2,
                corrected_words: 0
            },
            "a 2-replica disagreement can never be outvoted"
        );
        assert_eq!(
            vote.value,
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            "replica 0 survives, exactly as the DCLS compare hands back"
        );
    }

    #[test]
    fn mismatch_reports_first_difference() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let buf = exec.alloc_words(8).expect("alloc");
        exec.write_u32(&buf, &[1, 2, 3, 4, 5, 6, 7, 8])
            .expect("write");
        // Corrupt replica 1 behind the executor's back (simulating a fault).
        let p1 = buf.ptr(1);
        exec.gpu.write_u32(DevPtr(p1.0 + 8), &[99, 98]);
        match exec.read_compare_u32(&buf, 8).expect("cmp") {
            Comparison::Mismatch {
                first_word,
                diff_words,
                outputs,
            } => {
                assert_eq!(first_word, 2);
                assert_eq!(diff_words, 2);
                assert_eq!(outputs.len(), 2);
            }
            Comparison::Match(_) => panic!("corruption must be detected"),
        }
    }

    #[test]
    fn buffer_arity_is_checked() {
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let foreign = RBuf {
            ptrs: vec![DevPtr(0)],
            words: 4,
        };
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::srrs_default(6)).expect("mode");
        let err = exec.write_u32(&foreign, &[0; 4]).expect_err("arity");
        assert!(matches!(err, RedundancyError::BufferArity { .. }));
    }

    #[test]
    fn uncontrolled_mode_provides_no_diversity_evidence_for_short_gaps() {
        // With the default scheduler both replicas spread over all SMs; for a
        // multi-block kernel some redundant pair almost always shares an SM.
        let mut gpu = Gpu::new(GpuConfig::paper_6sm());
        let mut exec =
            RedundantExecutor::new(&mut gpu, RedundancyMode::uncontrolled()).expect("mode");
        let prog = triple_kernel();
        let out = exec.alloc_words(512).expect("alloc");
        exec.launch(&prog, 12u32, 32u32, 0, &[RParam::Buf(&out)])
            .expect("launch");
        exec.sync().expect("run");
        drop(exec);
        let report = analyze(gpu.trace(), DiversityRequirements::default());
        assert!(
            report.spatial_violations > 0,
            "uncontrolled placement reuses SMs across replicas: {report:?}"
        );
    }
}
